//! Fleet-wide characterization (Fig. 1).
//!
//! The paper reports two aggregates over an industry datacenter fleet:
//! TTI/TTV training jobs use **14x more GPUs per model parameter** than
//! LLMs, and run at **~1.4x (10 points) higher average memory
//! utilization**. The underlying telemetry is proprietary, so we build the
//! closest synthetic equivalent: a generator that produces a plausible
//! fleet of training jobs from first-principles scaling rules (model size
//! distributions per family, GPU allocation heuristics, utilization
//! distributions), and the same aggregation the paper applies. The
//! generator is seeded and documented; the aggregation code is what is
//! actually under test.

use rand::distributions::Distribution;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Workload family of a training job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JobFamily {
    /// Large language model training.
    Llm,
    /// Text-to-image / text-to-video model training.
    TtiTtv,
}

/// One synthetic training job.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingJob {
    /// Job family.
    pub family: JobFamily,
    /// Model parameters.
    pub params: u64,
    /// GPUs allocated.
    pub gpus: u32,
    /// Average GPU memory utilization in `[0, 1]`.
    pub memory_util: f64,
}

/// Synthetic-fleet generation parameters.
///
/// Defaults encode the structural facts the paper describes: LLMs are an
/// order of magnitude larger in parameters but trained on comparable GPU
/// counts, and TTI/TTV jobs run hotter on memory (activations for spatial
/// data dominate over weights).
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// Number of LLM jobs.
    pub llm_jobs: usize,
    /// Number of TTI/TTV jobs.
    pub tti_jobs: usize,
    /// LLM parameter range (log-uniform), in billions.
    pub llm_params_b: (f64, f64),
    /// TTI/TTV parameter range (log-uniform), in billions.
    pub tti_params_b: (f64, f64),
    /// GPUs per billion parameters for LLM jobs (mean, jitter fraction).
    pub llm_gpus_per_b: (f64, f64),
    /// GPUs per billion parameters for TTI jobs (mean, jitter fraction).
    pub tti_gpus_per_b: (f64, f64),
    /// Memory utilization (mean, jitter) for LLM jobs.
    pub llm_mem_util: (f64, f64),
    /// Memory utilization (mean, jitter) for TTI jobs.
    pub tti_mem_util: (f64, f64),
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            llm_jobs: 40,
            tti_jobs: 120,
            llm_params_b: (7.0, 175.0),
            tti_params_b: (0.4, 20.0),
            // LLMs: ~6 GPUs per billion params (e.g. 1k GPUs for a 175B
            // run); TTI: dataset- and resolution-bound, not param-bound —
            // ~85 GPUs per billion params (e.g. 128 GPUs for a 1.5B model).
            llm_gpus_per_b: (6.0, 0.4),
            tti_gpus_per_b: (85.0, 0.4),
            llm_mem_util: (0.62, 0.10),
            tti_mem_util: (0.87, 0.08),
        }
    }
}

/// Generates a deterministic synthetic fleet.
#[must_use]
pub fn generate_fleet(cfg: &FleetConfig, seed: u64) -> Vec<TrainingJob> {
    let mut rng = StdRng::seed_from_u64(seed);
    let uniform = rand::distributions::Uniform::new(0.0f64, 1.0f64);
    let mut sample = |lo: f64, hi: f64| {
        let u = uniform.sample(&mut rng);
        (lo.ln() + u * (hi.ln() - lo.ln())).exp()
    };
    let mut jobs = Vec::with_capacity(cfg.llm_jobs + cfg.tti_jobs);
    for family in [JobFamily::Llm, JobFamily::TtiTtv] {
        let (n, params_b, gpb, mem) = match family {
            JobFamily::Llm => (cfg.llm_jobs, cfg.llm_params_b, cfg.llm_gpus_per_b, cfg.llm_mem_util),
            JobFamily::TtiTtv => (cfg.tti_jobs, cfg.tti_params_b, cfg.tti_gpus_per_b, cfg.tti_mem_util),
        };
        for _ in 0..n {
            let pb = sample(params_b.0, params_b.1);
            let gpus = (pb * sample(gpb.0 * (1.0 - gpb.1), gpb.0 * (1.0 + gpb.1))).ceil().max(8.0);
            let util = sample(mem.0 * (1.0 - mem.1), (mem.0 * (1.0 + mem.1)).min(0.99));
            jobs.push(TrainingJob {
                family,
                params: (pb * 1e9) as u64,
                gpus: gpus as u32,
                memory_util: util,
            });
        }
    }
    jobs
}

/// The Fig. 1 aggregates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetSummary {
    /// Mean GPUs per parameter for LLM jobs.
    pub llm_gpus_per_param: f64,
    /// Mean GPUs per parameter for TTI/TTV jobs.
    pub tti_gpus_per_param: f64,
    /// Ratio (the paper reports 14x).
    pub gpus_per_param_ratio: f64,
    /// Mean memory utilization for LLM jobs.
    pub llm_memory_util: f64,
    /// Mean memory utilization for TTI/TTV jobs.
    pub tti_memory_util: f64,
    /// Ratio (the paper reports 1.4x).
    pub memory_util_ratio: f64,
}

/// Aggregates a fleet the way Fig. 1 does.
///
/// # Panics
///
/// Panics if either family is absent from the fleet.
#[must_use]
pub fn summarize(jobs: &[TrainingJob]) -> FleetSummary {
    let mean = |family: JobFamily, f: &dyn Fn(&TrainingJob) -> f64| -> f64 {
        let xs: Vec<f64> = jobs.iter().filter(|j| j.family == family).map(f).collect();
        assert!(!xs.is_empty(), "fleet has no {family:?} jobs");
        xs.iter().sum::<f64>() / xs.len() as f64
    };
    let gpp = |j: &TrainingJob| j.gpus as f64 / j.params as f64;
    let mu = |j: &TrainingJob| j.memory_util;
    let llm_gpp = mean(JobFamily::Llm, &gpp);
    let tti_gpp = mean(JobFamily::TtiTtv, &gpp);
    let llm_mu = mean(JobFamily::Llm, &mu);
    let tti_mu = mean(JobFamily::TtiTtv, &mu);
    FleetSummary {
        llm_gpus_per_param: llm_gpp,
        tti_gpus_per_param: tti_gpp,
        gpus_per_param_ratio: tti_gpp / llm_gpp,
        llm_memory_util: llm_mu,
        tti_memory_util: tti_mu,
        memory_util_ratio: tti_mu / llm_mu,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = FleetConfig::default();
        assert_eq!(generate_fleet(&cfg, 7), generate_fleet(&cfg, 7));
        assert_ne!(generate_fleet(&cfg, 7), generate_fleet(&cfg, 8));
    }

    #[test]
    fn fig1_ratios_reproduce() {
        let jobs = generate_fleet(&FleetConfig::default(), 42);
        let s = summarize(&jobs);
        // Paper: 14x GPUs/param; allow the synthetic fleet a generous band.
        assert!(
            (8.0..22.0).contains(&s.gpus_per_param_ratio),
            "gpus/param ratio {}",
            s.gpus_per_param_ratio
        );
        // Paper: ~1.4x memory utilization (TTI ≈ LLM + 10 points).
        assert!(
            (1.2..1.7).contains(&s.memory_util_ratio),
            "memory ratio {}",
            s.memory_util_ratio
        );
    }

    #[test]
    fn tti_models_are_smaller_but_gpu_hungry() {
        let jobs = generate_fleet(&FleetConfig::default(), 42);
        let mean_params = |f: JobFamily| {
            let xs: Vec<f64> =
                jobs.iter().filter(|j| j.family == f).map(|j| j.params as f64).collect();
            xs.iter().sum::<f64>() / xs.len() as f64
        };
        assert!(mean_params(JobFamily::Llm) > 5.0 * mean_params(JobFamily::TtiTtv));
    }

    #[test]
    fn utilizations_are_valid_fractions() {
        for j in generate_fleet(&FleetConfig::default(), 1) {
            assert!((0.0..=1.0).contains(&j.memory_util));
            assert!(j.gpus >= 8);
        }
    }

    #[test]
    #[should_panic(expected = "no Llm jobs")]
    fn summarize_requires_both_families() {
        let jobs = vec![TrainingJob {
            family: JobFamily::TtiTtv,
            params: 1,
            gpus: 8,
            memory_util: 0.5,
        }];
        let _ = summarize(&jobs);
    }
}
