//! # mmg-analytics
//!
//! The paper's analytical studies, separate from the trace-driven
//! simulation:
//!
//! * [`fleet`] — the Fig. 1 fleet-wide study (GPUs per parameter, memory
//!   utilization) over a synthetic industry-scale training-job dataset.
//! * [`pareto`] — the Fig. 4 quality/size landscape and Pareto frontier
//!   over published (FID, parameters) points.
//! * [`roofline`] — the Fig. 5 roofline placement of the model suite.
//! * [`seqlen_model`] — Section V's closed-form framework for sequence
//!   length, similarity-matrix memory, and the `O(L⁴)` image-size law.
//! * [`temporal`] — Section VI's frame-scaling projection (Fig. 13).
//! * [`training`] — first-principles training-resource model behind Fig. 1.
//! * [`scheduling`] — the denoising-pod co-scheduling study Section V
//!   proposes as future work.

#![deny(missing_docs)]

pub mod fleet;
pub mod parallel;
pub mod pareto;
pub mod roofline;
pub mod scheduling;
pub mod seqlen_model;
pub mod serving;
pub mod temporal;
pub mod training;

/// Imagen-style base UNet training-step graph (64×64 pixel space), shared
/// by the training model.
#[must_use]
pub fn suite_imagen_base() -> mmg_graph::Graph {
    let cfg = mmg_models::suite::imagen::ImagenConfig::default();
    mmg_models::blocks::unet_step_graph(&cfg.base_unet(), 64, 1)
}
