//! Tensor-parallel inference model (extension).
//!
//! The paper's Fig. 5 shows transformer TTI decode is memory-bandwidth
//! bound at low batch: every generated token re-reads all the weights.
//! The standard deployment answer is tensor parallelism — shard each
//! weight matrix over `k` NVLinked GPUs so each token's weight traffic is
//! `1/k`, at the price of two all-reduces per transformer layer. This
//! module models that trade-off with a ring all-reduce cost on the
//! [`DeviceSpec`] interconnect constants.

use mmg_gpu::DeviceSpec;
use mmg_models::TransformerConfig;

/// Ring all-reduce time for `bytes` over `k` GPUs:
/// `2·(k-1)/k · bytes / link_bw + 2·(k-1) · latency`.
#[must_use]
pub fn allreduce_time_s(bytes: u64, k: usize, spec: &DeviceSpec) -> f64 {
    if k <= 1 {
        return 0.0;
    }
    let steps = 2 * (k - 1);
    let payload = 2.0 * (k - 1) as f64 / k as f64 * bytes as f64;
    payload / (spec.nvlink_bw_gbs * 1e9) + steps as f64 * spec.nvlink_latency_us * 1e-6
}

/// Modelled latency of one tensor-parallel decode step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TpDecodeEstimate {
    /// GPUs in the tensor-parallel group.
    pub k: usize,
    /// Per-GPU weight-read time, seconds.
    pub weight_s: f64,
    /// KV-cache read time (sharded across heads), seconds.
    pub kv_s: f64,
    /// All-reduce communication time, seconds.
    pub comms_s: f64,
    /// Total decode-step latency, seconds.
    pub total_s: f64,
}

impl TpDecodeEstimate {
    /// Fraction of the step spent communicating.
    #[must_use]
    pub fn comms_fraction(&self) -> f64 {
        self.comms_s / self.total_s
    }
}

/// Estimates one decode step of a transformer under `k`-way tensor
/// parallelism at `batch` sequences with `kv_len`-token caches.
///
/// Decode is memory-bound, so the step time is weight traffic + KV traffic
/// at HBM bandwidth (each sharded `1/k`) plus two all-reduces per layer of
/// the `batch × d_model` activations.
///
/// # Panics
///
/// Panics if `k == 0`.
#[must_use]
pub fn tp_decode_step(
    cfg: &TransformerConfig,
    kv_len: usize,
    batch: usize,
    k: usize,
    spec: &DeviceSpec,
) -> TpDecodeEstimate {
    assert!(k > 0, "need at least one GPU");
    let weight_bytes = 2 * cfg.approx_params();
    let kv_bytes = (cfg.layers * 2 * kv_len * cfg.d_model * 2 * batch) as u64;
    let eff_bw = 0.85 * spec.hbm_bytes_per_sec();
    let weight_s = weight_bytes as f64 / k as f64 / eff_bw;
    let kv_s = kv_bytes as f64 / k as f64 / eff_bw;
    let allreduce_bytes = (batch * cfg.d_model * 2) as u64;
    let comms_s = 2.0 * cfg.layers as f64 * allreduce_time_s(allreduce_bytes, k, spec);
    TpDecodeEstimate { k, weight_s, kv_s, comms_s, total_s: weight_s + kv_s + comms_s }
}

/// Sweeps tensor-parallel widths for a decode step.
#[must_use]
pub fn tp_sweep(
    cfg: &TransformerConfig,
    kv_len: usize,
    batch: usize,
    widths: &[usize],
    spec: &DeviceSpec,
) -> Vec<TpDecodeEstimate> {
    widths.iter().map(|&k| tp_decode_step(cfg, kv_len, batch, k, spec)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parti_decoder() -> TransformerConfig {
        TransformerConfig {
            layers: 40,
            d_model: 4096,
            heads: 32,
            d_ff: 16384,
            gated_ffn: false,
            vocab: 8192,
            cross_attention: true,
            context_len: 128,
            context_dim: 4096,
        }
    }

    #[test]
    fn allreduce_zero_for_single_gpu() {
        let spec = DeviceSpec::a100_80gb();
        assert_eq!(allreduce_time_s(1 << 20, 1, &spec), 0.0);
        assert!(allreduce_time_s(1 << 20, 2, &spec) > 0.0);
    }

    #[test]
    fn allreduce_latency_floor() {
        // Tiny payloads are latency-bound: 2(k-1) hops.
        let spec = DeviceSpec::a100_80gb();
        let t = allreduce_time_s(8, 4, &spec);
        assert!(t >= 6.0 * spec.nvlink_latency_us * 1e-6);
    }

    #[test]
    fn two_way_tp_nearly_halves_decode() {
        let spec = DeviceSpec::a100_80gb();
        let cfg = parti_decoder();
        let t1 = tp_decode_step(&cfg, 512, 1, 1, &spec);
        let t2 = tp_decode_step(&cfg, 512, 1, 2, &spec);
        let speedup = t1.total_s / t2.total_s;
        assert!((1.5..2.05).contains(&speedup), "2-way speedup {speedup}");
    }

    #[test]
    fn diminishing_returns_at_high_widths() {
        // Comms latency grows with k while weight shards shrink.
        let spec = DeviceSpec::a100_80gb();
        let cfg = parti_decoder();
        let sweep = tp_sweep(&cfg, 512, 1, &[1, 2, 4, 8, 16], &spec);
        let marginal = |i: usize| sweep[i - 1].total_s / sweep[i].total_s;
        assert!(marginal(1) > marginal(4), "early gains beat late gains");
        // Comms fraction rises monotonically with width.
        for w in sweep.windows(2) {
            assert!(w[1].comms_fraction() >= w[0].comms_fraction() - 1e-12);
        }
    }

    #[test]
    fn kv_traffic_scales_with_cache_and_batch() {
        let spec = DeviceSpec::a100_80gb();
        let cfg = parti_decoder();
        let small = tp_decode_step(&cfg, 128, 1, 2, &spec);
        let long = tp_decode_step(&cfg, 1024, 1, 2, &spec);
        let batched = tp_decode_step(&cfg, 128, 8, 2, &spec);
        assert!(long.kv_s > 7.0 * small.kv_s);
        assert!(batched.kv_s > 7.0 * small.kv_s);
        assert_eq!(long.weight_s, small.weight_s, "weights independent of kv");
    }

    #[test]
    fn faster_interconnect_cuts_comms() {
        let cfg = parti_decoder();
        let a100 = tp_decode_step(&cfg, 512, 1, 8, &DeviceSpec::a100_80gb());
        let h100 = tp_decode_step(&cfg, 512, 1, 8, &DeviceSpec::h100_80gb());
        assert!(h100.comms_s < a100.comms_s);
    }
}
