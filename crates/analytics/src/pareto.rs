//! Quality/size landscape and Pareto frontier (Fig. 4).

use mmg_models::ModelRecord;

/// A point on the Fig. 4 scatter with its frontier membership.
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoPoint {
    /// The model.
    pub record: ModelRecord,
    /// Whether the model is Pareto-optimal (no other model has both lower
    /// FID and fewer parameters).
    pub on_frontier: bool,
}

/// Whether `a` dominates `b` (better or equal on both axes, strictly
/// better on at least one; both axes minimize).
#[must_use]
pub fn dominates(a: &ModelRecord, b: &ModelRecord) -> bool {
    let le = a.fid <= b.fid && a.params_b <= b.params_b;
    let lt = a.fid < b.fid || a.params_b < b.params_b;
    le && lt
}

/// Classifies every record by frontier membership.
#[must_use]
pub fn frontier(records: &[ModelRecord]) -> Vec<ParetoPoint> {
    records
        .iter()
        .map(|r| ParetoPoint {
            record: r.clone(),
            on_frontier: !records.iter().any(|other| dominates(other, r)),
        })
        .collect()
}

/// The frontier members sorted by parameter count (the curve as plotted).
#[must_use]
pub fn frontier_curve(records: &[ModelRecord]) -> Vec<ModelRecord> {
    let mut on: Vec<ModelRecord> = frontier(records)
        .into_iter()
        .filter(|p| p.on_frontier)
        .map(|p| p.record)
        .collect();
    on.sort_by(|a, b| a.params_b.total_cmp(&b.params_b));
    on
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmg_models::{registry, ArchClass};

    fn rec(name: &'static str, params_b: f64, fid: f64) -> ModelRecord {
        ModelRecord { name, arch: ArchClass::DiffusionLatent, params_b, fid, open_source: true }
    }

    #[test]
    fn dominance_is_strict() {
        let a = rec("a", 1.0, 10.0);
        let b = rec("b", 2.0, 12.0);
        assert!(dominates(&a, &b));
        assert!(!dominates(&b, &a));
        assert!(!dominates(&a, &a), "no self-domination");
    }

    #[test]
    fn frontier_on_toy_data() {
        let records = vec![rec("good", 1.0, 10.0), rec("bad", 2.0, 12.0), rec("big", 5.0, 8.0)];
        let f = frontier(&records);
        assert!(f[0].on_frontier);
        assert!(!f[1].on_frontier, "dominated by 'good'");
        assert!(f[2].on_frontier, "best FID despite size");
    }

    #[test]
    fn paper_pareto_models_are_on_frontier() {
        // Fig. 4: Imagen, Stable Diffusion and Parti sit on the frontier.
        let f = frontier(&registry());
        for name in ["StableDiffusion", "Imagen", "Parti"] {
            let p = f.iter().find(|p| p.record.name == name).unwrap();
            assert!(p.on_frontier, "{name} should be Pareto-optimal");
        }
        // DALL-E (27.5 FID at 12B) is clearly dominated.
        let dalle = f.iter().find(|p| p.record.name == "DALL-E").unwrap();
        assert!(!dalle.on_frontier);
    }

    #[test]
    fn curve_sorted_and_fid_decreasing() {
        let c = frontier_curve(&registry());
        assert!(c.len() >= 3);
        for w in c.windows(2) {
            assert!(w[0].params_b <= w[1].params_b);
            // Along a minimizing frontier, more params must buy better FID.
            assert!(w[0].fid >= w[1].fid, "{} -> {}", w[0].name, w[1].name);
        }
    }
}
