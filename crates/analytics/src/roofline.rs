//! Roofline placement of the model suite (Fig. 5).
//!
//! Following the paper, arithmetic intensity is the ratio of inference
//! FLOPs to required model capacity — denoising loops re-read the same
//! weights tens of times, which is exactly why diffusion models land in
//! the compute-bound region while transformer TTI models at low batch are
//! memory-bandwidth bound.

use mmg_gpu::{DeviceSpec, Roofline, RooflinePoint};
use mmg_models::{suite, ModelId};

/// Places every suite model on the device's roofline.
#[must_use]
pub fn suite_roofline(spec: &DeviceSpec) -> Vec<RooflinePoint> {
    ModelId::ALL.iter().map(|&id| model_roofline(id, spec)).collect()
}

/// The roofline point for one model.
#[must_use]
pub fn model_roofline(id: ModelId, spec: &DeviceSpec) -> RooflinePoint {
    let roof = Roofline::new(spec.clone());
    let p = suite::build(id);
    roof.place(p.name.clone(), p.total_flops(), p.weight_bytes_read())
}

/// Arithmetic intensity of the *decode phase* alone for an autoregressive
/// model: one token's FLOPs per weight fetch — the "low batch size" point
/// the paper plots for transformer TTI models.
#[must_use]
pub fn decode_phase_intensity(id: ModelId) -> Option<f64> {
    let p = suite::build(id);
    let decode: Vec<_> =
        p.stages.iter().filter(|s| s.name.starts_with("decode")).collect();
    if decode.is_empty() {
        return None;
    }
    let flops: u64 = decode.iter().map(|s| s.repeats as u64 * s.graph.total_flops()).sum();
    let bytes: u64 =
        decode.iter().map(|s| 2 * s.repeats as u64 * s.graph.param_count()).sum();
    Some(flops as f64 / bytes.max(1) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(points: &[RooflinePoint], name: &str) -> RooflinePoint {
        points.iter().find(|p| p.label == name).cloned().unwrap()
    }

    #[test]
    fn diffusion_models_are_compute_bound() {
        // Fig. 5: diffusion models fall in the compute-bound region.
        let pts = suite_roofline(&DeviceSpec::a100_80gb());
        for name in ["StableDiffusion", "Imagen", "ProdImage"] {
            assert!(point(&pts, name).compute_bound, "{name} should be compute-bound");
        }
    }

    #[test]
    fn parti_is_memory_bound() {
        // Fig. 5: autoregressive transformer TTI at low batch sits under
        // the ridge.
        let pts = suite_roofline(&DeviceSpec::a100_80gb());
        assert!(!point(&pts, "Parti").compute_bound);
        assert!(point(&pts, "Parti").intensity_flops_per_byte < 20.0);
    }

    #[test]
    fn decode_phase_intensity_is_near_one() {
        let parti = decode_phase_intensity(ModelId::Parti).unwrap();
        assert!((0.5..20.0).contains(&parti), "parti decode intensity {parti}");
        assert!(decode_phase_intensity(ModelId::StableDiffusion).is_none());
    }

    #[test]
    fn diffusion_intensity_up_to_100x_llm_decode() {
        // Section I: diffusion TTI arithmetic intensity exceeds LLMs by up
        // to ~100x — against the LLM's decode phase, its deployment-
        // critical regime.
        let pts = suite_roofline(&DeviceSpec::a100_80gb());
        let sd = point(&pts, "StableDiffusion").intensity_flops_per_byte;
        let llama_decode = decode_phase_intensity(ModelId::Llama2).unwrap();
        let ratio = sd / llama_decode;
        assert!((30.0..1000.0).contains(&ratio), "intensity ratio {ratio}");
    }

    #[test]
    fn every_model_has_a_point() {
        assert_eq!(suite_roofline(&DeviceSpec::a100_80gb()).len(), 8);
    }
}
