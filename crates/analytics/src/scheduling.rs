//! Denoising-pod co-scheduling (Section V's proposed optimization).
//!
//! The paper suggests: *"different denoising steps of the diffusion process
//! could be staggered to allow for maximum memory bandwidth utilization at
//! any one time… certain steps could potentially be grouped together into
//! pods."* This module quantifies that headroom: when several independent
//! generation requests run concurrently with complementary phases, the
//! device can overlap one stream's memory-bound operators (norms,
//! elementwise, attention score streaming) with another's compute-bound
//! operators (convolution, GEMM).
//!
//! The estimate is resource-bound based: a serial stream pays
//! `Σ max(cᵢ, mᵢ)` per step, while `k` perfectly staggered streams are
//! bounded below by `max(Σc, Σm, Σoverhead)` per stream — the compute and
//! memory pipes each only have to absorb their own totals.

use mmg_gpu::multistream::{staggered_speedup, StreamKernel};
use mmg_profiler::Timeline;

/// Resource totals and co-scheduling estimate for one timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PodEstimate {
    /// Serial duration (what one stream takes alone).
    pub serial_s: f64,
    /// Total compute-pipe seconds.
    pub compute_s: f64,
    /// Total memory-pipe seconds.
    pub memory_s: f64,
    /// Total fixed overhead seconds (launches + floors), which do not
    /// overlap between streams.
    pub overhead_s: f64,
    /// Per-stream lower-bound duration under perfect staggering.
    pub pod_s: f64,
}

impl PodEstimate {
    /// Throughput speedup from pod scheduling (≥ 1).
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.serial_s / self.pod_s
    }

    /// Fraction of serial time the busier pipe is actually busy — how far
    /// from balanced the workload is (1.0 = one pipe saturated already,
    /// no staggering headroom).
    #[must_use]
    pub fn dominant_pipe_utilization(&self) -> f64 {
        self.compute_s.max(self.memory_s) / self.serial_s
    }
}

/// Estimates pod-scheduling headroom for a profiled timeline.
///
/// # Panics
///
/// Panics on an empty timeline.
#[must_use]
pub fn pod_estimate(timeline: &Timeline) -> PodEstimate {
    assert!(!timeline.events().is_empty(), "cannot schedule an empty timeline");
    let mut compute = 0.0f64;
    let mut memory = 0.0f64;
    let mut overhead = 0.0f64;
    let mut serial = 0.0f64;
    for ev in timeline.events() {
        for k in ev.kernels.iter() {
            compute += k.compute_s;
            memory += k.memory_s;
            overhead += k.time_s - k.compute_s.max(k.memory_s);
            serial += k.time_s;
        }
    }
    PodEstimate {
        serial_s: serial,
        compute_s: compute,
        memory_s: memory,
        overhead_s: overhead,
        pod_s: compute.max(memory).max(overhead),
    }
}

/// Converts a profiled timeline to a stream of resource demands for the
/// event-driven co-scheduling simulation.
#[must_use]
pub fn to_stream(timeline: &Timeline) -> Vec<StreamKernel> {
    timeline
        .events()
        .iter()
        .flat_map(|ev| ev.kernels.iter())
        .map(|k| StreamKernel {
            compute_s: k.compute_s,
            memory_s: k.memory_s,
            overhead_s: (k.time_s - k.compute_s.max(k.memory_s)).max(0.0),
        })
        .collect()
}

/// Simulated throughput speedup of `k` phase-staggered pods of this
/// timeline, from the event-driven multistream model (versus the
/// analytical bound of [`pod_estimate`]).
///
/// # Panics
///
/// Panics on an empty timeline or `k == 0`.
#[must_use]
pub fn simulated_pod_speedup(timeline: &Timeline, k: usize) -> f64 {
    staggered_speedup(&to_stream(timeline), k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmg_attn::AttnImpl;
    use mmg_gpu::DeviceSpec;
    use mmg_graph::{Graph, Op};
    use mmg_models::suite::stable_diffusion::{StableDiffusionConfig, pipeline};
    use mmg_profiler::Profiler;

    fn sd_unet_timeline() -> Timeline {
        let p = pipeline(&StableDiffusionConfig::default());
        let prof = p.profile(&Profiler::new(DeviceSpec::a100_80gb(), AttnImpl::Flash));
        prof.stage("unet_step").unwrap().timeline.clone()
    }

    #[test]
    fn pod_speedup_within_bounds() {
        let e = pod_estimate(&sd_unet_timeline());
        let s = e.speedup();
        assert!((1.0..2.5).contains(&s), "speedup {s}");
    }

    #[test]
    fn diffusion_has_real_headroom() {
        // The UNet mixes compute-bound convs with memory-bound norms —
        // the exact imbalance Section V proposes exploiting.
        let e = pod_estimate(&sd_unet_timeline());
        assert!(e.speedup() > 1.1, "speedup {}", e.speedup());
        assert!(e.dominant_pipe_utilization() < 0.95);
    }

    #[test]
    fn pure_memory_workload_has_no_headroom() {
        let mut g = Graph::new();
        for i in 0..8 {
            g.push(format!("n{i}"), Op::LayerNorm { rows: 1 << 14, cols: 1024 });
        }
        let t = Profiler::new(DeviceSpec::a100_80gb(), AttnImpl::Flash).profile(&g);
        let e = pod_estimate(&t);
        assert!(e.speedup() < 1.1, "speedup {}", e.speedup());
    }

    #[test]
    fn accounting_is_consistent() {
        let e = pod_estimate(&sd_unet_timeline());
        assert!(e.pod_s <= e.serial_s + 1e-12);
        assert!(e.compute_s > 0.0 && e.memory_s > 0.0);
        // serial = Σ max(c, m, floor) + overhead ≥ max pipe totals.
        assert!(e.serial_s >= e.compute_s.max(e.memory_s));
    }

    #[test]
    #[should_panic(expected = "empty timeline")]
    fn empty_timeline_panics() {
        let _ = pod_estimate(&Timeline::default());
    }

    #[test]
    fn simulated_speedup_between_one_and_bound() {
        // The event-driven simulation must stay between "no gain" and the
        // analytical resource bound.
        let t = sd_unet_timeline();
        let bound = pod_estimate(&t).speedup();
        for k in [2usize, 4] {
            let sim = simulated_pod_speedup(&t, k);
            assert!(sim >= 1.0 - 1e-9, "k={k}: sim {sim}");
            assert!(sim <= bound + 1e-6, "k={k}: sim {sim} exceeds bound {bound}");
        }
    }

    #[test]
    fn simulation_approaches_bound_with_more_pods() {
        let t = sd_unet_timeline();
        let bound = pod_estimate(&t).speedup();
        let sim4 = simulated_pod_speedup(&t, 4);
        assert!(sim4 > 0.6 * bound, "sim4 {sim4} vs bound {bound}");
    }
}
