//! Section V's analytical framework: sequence length, similarity-matrix
//! memory, and the `O(L⁴)` image-size law for Diffusion models.
//!
//! The paper models a UNet whose latent is downsampled by a factor `d` at
//! each of `unet_depth` stages. Sequence length for self-attention at
//! stage `n` is `HL·WL / d²ⁿ`… the formulas below implement the exact
//! expressions in Section V, and the test suite cross-checks them against
//! the traced simulation of the real UNet graphs.

/// The analytical diffusion-attention model of Section V.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiffusionSeqModel {
    /// Latent height `H_L`.
    pub h_l: usize,
    /// Latent width `W_L`.
    pub w_l: usize,
    /// Encoded text prompt length (`text_encode`).
    pub text_encode: usize,
    /// Spatial downsampling factor per UNet stage (`d`).
    pub down_factor: usize,
    /// Number of downsampling stages (`unet_depth`).
    pub unet_depth: usize,
    /// Bytes per element (2 for FP16, as the paper assumes).
    pub elem_bytes: usize,
}

impl DiffusionSeqModel {
    /// A Stable-Diffusion-shaped instance for a given output image size
    /// (8x VAE downsampling to latent space, 4-level UNet, factor-2).
    #[must_use]
    pub fn stable_diffusion(image_size: usize) -> Self {
        DiffusionSeqModel {
            h_l: image_size / 8,
            w_l: image_size / 8,
            text_encode: 77,
            down_factor: 2,
            unet_depth: 3,
            elem_bytes: 2,
        }
    }

    /// Latent pixels at UNet stage `n` (stage 0 = full latent):
    /// `H_L·W_L / d^(2n)` — the paper writes the per-axis factor `dⁿ`.
    #[must_use]
    pub fn latent_pixels_at(&self, stage: usize) -> u64 {
        let f = self.down_factor.pow(stage as u32) as u64;
        (self.h_l as u64 / f) * (self.w_l as u64 / f)
    }

    /// Self-attention sequence length at stage `n`
    /// (`(H_L·W_L) × (H_L·W_L)` similarity ⇒ sequence = `H_L·W_L/d^2n`).
    #[must_use]
    pub fn self_attn_seq(&self, stage: usize) -> u64 {
        self.latent_pixels_at(stage)
    }

    /// Memory (bytes) of the similarity matrices of one self + one cross
    /// attention at stage `n`:
    /// `2·(HW)·(HW) + 2·(HW)·text_encode` (FP16).
    #[must_use]
    pub fn similarity_bytes_at(&self, stage: usize) -> u64 {
        let hw = self.latent_pixels_at(stage);
        self.elem_bytes as u64 * hw * (hw + self.text_encode as u64)
    }

    /// The paper's cumulative similarity-matrix memory over the UNet:
    /// the down path visits stages `0 .. unet_depth-1` (doubled: the up
    /// path mirrors them) plus the bottleneck stage once.
    #[must_use]
    pub fn cumulative_similarity_bytes(&self) -> u64 {
        let down_and_up: u64 =
            (0..self.unet_depth).map(|n| 2 * self.similarity_bytes_at(n)).sum();
        down_and_up + self.similarity_bytes_at(self.unet_depth)
    }

    /// Maximum over minimum sequence length across the UNet — the
    /// "sequence length varies by up to 4x" observation (per axis the
    /// factor is `d^depth`; the visible Fig. 7 band for SD spans 4x).
    #[must_use]
    pub fn seq_variation(&self) -> f64 {
        self.self_attn_seq(0) as f64 / self.self_attn_seq(self.unet_depth) as f64
    }
}

/// Fits the exponent `k` in `memory ∝ sizᵏ` from two measurements —
/// used to verify the `O(L⁴)` law.
#[must_use]
pub fn scaling_exponent(size_a: f64, mem_a: f64, size_b: f64, mem_b: f64) -> f64 {
    (mem_b / mem_a).ln() / (size_b / size_a).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sd_512_top_sequence_is_4096() {
        let m = DiffusionSeqModel::stable_diffusion(512);
        assert_eq!(m.self_attn_seq(0), 4096);
        assert_eq!(m.self_attn_seq(1), 1024);
        assert_eq!(m.self_attn_seq(3), 64);
    }

    #[test]
    fn similarity_formula_matches_paper() {
        let m = DiffusionSeqModel::stable_diffusion(512);
        // 2·(HW)² + 2·(HW)·text at stage 0.
        let hw = 4096u64;
        assert_eq!(m.similarity_bytes_at(0), 2 * hw * hw + 2 * hw * 77);
    }

    #[test]
    fn sequence_scales_quadratically_with_image_size() {
        let a = DiffusionSeqModel::stable_diffusion(256);
        let b = DiffusionSeqModel::stable_diffusion(512);
        assert_eq!(b.self_attn_seq(0) / a.self_attn_seq(0), 4);
    }

    #[test]
    fn memory_scales_as_l4() {
        // Section V: memory is O(L⁴) in the image/latent edge.
        let a = DiffusionSeqModel::stable_diffusion(256);
        let b = DiffusionSeqModel::stable_diffusion(1024);
        let k = scaling_exponent(
            256.0,
            a.cumulative_similarity_bytes() as f64,
            1024.0,
            b.cumulative_similarity_bytes() as f64,
        );
        assert!((3.7..4.1).contains(&k), "exponent {k}");
    }

    #[test]
    fn text_term_matters_only_at_small_sizes() {
        // At large latents the (HW)² term dominates the text term.
        let m = DiffusionSeqModel::stable_diffusion(1024);
        let hw = m.latent_pixels_at(0);
        let self_part = 2 * hw * hw;
        assert!(self_part as f64 / m.similarity_bytes_at(0) as f64 > 0.99);
    }

    #[test]
    fn variation_covers_unet_depth() {
        let m = DiffusionSeqModel::stable_diffusion(512);
        // Full-depth variation is d^(2·depth) = 64; the visible Fig. 7
        // band (one downsample level shallower) is 4x per two stages.
        assert_eq!(m.seq_variation(), 64.0);
        let shallow = DiffusionSeqModel { unet_depth: 1, ..m };
        assert_eq!(shallow.seq_variation(), 4.0);
    }

    #[test]
    fn exponent_fit_recovers_known_power() {
        let k = scaling_exponent(2.0, 8.0, 4.0, 64.0);
        assert!((k - 3.0).abs() < 1e-12);
    }
}
