//! Request-serving simulation: latency under load.
//!
//! The paper closes on "designing efficient and *deployable* systems for
//! emerging TTI/TTV workloads". Deployment means queueing: image requests
//! arrive stochastically and share one device. This module keeps the
//! classical M/D/1 view — Poisson arrivals, one FIFO server, fixed
//! service time — but the queue itself now runs on the `mmg-serve`
//! discrete-event simulator: [`simulate_mdl`] is a thin adapter over
//! [`mmg_serve::simulate`] with a single GPU, a batching-free service
//! curve, and the same seeded arrival stream as before. The full
//! multi-GPU/batching/SLO machinery lives in `mmg-serve`; this module
//! remains the analytical baseline (its M/D/1 mean-wait closed form is
//! the theory anchor the DES is tested against).

use mmg_models::ModelId;
use mmg_serve::{
    simulate, ArrivalProcess, RequestMix, ScenarioCfg, SchedulerKind, ServiceCurve,
    ServiceProfile, SloSpec,
};
use mmg_telemetry::Registry;

/// One simulated request's outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestOutcome {
    /// Arrival time, seconds.
    pub arrival_s: f64,
    /// Queueing delay before service, seconds.
    pub wait_s: f64,
    /// Total latency (wait + service), seconds.
    pub latency_s: f64,
}

/// Latency summary of a serving run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServingSummary {
    /// Offered load (arrival rate × service time).
    pub utilization: f64,
    /// Mean latency, seconds.
    pub mean_s: f64,
    /// Median latency, seconds.
    pub p50_s: f64,
    /// 99th-percentile latency, seconds.
    pub p99_s: f64,
    /// Completed requests.
    pub completed: usize,
}

/// Simulates `n` Poisson arrivals at `rate_rps` into a FIFO single server
/// with deterministic `service_s` per request (an M/D/1 queue), seeded for
/// reproducibility.
///
/// # Panics
///
/// Panics if `rate_rps` or `service_s` are not positive, or `n == 0`.
#[must_use]
pub fn simulate_mdl(rate_rps: f64, service_s: f64, n: usize, seed: u64) -> Vec<RequestOutcome> {
    simulate_mdl_with_registry(rate_rps, service_s, n, seed, &mmg_telemetry::global())
}

/// Like [`simulate_mdl`], recording serving telemetry to a specific
/// registry: the `serving_queue_depth` gauge is sampled at each arrival
/// (requests in system, including the one in service — the *exact*
/// count of outstanding finish times, not the old
/// `(wait/service).ceil()+1` approximation), and every request's wait
/// and total latency land in the `serving_wait_s` / `serving_latency_s`
/// histograms. `serving_requests_total` counts completions.
///
/// # Panics
///
/// Panics if `rate_rps` or `service_s` are not positive, or `n == 0`.
#[must_use]
pub fn simulate_mdl_with_registry(
    rate_rps: f64,
    service_s: f64,
    n: usize,
    seed: u64,
    registry: &Registry,
) -> Vec<RequestOutcome> {
    assert!(rate_rps > 0.0 && service_s > 0.0 && n > 0, "degenerate serving parameters");
    // The model identity is irrelevant to an M/D/1 queue; SD stands in.
    let model = ModelId::StableDiffusion;
    let profile = ServiceProfile::new(vec![ServiceCurve::constant(model, service_s)]);
    let cfg = ScenarioCfg {
        max_requests: Some(n as u64),
        ..ScenarioCfg::new(
            1,
            RequestMix::single(model),
            ArrivalProcess::poisson(rate_rps),
            SchedulerKind::Fifo,
            SloSpec::None,
            f64::INFINITY,
            seed,
        )
    };
    // The DES records its own serve_* metrics; the legacy serving_*
    // names are emitted here, against the caller's registry.
    let result = simulate(&cfg, &profile, &Registry::new());
    let queue_depth = registry.gauge("serving_queue_depth");
    let requests = registry.counter("serving_requests_total");
    let buckets = mmg_telemetry::latency_buckets_s();
    let wait_hist = registry.histogram("serving_wait_s", &buckets);
    let latency_hist = registry.histogram("serving_latency_s", &buckets);
    result
        .records_by_arrival()
        .into_iter()
        .map(|rec| {
            queue_depth.set(rec.depth_at_arrival as f64);
            requests.inc();
            wait_hist.observe(rec.wait_s());
            latency_hist.observe(rec.latency_s());
            RequestOutcome {
                arrival_s: rec.arrival_s,
                wait_s: rec.wait_s(),
                latency_s: rec.latency_s(),
            }
        })
        .collect()
}

/// Summarizes outcomes at the given offered utilization.
///
/// # Panics
///
/// Panics on an empty outcome list.
#[must_use]
pub fn summarize(outcomes: &[RequestOutcome], utilization: f64) -> ServingSummary {
    assert!(!outcomes.is_empty(), "no outcomes to summarize");
    let mut lat: Vec<f64> = outcomes.iter().map(|o| o.latency_s).collect();
    lat.sort_by(f64::total_cmp);
    ServingSummary {
        utilization,
        mean_s: lat.iter().sum::<f64>() / lat.len() as f64,
        p50_s: mmg_telemetry::quantile_sorted(&lat, 0.50).expect("non-empty outcomes"),
        p99_s: mmg_telemetry::quantile_sorted(&lat, 0.99).expect("non-empty outcomes"),
        completed: lat.len(),
    }
}

/// Sweeps offered load for a model with per-request service time
/// `service_s`, optionally dividing the *effective* service time by a
/// pod-scheduling throughput factor (Section V): the server admits
/// staggered pods, so sustained throughput rises even though a lone
/// request's latency does not improve.
#[must_use]
pub fn load_sweep(
    service_s: f64,
    pod_factor: f64,
    utilizations: &[f64],
    requests: usize,
    seed: u64,
) -> Vec<ServingSummary> {
    let effective = service_s / pod_factor.max(1.0);
    utilizations
        .iter()
        .map(|&u| {
            let rate = u / effective;
            let outcomes = simulate_mdl(rate, effective, requests, seed);
            summarize(&outcomes, u)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn light_load_has_no_queueing() {
        let o = simulate_mdl(0.1, 0.3, 2000, 1);
        let s = summarize(&o, 0.03);
        assert!(s.mean_s < 0.33, "mean {}", s.mean_s);
        assert!(s.p99_s < 0.6);
    }

    #[test]
    fn heavy_load_queues() {
        let light = summarize(&simulate_mdl(0.5, 0.3, 4000, 2), 0.15);
        let heavy = summarize(&simulate_mdl(3.0, 0.3, 4000, 2), 0.9);
        assert!(heavy.p99_s > 3.0 * light.p99_s, "p99 {} vs {}", heavy.p99_s, light.p99_s);
        assert!(heavy.mean_s > light.mean_s);
    }

    #[test]
    fn matches_mdl_theory_at_moderate_load() {
        // M/D/1 mean wait = ρ·s / (2(1-ρ)).
        let (rho, s) = (0.5, 0.3);
        let outcomes = simulate_mdl(rho / s, s, 60_000, 3);
        let mean_wait: f64 =
            outcomes.iter().map(|o| o.wait_s).sum::<f64>() / outcomes.len() as f64;
        let theory = rho * s / (2.0 * (1.0 - rho));
        assert!(
            (mean_wait - theory).abs() / theory < 0.15,
            "wait {mean_wait} vs theory {theory}"
        );
    }

    #[test]
    fn pod_factor_extends_the_load_curve() {
        // At the same offered utilization the percentiles match (by
        // construction), but the pod server sustains a higher absolute
        // request rate — compare latencies at a fixed arrival rate instead.
        let service = 0.348; // SD end-to-end on the simulated A100
        let rate = 2.5; // requests/s — past the plain server's capacity
        let plain = summarize(&simulate_mdl(rate, service, 3000, 4), rate * service);
        let pods = summarize(&simulate_mdl(rate, service / 1.4, 3000, 4), rate * service / 1.4);
        // The exact ratio is sample-path dependent (ρ≈0.87 for the plain
        // server), so assert a conservative 3x separation.
        assert!(plain.p99_s > 3.0 * pods.p99_s, "{} vs {}", plain.p99_s, pods.p99_s);
    }

    #[test]
    fn serving_telemetry_is_recorded() {
        let registry = mmg_telemetry::Registry::new();
        let outcomes = simulate_mdl_with_registry(2.0, 0.3, 500, 11, &registry);
        assert_eq!(registry.counter("serving_requests_total").get(), 500);
        let buckets = mmg_telemetry::latency_buckets_s();
        let latency = registry.histogram("serving_latency_s", &buckets);
        assert_eq!(latency.count(), 500);
        // p50 of the histogram should bracket the empirical median.
        let s = summarize(&outcomes, 0.6);
        let p50 = latency.quantile(0.50);
        assert!(
            p50 > s.p50_s * 0.5 && p50 < s.p50_s * 2.0,
            "histogram p50 {p50} vs exact {}",
            s.p50_s
        );
        assert!(registry.gauge("serving_queue_depth").get() >= 1.0);
    }

    #[test]
    fn queue_depth_gauge_is_exact() {
        // Fast arrivals into a slow server: by the n-th arrival, nothing
        // has finished, so the exact depth-seen-by-arrival is n — where
        // the old (wait/service).ceil()+1 formula could be off by one at
        // service boundaries.
        let registry = mmg_telemetry::Registry::new();
        let n = 20;
        let _ = simulate_mdl_with_registry(1000.0, 10.0, n, 5, &registry);
        // Final gauge value = depth at the last arrival.
        let depth = registry.gauge("serving_queue_depth").get();
        assert_eq!(depth, n as f64, "last arrival must see all {n} requests in system");
    }

    #[test]
    fn sweep_is_monotone_in_load() {
        let sweep = load_sweep(0.3, 1.0, &[0.2, 0.5, 0.8, 0.95], 4000, 5);
        for w in sweep.windows(2) {
            assert!(w[1].mean_s >= w[0].mean_s);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        assert_eq!(simulate_mdl(1.0, 0.2, 100, 7), simulate_mdl(1.0, 0.2, 100, 7));
        assert_ne!(simulate_mdl(1.0, 0.2, 100, 7), simulate_mdl(1.0, 0.2, 100, 8));
    }
}
