//! Temporal-attention scaling projection (Fig. 13).
//!
//! The paper's benchmark (built on the TimeSformer formulation) counts the
//! FLOPs of the two attention matmuls while sweeping the number of frames:
//! spatial attention grows *linearly* in frames (frames sit in the batch),
//! temporal attention grows *quadratically* (frames are the sequence), so
//! a crossover frame count exists beyond which temporal attention
//! dominates — and raising the image resolution pushes that crossover out.

use mmg_attn::video::VideoAttentionKind;

/// One swept point of the Fig. 13 benchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrameSweepPoint {
    /// Frame count.
    pub frames: usize,
    /// Spatial-attention FLOPs (two matmuls).
    pub spatial_flops: u64,
    /// Temporal-attention FLOPs (two matmuls).
    pub temporal_flops: u64,
}

/// Sweeps frame counts for a clip at `res`×`res` with `channels` channels
/// and `heads` heads.
#[must_use]
pub fn frame_sweep(
    frames: &[usize],
    res: usize,
    channels: usize,
    heads: usize,
) -> Vec<FrameSweepPoint> {
    frames
        .iter()
        .map(|&f| FrameSweepPoint {
            frames: f,
            spatial_flops: VideoAttentionKind::Spatial
                .attention_shape(f, channels, res, res, heads)
                .matmul_flops(),
            temporal_flops: VideoAttentionKind::Temporal
                .attention_shape(f, channels, res, res, heads)
                .matmul_flops(),
        })
        .collect()
}

/// The smallest frame count at which temporal FLOPs exceed spatial FLOPs:
/// equality holds at `frames = H·W`, so the crossover is `H·W + 1` in the
/// continuous model. Computed by scan so it stays correct if the cost
/// model changes.
#[must_use]
pub fn crossover_frames(res: usize, channels: usize, heads: usize, max_frames: usize) -> Option<usize> {
    (2..=max_frames).find(|&f| {
        let p = frame_sweep(&[f], res, channels, heads);
        p[0].temporal_flops > p[0].spatial_flops
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spatial_linear_temporal_quadratic() {
        let pts = frame_sweep(&[8, 16, 32], 32, 320, 8);
        assert_eq!(pts[2].spatial_flops / pts[0].spatial_flops, 4, "linear in frames");
        assert_eq!(pts[2].temporal_flops / pts[0].temporal_flops, 16, "quadratic in frames");
    }

    #[test]
    fn temporal_cheaper_at_small_frame_counts() {
        // Fig. 13: for small frame counts temporal is the cheaper one.
        let p = &frame_sweep(&[16], 32, 320, 8)[0];
        assert!(p.temporal_flops < p.spatial_flops);
    }

    #[test]
    fn crossover_is_at_pixel_count() {
        // Equality at frames = H·W: for an 8x8 grid the crossover is 65.
        assert_eq!(crossover_frames(8, 64, 8, 1000), Some(65));
    }

    #[test]
    fn higher_resolution_postpones_crossover() {
        // Fig. 13's observation: raising resolution prolongs the
        // crossover point.
        let lo = crossover_frames(8, 64, 8, 100_000).unwrap();
        let hi = crossover_frames(16, 64, 8, 100_000).unwrap();
        assert!(hi > 3 * lo, "{lo} vs {hi}");
    }

    #[test]
    fn no_crossover_within_budget() {
        assert_eq!(crossover_frames(64, 320, 8, 64), None, "64x64 needs 4097 frames");
    }
}
