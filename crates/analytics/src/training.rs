//! First-principles training-resource model (grounds Fig. 1).
//!
//! The paper's Fig. 1 reports that TTI/TTV training jobs use **14x more
//! GPUs per model parameter** than LLMs and run at **~1.4x higher memory
//! utilization**. [`crate::fleet`] reproduces the *aggregation* over a
//! synthetic fleet; this module goes further and *derives* the effect:
//!
//! * An LLM's GPU count is set by total training FLOPs
//!   (`6 · params · tokens`), which scale with its (large) parameter
//!   count — so GPUs **per parameter** stay low.
//! * A TTI/TTV model is small, but every training sample is an image (or
//!   clip): its per-sample FLOPs and stored activations are set by spatial
//!   resolution, not parameter count. Dataset sizes are billions of
//!   images. GPUs per parameter come out an order of magnitude higher.
//!
//! All per-sample quantities come from the actual suite graphs
//! (`total_flops`, `stored_activation_bytes`) — not hand-entered numbers.
//!
//! The *memory-utilization* half of Fig. 1 is fleet telemetry (what jobs
//! happened to allocate) rather than a first-principles quantity; the
//! synthetic fleet in [`crate::fleet`] carries that aggregate, while this
//! module reports the utilization its allocation policy implies.

use mmg_gpu::DeviceSpec;
use mmg_graph::memory::stored_activation_bytes;
use mmg_graph::Graph;
use mmg_models::blocks::{prefill_graph, unet_step_graph};
use mmg_models::suite::{make_a_video, stable_diffusion};
use mmg_models::TransformerConfig;

use crate::fleet::{JobFamily, TrainingJob};

/// Fraction of stored activations that survive activation checkpointing.
pub const CHECKPOINT_KEEP: f64 = 0.25;

/// Sustained model-FLOPs utilization of LLM training (typical published
/// large-run MFU).
pub const LLM_TRAIN_MFU: f64 = 0.40;

/// Sustained MFU of TTI/TTV training. Diffusion training runs far below
/// LLM MFU: image/video decode and augmentation pipelines, many small
/// kernels (our own Fig. 6 simulation shows diffusion operators sustaining
/// ~30% of peak before any input pipeline), EMA updates and frequent
/// evaluation. Published diffusion runs land in the 5–10% range.
pub const TTI_TRAIN_MFU: f64 = 0.06;

/// Fraction of HBM usable for states + activations (the rest is
/// fragmentation, comms buffers, CUDA context).
pub const USABLE_HBM: f64 = 0.90;

/// Mixed-precision Adam bytes per parameter under full sharding:
/// fp16 weights (2) + fp16 grads (2) + fp32 master/m/v (12).
pub const OPTIMIZER_BYTES_PER_PARAM: u64 = 16;

/// One modelled training job.
#[derive(Debug, Clone)]
pub struct TrainingModel {
    /// Job label.
    pub name: String,
    /// Family for the Fig. 1 split.
    pub family: JobFamily,
    /// Trainable parameters.
    pub params: u64,
    /// Forward FLOPs of one training sample (one sequence / one image /
    /// one clip at one denoising timestep).
    pub fwd_flops_per_sample: u64,
    /// Activation bytes stored for backward, per sample, pre-checkpointing.
    pub stored_act_bytes_per_sample: u64,
    /// Samples seen over the whole run (tokens ÷ seq for LLMs).
    pub dataset_samples: u64,
    /// Wall-clock budget in days.
    pub target_days: f64,
    /// Global batch size in samples.
    pub global_batch: u64,
}

impl TrainingModel {
    /// Builds a training job description from a per-sample graph.
    #[must_use]
    pub fn from_graph(
        name: impl Into<String>,
        family: JobFamily,
        graph: &Graph,
        dataset_samples: u64,
        target_days: f64,
        global_batch: u64,
    ) -> Self {
        TrainingModel {
            name: name.into(),
            family,
            params: graph.param_count(),
            fwd_flops_per_sample: graph.total_flops(),
            stored_act_bytes_per_sample: stored_activation_bytes(graph, 2),
            dataset_samples,
            target_days,
            global_batch,
        }
    }

    /// Total training FLOPs: forward + backward ≈ 3x forward.
    #[must_use]
    pub fn total_train_flops(&self) -> f64 {
        3.0 * self.fwd_flops_per_sample as f64 * self.dataset_samples as f64
    }

    /// Effective training MFU for this job's family.
    #[must_use]
    pub fn mfu(&self) -> f64 {
        match self.family {
            JobFamily::Llm => LLM_TRAIN_MFU,
            JobFamily::TtiTtv => TTI_TRAIN_MFU,
        }
    }

    /// GPUs required by throughput: finish `total_train_flops` within the
    /// wall-clock budget at the family's effective MFU.
    #[must_use]
    pub fn gpus_for_throughput(&self, spec: &DeviceSpec) -> u64 {
        let per_gpu = self.mfu() * spec.peak_fp16_flops() * self.target_days * 86_400.0;
        (self.total_train_flops() / per_gpu).ceil() as u64
    }

    /// GPUs required so the fully-sharded optimizer states plus one
    /// checkpointed microbatch fit in usable HBM.
    #[must_use]
    pub fn gpus_for_memory(&self, spec: &DeviceSpec) -> u64 {
        let capacity = USABLE_HBM * spec.hbm_capacity_gib * (1u64 << 30) as f64;
        let act = CHECKPOINT_KEEP * self.stored_act_bytes_per_sample as f64;
        let states = (self.params * OPTIMIZER_BYTES_PER_PARAM) as f64;
        let budget = capacity - act;
        assert!(budget > 0.0, "{}: one sample's activations exceed HBM", self.name);
        (states / budget).ceil() as u64
    }

    /// Allocated GPUs: the binding constraint, rounded up to full 8-GPU
    /// nodes.
    #[must_use]
    pub fn gpus(&self, spec: &DeviceSpec) -> u64 {
        let n = self.gpus_for_throughput(spec).max(self.gpus_for_memory(spec)).max(8);
        n.div_ceil(8) * 8
    }

    /// Average per-GPU memory utilization at the allocated GPU count:
    /// sharded states plus this GPU's share of the global batch.
    #[must_use]
    pub fn memory_utilization(&self, spec: &DeviceSpec) -> f64 {
        let n = self.gpus(spec);
        let capacity = spec.hbm_capacity_gib * (1u64 << 30) as f64;
        let states = (self.params * OPTIMIZER_BYTES_PER_PARAM) as f64 / n as f64;
        let microbatch = (self.global_batch as f64 / n as f64).ceil().max(1.0);
        let act = CHECKPOINT_KEEP * self.stored_act_bytes_per_sample as f64 * microbatch;
        ((states + act) / capacity).min(0.99)
    }

    /// Converts to a fleet job for the Fig. 1 aggregation.
    #[must_use]
    pub fn as_fleet_job(&self, spec: &DeviceSpec) -> TrainingJob {
        TrainingJob {
            family: self.family,
            params: self.params,
            gpus: self.gpus(spec) as u32,
            memory_util: self.memory_utilization(spec),
        }
    }
}

fn llm(name: &str, layers: usize, d: usize, heads: usize, d_ff: usize, tokens_b: f64) -> TrainingModel {
    let cfg = TransformerConfig {
        layers,
        d_model: d,
        heads,
        d_ff,
        gated_ffn: true,
        vocab: 32000,
        cross_attention: false,
        context_len: 0,
        context_dim: 0,
    };
    let seq = 4096usize;
    let g = prefill_graph(&cfg, seq);
    let samples = (tokens_b * 1e9 / seq as f64) as u64;
    // LLaMA2-style runs: ~3 week budget, 4M-token global batch.
    TrainingModel::from_graph(name, JobFamily::Llm, &g, samples, 21.0, (4_000_000 / seq) as u64)
}

/// The derived fleet: representative LLM runs plus TTI/TTV runs whose
/// per-sample costs come from the suite's own graphs. Dataset sizes and
/// wall-clock budgets follow the cited papers' reported scales.
#[must_use]
pub fn derived_fleet() -> Vec<TrainingModel> {
    let mut jobs = vec![
        llm("llm-7b", 32, 4096, 32, 11008, 2000.0),
        llm("llm-13b", 40, 5120, 40, 13824, 2000.0),
        llm("llm-70b", 80, 8192, 64, 28672, 2000.0),
    ];
    // Stable-Diffusion-style: ~2B image samples (LAION passes), 24 days.
    let sd = stable_diffusion::StableDiffusionConfig::default();
    jobs.push(TrainingModel::from_graph(
        "tti-latent-1b",
        JobFamily::TtiTtv,
        &unet_step_graph(&sd.unet(), sd.latent_res(), 1),
        5_000_000_000,
        14.0,
        2048,
    ));
    // Pixel-space base model at 64x64 (Imagen-style base): ~1B samples.
    let imagen = crate::suite_imagen_base();
    jobs.push(TrainingModel::from_graph(
        "tti-pixel-2b",
        JobFamily::TtiTtv,
        &imagen,
        2_500_000_000,
        21.0,
        2048,
    ));
    // Video model: clips are ~16x an image per sample, smaller datasets.
    let mav = make_a_video::MakeAVideoConfig::default();
    jobs.push(TrainingModel::from_graph(
        "ttv-diffusion-3b",
        JobFamily::TtiTtv,
        &unet_step_graph(&mav.base_unet(), mav.base_res, mav.frames),
        300_000_000,
        21.0,
        512,
    ));
    jobs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::summarize;

    fn spec() -> DeviceSpec {
        DeviceSpec::a100_80gb()
    }

    #[test]
    fn llm_7b_gpu_count_matches_published_scale() {
        // LLaMA2-7B used ~368 A100s-equivalent (184k GPU-hours / 21 days).
        let jobs = derived_fleet();
        let j = jobs.iter().find(|j| j.name == "llm-7b").unwrap();
        let n = j.gpus(&spec());
        assert!((128..=1024).contains(&n), "llm-7b gpus {n}");
    }

    #[test]
    fn sd_gpu_count_matches_published_scale() {
        // SD v1 trained on the order of 256 A100s.
        let jobs = derived_fleet();
        let j = jobs.iter().find(|j| j.name == "tti-latent-1b").unwrap();
        let n = j.gpus(&spec());
        assert!((128..=2048).contains(&n), "sd gpus {n}");
    }

    #[test]
    fn derived_gpus_per_param_ratio_is_order_ten() {
        let spec = spec();
        let fleet: Vec<TrainingJob> =
            derived_fleet().iter().map(|m| m.as_fleet_job(&spec)).collect();
        let s = summarize(&fleet);
        assert!(
            (4.0..40.0).contains(&s.gpus_per_param_ratio),
            "derived GPUs/param ratio {}",
            s.gpus_per_param_ratio
        );
    }

    #[test]
    fn throughput_binds_for_all_derived_jobs() {
        // At these scales the FLOP budget, not memory, sets the GPU count.
        let spec = spec();
        for j in derived_fleet() {
            assert!(
                j.gpus_for_throughput(&spec) >= j.gpus_for_memory(&spec),
                "{}: memory-bound allocation",
                j.name
            );
        }
    }

    #[test]
    fn video_samples_are_heaviest() {
        let jobs = derived_fleet();
        let get = |n: &str| jobs.iter().find(|j| j.name == n).unwrap();
        assert!(
            get("ttv-diffusion-3b").fwd_flops_per_sample
                > 5 * get("tti-latent-1b").fwd_flops_per_sample
        );
    }

    #[test]
    fn utilization_is_a_fraction() {
        let spec = spec();
        for j in derived_fleet() {
            let u = j.memory_utilization(&spec);
            assert!((0.0..=0.99).contains(&u), "{}: {u}", j.name);
        }
    }
}
