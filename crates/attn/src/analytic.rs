//! Analytic FLOP and HBM-byte accounting for attention variants.

use std::fmt;

/// Which attention implementation is being modelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttnImpl {
    /// Materializes the `Sq×Skv` score matrix in HBM (PyTorch eager math).
    Baseline,
    /// FlashAttention-2 style tiled kernel: scores never leave SRAM.
    Flash,
    /// Flash-Decoding (Dao et al., 2023): flash attention plus KV-split
    /// parallelism for the `1×N` decode shape, where FlashAttention-2's
    /// per-query parallelism leaves the device idle. Identical numerics;
    /// identical HBM traffic; much better decode-kernel occupancy.
    FlashDecoding,
}

impl fmt::Display for AttnImpl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttnImpl::Baseline => f.write_str("baseline"),
            AttnImpl::Flash => f.write_str("flash"),
            AttnImpl::FlashDecoding => f.write_str("flash_decoding"),
        }
    }
}

/// Logical shape of one attention call.
///
/// `batch` already includes any dimensions folded into the batch by layout
/// rearrangement (e.g. frames for spatial attention, pixels for temporal
/// attention — see [`crate::video`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AttentionShape {
    /// Effective batch size.
    pub batch: usize,
    /// Number of attention heads.
    pub heads: usize,
    /// Query sequence length.
    pub seq_q: usize,
    /// Key/value sequence length (differs from `seq_q` in cross-attention
    /// and in autoregressive decode).
    pub seq_kv: usize,
    /// Per-head channel dimension.
    pub head_dim: usize,
}

impl AttentionShape {
    /// Self-attention: `seq_q == seq_kv`.
    #[must_use]
    pub fn self_attn(batch: usize, heads: usize, seq: usize, head_dim: usize) -> Self {
        AttentionShape { batch, heads, seq_q: seq, seq_kv: seq, head_dim }
    }

    /// Cross-attention to an encoded text prompt of length `text_len`.
    #[must_use]
    pub fn cross_attn(batch: usize, heads: usize, seq: usize, text_len: usize, head_dim: usize) -> Self {
        AttentionShape { batch, heads, seq_q: seq, seq_kv: text_len, head_dim }
    }

    /// One autoregressive decode step with a KV-cache of length `kv_len`:
    /// the query is a single token.
    #[must_use]
    pub fn decode_step(batch: usize, heads: usize, kv_len: usize, head_dim: usize) -> Self {
        AttentionShape { batch, heads, seq_q: 1, seq_kv: kv_len, head_dim }
    }

    /// FLOPs of the two main matmuls (`QKᵀ` and `P·V`), following the
    /// paper's Fig. 13 methodology of counting only these.
    #[must_use]
    pub fn matmul_flops(&self) -> u64 {
        let b = (self.batch * self.heads) as u64;
        let (sq, skv, d) = (self.seq_q as u64, self.seq_kv as u64, self.head_dim as u64);
        // QK^T: 2·Sq·Skv·d, P·V: 2·Sq·Skv·d.
        4 * b * sq * skv * d
    }

    /// Total FLOPs including softmax (≈5 flops/score: max-sub, exp, sum,
    /// div folded into a small constant) and scaling.
    #[must_use]
    pub fn total_flops(&self) -> u64 {
        let b = (self.batch * self.heads) as u64;
        let scores = b * self.seq_q as u64 * self.seq_kv as u64;
        self.matmul_flops() + 5 * scores
    }

    /// Elements in the materialized score matrix (per batch·head summed).
    #[must_use]
    pub fn score_elems(&self) -> u64 {
        (self.batch * self.heads) as u64 * self.seq_q as u64 * self.seq_kv as u64
    }

    /// Cost model for the chosen implementation at `bytes_per_elem`
    /// precision (2 for FP16).
    #[must_use]
    pub fn costs(&self, which: AttnImpl, bytes_per_elem: usize) -> AttentionCosts {
        let b = (self.batch * self.heads) as u64;
        let (sq, skv, d) = (self.seq_q as u64, self.seq_kv as u64, self.head_dim as u64);
        let e = bytes_per_elem as u64;
        let qkv_io = b * (sq * d + 2 * skv * d) * e; // read Q, K, V
        let out_io = b * sq * d * e; // write O
        let scores = self.score_elems();
        let hbm_bytes = match which {
            AttnImpl::Baseline => {
                // write scores, read for softmax, write probs, read probs for PV
                qkv_io + out_io + 4 * scores * e
            }
            AttnImpl::Flash => {
                // tiles stay in SRAM; only the per-row softmax statistics
                // (running max + denominator, fp32) spill
                let stats = b * sq * 2 * 4;
                qkv_io + out_io + stats
            }
            AttnImpl::FlashDecoding => {
                // flash traffic plus the split-KV partial results (one
                // extra O-sized stream, folded over splits)
                let stats = b * sq * 2 * 4;
                qkv_io + 2 * out_io + stats
            }
        };
        AttentionCosts { flops: self.total_flops(), hbm_bytes, score_bytes: scores * e }
    }

    /// HBM bytes needed to *materialize* the similarity matrix once —
    /// the paper's Section V memory formula
    /// `2·(HL·WL)·(HL·WL) + 2·(HL·WL)·text_encode` when queries come from
    /// the latent and keys from latent/text.
    #[must_use]
    pub fn similarity_matrix_bytes(&self, bytes_per_elem: usize) -> u64 {
        self.score_elems() * bytes_per_elem as u64
    }
}

/// Modelled resource usage of one attention call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttentionCosts {
    /// Total floating-point operations.
    pub flops: u64,
    /// Bytes moved to/from simulated HBM.
    pub hbm_bytes: u64,
    /// Bytes of the score matrix at the model precision.
    pub score_bytes: u64,
}

impl AttentionCosts {
    /// Arithmetic intensity in FLOPs per HBM byte.
    #[must_use]
    pub fn arithmetic_intensity(&self) -> f64 {
        self.flops as f64 / self.hbm_bytes.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_flops_formula() {
        let s = AttentionShape::self_attn(1, 1, 128, 64);
        assert_eq!(s.matmul_flops(), 4 * 128 * 128 * 64);
    }

    #[test]
    fn flash_moves_fewer_bytes_for_large_seq() {
        let s = AttentionShape::self_attn(1, 8, 4096, 64);
        let base = s.costs(AttnImpl::Baseline, 2);
        let flash = s.costs(AttnImpl::Flash, 2);
        assert_eq!(base.flops, flash.flops, "flash is exact, same flops");
        assert!(base.hbm_bytes > 5 * flash.hbm_bytes, "large-N baseline is score-dominated");
    }

    #[test]
    fn decode_step_sees_little_byte_reduction() {
        // 1×N query: score matrix is tiny relative to KV reads.
        let s = AttentionShape::decode_step(1, 32, 2048, 128);
        let base = s.costs(AttnImpl::Baseline, 2);
        let flash = s.costs(AttnImpl::Flash, 2);
        let ratio = base.hbm_bytes as f64 / flash.hbm_bytes as f64;
        assert!(ratio < 1.1, "decode ratio was {ratio}");
    }

    #[test]
    fn prefill_gains_exceed_decode_gains() {
        // The Section IV-B asymmetry, stated directly on the byte model.
        let prefill = AttentionShape::self_attn(1, 8, 4096, 64);
        let decode = AttentionShape::decode_step(1, 8, 4096, 64);
        let gain = |s: &AttentionShape| {
            s.costs(AttnImpl::Baseline, 2).hbm_bytes as f64
                / s.costs(AttnImpl::Flash, 2).hbm_bytes as f64
        };
        assert!(gain(&prefill) > 2.0 * gain(&decode));
    }

    #[test]
    fn cross_attention_uses_text_length() {
        let s = AttentionShape::cross_attn(1, 8, 1024, 77, 64);
        assert_eq!(s.seq_q, 1024);
        assert_eq!(s.seq_kv, 77);
        assert_eq!(s.score_elems(), 8 * 1024 * 77);
    }

    #[test]
    fn similarity_matrix_matches_section_v_formula() {
        // Section V: memory = 2·(HL·WL)² + 2·(HL·WL)·text for self + cross.
        let (hl, wl, text) = (64usize, 64usize, 77usize);
        let latent = hl * wl;
        let self_a = AttentionShape::self_attn(1, 1, latent, 8);
        let cross_a = AttentionShape::cross_attn(1, 1, latent, text, 8);
        let total =
            self_a.similarity_matrix_bytes(2) + cross_a.similarity_matrix_bytes(2);
        let paper = 2 * latent as u64 * latent as u64 + 2 * latent as u64 * text as u64;
        assert_eq!(total, paper);
    }

    #[test]
    fn arithmetic_intensity_is_positive() {
        let s = AttentionShape::self_attn(2, 4, 256, 64);
        assert!(s.costs(AttnImpl::Flash, 2).arithmetic_intensity() > 0.0);
    }
}
