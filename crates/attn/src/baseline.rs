//! Reference multi-head attention that materializes the score matrix.

use mmg_tensor::{ops, Result, Tensor, TensorError};

/// Baseline scaled-dot-product attention.
///
/// `q`: `[batch·heads, seq_q, head_dim]`,
/// `k`, `v`: `[batch·heads, seq_kv, head_dim]` →
/// `[batch·heads, seq_q, head_dim]`.
///
/// Computes `softmax(Q·Kᵀ / √d)·V` with the full score matrix held in
/// memory — the PyTorch-eager formulation the paper calls *Baseline
/// Attention*.
///
/// # Errors
///
/// Returns [`TensorError::InvalidShape`] / [`TensorError::ShapeMismatch`]
/// for malformed operands.
pub fn baseline_attention(q: &Tensor, k: &Tensor, v: &Tensor) -> Result<Tensor> {
    validate(q, k, v)?;
    let d = *q.shape().dims().last().expect("rank 3");
    let scale = 1.0 / (d as f32).sqrt();
    // scores = Q·Kᵀ — transpose K per batch.
    let kt = k.permute(&[0, 2, 1])?;
    let scores = ops::scale(&ops::bmm(q, &kt)?, scale);
    let probs = ops::softmax_last(&scores)?;
    ops::bmm(&probs, v)
}

pub(crate) fn validate(q: &Tensor, k: &Tensor, v: &Tensor) -> Result<()> {
    for (name, t) in [("q", q), ("k", k), ("v", v)] {
        if t.shape().rank() != 3 {
            return Err(TensorError::InvalidShape {
                op: "attention",
                reason: format!("{name} must be rank 3, got {}", t.shape()),
            });
        }
    }
    let (bq, dq) = (q.shape().dims()[0], q.shape().dims()[2]);
    let (bk, sk, dk) = (k.shape().dims()[0], k.shape().dims()[1], k.shape().dims()[2]);
    if bq != bk || dq != dk || k.shape().dims() != v.shape().dims() {
        return Err(TensorError::ShapeMismatch {
            op: "attention",
            lhs: q.shape().dims().to_vec(),
            rhs: k.shape().dims().to_vec(),
        });
    }
    let _ = sk;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attention_to_single_kv_returns_v() {
        // With one key/value, softmax is 1 and output == v broadcast.
        let q = Tensor::randn(&[1, 4, 8], 1);
        let k = Tensor::randn(&[1, 1, 8], 2);
        let v = Tensor::randn(&[1, 1, 8], 3);
        let o = baseline_attention(&q, &k, &v).unwrap();
        for s in 0..4 {
            for c in 0..8 {
                assert!((o.at(&[0, s, c]) - v.at(&[0, 0, c])).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn output_rows_are_convex_combinations_of_v() {
        let q = Tensor::randn(&[2, 3, 4], 4);
        let k = Tensor::randn(&[2, 5, 4], 5);
        let v = Tensor::ones(&[2, 5, 4]);
        // Convex combination of all-ones rows is all-ones.
        let o = baseline_attention(&q, &k, &v).unwrap();
        for x in o.data() {
            assert!((x - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn shape_validation() {
        let q = Tensor::zeros(&[1, 4, 8]);
        let k = Tensor::zeros(&[2, 4, 8]);
        let v = Tensor::zeros(&[2, 4, 8]);
        assert!(baseline_attention(&q, &k, &v).is_err());
        let k2 = Tensor::zeros(&[1, 4, 6]);
        assert!(baseline_attention(&q, &k2, &v).is_err());
        let q2 = Tensor::zeros(&[4, 8]);
        assert!(baseline_attention(&q2, &k, &v).is_err());
    }

    #[test]
    fn cross_attention_shapes_allowed() {
        // seq_q != seq_kv is legal (cross-attention).
        let q = Tensor::randn(&[1, 16, 8], 6);
        let k = Tensor::randn(&[1, 7, 8], 7);
        let v = Tensor::randn(&[1, 7, 8], 8);
        let o = baseline_attention(&q, &k, &v).unwrap();
        assert_eq!(o.shape().dims(), &[1, 16, 8]);
    }

    #[test]
    fn output_is_finite_for_large_logits() {
        let q = mmg_tensor::ops::scale(&Tensor::ones(&[1, 4, 16]), 100.0);
        let k = mmg_tensor::ops::scale(&Tensor::ones(&[1, 4, 16]), 100.0);
        let v = Tensor::randn(&[1, 4, 16], 9);
        let o = baseline_attention(&q, &k, &v).unwrap();
        assert!(o.all_finite());
    }
}
