//! Tiled attention with the online-softmax recurrence (FlashAttention).

use mmg_tensor::{Result, Tensor};

use crate::baseline::validate;

/// Tiled scaled-dot-product attention, numerically equivalent to
/// [`crate::baseline_attention`].
///
/// Processes key/value blocks of `block_kv` rows at a time, maintaining the
/// running row maximum `m`, running denominator `l`, and unnormalized output
/// accumulator — the FlashAttention-2 recurrence. On a GPU this keeps every
/// block in SRAM so the `Sq×Skv` score matrix never touches HBM; here it
/// demonstrates (and lets tests verify) that the tiling is *exact*, not an
/// approximation.
///
/// # Errors
///
/// Returns the same shape errors as [`crate::baseline_attention`]; a
/// `block_kv` of 0 is clamped to 1.
pub fn flash_attention(q: &Tensor, k: &Tensor, v: &Tensor, block_kv: usize) -> Result<Tensor> {
    validate(q, k, v)?;
    let block_kv = block_kv.max(1);
    let b = q.shape().dims()[0];
    let sq = q.shape().dims()[1];
    let skv = k.shape().dims()[1];
    let d = q.shape().dims()[2];
    let scale = 1.0 / (d as f32).sqrt();

    let qd = q.data();
    let kd = k.data();
    let vd = v.data();
    let mut out = vec![0.0f32; b * sq * d];

    for batch in 0..b {
        let qoff = batch * sq * d;
        let kvoff = batch * skv * d;
        for i in 0..sq {
            let qrow = &qd[qoff + i * d..qoff + (i + 1) * d];
            let mut m = f32::NEG_INFINITY; // running max
            let mut l = 0.0f32; // running denominator
            let mut acc = vec![0.0f32; d]; // unnormalized output
            let mut j0 = 0;
            while j0 < skv {
                let j1 = (j0 + block_kv).min(skv);
                // Block score computation.
                let mut block_max = f32::NEG_INFINITY;
                let mut scores = Vec::with_capacity(j1 - j0);
                for j in j0..j1 {
                    let krow = &kd[kvoff + j * d..kvoff + (j + 1) * d];
                    let s: f32 = qrow.iter().zip(krow.iter()).map(|(a, b)| a * b).sum::<f32>() * scale;
                    block_max = block_max.max(s);
                    scores.push(s);
                }
                let m_new = m.max(block_max);
                let correction = if m.is_finite() { (m - m_new).exp() } else { 0.0 };
                l *= correction;
                for a in &mut acc {
                    *a *= correction;
                }
                for (idx, j) in (j0..j1).enumerate() {
                    let p = (scores[idx] - m_new).exp();
                    l += p;
                    let vrow = &vd[kvoff + j * d..kvoff + (j + 1) * d];
                    for (a, &vv) in acc.iter_mut().zip(vrow.iter()) {
                        *a += p * vv;
                    }
                }
                m = m_new;
                j0 = j1;
            }
            let inv = 1.0 / l;
            for (o, a) in out[qoff + i * d..qoff + (i + 1) * d].iter_mut().zip(acc.iter()) {
                *o = a * inv;
            }
        }
    }
    Tensor::from_vec(out, &[b, sq, d])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline_attention;

    fn max_diff(block: usize, dims: (usize, usize, usize, usize), seed: u64) -> f32 {
        let (b, sq, skv, d) = dims;
        let q = Tensor::randn(&[b, sq, d], seed);
        let k = Tensor::randn(&[b, skv, d], seed + 1);
        let v = Tensor::randn(&[b, skv, d], seed + 2);
        let base = baseline_attention(&q, &k, &v).unwrap();
        let flash = flash_attention(&q, &k, &v, block).unwrap();
        base.max_abs_diff(&flash).unwrap()
    }

    #[test]
    fn flash_equals_baseline_various_blocks() {
        for block in [1, 2, 3, 7, 16, 64, 1000] {
            let d = max_diff(block, (2, 17, 23, 8), 42);
            assert!(d < 1e-4, "block {block} diff {d}");
        }
    }

    #[test]
    fn flash_equals_baseline_cross_attention() {
        let d = max_diff(8, (1, 64, 7, 16), 7);
        assert!(d < 1e-4);
    }

    #[test]
    fn flash_equals_baseline_decode_shape() {
        // 1×N decode query.
        let d = max_diff(16, (4, 1, 128, 32), 9);
        assert!(d < 1e-4);
    }

    #[test]
    fn flash_handles_extreme_logits() {
        let q = mmg_tensor::ops::scale(&Tensor::ones(&[1, 2, 8]), 50.0);
        let k = mmg_tensor::ops::scale(&Tensor::ones(&[1, 16, 8]), 50.0);
        let v = Tensor::randn(&[1, 16, 8], 3);
        let o = flash_attention(&q, &k, &v, 4).unwrap();
        assert!(o.all_finite());
        let b = baseline_attention(&q, &k, &v).unwrap();
        assert!(o.max_abs_diff(&b).unwrap() < 1e-4);
    }

    #[test]
    fn zero_block_is_clamped() {
        let q = Tensor::randn(&[1, 4, 8], 11);
        let k = Tensor::randn(&[1, 4, 8], 12);
        let v = Tensor::randn(&[1, 4, 8], 13);
        assert!(flash_attention(&q, &k, &v, 0).is_ok());
    }

    #[test]
    fn invalid_shapes_rejected() {
        let q = Tensor::zeros(&[1, 4, 8]);
        let k = Tensor::zeros(&[1, 4, 6]);
        let v = Tensor::zeros(&[1, 4, 6]);
        assert!(flash_attention(&q, &k, &v, 8).is_err());
    }
}
