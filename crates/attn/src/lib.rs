//! # mmg-attn
//!
//! Attention in both of the suite's execution planes:
//!
//! * **Numeric**: reference (baseline) multi-head attention that materializes
//!   the full `N×N` score matrix, and a tiled *flash* implementation using
//!   the online-softmax recurrence. The two are numerically equivalent —
//!   a property the test suite enforces — which is exactly the contract
//!   FlashAttention provides on real GPUs.
//! * **Analytic**: FLOP and HBM-byte accounting for each variant. The byte
//!   asymmetry (baseline streams the score matrix through HBM several times,
//!   flash keeps tiles in SRAM) is what produces the paper's Section IV-B
//!   result that diffusion models (prefill-like, large `N`) gain far more
//!   from Flash Attention than autoregressive transformer TTI models
//!   (decode-like, `1×N` queries).
//!
//! The [`video`] module implements the Fig. 10 tensor rearrangements that
//! turn a `[frames, channels, height, width]` activation into *spatial*
//! attention (sequence = H·W) or *temporal* attention (sequence = frames).

#![deny(missing_docs)]

mod analytic;
mod baseline;
mod flash;
pub mod video;

pub use analytic::{AttentionCosts, AttentionShape, AttnImpl};
pub use baseline::baseline_attention;
pub use flash::flash_attention;
