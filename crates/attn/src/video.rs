//! Spatial vs. temporal attention layouts for video (Fig. 10).
//!
//! A video activation is `[frames, channels, height, width]`. The paper's
//! Fig. 10 shows how the Q/K/V dimensions are rearranged so the axis to be
//! attended over lands in the *sequence* position while the remaining axes
//! are folded into *batch*:
//!
//! * **Spatial**: batch = frames, sequence = `H·W`, dim = channels —
//!   sequence length is proportional to image size.
//! * **Temporal**: batch = `H·W`, sequence = frames, dim = channels —
//!   sequence length is the number of frames.
//!
//! The temporal rearrangement is also what destroys cache locality
//! (Fig. 12): consecutive sequence elements are `C·H·W` elements apart in
//! the underlying frame-major storage.

use mmg_tensor::{Result, Tensor, TensorError};

use crate::{AttentionShape, baseline_attention, flash_attention};

/// Which axis a video attention layer attends over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VideoAttentionKind {
    /// Attend over pixels within each frame.
    Spatial,
    /// Attend over frames at each pixel position.
    Temporal,
}

impl VideoAttentionKind {
    /// Logical attention shape for a `[frames, channels, h, w]` activation
    /// split across `heads` heads.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is not divisible by `heads`.
    #[must_use]
    pub fn attention_shape(
        self,
        frames: usize,
        channels: usize,
        h: usize,
        w: usize,
        heads: usize,
    ) -> AttentionShape {
        assert!(
            heads > 0 && channels.is_multiple_of(heads),
            "channels {channels} not divisible by heads {heads}"
        );
        let head_dim = channels / heads;
        match self {
            VideoAttentionKind::Spatial => AttentionShape::self_attn(frames, heads, h * w, head_dim),
            VideoAttentionKind::Temporal => AttentionShape::self_attn(h * w, heads, frames, head_dim),
        }
    }

    /// Element stride between consecutive *sequence* positions in the
    /// original frame-major `[F, C, H, W]` storage. Spatial attention walks
    /// adjacent pixels (stride 1); temporal attention jumps a whole frame
    /// (`C·H·W`), which is why its cache hit rate collapses.
    #[must_use]
    pub fn sequence_stride_elems(self, channels: usize, h: usize, w: usize) -> usize {
        match self {
            VideoAttentionKind::Spatial => 1,
            VideoAttentionKind::Temporal => channels * h * w,
        }
    }
}

fn expect_video(x: &Tensor) -> Result<(usize, usize, usize, usize)> {
    if x.shape().rank() != 4 {
        return Err(TensorError::InvalidShape {
            op: "video_layout",
            reason: format!("expected [frames, channels, h, w], got {}", x.shape()),
        });
    }
    let d = x.shape().dims();
    Ok((d[0], d[1], d[2], d[3]))
}

/// Rearranges `[F, C, H, W]` → `[F, H·W, C]` (spatial attention layout).
///
/// # Errors
///
/// Returns [`TensorError::InvalidShape`] for non-rank-4 input.
pub fn to_spatial_layout(x: &Tensor) -> Result<Tensor> {
    let (f, c, h, w) = expect_video(x)?;
    // [F, C, H, W] -> [F, H, W, C] -> [F, H*W, C]
    x.permute(&[0, 2, 3, 1])?.reshape(&[f, h * w, c])
}

/// Rearranges `[F, C, H, W]` → `[H·W, F, C]` (temporal attention layout).
///
/// # Errors
///
/// Returns [`TensorError::InvalidShape`] for non-rank-4 input.
pub fn to_temporal_layout(x: &Tensor) -> Result<Tensor> {
    let (f, c, h, w) = expect_video(x)?;
    // [F, C, H, W] -> [H, W, F, C] -> [H*W, F, C]
    x.permute(&[2, 3, 0, 1])?.reshape(&[h * w, f, c])
}

/// Inverse of [`to_spatial_layout`].
///
/// # Errors
///
/// Returns shape errors if `x` is not `[F, H·W, C]` with `H·W == h·w`.
pub fn from_spatial_layout(x: &Tensor, h: usize, w: usize) -> Result<Tensor> {
    let d = x.shape().dims();
    if x.shape().rank() != 3 || d[1] != h * w {
        return Err(TensorError::InvalidShape {
            op: "from_spatial_layout",
            reason: format!("expected [F, {}, C], got {}", h * w, x.shape()),
        });
    }
    let (f, c) = (d[0], d[2]);
    x.reshape(&[f, h, w, c])?.permute(&[0, 3, 1, 2])
}

/// Inverse of [`to_temporal_layout`].
///
/// # Errors
///
/// Returns shape errors if `x` is not `[H·W, F, C]` with `H·W == h·w`.
pub fn from_temporal_layout(x: &Tensor, h: usize, w: usize) -> Result<Tensor> {
    let d = x.shape().dims();
    if x.shape().rank() != 3 || d[0] != h * w {
        return Err(TensorError::InvalidShape {
            op: "from_temporal_layout",
            reason: format!("expected [{}, F, C], got {}", h * w, x.shape()),
        });
    }
    let (f, c) = (d[1], d[2]);
    x.reshape(&[h, w, f, c])?.permute(&[2, 3, 0, 1])
}

/// Runs single-head self-attention over a video activation in the chosen
/// layout and maps the result back to `[F, C, H, W]`.
///
/// `use_flash` selects the tiled implementation (block 64); both give the
/// same numbers — the point of the numeric plane.
///
/// # Errors
///
/// Propagates layout and attention shape errors.
pub fn video_self_attention(
    x: &Tensor,
    kind: VideoAttentionKind,
    use_flash: bool,
) -> Result<Tensor> {
    let (_, _, h, w) = expect_video(x)?;
    let qkv = match kind {
        VideoAttentionKind::Spatial => to_spatial_layout(x)?,
        VideoAttentionKind::Temporal => to_temporal_layout(x)?,
    };
    let out = if use_flash {
        flash_attention(&qkv, &qkv, &qkv, 64)?
    } else {
        baseline_attention(&qkv, &qkv, &qkv)?
    };
    match kind {
        VideoAttentionKind::Spatial => from_spatial_layout(&out, h, w),
        VideoAttentionKind::Temporal => from_temporal_layout(&out, h, w),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spatial_shape_puts_pixels_in_sequence() {
        let s = VideoAttentionKind::Spatial.attention_shape(16, 320, 32, 32, 8);
        assert_eq!(s.batch, 16);
        assert_eq!(s.seq_q, 1024);
        assert_eq!(s.head_dim, 40);
    }

    #[test]
    fn temporal_shape_puts_frames_in_sequence() {
        let s = VideoAttentionKind::Temporal.attention_shape(16, 320, 32, 32, 8);
        assert_eq!(s.batch, 1024);
        assert_eq!(s.seq_q, 16);
    }

    #[test]
    fn layout_roundtrips() {
        let x = Tensor::randn(&[3, 4, 2, 5], 1);
        let s = to_spatial_layout(&x).unwrap();
        assert_eq!(s.shape().dims(), &[3, 10, 4]);
        assert_eq!(from_spatial_layout(&s, 2, 5).unwrap(), x);
        let t = to_temporal_layout(&x).unwrap();
        assert_eq!(t.shape().dims(), &[10, 3, 4]);
        assert_eq!(from_temporal_layout(&t, 2, 5).unwrap(), x);
    }

    #[test]
    fn layouts_preserve_values() {
        let x = Tensor::randn(&[2, 3, 2, 2], 2);
        let s = to_spatial_layout(&x).unwrap();
        // frame 1, pixel (1,0), channel 2
        assert_eq!(s.at(&[1, 2, 2]), x.at(&[1, 2, 1, 0]));
        let t = to_temporal_layout(&x).unwrap();
        assert_eq!(t.at(&[2, 1, 0]), x.at(&[1, 0, 1, 0]));
    }

    #[test]
    fn temporal_stride_is_frame_sized() {
        assert_eq!(VideoAttentionKind::Spatial.sequence_stride_elems(320, 32, 32), 1);
        assert_eq!(
            VideoAttentionKind::Temporal.sequence_stride_elems(320, 32, 32),
            320 * 32 * 32
        );
    }

    #[test]
    fn video_attention_flash_matches_baseline() {
        let x = Tensor::randn(&[4, 8, 4, 4], 3);
        for kind in [VideoAttentionKind::Spatial, VideoAttentionKind::Temporal] {
            let a = video_self_attention(&x, kind, false).unwrap();
            let b = video_self_attention(&x, kind, true).unwrap();
            assert_eq!(a.shape().dims(), x.shape().dims());
            assert!(a.max_abs_diff(&b).unwrap() < 1e-4);
        }
    }

    #[test]
    fn spatial_and_temporal_differ() {
        let x = Tensor::randn(&[4, 8, 4, 4], 4);
        let a = video_self_attention(&x, VideoAttentionKind::Spatial, false).unwrap();
        let b = video_self_attention(&x, VideoAttentionKind::Temporal, false).unwrap();
        assert!(a.max_abs_diff(&b).unwrap() > 1e-3);
    }

    #[test]
    fn single_frame_temporal_is_identityish() {
        // With one frame, temporal attention attends to itself only.
        let x = Tensor::randn(&[1, 4, 3, 3], 5);
        let y = video_self_attention(&x, VideoAttentionKind::Temporal, false).unwrap();
        assert!(x.max_abs_diff(&y).unwrap() < 1e-5);
    }

    #[test]
    fn flops_match_fig13_scaling() {
        // Temporal FLOPs scale quadratically in frames, spatial linearly.
        let f = |frames: usize, kind: VideoAttentionKind| {
            kind.attention_shape(frames, 64, 16, 16, 1).matmul_flops()
        };
        let sp_ratio = f(32, VideoAttentionKind::Spatial) / f(8, VideoAttentionKind::Spatial);
        let tp_ratio = f(32, VideoAttentionKind::Temporal) / f(8, VideoAttentionKind::Temporal);
        assert_eq!(sp_ratio, 4, "spatial linear in frames");
        assert_eq!(tp_ratio, 16, "temporal quadratic in frames");
    }
}
