//! Ablation — numeric flash attention block-size sweep, plus baseline vs
//! flash numeric equivalence cost (DESIGN.md design-choice: tiled online
//! softmax must be exact, so its CPU cost is worth quantifying).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mmg_attn::{baseline_attention, flash_attention};
use mmg_bench::experiment_criterion;
use mmg_tensor::Tensor;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let q = Tensor::randn(&[4, 128, 32], 1);
    let k = Tensor::randn(&[4, 128, 32], 2);
    let v = Tensor::randn(&[4, 128, 32], 3);
    c.bench_function("attn/baseline_numeric", |b| {
        b.iter(|| baseline_attention(black_box(&q), &k, &v).unwrap())
    });
    let mut group = c.benchmark_group("attn/flash_numeric");
    for block in [8usize, 32, 128] {
        group.bench_with_input(BenchmarkId::from_parameter(block), &block, |b, &blk| {
            b.iter(|| flash_attention(black_box(&q), &k, &v, blk).unwrap())
        });
    }
    group.finish();
}

criterion_group! { name = benches; config = experiment_criterion(); targets = bench }
criterion_main!(benches);
