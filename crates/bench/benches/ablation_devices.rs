//! Ablation — how the Table II speedups shift across GPU generations
//! (V100 → A100 → H100): bandwidth/compute ratios move the baseline
//! attention bottleneck.

use criterion::{criterion_group, criterion_main, Criterion};
use mmg_bench::{experiment_criterion, print_artifact};
use mmg_core::experiments::table2;
use mmg_gpu::DeviceSpec;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    for spec in [DeviceSpec::v100_32gb(), DeviceSpec::a100_80gb(), DeviceSpec::h100_80gb()] {
        print_artifact(&format!("Table II on {}", spec.name), &table2::render(&table2::run(&spec)));
    }
    let spec = DeviceSpec::h100_80gb();
    c.bench_function("ablation/table2_h100", |b| b.iter(|| table2::run(black_box(&spec))));
}

criterion_group! { name = benches; config = experiment_criterion(); targets = bench }
criterion_main!(benches);
