//! Extension experiments: Flash-Decoding, denoising pods, batch sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use mmg_analytics::scheduling::pod_estimate;
use mmg_attn::AttnImpl;
use mmg_bench::{experiment_criterion, print_artifact};
use mmg_core::experiments::{batch, flashdec, pods};
use mmg_gpu::DeviceSpec;
use mmg_models::suite::stable_diffusion::{pipeline, StableDiffusionConfig};
use mmg_profiler::Profiler;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let spec = DeviceSpec::a100_80gb();
    print_artifact("Flash-Decoding", &flashdec::render(&flashdec::run(&spec)));
    print_artifact("Denoising pods", &pods::render(&pods::run(&spec)));
    print_artifact("Batch sweep", &batch::render(&batch::run(&spec, &batch::default_batches())));

    let p = pipeline(&StableDiffusionConfig::default());
    let prof = p.profile(&Profiler::new(spec.clone(), AttnImpl::Flash));
    let unet = prof.stage("unet_step").unwrap().timeline.clone();
    c.bench_function("extensions/pod_estimate", |b| b.iter(|| pod_estimate(black_box(&unet))));
    c.bench_function("extensions/batch_sweep", |b| {
        b.iter(|| batch::run(black_box(&spec), &[1, 8]))
    });
}

criterion_group! { name = benches; config = experiment_criterion(); targets = bench }
criterion_main!(benches);
