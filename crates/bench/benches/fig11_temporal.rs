//! Fig. 11 — temporal vs spatial attention in Make-A-Video.

use criterion::{criterion_group, criterion_main, Criterion};
use mmg_bench::{experiment_criterion, print_artifact};
use mmg_core::experiments::fig11;
use mmg_gpu::DeviceSpec;
use mmg_tensor::Tensor;
use mmg_attn::video::{video_self_attention, VideoAttentionKind};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let spec = DeviceSpec::a100_80gb();
    print_artifact("Fig. 11", &fig11::render(&fig11::run(&spec)));
    c.bench_function("fig11/pipeline_split", |b| b.iter(|| fig11::run(black_box(&spec))));
    // Numeric-plane counterpart: real spatial vs temporal attention math
    // on a reduced clip.
    let clip = Tensor::randn(&[8, 16, 8, 8], 42);
    let mut group = c.benchmark_group("fig11/numeric");
    for kind in [VideoAttentionKind::Spatial, VideoAttentionKind::Temporal] {
        group.bench_function(format!("{kind:?}"), |b| {
            b.iter(|| video_self_attention(black_box(&clip), kind, true).unwrap())
        });
    }
    group.finish();
}

criterion_group! { name = benches; config = experiment_criterion(); targets = bench }
criterion_main!(benches);
