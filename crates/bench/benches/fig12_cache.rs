//! Fig. 12 — trace-driven cache simulation of attention kernels.

use criterion::{criterion_group, criterion_main, Criterion};
use mmg_bench::{experiment_criterion, print_artifact};
use mmg_core::experiments::fig12;
use mmg_gpu::DeviceSpec;
use mmg_kernels::access::{AttentionKernel, VideoAttentionAccess};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let spec = DeviceSpec::a100_80gb();
    print_artifact("Fig. 12", &fig12::render(&fig12::run(&spec, 200_000)));
    let v = VideoAttentionAccess::make_a_video_base();
    let mut group = c.benchmark_group("fig12");
    for (name, temporal) in [("spatial", false), ("temporal", true)] {
        group.bench_function(format!("gemm_{name}"), |b| {
            b.iter(|| v.simulate(AttentionKernel::Gemm, black_box(temporal), &spec, 100_000))
        });
    }
    group.finish();
}

criterion_group! { name = benches; config = experiment_criterion(); targets = bench }
criterion_main!(benches);
