//! Fig. 13 — temporal attention FLOP scaling with frame count.

use criterion::{criterion_group, criterion_main, Criterion};
use mmg_analytics::temporal::frame_sweep;
use mmg_bench::{experiment_criterion, print_artifact};
use mmg_core::experiments::fig13;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    print_artifact("Fig. 13", &fig13::render(&fig13::run(16, &fig13::default_frames())));
    let frames: Vec<usize> = (1..=256).collect();
    c.bench_function("fig13/frame_sweep_256", |b| {
        b.iter(|| frame_sweep(black_box(&frames), 16, 320, 8))
    });
}

criterion_group! { name = benches; config = experiment_criterion(); targets = bench }
criterion_main!(benches);
