//! Fig. 1 — synthetic fleet generation and aggregation.

use criterion::{criterion_group, criterion_main, Criterion};
use mmg_analytics::fleet::{generate_fleet, summarize, FleetConfig};
use mmg_bench::{experiment_criterion, print_artifact};
use mmg_core::experiments::fig1;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    print_artifact("Fig. 1", &fig1::render(&fig1::run(42)));
    let cfg = FleetConfig::default();
    c.bench_function("fig1/generate_fleet", |b| {
        b.iter(|| generate_fleet(black_box(&cfg), black_box(42)))
    });
    let jobs = generate_fleet(&cfg, 42);
    c.bench_function("fig1/summarize", |b| b.iter(|| summarize(black_box(&jobs))));
}

criterion_group! { name = benches; config = experiment_criterion(); targets = bench }
criterion_main!(benches);
