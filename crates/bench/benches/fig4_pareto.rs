//! Fig. 4 — Pareto frontier over the published model landscape.

use criterion::{criterion_group, criterion_main, Criterion};
use mmg_analytics::pareto::frontier;
use mmg_bench::{experiment_criterion, print_artifact};
use mmg_core::experiments::fig4;
use mmg_models::registry;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    print_artifact("Fig. 4", &fig4::render(&fig4::run()));
    let records = registry();
    c.bench_function("fig4/frontier", |b| b.iter(|| frontier(black_box(&records))));
}

criterion_group! { name = benches; config = experiment_criterion(); targets = bench }
criterion_main!(benches);
