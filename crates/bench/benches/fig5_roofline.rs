//! Fig. 5 — roofline placement of the model suite.

use criterion::{criterion_group, criterion_main, Criterion};
use mmg_analytics::roofline::suite_roofline;
use mmg_bench::{experiment_criterion, print_artifact};
use mmg_core::experiments::fig5;
use mmg_gpu::DeviceSpec;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let spec = DeviceSpec::a100_80gb();
    print_artifact("Fig. 5", &fig5::render(&fig5::run(&spec)));
    c.bench_function("fig5/suite_roofline", |b| b.iter(|| suite_roofline(black_box(&spec))));
}

criterion_group! { name = benches; config = experiment_criterion(); targets = bench }
criterion_main!(benches);
