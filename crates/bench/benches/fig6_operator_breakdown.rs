//! Fig. 6 — operator breakdown across the suite under both attention
//! implementations. Benchmarks the per-model profiling path.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use mmg_attn::AttnImpl;
use mmg_bench::{experiment_criterion, print_artifact};
use mmg_core::experiments::fig6;
use mmg_gpu::DeviceSpec;
use mmg_models::{suite, ModelId};
use mmg_profiler::{CostMemo, Profiler};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let spec = DeviceSpec::a100_80gb();
    print_artifact("Fig. 6", &fig6::render(&fig6::run(&spec)));
    let mut group = c.benchmark_group("fig6");
    for id in [ModelId::StableDiffusion, ModelId::Llama2, ModelId::MakeAVideo] {
        let pipeline = suite::build(id);
        for (tag, attn) in [("baseline", AttnImpl::Baseline), ("flash", AttnImpl::Flash)] {
            let profiler = Profiler::new(spec.clone(), attn);
            group.bench_function(format!("{id}/{tag}"), |b| {
                b.iter(|| black_box(&pipeline).profile(&profiler).breakdown())
            });
            // Same profile with a pre-warmed operator-cost memo: every op
            // replays its stored cost instead of re-running lowering,
            // roofline timing, and cache simulation.
            let memo = Arc::new(CostMemo::new());
            let memoized =
                Profiler::new(spec.clone(), attn).with_memo(Arc::clone(&memo));
            let _ = pipeline.profile(&memoized); // warm
            group.bench_function(format!("{id}/{tag}_memo_warm"), |b| {
                b.iter(|| black_box(&pipeline).profile(&memoized).breakdown())
            });
        }
    }
    group.finish();
}

criterion_group! { name = benches; config = experiment_criterion(); targets = bench }
criterion_main!(benches);
