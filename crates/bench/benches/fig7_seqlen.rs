//! Fig. 7 — sequence-length tracing.

use criterion::{criterion_group, criterion_main, Criterion};
use mmg_attn::AttnImpl;
use mmg_bench::{experiment_criterion, print_artifact};
use mmg_core::experiments::fig7;
use mmg_gpu::DeviceSpec;
use mmg_models::suite;
use mmg_models::ModelId;
use mmg_profiler::{seqlen, Profiler};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let spec = DeviceSpec::a100_80gb();
    print_artifact("Fig. 7", &fig7::render(&fig7::run(&spec)));
    let profiler = Profiler::new(spec, AttnImpl::Flash);
    let sd = suite::build(ModelId::StableDiffusion);
    let timeline = sd.profile(&profiler).fundamental_period();
    c.bench_function("fig7/trace_extraction", |b| {
        b.iter(|| seqlen::trace(black_box(&timeline)))
    });
}

criterion_group! { name = benches; config = experiment_criterion(); targets = bench }
criterion_main!(benches);
