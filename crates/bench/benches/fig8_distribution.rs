//! Fig. 8 — sequence-length distribution vs image size.

use criterion::{criterion_group, criterion_main, Criterion};
use mmg_bench::{experiment_criterion, print_artifact};
use mmg_core::experiments::fig8;
use mmg_gpu::DeviceSpec;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let spec = DeviceSpec::a100_80gb();
    print_artifact("Fig. 8", &fig8::render(&fig8::run(&spec, &fig8::default_sizes())));
    c.bench_function("fig8/sweep", |b| {
        b.iter(|| fig8::run(black_box(&spec), &[256, 512]))
    });
}

criterion_group! { name = benches; config = experiment_criterion(); targets = bench }
criterion_main!(benches);
