//! Fig. 9 — attention vs convolution scaling with image size.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mmg_attn::AttnImpl;
use mmg_bench::{experiment_criterion, print_artifact};
use mmg_core::experiments::fig9;
use mmg_gpu::DeviceSpec;
use mmg_models::suite::stable_diffusion::{pipeline, StableDiffusionConfig};
use mmg_profiler::{CostMemo, Profiler};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let spec = DeviceSpec::a100_80gb();
    print_artifact("Fig. 9", &fig9::render(&fig9::run(&spec, &fig9::default_sizes())));
    let profiler = Profiler::new(spec.clone(), AttnImpl::Flash);
    let memo = Arc::new(CostMemo::new());
    let memoized = Profiler::new(spec, AttnImpl::Flash).with_memo(Arc::clone(&memo));
    let mut group = c.benchmark_group("fig9");
    for image_size in [64usize, 128, 256, 512] {
        let p = pipeline(&StableDiffusionConfig { image_size, ..Default::default() });
        group.bench_with_input(BenchmarkId::new("profile_sd", image_size), &p, |b, p| {
            b.iter(|| black_box(p).profile(&profiler).breakdown())
        });
        let _ = p.profile(&memoized); // warm the memo for this size
        group.bench_with_input(
            BenchmarkId::new("profile_sd_memo_warm", image_size),
            &p,
            |b, p| b.iter(|| black_box(p).profile(&memoized).breakdown()),
        );
    }
    group.finish();
}

criterion_group! { name = benches; config = experiment_criterion(); targets = bench }
criterion_main!(benches);
