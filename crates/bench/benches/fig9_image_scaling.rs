//! Fig. 9 — attention vs convolution scaling with image size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mmg_attn::AttnImpl;
use mmg_bench::{experiment_criterion, print_artifact};
use mmg_core::experiments::fig9;
use mmg_gpu::DeviceSpec;
use mmg_models::suite::stable_diffusion::{pipeline, StableDiffusionConfig};
use mmg_profiler::Profiler;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let spec = DeviceSpec::a100_80gb();
    print_artifact("Fig. 9", &fig9::render(&fig9::run(&spec, &fig9::default_sizes())));
    let profiler = Profiler::new(spec, AttnImpl::Flash);
    let mut group = c.benchmark_group("fig9");
    for image_size in [64usize, 128, 256, 512] {
        let p = pipeline(&StableDiffusionConfig { image_size, ..Default::default() });
        group.bench_with_input(BenchmarkId::new("profile_sd", image_size), &p, |b, p| {
            b.iter(|| black_box(p).profile(&profiler).breakdown())
        });
    }
    group.finish();
}

criterion_group! { name = benches; config = experiment_criterion(); targets = bench }
criterion_main!(benches);
