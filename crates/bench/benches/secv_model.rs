//! Section V — analytical memory model evaluation.

use criterion::{criterion_group, criterion_main, Criterion};
use mmg_analytics::seqlen_model::DiffusionSeqModel;
use mmg_bench::{experiment_criterion, print_artifact};
use mmg_core::experiments::secv;
use mmg_gpu::DeviceSpec;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let spec = DeviceSpec::a100_80gb();
    print_artifact("Section V", &secv::render(&secv::run(&spec, 512)));
    c.bench_function("secv/cumulative_memory", |b| {
        b.iter(|| {
            DiffusionSeqModel::stable_diffusion(black_box(512)).cumulative_similarity_bytes()
        })
    });
}

criterion_group! { name = benches; config = experiment_criterion(); targets = bench }
criterion_main!(benches);
