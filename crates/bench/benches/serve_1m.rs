//! Serving fast path — one million simulated requests per iteration.
//!
//! Exercises the streaming (constant-memory) mode of the cluster DES on
//! synthetic constant service curves, so the figure isolates the
//! event-loop fast path: calendar queue, slot pool, batched arrival
//! generation, and sketch-based latency aggregation.

use criterion::{criterion_group, criterion_main, Criterion};
use mmg_bench::print_artifact;
use mmg_models::ModelId;
use mmg_serve::{
    simulate, ArrivalProcess, RequestMix, ScenarioCfg, SchedulerKind, ServiceCurve,
    ServiceProfile, SloReport, SloSpec,
};
use mmg_telemetry::Registry;
use std::hint::black_box;

fn scenario() -> (ScenarioCfg, ServiceProfile) {
    let mix = RequestMix::new(vec![(ModelId::StableDiffusion, 8.0), (ModelId::Parti, 2.0)]);
    let profile = ServiceProfile::new(vec![
        ServiceCurve::constant(ModelId::StableDiffusion, 0.015),
        ServiceCurve::constant(ModelId::Parti, 0.03),
    ]);
    let rate = 0.8 * 4.0 / profile.mean_base_s(&mix);
    let mut cfg = ScenarioCfg::new(
        4,
        mix,
        ArrivalProcess::poisson(rate),
        SchedulerKind::Dynamic { max_batch: 16 },
        SloSpec::ServiceMultiple(4.0),
        1e9,
        42,
    );
    cfg.full_records = false;
    cfg.max_requests = Some(1_000_000);
    (cfg, profile)
}

fn bench(c: &mut Criterion) {
    let (cfg, profile) = scenario();
    let result = simulate(&cfg, &profile, &Registry::new());
    print_artifact("Serving — 1M requests", &SloReport::from_result(&result).render());
    let mut group = c.benchmark_group("serve");
    // Each iteration replays the full million-request sample path.
    group.bench_function("serve_1m", |b| {
        b.iter(|| simulate(black_box(&cfg), &profile, &Registry::new()))
    });
    group.finish();
}

criterion_group! { name = benches; config = mmg_bench::experiment_criterion(); targets = bench }
criterion_main!(benches);
