//! Table II — end-to-end Flash Attention speedups.

use criterion::{criterion_group, criterion_main, Criterion};
use mmg_bench::{experiment_criterion, print_artifact};
use mmg_core::experiments::table2;
use mmg_gpu::DeviceSpec;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let spec = DeviceSpec::a100_80gb();
    print_artifact("Table II", &table2::render(&table2::run(&spec)));
    c.bench_function("table2/full_suite_both_impls", |b| {
        b.iter(|| table2::run(black_box(&spec)))
    });
}

criterion_group! { name = benches; config = experiment_criterion(); targets = bench }
criterion_main!(benches);
