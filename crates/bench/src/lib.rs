//! # mmg-bench
//!
//! Criterion benchmark harness: one bench target per paper table/figure
//! (see `benches/`). Each target first *prints* the regenerated artifact —
//! so `cargo bench` both re-derives the paper's rows/series and measures
//! how long the reproduction itself takes — then benchmarks the
//! experiment's hot path.

#![deny(missing_docs)]

use criterion::Criterion;

/// A Criterion configured for the experiment workloads: small sample
/// counts (each experiment iteration profiles whole model suites) and a
/// short measurement window, so `cargo bench` completes in minutes.
#[must_use]
pub fn experiment_criterion() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(4))
        .warm_up_time(std::time::Duration::from_millis(500))
}

/// Prints a regenerated artifact with a separating banner.
pub fn print_artifact(name: &str, body: &str) {
    println!("\n================ {name} ================\n{body}");
}
