//! `repro bench-check` — compare two `BENCH_*.json` snapshots and flag
//! regressions.
//!
//! A snapshot (written by `repro bench-snapshot`) records per-experiment
//! wall seconds plus throughput figures for the serving fast path
//! (`serve.requests_per_sec`), the multi-cluster fleet simulator
//! (`fleet.requests_per_sec`), the token-level serving engine
//! (`token.tokens_per_sec`), the optimization-pass headline
//! (`optimize.speedup_all_passes`), and the power-capped serving
//! frontier (`energy.best_good_per_wh`). This module diffs two
//! snapshots:
//!
//! * an **experiment** regresses when its new wall time exceeds the old
//!   by more than the threshold — but only when at least one side is
//!   above the wall-time floor, so micro-benchmarks that jitter between
//!   2 ms and 4 ms don't page anyone;
//! * a **throughput** figure (`serve`, `fleet`, `token`, `optimize`)
//!   regresses when its value *drops* by more than the threshold (the
//!   direction flips).
//!
//! Only experiments present in both snapshots are compared (the suite
//! grows PR over PR; a new experiment has no baseline). The comparison
//! is pure data → data, so the CLI wrapper stays a thin argument parser
//! and the whole policy is unit-testable.

use serde_json::Value;

/// Default regression threshold: 15% (the CI wiring passes a much
/// looser one — shared runners jitter).
pub const DEFAULT_THRESHOLD: f64 = 0.15;
/// Default wall-time floor below which experiment timings are ignored.
pub const DEFAULT_MIN_WALL_S: f64 = 0.05;

/// Comparison of one figure across the two snapshots.
#[derive(Debug, Clone, PartialEq)]
pub struct FigureDelta {
    /// Figure name (`experiment:<id>`, `serve:requests_per_sec`,
    /// `fleet:requests_per_sec`, `token:tokens_per_sec`,
    /// `optimize:speedup_all_passes`, or `energy:best_good_per_wh`).
    pub name: String,
    /// Baseline value.
    pub old: f64,
    /// Candidate value.
    pub new: f64,
    /// `new/old - 1` (positive = slower for wall times, faster for
    /// throughputs).
    pub ratio: f64,
    /// Whether this delta crosses the regression threshold.
    pub regressed: bool,
}

/// The verdict of a snapshot comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchCheck {
    /// Per-figure deltas, experiments first (snapshot order), then the
    /// throughput figures (serve, fleet, token).
    pub deltas: Vec<FigureDelta>,
    /// Experiments present in only one snapshot (skipped).
    pub skipped: Vec<String>,
    /// Threshold the check ran with.
    pub threshold: f64,
}

impl BenchCheck {
    /// Whether any figure regressed.
    #[must_use]
    pub fn regressed(&self) -> bool {
        self.deltas.iter().any(|d| d.regressed)
    }
}

fn experiments(v: &Value) -> Vec<(String, f64)> {
    let Some(Value::Object(pairs)) = v.field("experiments") else {
        return Vec::new();
    };
    pairs
        .iter()
        .filter_map(|(name, val)| val.as_f64().map(|w| (name.clone(), w)))
        .collect()
}

/// `(section, field)` pairs holding a higher-is-better figure
/// (regression direction flips relative to wall times). The `optimize`
/// entry gates the all-passes geomean speedup: a drop means an
/// optimization pass stopped firing, not runner jitter. The `energy`
/// entry gates the best on-time-requests-per-Wh cell of the
/// power-capped batching frontier: a drop means the power model or the
/// energy-optimal batch shifted.
const THROUGHPUT_FIGURES: [(&str, &str); 5] = [
    ("serve", "requests_per_sec"),
    ("fleet", "requests_per_sec"),
    ("token", "tokens_per_sec"),
    ("optimize", "speedup_all_passes"),
    ("energy", "best_good_per_wh"),
];

fn throughput(v: &Value, section: &str, field: &str) -> Option<f64> {
    v.field(section)?.field(field)?.as_f64()
}

/// Compares a baseline snapshot against a candidate.
///
/// `threshold` is the allowed relative change (0.15 = 15%);
/// `min_wall_s` is the experiment wall-time floor: a timing delta only
/// counts when `max(old, new)` reaches it.
#[must_use]
pub fn compare(old: &Value, new: &Value, threshold: f64, min_wall_s: f64) -> BenchCheck {
    let old_exps = experiments(old);
    let new_exps = experiments(new);
    let mut deltas = Vec::new();
    let mut skipped = Vec::new();

    for (name, old_wall) in &old_exps {
        let Some((_, new_wall)) = new_exps.iter().find(|(n, _)| n == name) else {
            skipped.push(name.clone());
            continue;
        };
        let ratio = if *old_wall > 0.0 { new_wall / old_wall - 1.0 } else { 0.0 };
        let material = old_wall.max(*new_wall) >= min_wall_s;
        deltas.push(FigureDelta {
            name: format!("experiment:{name}"),
            old: *old_wall,
            new: *new_wall,
            ratio,
            regressed: material && ratio > threshold,
        });
    }
    for (name, _) in &new_exps {
        if !old_exps.iter().any(|(n, _)| n == name) {
            skipped.push(name.clone());
        }
    }

    for (section, field) in THROUGHPUT_FIGURES {
        if let (Some(old_rps), Some(new_rps)) =
            (throughput(old, section, field), throughput(new, section, field))
        {
            let ratio = if old_rps > 0.0 { new_rps / old_rps - 1.0 } else { 0.0 };
            deltas.push(FigureDelta {
                name: format!("{section}:{field}"),
                old: old_rps,
                new: new_rps,
                ratio,
                // Throughput: a regression is a *drop* beyond the threshold.
                regressed: ratio < -threshold,
            });
        }
    }

    BenchCheck { deltas, skipped, threshold }
}

/// Renders the check as the report `repro bench-check` prints.
#[must_use]
pub fn render(c: &BenchCheck) -> String {
    let mut out = String::new();
    for d in &c.deltas {
        let mark = if d.regressed { "REGRESSED" } else { "ok" };
        out.push_str(&format!(
            "{:<40} {:>12.4} -> {:>12.4} ({:+.1}%)  {mark}\n",
            d.name,
            d.old,
            d.new,
            d.ratio * 100.0
        ));
    }
    if !c.skipped.is_empty() {
        out.push_str(&format!("skipped (present in one snapshot): {}\n", c.skipped.join(", ")));
    }
    out.push_str(&format!(
        "bench-check: {} figures compared at ±{:.0}% — {}\n",
        c.deltas.len(),
        c.threshold * 100.0,
        if c.regressed() { "REGRESSION" } else { "no regression" }
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot(exps: &[(&str, f64)], rps: Option<f64>) -> Value {
        let mut fields = vec![(
            "experiments".to_string(),
            Value::Object(
                exps.iter().map(|(n, w)| ((*n).to_string(), Value::from(*w))).collect(),
            ),
        )];
        if let Some(r) = rps {
            fields.push((
                "serve".to_string(),
                Value::Object(vec![("requests_per_sec".to_string(), Value::from(r))]),
            ));
        }
        Value::Object(fields)
    }

    #[test]
    fn clean_comparison_passes() {
        let old = snapshot(&[("fig6", 1.0), ("table2", 2.0)], Some(2.9e6));
        let new = snapshot(&[("fig6", 1.05), ("table2", 1.9)], Some(2.95e6));
        let c = compare(&old, &new, 0.15, 0.05);
        assert!(!c.regressed());
        assert_eq!(c.deltas.len(), 3);
        assert!(c.skipped.is_empty());
    }

    #[test]
    fn slow_experiment_regresses() {
        let old = snapshot(&[("fig6", 1.0)], None);
        let new = snapshot(&[("fig6", 1.2)], None);
        let c = compare(&old, &new, 0.15, 0.05);
        assert!(c.regressed());
        assert_eq!(c.deltas[0].name, "experiment:fig6");
        assert!(c.deltas[0].regressed);
    }

    #[test]
    fn tiny_wall_times_never_regress() {
        // 2 ms -> 40 ms is a 20x blowup but below the floor: jitter on a
        // shared runner, not a regression.
        let old = snapshot(&[("fig4", 0.002)], None);
        let new = snapshot(&[("fig4", 0.040)], None);
        assert!(!compare(&old, &new, 0.15, 0.05).regressed());
        // …but crossing the floor counts.
        let new = snapshot(&[("fig4", 0.080)], None);
        assert!(compare(&old, &new, 0.15, 0.05).regressed());
    }

    #[test]
    fn serve_throughput_drop_regresses_and_gain_does_not() {
        let old = snapshot(&[], Some(2.9e6));
        let drop = snapshot(&[], Some(2.0e6));
        assert!(compare(&old, &drop, 0.15, 0.05).regressed());
        let gain = snapshot(&[], Some(4.0e6));
        assert!(!compare(&old, &gain, 0.15, 0.05).regressed());
        // A wall-time-style increase must NOT be treated as a regression
        // for a throughput figure.
        let c = compare(&old, &gain, 0.15, 0.05);
        assert!(c.deltas[0].ratio > 0.15 && !c.deltas[0].regressed);
    }

    #[test]
    fn fleet_throughput_is_compared_like_serve() {
        let with_fleet = |rps: f64| {
            let mut v = snapshot(&[], None);
            if let Value::Object(fields) = &mut v {
                fields.push((
                    "fleet".to_string(),
                    Value::Object(vec![("requests_per_sec".to_string(), Value::from(rps))]),
                ));
            }
            v
        };
        let old = with_fleet(12.0e6);
        let drop = with_fleet(8.0e6);
        let c = compare(&old, &drop, 0.15, 0.05);
        assert!(c.regressed());
        assert_eq!(c.deltas[0].name, "fleet:requests_per_sec");
        // A gain is not a regression, and a missing section is skipped
        // silently (older snapshots predate the fleet figure).
        assert!(!compare(&old, &with_fleet(20.0e6), 0.15, 0.05).regressed());
        assert!(!compare(&snapshot(&[], None), &old, 0.15, 0.05).regressed());
    }

    #[test]
    fn token_throughput_is_gated_on_tokens_per_sec() {
        let with_token = |tps: f64| {
            let mut v = snapshot(&[], None);
            if let Value::Object(fields) = &mut v {
                fields.push((
                    "token".to_string(),
                    Value::Object(vec![("tokens_per_sec".to_string(), Value::from(tps))]),
                ));
            }
            v
        };
        let old = with_token(5.0e6);
        let c = compare(&old, &with_token(3.0e6), 0.15, 0.05);
        assert!(c.regressed());
        assert_eq!(c.deltas[0].name, "token:tokens_per_sec");
        assert!(!compare(&old, &with_token(8.0e6), 0.15, 0.05).regressed());
        // Older snapshots predate the token figure: skipped silently.
        assert!(!compare(&snapshot(&[], None), &old, 0.15, 0.05).regressed());
    }

    #[test]
    fn optimize_speedup_is_gated_like_a_throughput() {
        let with_opt = |speedup: f64| {
            let mut v = snapshot(&[], None);
            if let Value::Object(fields) = &mut v {
                fields.push((
                    "optimize".to_string(),
                    Value::Object(vec![(
                        "speedup_all_passes".to_string(),
                        Value::from(speedup),
                    )]),
                ));
            }
            v
        };
        let old = with_opt(2.0);
        let c = compare(&old, &with_opt(1.2), 0.15, 0.05);
        assert!(c.regressed());
        assert_eq!(c.deltas[0].name, "optimize:speedup_all_passes");
        // A larger speedup is never a regression; older snapshots that
        // predate the figure are skipped silently.
        assert!(!compare(&old, &with_opt(3.0), 0.15, 0.05).regressed());
        assert!(!compare(&snapshot(&[], None), &old, 0.15, 0.05).regressed());
    }

    #[test]
    fn energy_frontier_is_gated_like_a_throughput() {
        let with_energy = |good_per_wh: f64| {
            let mut v = snapshot(&[], None);
            if let Value::Object(fields) = &mut v {
                fields.push((
                    "energy".to_string(),
                    Value::Object(vec![(
                        "best_good_per_wh".to_string(),
                        Value::from(good_per_wh),
                    )]),
                ));
            }
            v
        };
        let old = with_energy(40.0);
        let c = compare(&old, &with_energy(20.0), 0.15, 0.05);
        assert!(c.regressed());
        assert_eq!(c.deltas[0].name, "energy:best_good_per_wh");
        // More goodput per watt-hour is never a regression; snapshots
        // that predate the figure are skipped silently.
        assert!(!compare(&old, &with_energy(60.0), 0.15, 0.05).regressed());
        assert!(!compare(&snapshot(&[], None), &old, 0.15, 0.05).regressed());
    }

    #[test]
    fn disjoint_experiments_are_skipped_not_compared() {
        let old = snapshot(&[("fig6", 1.0), ("retired", 3.0)], None);
        let new = snapshot(&[("fig6", 1.0), ("brand-new", 9.0)], None);
        let c = compare(&old, &new, 0.15, 0.05);
        assert!(!c.regressed());
        assert_eq!(c.skipped, vec!["retired".to_string(), "brand-new".to_string()]);
    }

    #[test]
    fn render_reports_verdict() {
        let old = snapshot(&[("fig6", 1.0)], Some(2.9e6));
        let new = snapshot(&[("fig6", 2.0)], Some(2.9e6));
        let text = render(&compare(&old, &new, 0.15, 0.05));
        assert!(text.contains("REGRESSED") && text.contains("REGRESSION"));
        let ok = render(&compare(&old, &old, 0.15, 0.05));
        assert!(ok.contains("no regression"));
    }
}
