//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro all                    # every experiment, paper order
//! repro table2 fig6            # selected experiments
//! repro --list                 # available experiment ids
//! repro --device v100 …        # run on a different simulated device
//! repro --jobs 4 …             # worker threads (default: all cores)
//! repro --json …               # one {"experiment", "result"} line each
//! repro --metrics m.txt …      # Prometheus dump of telemetry counters
//! repro --trace-out t.json …   # Perfetto trace of one SD UNet step
//! repro --manifest run.json …  # run manifest (device, ids, counters)
//! repro bench-snapshot         # time each experiment → BENCH_<date>.json
//! repro bench-check old new    # diff two snapshots; exit 1 on regression
//! repro serve --gpus 4 --mix sd:8,parti:2 --scheduler dynamic --slo-ms 2000
//!                              # serving-cluster DES (see `serve` below)
//! repro token --model llama --gpus 2 --scheduler continuous --util 0.8
//!                              # token-level serving DES (see `token` below)
//! repro optimize --fuse --width int8 --graph-capture --sampler-steps 4
//!                              # suite under one explicit pass config
//! ```
//!
//! The `serve` subcommand runs one scenario on the `mmg-serve`
//! discrete-event cluster simulator — profiler-grounded service curves,
//! a mixed request stream, and a chosen router/scheduler — and prints
//! the per-model latency/SLO report. Flags: `--gpus`, `--mix`
//! (`model:weight,…`), `--arrival` (poisson | bursty | diurnal),
//! `--rate` (requests/s; default targets 0.8 utilization),
//! `--scheduler` (fifo | static | dynamic | pods), `--batch`,
//! `--router` (rr | least-work | affinity), `--slo-ms` (default: 4x
//! each model's own service time), `--duration-s`, `--requests`
//! (arrival cap), `--seed`, `--metrics <path>` (Prometheus dump of the
//! `serve_*` series), `--trace-out <path>` (Perfetto flight-recorder
//! trace: per-GPU batch lanes, scheduler instants, counter tracks), and
//! `--full-records`. One seed fixes the whole sample path, so stdout —
//! and the flight trace — is byte-identical across runs, machines, and
//! job counts.
//!
//! By default `serve` runs in streaming mode: constant memory no matter
//! how many requests are simulated, with report quantiles from a
//! mergeable GK sketch (rank error ≤ 0.001·n + 1, i.e. well inside the
//! printed precision). `--full-records` retains every per-request
//! record and reports exact quantiles — same trajectory, more memory. A
//! perf line (wall seconds, simulated requests/s) goes to stderr so
//! stdout stays byte-deterministic.
//!
//! The `token` subcommand runs one scenario on the token-granularity
//! autoregressive serving engine: GPUs advance in decode *iterations*
//! with continuous (in-flight) batching or run-to-completion static
//! batching, chunked prefill interleaved with decode, and a per-GPU
//! KV-cache ledger balanced against the SKU's HBM budget. Flags:
//! `--model` (llama | parti | muse), `--gpus`, `--arrival`, `--rate`
//! (default: `--util` × cluster capacity from the profiled curve),
//! `--prompt-len` / `--output-len` (median tokens), `--kv-budget`
//! (GiB/GPU; default HBM − weights), `--scheduler`
//! (static | continuous), `--batch`, `--policy` (decode | prefill
//! priority), `--admission` (prompt | reserve), `--chunk`,
//! `--duration-s`, `--requests`, `--seed`, `--metrics-out`,
//! `--trace-out`, `--jobs`. Prints the TTFT/TPOT phase table, the
//! per-GPU KV table, and the goodput line; stdout and the metrics dump
//! are byte-identical for every `--jobs` value.
//!
//! Experiments run on a worker pool (`--jobs`); outputs are printed and
//! telemetry merged in experiment order, so stdout and counter totals
//! are byte-identical for every job count. Randomness is seed-stable
//! too: the only stochastic experiment (Fig. 1's fleet sampler) uses a
//! fixed seed, so two invocations of the same command — serial or
//! parallel, warm or cold memo — produce identical stdout.
//! Every run ends with a
//! run-manifest JSON line: the simulated device, the experiments
//! executed, and final telemetry counter totals. The line is printed
//! to stdout and is deterministic — the wall-clock `elapsed_s` goes to
//! stderr on its own, so byte-comparing two runs' stdout (CI's `--jobs`
//! determinism gate) is a plain `cmp`. With `--manifest <path>` the
//! manifest is written to the file instead, with `elapsed_s` included.

use std::process::ExitCode;
use std::time::Instant;

use mmg_attn::AttnImpl;
use mmg_core::{
    global_memo, run_experiment_value_with, run_experiment_with, run_manifest, run_suite,
    run_suite_with, ExecContext, ExperimentId,
};
use mmg_gpu::DeviceSpec;
use mmg_models::{suite, ModelId};
use mmg_profiler::trace::to_chrome_trace_object;
use mmg_profiler::Profiler;
use serde_json::Value;

fn device_by_name(name: &str) -> Option<DeviceSpec> {
    match name.to_lowercase().as_str() {
        "a100" | "a100-80gb" => Some(DeviceSpec::a100_80gb()),
        "a100-40gb" => Some(DeviceSpec::a100_40gb()),
        "v100" => Some(DeviceSpec::v100_32gb()),
        "h100" => Some(DeviceSpec::h100_80gb()),
        "l4" | "l4-24gb" => Some(DeviceSpec::l4_24gb()),
        "h200" | "h200-141gb" => Some(DeviceSpec::h200_141gb()),
        _ => None,
    }
}

/// Profiles one Stable Diffusion UNet denoising step with per-op cache
/// simulation on the global registry and returns the Perfetto trace
/// object (`{"traceEvents": [...], "displayTimeUnit": "us"}`).
fn unet_step_trace(spec: &DeviceSpec) -> Result<String, String> {
    let pipeline = suite::build(ModelId::StableDiffusion);
    let stage = pipeline
        .stages
        .iter()
        .find(|s| s.name == "unet_step")
        .ok_or_else(|| "StableDiffusion pipeline has no unet_step stage".to_string())?;
    let profiler = Profiler::new(spec.clone(), AttnImpl::Flash).with_cache_sim(20_000);
    Ok(to_chrome_trace_object(&profiler.profile(&stage.graph)))
}

fn write_file(path: &str, contents: &str, what: &str) -> Result<(), String> {
    std::fs::write(path, contents).map_err(|e| format!("cannot write {what} to '{path}': {e}"))
}

/// Days-since-epoch → proleptic Gregorian `(year, month, day)`
/// (Howard Hinnant's `civil_from_days`), so the bench snapshot can stamp
/// its filename without a calendar dependency.
fn civil_from_days(days: i64) -> (i64, u32, u32) {
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

fn today_stamp() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs() as i64)
        .unwrap_or(0);
    let (y, m, d) = civil_from_days(secs.div_euclid(86_400));
    format!("{y:04}-{m:02}-{d:02}")
}

/// Times every experiment serially (sharing the process memo, so later
/// experiments see the warm entries earlier ones created — the shipped
/// behaviour) and writes `{experiment → wall seconds}` plus memo
/// statistics to `path` (default `BENCH_<date>.json`).
fn bench_snapshot(spec: &DeviceSpec, path: Option<String>) -> Result<String, String> {
    let memo = global_memo();
    let ctx = ExecContext::isolated(spec.clone(), memo.clone());
    let started = Instant::now();
    let mut entries = Vec::new();
    for &id in &ExperimentId::ALL {
        let t0 = Instant::now();
        let _ = run_experiment_with(id, &ctx);
        entries.push((id.to_string(), Value::from(t0.elapsed().as_secs_f64())));
    }
    // Serving fast-path figure: one streaming (constant-memory) run of
    // the cluster DES at ~0.8 utilization, sized to ~2M arrivals, so the
    // snapshot tracks simulated-requests-per-second alongside the
    // experiment timings.
    let serve = {
        use mmg_serve::{
            simulate, ArrivalProcess, RequestMix, ScenarioCfg, SchedulerKind, ServiceProfile,
            SloSpec,
        };
        let profiler = ctx.profiler(AttnImpl::Flash);
        let mix = RequestMix::parse("sd:8,parti:2")?;
        let models: Vec<ModelId> = mix.models().collect();
        let profile = ServiceProfile::from_profiler(&profiler, &models, &[1, 2, 4, 8, 16]);
        let rate = 0.8 * 4.0 / profile.mean_base_s(&mix);
        let duration_s = 2_000_000.0 / rate;
        let mut cfg = ScenarioCfg::new(
            4,
            mix,
            ArrivalProcess::poisson(rate),
            SchedulerKind::Dynamic { max_batch: 16 },
            SloSpec::ServiceMultiple(4.0),
            duration_s,
            42,
        );
        cfg.full_records = false;
        let t0 = Instant::now();
        let result = simulate(&cfg, &profile, &ctx.registry);
        let wall_s = t0.elapsed().as_secs_f64();
        Value::Object(vec![
            ("wall_s".to_string(), Value::from(wall_s)),
            ("simulated_requests".to_string(), Value::from(result.arrivals)),
            (
                "requests_per_sec".to_string(),
                Value::from(result.arrivals as f64 / wall_s.max(1e-9)),
            ),
        ])
    };
    // Fleet fast-path figure: the multi-cluster DES on a 128-GPU
    // heterogeneous fleet (8 clusters cycling the four SKUs), Poisson
    // arrivals at ~0.8 offered utilization, FIFO + round-robin so every
    // cluster takes the O(1)-per-request fast lane. Sized to >100M
    // aggregate arrivals — the committed throughput headline.
    let fleet = {
        let t0 = Instant::now();
        let result = run_fleet(
            &FleetRunCfg {
                clusters: 8,
                gpus_per_cluster: 16,
                requests: Some(100_000_000),
                ..FleetRunCfg::default()
            },
            &ctx.registry,
            &memo,
            1,
        )?;
        let wall_s = t0.elapsed().as_secs_f64();
        Value::Object(vec![
            ("wall_s".to_string(), Value::from(wall_s)),
            ("simulated_requests".to_string(), Value::from(result.result.arrivals())),
            (
                "requests_per_sec".to_string(),
                Value::from(result.result.arrivals() as f64 / wall_s.max(1e-9)),
            ),
        ])
    };
    // Token fast-path figure: one run of the token-level (iteration
    // granularity) serving DES — continuous batching on 4 GPUs at ~0.8
    // utilization, sized to >2M decoded tokens — so the snapshot tracks
    // simulated-tokens-per-second alongside the request-level figures.
    let token = {
        use mmg_serve::{
            simulate_token, ArrivalProcess, KvAdmission, KvLedger, LengthDist, PhasePriority,
            TokenBatching, TokenScenarioCfg, TokenServiceCurve, TokenSlo,
        };
        let profiler = ctx.profiler(AttnImpl::Flash);
        let curve = TokenServiceCurve::from_profiler(&profiler, ModelId::Llama2);
        let gpus = 4usize;
        let cap = 32usize;
        let prompt = LengthDist::new(512.0, 0.3, 16, 4096);
        let output = LengthDist::new(128.0, 0.3, 4, 1024);
        let slo = TokenSlo::from_curve(&curve, prompt.mean(), output.mean(), cap);
        let rate = 0.8 * gpus as f64 / curve.request_gpu_s(prompt.mean(), output.mean(), cap);
        let duration_s = 2_000_000.0 / (rate * output.mean());
        let cfg = TokenScenarioCfg {
            gpus,
            model: ModelId::Llama2,
            arrival: ArrivalProcess::poisson(rate),
            batching: TokenBatching::Continuous { max_batch: cap },
            priority: PhasePriority::Decode,
            admission: KvAdmission::Prompt,
            chunk_tokens: 512,
            prompt,
            output,
            slo,
            duration_s,
            max_requests: None,
            seed: 42,
        };
        let budget = KvLedger::default_budget(spec, curve.weight_bytes);
        let t0 = Instant::now();
        let result = simulate_token(&cfg, &curve, budget, &ctx.registry);
        let wall_s = t0.elapsed().as_secs_f64();
        Value::Object(vec![
            ("wall_s".to_string(), Value::from(wall_s)),
            ("simulated_tokens".to_string(), Value::from(result.stats.decoded_tokens)),
            (
                "tokens_per_sec".to_string(),
                Value::from(result.stats.decoded_tokens as f64 / wall_s.max(1e-9)),
            ),
        ])
    };
    // Optimization-pass figure: the all-passes geomean speedup across
    // model families, plus the wall time of re-running the experiment
    // against the now-warm memo. `speedup_all_passes` is gated by
    // bench-check the way the throughput figures are: a drop means a
    // pass stopped firing.
    let optimize_fig = {
        let t0 = Instant::now();
        let r = mmg_core::experiments::optimize::run_ctx(&ctx);
        let wall_s = t0.elapsed().as_secs_f64();
        Value::Object(vec![
            ("wall_s".to_string(), Value::from(wall_s)),
            ("speedup_all_passes".to_string(), Value::from(r.speedup_all_passes)),
        ])
    };
    // Energy figure: the best on-time-requests-per-Wh cell of the
    // power-capped batching frontier, re-run against the warm memo.
    // Gated by bench-check like the throughput figures: a drop means
    // the power model or the energy-optimal batch size shifted, not
    // runner jitter.
    let energy_fig = {
        let t0 = Instant::now();
        let r = mmg_core::experiments::energy::run_ctx(&ctx);
        let wall_s = t0.elapsed().as_secs_f64();
        Value::Object(vec![
            ("wall_s".to_string(), Value::from(wall_s)),
            ("best_good_per_wh".to_string(), Value::from(r.best_good_per_wh)),
        ])
    };
    let snapshot = Value::Object(vec![
        ("date".to_string(), Value::from(today_stamp())),
        ("device".to_string(), Value::from(spec.name.clone())),
        ("experiments".to_string(), Value::Object(entries)),
        ("serve".to_string(), serve),
        ("fleet".to_string(), fleet),
        ("token".to_string(), token),
        ("optimize".to_string(), optimize_fig),
        ("energy".to_string(), energy_fig),
        ("total_s".to_string(), Value::from(started.elapsed().as_secs_f64())),
        (
            "memo".to_string(),
            Value::Object(vec![
                ("hits".to_string(), Value::from(memo.hits())),
                ("misses".to_string(), Value::from(memo.misses())),
                ("entries".to_string(), Value::from(memo.len() as u64)),
            ]),
        ),
    ]);
    let path = path.unwrap_or_else(|| format!("BENCH_{}.json", today_stamp()));
    let body = serde_json::to_string_pretty(&snapshot).expect("snapshots always serialize");
    write_file(&path, &body, "bench snapshot")?;
    Ok(path)
}

/// `repro optimize` — the kernel-graph optimization-pass experiment.
/// With no pass flags, runs the full per-family grid on the suite
/// engine (deterministic for every `--jobs` value). With any of
/// `--fuse`, `--width`, `--graph-capture`, or `--sampler-steps`, runs
/// the suite under exactly that pass configuration and prints the
/// eager-vs-optimized table.
fn optimize_main(args: &[String]) -> Result<(), String> {
    use mmg_core::experiments::optimize;
    use mmg_graph::{ElemWidth, OptConfig};

    let mut spec = DeviceSpec::a100_80gb();
    let mut fuse = false;
    let mut width: Option<ElemWidth> = None;
    let mut graph_capture = false;
    let mut sampler_steps: Option<usize> = None;
    let mut jobs = 1usize;
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        i += 1;
        if flag == "--fuse" {
            fuse = true;
            continue;
        }
        if flag == "--graph-capture" {
            graph_capture = true;
            continue;
        }
        let value = args
            .get(i)
            .ok_or_else(|| format!("{flag} requires a value"))?;
        match flag {
            "--device" => {
                spec = device_by_name(value).ok_or_else(|| format!("unknown device '{value}'"))?;
            }
            "--width" => {
                width = Some(match value.to_lowercase().as_str() {
                    "fp16" => ElemWidth::Fp16,
                    "fp8" => ElemWidth::Fp8,
                    "int8" => ElemWidth::Int8,
                    other => return Err(format!("unknown width '{other}'; expected fp16 | fp8 | int8")),
                });
            }
            "--sampler-steps" => {
                sampler_steps = Some(
                    value
                        .parse::<usize>()
                        .ok()
                        .filter(|&n| n > 0)
                        .ok_or_else(|| "--sampler-steps requires a positive integer".to_string())?,
                );
            }
            "--jobs" => {
                jobs = value
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| "--jobs requires a positive integer".to_string())?;
            }
            other => {
                return Err(format!(
                    "unknown optimize flag '{other}'; expected --device | --fuse | --width | --graph-capture | --sampler-steps | --jobs"
                ));
            }
        }
        i += 1;
    }

    let custom = fuse || width.is_some() || graph_capture || sampler_steps.is_some();
    if custom {
        let opt = OptConfig { fuse, width: width.unwrap_or(ElemWidth::Fp16), graph_capture };
        let ctx = ExecContext::shared(spec.clone());
        println!("{}", optimize::render_single(&optimize::run_single_ctx(&ctx, opt, sampler_steps)));
    } else {
        // Full grid through the suite engine: stdout is byte-identical
        // for every --jobs value (one experiment, merged in id order).
        let memo = global_memo();
        let registry = mmg_telemetry::global();
        println!("device: {}\n", spec.name);
        for report in run_suite(&[ExperimentId::Optimize], &spec, jobs, &memo, &registry) {
            println!("{report}");
        }
    }
    Ok(())
}

/// Runs one serving scenario on the `mmg-serve` cluster DES and prints
/// the per-model SLO report. Deterministic: one seed fixes the sample
/// path, so stdout is byte-identical across invocations.
fn serve_main(args: &[String]) -> Result<(), String> {
    use mmg_serve::{
        simulate, simulate_recorded, ArrivalProcess, FlightCfg, RequestMix, ScenarioCfg,
        SchedulerKind, ServiceProfile, SloReport, SloSpec,
    };

    let mut spec = DeviceSpec::a100_80gb();
    let mut gpus = 4usize;
    let mut mix_spec = "sd:8,parti:2".to_string();
    let mut arrival_name = "poisson".to_string();
    let mut rate: Option<f64> = None;
    let mut scheduler_name = "dynamic".to_string();
    let mut batch = 16usize;
    let mut router_name: Option<String> = None;
    let mut slo_ms: Option<f64> = None;
    let mut duration_s = 120.0f64;
    let mut max_requests: Option<u64> = None;
    let mut seed = 42u64;
    let mut metrics_path: Option<String> = None;
    let mut metrics_out: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut full_records = false;
    let mut attrib = false;
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        i += 1;
        if flag == "--full-records" {
            full_records = true;
            continue;
        }
        if flag == "--attrib" {
            attrib = true;
            continue;
        }
        let value = args
            .get(i)
            .ok_or_else(|| format!("{flag} requires a value"))?;
        match flag {
            "--device" => {
                spec = device_by_name(value).ok_or_else(|| format!("unknown device '{value}'"))?;
            }
            "--gpus" => {
                gpus = value
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| "--gpus requires a positive integer".to_string())?;
            }
            "--mix" => mix_spec = value.clone(),
            "--arrival" => arrival_name = value.clone(),
            "--rate" => {
                rate = Some(
                    value
                        .parse::<f64>()
                        .ok()
                        .filter(|r| *r > 0.0)
                        .ok_or_else(|| "--rate requires a positive number".to_string())?,
                );
            }
            "--scheduler" => scheduler_name = value.clone(),
            "--batch" => {
                batch = value
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| "--batch requires a positive integer".to_string())?;
            }
            "--router" => router_name = Some(value.clone()),
            "--slo-ms" => {
                slo_ms = Some(
                    value
                        .parse::<f64>()
                        .ok()
                        .filter(|s| *s > 0.0)
                        .ok_or_else(|| "--slo-ms requires a positive number".to_string())?,
                );
            }
            "--duration-s" => {
                duration_s = value
                    .parse::<f64>()
                    .ok()
                    .filter(|d| *d > 0.0)
                    .ok_or_else(|| "--duration-s requires a positive number".to_string())?;
            }
            "--requests" => {
                max_requests = Some(
                    value
                        .parse::<u64>()
                        .ok()
                        .filter(|&n| n > 0)
                        .ok_or_else(|| "--requests requires a positive integer".to_string())?,
                );
            }
            "--seed" => {
                seed = value
                    .parse::<u64>()
                    .map_err(|_| "--seed requires a non-negative integer".to_string())?;
            }
            "--metrics" => metrics_path = Some(value.clone()),
            "--metrics-out" => metrics_out = Some(value.clone()),
            "--trace-out" => trace_path = Some(value.clone()),
            "--jobs" => {
                // The scenario DES is inherently serial; the flag exists so
                // determinism harnesses can assert the trace bytes do not
                // depend on the advertised worker count.
                value
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| "--jobs requires a positive integer".to_string())?;
            }
            other => {
                return Err(format!(
                    "unknown serve flag '{other}'; expected --device | --gpus | --mix | --arrival | --rate | --scheduler | --batch | --router | --slo-ms | --duration-s | --requests | --seed | --metrics | --metrics-out | --trace-out | --jobs | --full-records | --attrib"
                ));
            }
        }
        i += 1;
    }

    let mix = RequestMix::parse(&mix_spec)?;
    let scheduler = SchedulerKind::parse(&scheduler_name, batch)?;

    // Service curves come from the real profiler (shared memo + global
    // registry), at power-of-two batch sizes up to the scheduler's cap.
    let ctx = ExecContext::shared(spec.clone());
    let profiler = ctx.profiler(AttnImpl::Flash);
    let models: Vec<ModelId> = mix.models().collect();
    let cap = match scheduler {
        SchedulerKind::Fifo => 1,
        SchedulerKind::Static { batch, .. } => batch,
        SchedulerKind::Dynamic { max_batch } | SchedulerKind::Pods { max_batch } => max_batch,
    };
    let batches: Vec<usize> = (0..).map(|i| 1usize << i).take_while(|&b| b <= cap).collect();
    let mut profile = ServiceProfile::from_profiler(&profiler, &models, &batches);
    if matches!(scheduler, SchedulerKind::Pods { .. }) {
        let factors: Vec<(ModelId, f64)> = models
            .iter()
            .map(|&m| (m, mmg_core::experiments::serve_sweep::pod_factor(&profiler, m)))
            .collect();
        profile = profile.with_pod_factors(&factors);
    }

    let mean_service_s = profile.mean_base_s(&mix);
    let rate = rate.unwrap_or(0.8 * gpus as f64 / mean_service_s);
    let arrival = ArrivalProcess::parse(&arrival_name, rate)?;
    let slo = match slo_ms {
        Some(ms) => SloSpec::FixedS(ms / 1e3),
        None => SloSpec::ServiceMultiple(4.0),
    };
    let mut cfg = ScenarioCfg::new(gpus, mix, arrival, scheduler, slo, duration_s, seed);
    cfg.full_records = full_records;
    cfg.max_requests = max_requests;
    if attrib {
        // Latency attribution plus the SRE-style burn-rate alert engine,
        // budgeted against a 95% on-time objective over the horizon.
        cfg = cfg.with_health(0.95);
    }
    if let Some(name) = &router_name {
        cfg.router = mmg_serve::RouterKind::parse(name)?;
    }

    let sim_started = Instant::now();
    let (result, flight) = if trace_path.is_some() {
        let (result, flight) =
            simulate_recorded(&cfg, &profile, &ctx.registry, FlightCfg::for_horizon(duration_s));
        (result, Some(flight))
    } else {
        (simulate(&cfg, &profile, &ctx.registry), None)
    };
    let sim_wall_s = sim_started.elapsed().as_secs_f64();
    println!(
        "device: {} | gpus: {gpus} | mix: {mix_spec} | arrival: {arrival_name} @ {rate:.3}/s",
        spec.name
    );
    println!(
        "scheduler: {} (batch cap {cap}) | slo: {} | duration: {duration_s}s | seed: {seed}\n",
        scheduler.name(),
        match slo {
            SloSpec::FixedS(s) => format!("{:.0} ms", s * 1e3),
            _ => "4.0x service".to_string(),
        },
    );
    println!("{}", SloReport::from_result(&result).render());
    // Perf to stderr: stdout must stay byte-identical across machines.
    eprintln!(
        "serve: {} arrivals simulated in {sim_wall_s:.3}s wall ({:.0} simulated req/s, {})",
        result.arrivals,
        result.arrivals as f64 / sim_wall_s.max(1e-9),
        if full_records { "full records" } else { "streaming" },
    );
    if let Some(path) = &metrics_path {
        write_file(path, &ctx.registry.render_prometheus(), "metrics")?;
    }
    if let Some(path) = &metrics_out {
        // Extension-dispatched export of the final registry: `.json`
        // gets the structured snapshot, anything else the Prometheus
        // text exposition.
        let body = if path.ends_with(".json") {
            let mut s = serde_json::to_string_pretty(&ctx.registry.snapshot_json())
                .expect("registry snapshots always serialize");
            s.push('\n');
            s
        } else {
            ctx.registry.render_prometheus()
        };
        write_file(path, &body, "metrics")?;
    }
    if let (Some(path), Some(flight)) = (&trace_path, &flight) {
        write_file(path, &flight.to_chrome_trace_object(), "serve flight trace")?;
        eprintln!(
            "flight trace: {} batch spans, {} scheduler events, {} windows",
            flight.batches.len(),
            flight.instants.len(),
            flight.series.iter().count(),
        );
    }
    Ok(())
}

/// Runs one token-level (iteration-granularity) serving scenario on the
/// `mmg-serve::token` engine and prints the TTFT/TPOT/KV report.
/// Deterministic: one seed fixes the sample path, so stdout — and the
/// `--metrics-out` dump — is byte-identical across invocations and
/// `--jobs` values.
fn token_main(args: &[String]) -> Result<(), String> {
    use mmg_serve::{
        parse_model, simulate_token, simulate_token_recorded, ArrivalProcess, FlightCfg,
        KvAdmission, KvLedger, LengthDist, PhasePriority, TokenBatching, TokenReport,
        TokenScenarioCfg, TokenServiceCurve, TokenSlo, GIB,
    };

    let mut spec = DeviceSpec::a100_80gb();
    let mut model_name = "llama".to_string();
    let mut gpus = 2usize;
    let mut arrival_name = "poisson".to_string();
    let mut rate: Option<f64> = None;
    let mut util = 0.8f64;
    let mut prompt_len = 512.0f64;
    let mut output_len = 128.0f64;
    let mut kv_budget_gib: Option<f64> = None;
    let mut scheduler_name = "continuous".to_string();
    let mut batch = 16usize;
    let mut policy_name = "decode".to_string();
    let mut admission_name = "prompt".to_string();
    let mut chunk = 256usize;
    let mut duration_s: Option<f64> = None;
    let mut max_requests: Option<u64> = None;
    let mut seed = 42u64;
    let mut metrics_out: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        i += 1;
        let value = args
            .get(i)
            .ok_or_else(|| format!("{flag} requires a value"))?;
        match flag {
            "--device" => {
                spec = device_by_name(value).ok_or_else(|| format!("unknown device '{value}'"))?;
            }
            "--model" => model_name = value.clone(),
            "--gpus" => {
                gpus = value
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| "--gpus requires a positive integer".to_string())?;
            }
            "--arrival" => arrival_name = value.clone(),
            "--rate" => {
                rate = Some(
                    value
                        .parse::<f64>()
                        .ok()
                        .filter(|r| *r > 0.0)
                        .ok_or_else(|| "--rate requires a positive number".to_string())?,
                );
            }
            "--util" => {
                util = value
                    .parse::<f64>()
                    .ok()
                    .filter(|u| *u > 0.0)
                    .ok_or_else(|| "--util requires a positive fraction".to_string())?;
            }
            "--prompt-len" => {
                prompt_len = value
                    .parse::<f64>()
                    .ok()
                    .filter(|n| *n > 0.0)
                    .ok_or_else(|| "--prompt-len requires a positive number".to_string())?;
            }
            "--output-len" => {
                output_len = value
                    .parse::<f64>()
                    .ok()
                    .filter(|n| *n > 0.0)
                    .ok_or_else(|| "--output-len requires a positive number".to_string())?;
            }
            "--kv-budget" => {
                kv_budget_gib = Some(
                    value
                        .parse::<f64>()
                        .ok()
                        .filter(|g| *g > 0.0)
                        .ok_or_else(|| "--kv-budget requires a positive GiB count".to_string())?,
                );
            }
            "--scheduler" => scheduler_name = value.clone(),
            "--batch" => {
                batch = value
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| "--batch requires a positive integer".to_string())?;
            }
            "--policy" => policy_name = value.clone(),
            "--admission" => admission_name = value.clone(),
            "--chunk" => {
                chunk = value
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| "--chunk requires a positive integer".to_string())?;
            }
            "--duration-s" => {
                duration_s = Some(
                    value
                        .parse::<f64>()
                        .ok()
                        .filter(|d| *d > 0.0)
                        .ok_or_else(|| "--duration-s requires a positive number".to_string())?,
                );
            }
            "--requests" => {
                max_requests = Some(
                    value
                        .parse::<u64>()
                        .ok()
                        .filter(|&n| n > 0)
                        .ok_or_else(|| "--requests requires a positive integer".to_string())?,
                );
            }
            "--seed" => {
                seed = value
                    .parse::<u64>()
                    .map_err(|_| "--seed requires a non-negative integer".to_string())?;
            }
            "--metrics-out" => metrics_out = Some(value.clone()),
            "--trace-out" => trace_path = Some(value.clone()),
            "--jobs" => {
                // The token DES is inherently serial; the flag exists so
                // determinism harnesses can assert the report bytes do
                // not depend on the advertised worker count.
                value
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| "--jobs requires a positive integer".to_string())?;
            }
            other => {
                return Err(format!(
                    "unknown token flag '{other}'; expected --device | --model | --gpus | --arrival | --rate | --util | --prompt-len | --output-len | --kv-budget | --scheduler | --batch | --policy | --admission | --chunk | --duration-s | --requests | --seed | --metrics-out | --trace-out | --jobs"
                ));
            }
        }
        i += 1;
    }

    let model = parse_model(&model_name)?;
    if !TokenServiceCurve::supports(model) {
        return Err(format!(
            "model '{model_name}' is not autoregressive; token serving needs llama | parti | muse"
        ));
    }
    let batching = TokenBatching::parse(&scheduler_name, batch)?;
    let priority = PhasePriority::parse(&policy_name)?;
    let admission = KvAdmission::parse(&admission_name)?;

    // The per-step decode and cumulative prefill costs come from the
    // real profiler (shared memo + global registry).
    let ctx = ExecContext::shared(spec.clone());
    let profiler = ctx.profiler(AttnImpl::Flash);
    let curve = TokenServiceCurve::from_profiler(&profiler, model);
    let kv_budget_bytes = match kv_budget_gib {
        Some(g) => (g * GIB) as u64,
        None => KvLedger::default_budget(&spec, curve.weight_bytes),
    };
    let prompt = LengthDist::new(prompt_len, 0.3, 16, 8192);
    let output = LengthDist::new(output_len, 0.3, 1, 4096);
    let cap = batching.cap();
    let slo = TokenSlo::from_curve(&curve, prompt.mean(), output.mean(), cap);
    let rate = rate.unwrap_or_else(|| {
        util * gpus as f64 / curve.request_gpu_s(prompt.mean(), output.mean(), cap)
    });
    let arrival = ArrivalProcess::parse(&arrival_name, rate)?;
    // `--requests` without an explicit horizon sizes the horizon so the
    // realized arrival count reaches the cap (with 0.5% headroom).
    let duration_s = duration_s.unwrap_or_else(|| match max_requests {
        Some(n) => n as f64 / rate * 1.005,
        None => 120.0,
    });
    let cfg = TokenScenarioCfg {
        gpus,
        model,
        arrival,
        batching,
        priority,
        admission,
        chunk_tokens: chunk,
        prompt,
        output,
        slo,
        duration_s,
        max_requests,
        seed,
    };
    cfg.validate();

    let sim_started = Instant::now();
    let (result, flight) = if trace_path.is_some() {
        let (result, flight) = simulate_token_recorded(
            &cfg,
            &curve,
            kv_budget_bytes,
            &ctx.registry,
            FlightCfg::for_horizon(duration_s),
        );
        (result, Some(flight))
    } else {
        (simulate_token(&cfg, &curve, kv_budget_bytes, &ctx.registry), None)
    };
    let sim_wall_s = sim_started.elapsed().as_secs_f64();
    println!(
        "device: {} | arrival: {arrival_name} @ {rate:.3}/s | prompt ~{prompt_len:.0} tok | output ~{output_len:.0} tok",
        spec.name
    );
    println!(
        "kv budget: {:.1} GiB/GPU ({}) | chunk: {chunk} tok | duration: {duration_s:.0}s | seed: {seed}\n",
        kv_budget_bytes as f64 / GIB,
        if kv_budget_gib.is_some() { "explicit" } else { "HBM - weights" },
    );
    println!("{}", TokenReport::from_result(&result).render());
    // Perf to stderr: stdout must stay byte-identical across machines.
    eprintln!(
        "token: {} decoded tokens over {} iterations in {sim_wall_s:.3}s wall ({:.0} simulated tok/s)",
        result.stats.decoded_tokens,
        result.stats.iterations,
        result.stats.decoded_tokens as f64 / sim_wall_s.max(1e-9),
    );
    if let Some(path) = &metrics_out {
        // Extension-dispatched export of the final registry: `.json`
        // gets the structured snapshot, anything else the Prometheus
        // text exposition.
        let body = if path.ends_with(".json") {
            let mut s = serde_json::to_string_pretty(&ctx.registry.snapshot_json())
                .expect("registry snapshots always serialize");
            s.push('\n');
            s
        } else {
            ctx.registry.render_prometheus()
        };
        write_file(path, &body, "metrics")?;
    }
    if let (Some(path), Some(flight)) = (&trace_path, &flight) {
        write_file(path, &flight.to_chrome_trace_object(), "token flight trace")?;
        eprintln!(
            "flight trace: {} batch spans, {} scheduler events, {} windows",
            flight.batches.len(),
            flight.instants.len(),
            flight.series.iter().count(),
        );
    }
    Ok(())
}

/// Parameters for one multi-cluster fleet run — shared by the `fleet`
/// subcommand and the bench-snapshot fleet figure.
struct FleetRunCfg {
    /// Cluster count; SKUs cycle a100 → h100 → l4 → h200.
    clusters: usize,
    /// Initially provisioned GPUs per cluster.
    gpus_per_cluster: usize,
    /// Arrival family (`poisson` | `diurnal`; bursty is not splittable).
    arrival_name: String,
    /// Offered fraction of the fleet's aggregate batch-1 capacity.
    utilization: f64,
    /// Explicit fleet-wide rate, requests/s (overrides `utilization`).
    rate: Option<f64>,
    /// Autoscaler policy name (`fixed` | `reactive` | `reactive+spot`).
    policy_name: String,
    /// Expected-arrival target; sizes the horizon as `requests / rate`
    /// (with 0.5% headroom so the realized Poisson count reaches it).
    requests: Option<u64>,
    /// Explicit horizon, seconds (used when `requests` is unset).
    duration_s: f64,
    /// Evaluation windows over the horizon.
    windows: usize,
    /// Per-GPU scheduler (fifo takes the O(1) fast lane).
    scheduler_name: String,
    /// Batch cap for batching schedulers.
    batch: usize,
    /// Fleet seed.
    seed: u64,
}

impl Default for FleetRunCfg {
    fn default() -> Self {
        FleetRunCfg {
            clusters: 4,
            gpus_per_cluster: 16,
            arrival_name: "poisson".to_string(),
            utilization: 0.8,
            rate: None,
            policy_name: "fixed".to_string(),
            requests: None,
            duration_s: 600.0,
            windows: 12,
            scheduler_name: "fifo".to_string(),
            batch: 16,
            seed: 42,
        }
    }
}

/// A completed fleet run: the resolved scenario and its merged result.
struct FleetRun {
    cfg: mmg_serve::FleetCfg,
    result: mmg_serve::FleetResult,
}

/// Builds the heterogeneous fleet (SKUs cycling, capacity-proportional
/// region weights, quarter-period diurnal phase stagger), profiles each
/// SKU once, and shards the simulation by cluster over the
/// [`mmg_core::run_cells_with`] worker pool. Results and telemetry
/// merge in cluster order, so stdout and the metrics snapshot are
/// byte-identical for every `jobs` value.
fn run_fleet(
    rc: &FleetRunCfg,
    registry: &mmg_telemetry::Registry,
    memo: &std::sync::Arc<mmg_profiler::CostMemo>,
    jobs: usize,
) -> Result<FleetRun, String> {
    use mmg_core::experiments::fleet_sweep::{device_for_sku, sku_price_per_gpu_hr, SKUS};
    use mmg_core::experiments::serve_common::profile_mix;
    use mmg_serve::{
        run_cluster, ArrivalProcess, ClusterCfg, FleetCfg, FleetResult, RequestMix, RouterKind,
        SchedulerKind, SloSpec,
    };

    if rc.clusters == 0 {
        return Err("--clusters requires at least one cluster".to_string());
    }
    if rc.windows == 0 {
        return Err("--windows requires at least one window".to_string());
    }
    let scheduler = SchedulerKind::parse(&rc.scheduler_name, rc.batch)?;
    let cap = match scheduler {
        SchedulerKind::Fifo => 1,
        SchedulerKind::Static { batch, .. } => batch,
        SchedulerKind::Dynamic { max_batch } | SchedulerKind::Pods { max_batch } => max_batch,
    };
    let policy = mmg_core::experiments::fleet_sweep::policies()
        .into_iter()
        .find(|p| p.name() == rc.policy_name)
        .ok_or_else(|| {
            format!("unknown policy '{}'; expected fixed | reactive | reactive+spot", rc.policy_name)
        })?;

    // Profile each deployed SKU once, in cycle order, before any cell
    // runs — merge order into `registry` is then independent of `jobs`.
    let mix_str = "sd:8,parti:2";
    let n_skus = rc.clusters.min(SKUS.len());
    let profiled: Vec<_> = SKUS[..n_skus]
        .iter()
        .map(|sku| {
            profile_mix(
                &device_for_sku(sku),
                memo,
                registry,
                mix_str,
                cap,
                matches!(scheduler, SchedulerKind::Pods { .. }),
            )
        })
        .collect();

    // Capacity-proportional weights: every cluster is offered the same
    // relative load despite the SKU service-time spread.
    let mut clusters = Vec::with_capacity(rc.clusters);
    let mut total_capacity = 0.0;
    for i in 0..rc.clusters {
        let sku_idx = i % n_skus;
        let sku = SKUS[sku_idx];
        let capacity = rc.gpus_per_cluster as f64 / profiled[sku_idx].mean_base_s;
        total_capacity += capacity;
        clusters.push(ClusterCfg {
            name: format!("{sku}-{i}"),
            sku: sku.to_string(),
            gpus: rc.gpus_per_cluster,
            price_per_gpu_hr: sku_price_per_gpu_hr(sku),
            weight: capacity,
            phase_s: 0.0, // set below once the arrival period is known
        });
    }
    let rate = match rc.rate {
        Some(r) => r,
        None => rc.utilization * total_capacity,
    };
    let arrival = ArrivalProcess::parse(&rc.arrival_name, rate)?;
    if let ArrivalProcess::Diurnal { period_s, .. } = arrival {
        // Stagger regional peaks evenly across one diurnal period.
        for (i, c) in clusters.iter_mut().enumerate() {
            c.phase_s = period_s * i as f64 / rc.clusters as f64;
        }
    }
    let duration_s = match rc.requests {
        Some(n) => n as f64 / rate * 1.005,
        None => rc.duration_s,
    };

    let cfg = FleetCfg {
        clusters,
        mix: RequestMix::parse(mix_str)?,
        arrival,
        scheduler,
        router: RouterKind::RoundRobin,
        slo: SloSpec::ServiceMultiple(4.0),
        window_s: duration_s / rc.windows as f64,
        windows: rc.windows,
        autoscaler: policy,
        seed: rc.seed,
    };
    cfg.validate()?;

    let spec = DeviceSpec::a100_80gb(); // cell contexts need a spec; clusters use their SKU
    let results = mmg_core::run_cells_with(
        cfg.clusters.len(),
        &spec,
        jobs,
        memo,
        registry,
        |i, cell_ctx| run_cluster(&cfg, i, &profiled[i % n_skus].profile, &cell_ctx.registry),
    );
    Ok(FleetRun { result: FleetResult::from_clusters(results), cfg })
}

/// Runs one multi-cluster fleet scenario, sharded by cluster across the
/// worker pool, and prints the fleet report. Stdout is byte-identical
/// for every `--jobs` value; the perf line goes to stderr.
fn fleet_main(args: &[String]) -> Result<(), String> {
    let mut rc = FleetRunCfg::default();
    let mut jobs = 1usize;
    let mut metrics_out: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        i += 1;
        let value = args
            .get(i)
            .ok_or_else(|| format!("{flag} requires a value"))?;
        match flag {
            "--clusters" => {
                rc.clusters = value
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| "--clusters requires a positive integer".to_string())?;
            }
            "--gpus" => {
                rc.gpus_per_cluster = value
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| "--gpus requires a positive integer".to_string())?;
            }
            "--arrival" => rc.arrival_name = value.clone(),
            "--util" => {
                rc.utilization = value
                    .parse::<f64>()
                    .ok()
                    .filter(|u| *u > 0.0)
                    .ok_or_else(|| "--util requires a positive fraction".to_string())?;
            }
            "--rate" => {
                rc.rate = Some(
                    value
                        .parse::<f64>()
                        .ok()
                        .filter(|r| *r > 0.0)
                        .ok_or_else(|| "--rate requires a positive number".to_string())?,
                );
            }
            "--policy" => rc.policy_name = value.clone(),
            "--requests" => {
                rc.requests = Some(
                    value
                        .parse::<u64>()
                        .ok()
                        .filter(|&n| n > 0)
                        .ok_or_else(|| "--requests requires a positive integer".to_string())?,
                );
            }
            "--duration-s" => {
                rc.duration_s = value
                    .parse::<f64>()
                    .ok()
                    .filter(|d| *d > 0.0)
                    .ok_or_else(|| "--duration-s requires a positive number".to_string())?;
            }
            "--windows" => {
                rc.windows = value
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| "--windows requires a positive integer".to_string())?;
            }
            "--scheduler" => rc.scheduler_name = value.clone(),
            "--batch" => {
                rc.batch = value
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| "--batch requires a positive integer".to_string())?;
            }
            "--seed" => {
                rc.seed = value
                    .parse::<u64>()
                    .map_err(|_| "--seed requires a non-negative integer".to_string())?;
            }
            "--jobs" => {
                jobs = value
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| "--jobs requires a positive integer".to_string())?;
            }
            "--metrics-out" => metrics_out = Some(value.clone()),
            other => {
                return Err(format!(
                    "unknown fleet flag '{other}'; expected --clusters | --gpus | --arrival | --util | --rate | --policy | --requests | --duration-s | --windows | --scheduler | --batch | --seed | --jobs | --metrics-out"
                ));
            }
        }
        i += 1;
    }

    let registry = mmg_telemetry::Registry::new();
    let memo = global_memo();
    let sim_started = Instant::now();
    let run = run_fleet(&rc, &registry, &memo, jobs)?;
    let sim_wall_s = sim_started.elapsed().as_secs_f64();

    print!("{}", mmg_serve::FleetReport::new(&run.cfg, &run.result).render());
    // Perf to stderr: stdout must stay byte-identical across machines
    // and job counts.
    eprintln!(
        "fleet: {} arrivals across {} clusters simulated in {sim_wall_s:.3}s wall ({:.0} aggregate simulated req/s)",
        run.result.arrivals(),
        run.cfg.clusters.len(),
        run.result.arrivals() as f64 / sim_wall_s.max(1e-9),
    );
    if let Some(path) = &metrics_out {
        let body = if path.ends_with(".json") {
            let mut s = serde_json::to_string_pretty(&registry.snapshot_json())
                .expect("registry snapshots always serialize");
            s.push('\n');
            s
        } else {
            registry.render_prometheus()
        };
        write_file(path, &body, "metrics")?;
    }
    Ok(())
}

/// `repro bench-check <old> <new>` — compare two `bench-snapshot`
/// outputs and exit nonzero when any figure regressed.
fn bench_check_main(args: &[String]) -> Result<bool, String> {
    use mmg_core::benchcheck;

    let mut threshold = benchcheck::DEFAULT_THRESHOLD;
    let mut min_wall_s = benchcheck::DEFAULT_MIN_WALL_S;
    let mut paths: Vec<&String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        match arg {
            "--threshold" | "--min-wall-s" => {
                i += 1;
                let parsed = args
                    .get(i)
                    .and_then(|v| v.parse::<f64>().ok())
                    .filter(|v| *v >= 0.0)
                    .ok_or_else(|| format!("{arg} requires a non-negative number"))?;
                if arg == "--threshold" {
                    threshold = parsed;
                } else {
                    min_wall_s = parsed;
                }
            }
            other if other.starts_with("--") => {
                return Err(format!(
                    "unknown bench-check flag '{other}'; expected --threshold | --min-wall-s"
                ));
            }
            _ => paths.push(&args[i]),
        }
        i += 1;
    }
    let [old_path, new_path] = paths[..] else {
        return Err(
            "usage: repro bench-check <old.json> <new.json> [--threshold <frac>] [--min-wall-s <s>]"
                .to_string(),
        );
    };
    let read = |path: &String| -> Result<serde_json::Value, String> {
        let body = std::fs::read_to_string(path)
            .map_err(|e| format!("failed to read snapshot {path}: {e}"))?;
        serde_json::from_str(&body).map_err(|e| format!("snapshot {path} is not valid JSON: {e}"))
    };
    let old = read(old_path)?;
    let new = read(new_path)?;
    let check = benchcheck::compare(&old, &new, threshold, min_wall_s);
    print!("{}", benchcheck::render(&check));
    Ok(check.regressed())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // `repro optimize` with any pass flag takes the dedicated
    // single-configuration path; a bare `repro optimize` flows through
    // the generic experiment loop below (full grid, --jobs/--json/...).
    let opt_flags = ["--fuse", "--width", "--graph-capture", "--sampler-steps"];
    if args.first().map(String::as_str) == Some("optimize")
        && args.iter().any(|a| opt_flags.contains(&a.as_str()))
    {
        return match optimize_main(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("{e}");
                ExitCode::FAILURE
            }
        };
    }
    if args.first().map(String::as_str) == Some("serve") {
        return match serve_main(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("{e}");
                ExitCode::FAILURE
            }
        };
    }
    if args.first().map(String::as_str) == Some("token") {
        return match token_main(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("{e}");
                ExitCode::FAILURE
            }
        };
    }
    if args.first().map(String::as_str) == Some("fleet") {
        return match fleet_main(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("{e}");
                ExitCode::FAILURE
            }
        };
    }
    if args.first().map(String::as_str) == Some("bench-check") {
        return match bench_check_main(&args[1..]) {
            Ok(false) => ExitCode::SUCCESS,
            Ok(true) => ExitCode::FAILURE,
            Err(e) => {
                eprintln!("{e}");
                ExitCode::FAILURE
            }
        };
    }
    let mut spec = DeviceSpec::a100_80gb();
    let mut json = false;
    let mut bench = false;
    let mut replications: Option<u64> = None;
    let mut sweep_seed = 42u64;
    let mut jobs: Option<usize> = None;
    let mut out_path: Option<String> = None;
    let mut metrics_path: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut manifest_path: Option<String> = None;
    let mut targets: Vec<ExperimentId> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--list" => {
                for e in ExperimentId::ALL {
                    println!("{e}");
                }
                return ExitCode::SUCCESS;
            }
            "--json" => json = true,
            "--device" => {
                i += 1;
                let Some(name) = args.get(i) else {
                    eprintln!(
                        "--device requires a name (a100 | a100-40gb | v100 | h100 | l4 | h200)"
                    );
                    return ExitCode::FAILURE;
                };
                let Some(d) = device_by_name(name) else {
                    eprintln!("unknown device '{name}'");
                    return ExitCode::FAILURE;
                };
                spec = d;
            }
            "--jobs" => {
                i += 1;
                let parsed = args.get(i).and_then(|n| n.parse::<usize>().ok());
                let Some(n) = parsed.filter(|&n| n > 0) else {
                    eprintln!("--jobs requires a positive integer");
                    return ExitCode::FAILURE;
                };
                jobs = Some(n);
            }
            "--replications" => {
                i += 1;
                let parsed = args.get(i).and_then(|n| n.parse::<u64>().ok());
                let Some(n) = parsed.filter(|&n| n > 0) else {
                    eprintln!("--replications requires a positive integer");
                    return ExitCode::FAILURE;
                };
                replications = Some(n);
            }
            "--sweep-seed" => {
                i += 1;
                let Some(n) = args.get(i).and_then(|n| n.parse::<u64>().ok()) else {
                    eprintln!("--sweep-seed requires a non-negative integer");
                    return ExitCode::FAILURE;
                };
                sweep_seed = n;
            }
            flag @ ("--metrics" | "--trace-out" | "--manifest" | "--out") => {
                i += 1;
                let Some(path) = args.get(i) else {
                    eprintln!("{flag} requires an output path");
                    return ExitCode::FAILURE;
                };
                match flag {
                    "--metrics" => metrics_path = Some(path.clone()),
                    "--trace-out" => trace_path = Some(path.clone()),
                    "--out" => out_path = Some(path.clone()),
                    _ => manifest_path = Some(path.clone()),
                }
            }
            "bench-snapshot" => bench = true,
            "all" => targets.extend(ExperimentId::ALL),
            other => match other.parse::<ExperimentId>() {
                Ok(id) => targets.push(id),
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            },
        }
        i += 1;
    }
    if bench {
        return match bench_snapshot(&spec, out_path) {
            Ok(path) => {
                eprintln!("bench snapshot written to {path}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{e}");
                ExitCode::FAILURE
            }
        };
    }
    // Repeated targets (e.g. `repro fig6 all`) run once, first-mention order.
    let mut seen = std::collections::HashSet::new();
    targets.retain(|id| seen.insert(*id));
    if let Some(reps) = replications {
        // Replicated serving sweep: seed × scheduler × utilization grid
        // on the worker pool, deterministic for every --jobs.
        if !targets.iter().all(|&t| t == ExperimentId::ServeSweep) {
            eprintln!("--replications applies only to the serve-sweep target");
            return ExitCode::FAILURE;
        }
        let jobs = jobs.unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
        });
        let started = Instant::now();
        let memo = global_memo();
        let registry = mmg_telemetry::global();
        let result = mmg_core::experiments::serve_sweep::run_replicated(
            &spec, reps, sweep_seed, jobs, &memo, &registry,
        );
        println!("device: {}\n", spec.name);
        println!("{}", mmg_core::experiments::serve_sweep::render_replicated(&result));
        let targets = [ExperimentId::ServeSweep];
        if let Err(e) =
            emit_manifest(&spec, &targets, started.elapsed().as_secs_f64(), &registry, &manifest_path)
        {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
        return ExitCode::SUCCESS;
    }
    if targets.is_empty() {
        eprintln!("usage: repro [--device <name>] [--jobs <n>] [--json] [--metrics <path>] [--trace-out <path>] [--manifest <path>] [--replications <n> [--sweep-seed <n>]] <bench-snapshot | all | fig1 | table1 | fig4 | fig5 | fig6 | table2 | table3 | fig7 | fig8 | fig9 | fig11 | fig12 | fig13 | secv | flashdec | optimize | pods | batch | tp | ablations | serve-sweep | serve-timeline | serve-attrib | fleet-sweep | token-sweep | energy>…");
        eprintln!("       repro optimize [--device <name>] [--fuse] [--width <fp16|fp8|int8>] [--graph-capture] [--sampler-steps <n>] [--jobs <n>]");
        eprintln!("       repro serve [--device <name>] [--gpus <n>] [--mix <model:weight,…>] [--arrival <poisson|bursty|diurnal>] [--rate <rps>] [--scheduler <fifo|static|dynamic|pods>] [--batch <n>] [--router <rr|least-work|affinity>] [--slo-ms <ms>] [--duration-s <s>] [--requests <n>] [--seed <n>] [--metrics <path>] [--metrics-out <path>] [--trace-out <path>] [--jobs <n>] [--full-records] [--attrib]");
        eprintln!("       repro fleet [--clusters <n>] [--gpus <per-cluster>] [--arrival <poisson|diurnal>] [--util <frac>] [--rate <rps>] [--policy <fixed|reactive|reactive+spot>] [--requests <n>] [--duration-s <s>] [--windows <n>] [--scheduler <fifo|static|dynamic|pods>] [--batch <n>] [--seed <n>] [--jobs <n>] [--metrics-out <path>]");
        eprintln!("       repro token [--device <name>] [--model <llama|parti|muse>] [--gpus <n>] [--arrival <poisson|bursty|diurnal>] [--rate <rps>] [--util <frac>] [--prompt-len <tokens>] [--output-len <tokens>] [--kv-budget <gib>] [--scheduler <static|continuous>] [--batch <n>] [--policy <decode|prefill>] [--admission <prompt|reserve>] [--chunk <tokens>] [--duration-s <s>] [--requests <n>] [--seed <n>] [--metrics-out <path>] [--trace-out <path>] [--jobs <n>]");
        eprintln!("       repro bench-check <old.json> <new.json> [--threshold <frac>] [--min-wall-s <s>]");
        return ExitCode::FAILURE;
    }
    let jobs = jobs.unwrap_or_else(|| {
        std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
    });
    let started = Instant::now();
    let memo = global_memo();
    let registry = mmg_telemetry::global();
    // Experiments run on the worker pool; printing and telemetry merge
    // happen in target order after the join, so stdout and counter
    // totals do not depend on `--jobs`.
    if json {
        let lines = run_suite_with(&targets, &spec, jobs, &memo, &registry, |id, ctx| {
            let envelope = Value::Object(vec![
                ("experiment".to_string(), Value::from(id.to_string())),
                ("result".to_string(), run_experiment_value_with(id, ctx)),
            ]);
            serde_json::to_string(&envelope).expect("experiment envelopes always serialize")
        });
        for line in lines {
            println!("{line}");
        }
    } else {
        println!("device: {}\n", spec.name);
        for report in run_suite(&targets, &spec, jobs, &memo, &registry) {
            println!("{report}");
        }
    }
    if let Some(path) = &trace_path {
        let trace = match unet_step_trace(&spec) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = write_file(path, &trace, "Chrome trace") {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    }
    let registry = mmg_telemetry::global();
    if let Some(path) = &metrics_path {
        if let Err(e) = write_file(path, &registry.render_prometheus(), "metrics") {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    }
    if let Err(e) = emit_manifest(&spec, &targets, started.elapsed().as_secs_f64(), &registry, &manifest_path) {
        eprintln!("{e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Emits the end-of-run manifest. Default: the deterministic form (no
/// wall clock) on stdout — byte-identical for every `--jobs`, so CI's
/// determinism gates compare with plain `cmp` — and `elapsed_s` alone
/// on stderr. With `--manifest <path>`, the full manifest (wall clock
/// included) goes to the file and nothing extra is printed.
fn emit_manifest(
    spec: &DeviceSpec,
    targets: &[ExperimentId],
    elapsed_s: f64,
    registry: &mmg_telemetry::Registry,
    manifest_path: &Option<String>,
) -> Result<(), String> {
    match manifest_path {
        Some(path) => {
            let manifest = run_manifest(spec, targets, Some(elapsed_s), registry);
            let line =
                serde_json::to_string(&manifest).expect("run manifests always serialize");
            write_file(path, &line, "run manifest")
        }
        None => {
            let manifest = run_manifest(spec, targets, None, registry);
            let line =
                serde_json::to_string(&manifest).expect("run manifests always serialize");
            println!("{line}");
            eprintln!("{{\"elapsed_s\":{elapsed_s}}}");
            Ok(())
        }
    }
}
