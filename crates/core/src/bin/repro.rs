//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro all                    # every experiment, paper order
//! repro table2 fig6            # selected experiments
//! repro --list                 # available experiment ids
//! repro --device v100 …        # run on a different simulated device
//! repro --json …               # one {"experiment", "result"} line each
//! repro --metrics m.txt …      # Prometheus dump of telemetry counters
//! repro --trace-out t.json …   # Perfetto trace of one SD UNet step
//! repro --manifest run.json …  # run manifest (device, ids, counters)
//! ```
//!
//! Every run ends with a run-manifest JSON line on stderr (or in the
//! `--manifest` file): the simulated device, the experiments executed,
//! elapsed wall time, and final telemetry counter totals.

use std::process::ExitCode;
use std::time::Instant;

use mmg_attn::AttnImpl;
use mmg_core::{run_experiment, run_experiment_value, run_manifest, ExperimentId};
use mmg_gpu::DeviceSpec;
use mmg_models::{suite, ModelId};
use mmg_profiler::trace::to_chrome_trace_object;
use mmg_profiler::Profiler;
use serde_json::Value;

fn device_by_name(name: &str) -> Option<DeviceSpec> {
    match name.to_lowercase().as_str() {
        "a100" | "a100-80gb" => Some(DeviceSpec::a100_80gb()),
        "a100-40gb" => Some(DeviceSpec::a100_40gb()),
        "v100" => Some(DeviceSpec::v100_32gb()),
        "h100" => Some(DeviceSpec::h100_80gb()),
        _ => None,
    }
}

/// Profiles one Stable Diffusion UNet denoising step with per-op cache
/// simulation on the global registry and returns the Perfetto trace
/// object (`{"traceEvents": [...], "displayTimeUnit": "us"}`).
fn unet_step_trace(spec: &DeviceSpec) -> Result<String, String> {
    let pipeline = suite::build(ModelId::StableDiffusion);
    let stage = pipeline
        .stages
        .iter()
        .find(|s| s.name == "unet_step")
        .ok_or_else(|| "StableDiffusion pipeline has no unet_step stage".to_string())?;
    let profiler = Profiler::new(spec.clone(), AttnImpl::Flash).with_cache_sim(20_000);
    Ok(to_chrome_trace_object(&profiler.profile(&stage.graph)))
}

fn write_file(path: &str, contents: &str, what: &str) -> Result<(), String> {
    std::fs::write(path, contents).map_err(|e| format!("cannot write {what} to '{path}': {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut spec = DeviceSpec::a100_80gb();
    let mut json = false;
    let mut metrics_path: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut manifest_path: Option<String> = None;
    let mut targets: Vec<ExperimentId> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--list" => {
                for e in ExperimentId::ALL {
                    println!("{e}");
                }
                return ExitCode::SUCCESS;
            }
            "--json" => json = true,
            "--device" => {
                i += 1;
                let Some(name) = args.get(i) else {
                    eprintln!("--device requires a name (a100 | a100-40gb | v100 | h100)");
                    return ExitCode::FAILURE;
                };
                let Some(d) = device_by_name(name) else {
                    eprintln!("unknown device '{name}'");
                    return ExitCode::FAILURE;
                };
                spec = d;
            }
            flag @ ("--metrics" | "--trace-out" | "--manifest") => {
                i += 1;
                let Some(path) = args.get(i) else {
                    eprintln!("{flag} requires an output path");
                    return ExitCode::FAILURE;
                };
                match flag {
                    "--metrics" => metrics_path = Some(path.clone()),
                    "--trace-out" => trace_path = Some(path.clone()),
                    _ => manifest_path = Some(path.clone()),
                }
            }
            "all" => targets.extend(ExperimentId::ALL),
            other => match other.parse::<ExperimentId>() {
                Ok(id) => targets.push(id),
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            },
        }
        i += 1;
    }
    // Repeated targets (e.g. `repro fig6 all`) run once, first-mention order.
    let mut seen = std::collections::HashSet::new();
    targets.retain(|id| seen.insert(*id));
    if targets.is_empty() {
        eprintln!("usage: repro [--device <name>] [--json] [--metrics <path>] [--trace-out <path>] [--manifest <path>] <all | fig1 | table1 | fig4 | fig5 | fig6 | table2 | table3 | fig7 | fig8 | fig9 | fig11 | fig12 | fig13 | secv | flashdec | pods | batch | tp | ablations>…");
        return ExitCode::FAILURE;
    }
    let started = Instant::now();
    if json {
        for &id in &targets {
            let envelope = Value::Object(vec![
                ("experiment".to_string(), Value::from(id.to_string())),
                ("result".to_string(), run_experiment_value(id, &spec)),
            ]);
            let line =
                serde_json::to_string(&envelope).expect("experiment envelopes always serialize");
            println!("{line}");
        }
    } else {
        println!("device: {}\n", spec.name);
        for &id in &targets {
            println!("{}", run_experiment(id, &spec));
        }
    }
    if let Some(path) = &trace_path {
        let trace = match unet_step_trace(&spec) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = write_file(path, &trace, "Chrome trace") {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    }
    let registry = mmg_telemetry::global();
    if let Some(path) = &metrics_path {
        if let Err(e) = write_file(path, &registry.render_prometheus(), "metrics") {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    }
    let manifest = run_manifest(&spec, &targets, started.elapsed().as_secs_f64(), &registry);
    let manifest_line =
        serde_json::to_string(&manifest).expect("run manifests always serialize");
    match &manifest_path {
        Some(path) => {
            if let Err(e) = write_file(path, &manifest_line, "run manifest") {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
        None => eprintln!("{manifest_line}"),
    }
    ExitCode::SUCCESS
}
