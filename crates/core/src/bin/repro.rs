//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro all              # every experiment, paper order
//! repro table2 fig6      # selected experiments
//! repro --list           # available experiment ids
//! repro --device v100 …  # run on a different simulated device
//! ```

use std::process::ExitCode;

use mmg_core::{run_experiment, run_experiment_json, ExperimentId};
use mmg_gpu::DeviceSpec;

fn device_by_name(name: &str) -> Option<DeviceSpec> {
    match name.to_lowercase().as_str() {
        "a100" | "a100-80gb" => Some(DeviceSpec::a100_80gb()),
        "a100-40gb" => Some(DeviceSpec::a100_40gb()),
        "v100" => Some(DeviceSpec::v100_32gb()),
        "h100" => Some(DeviceSpec::h100_80gb()),
        _ => None,
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut spec = DeviceSpec::a100_80gb();
    let mut json = false;
    let mut targets: Vec<ExperimentId> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--list" => {
                for e in ExperimentId::ALL {
                    println!("{e}");
                }
                return ExitCode::SUCCESS;
            }
            "--json" => json = true,
            "--device" => {
                i += 1;
                let Some(name) = args.get(i) else {
                    eprintln!("--device requires a name (a100 | a100-40gb | v100 | h100)");
                    return ExitCode::FAILURE;
                };
                let Some(d) = device_by_name(name) else {
                    eprintln!("unknown device '{name}'");
                    return ExitCode::FAILURE;
                };
                spec = d;
            }
            "all" => targets.extend(ExperimentId::ALL),
            other => match other.parse::<ExperimentId>() {
                Ok(id) => targets.push(id),
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            },
        }
        i += 1;
    }
    if targets.is_empty() {
        eprintln!("usage: repro [--device <name>] [--json] <all | fig1 | table1 | fig4 | fig5 | fig6 | table2 | table3 | fig7 | fig8 | fig9 | fig11 | fig12 | fig13 | secv | flashdec | pods | batch | tp | ablations>…");
        return ExitCode::FAILURE;
    }
    if json {
        for id in targets {
            println!("{}", run_experiment_json(id, &spec));
        }
    } else {
        println!("device: {}\n", spec.name);
        for id in targets {
            println!("{}", run_experiment(id, &spec));
        }
    }
    ExitCode::SUCCESS
}
