//! Execution contexts and the multi-threaded experiment engine.
//!
//! Two pieces turn the serial `repro` loop into a deterministic parallel
//! sweep:
//!
//! * [`ExecContext`] bundles what every experiment needs — the simulated
//!   device, the telemetry [`Registry`] to record into, and the shared
//!   operator-cost memo ([`CostMemo`]). The process-wide
//!   [`ExecContext::shared`] context keeps the classic serial behaviour
//!   (global registry, global memo); [`ExecContext::isolated`] gives a
//!   worker thread its own registry.
//! * [`run_suite`] executes a list of experiments across a worker pool.
//!   Each experiment runs on its own fresh registry; at join time the
//!   per-experiment registries are merged into the target registry *in
//!   experiment order*, and outputs are returned in experiment order —
//!   so counter totals and printed output are identical to a serial run
//!   regardless of worker count or scheduling.
//!
//! Memo entries replay the exact telemetry a cold computation records
//! (see `mmg-profiler`'s memo property test), which is what makes
//! sharing one memo across workers — and across serial runs — safe.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use mmg_attn::AttnImpl;
use mmg_gpu::DeviceSpec;
use mmg_profiler::{CostMemo, Profiler};
use mmg_telemetry::Registry;

use crate::runner::{run_experiment_with, ExperimentId};

/// The process-wide operator-cost memo used by [`ExecContext::shared`]
/// and as the default memo for suite runs. Shared so a whole `repro all`
/// invocation — serial or parallel — profiles each distinct operator
/// once.
#[must_use]
pub fn global_memo() -> Arc<CostMemo> {
    static MEMO: OnceLock<Arc<CostMemo>> = OnceLock::new();
    Arc::clone(MEMO.get_or_init(|| Arc::new(CostMemo::new())))
}

/// Everything an experiment run needs: device, telemetry sink, and the
/// shared cost memo.
#[derive(Debug, Clone)]
pub struct ExecContext {
    /// Simulated device.
    pub spec: DeviceSpec,
    /// Registry the experiment's profilers record into.
    pub registry: Registry,
    /// Shared operator-cost memo.
    pub memo: Arc<CostMemo>,
}

impl ExecContext {
    /// The classic serial context: global registry, global memo.
    #[must_use]
    pub fn shared(spec: DeviceSpec) -> Self {
        ExecContext { spec, registry: mmg_telemetry::global(), memo: global_memo() }
    }

    /// A context with its own fresh registry (for a worker thread whose
    /// telemetry is merged deterministically at join), sharing `memo`.
    #[must_use]
    pub fn isolated(spec: DeviceSpec, memo: Arc<CostMemo>) -> Self {
        ExecContext { spec, registry: Registry::new(), memo }
    }

    /// A profiler wired to this context's registry and memo.
    #[must_use]
    pub fn profiler(&self, attn: AttnImpl) -> Profiler {
        Profiler::with_registry(self.spec.clone(), attn, &self.registry)
            .with_memo(Arc::clone(&self.memo))
    }

    /// A profiler with kernel-graph optimization passes enabled, wired to
    /// this context's registry and memo (the [`OptConfig`] participates
    /// in memo keys, so sharing the memo with eager profilers is safe).
    #[must_use]
    pub fn profiler_opt(&self, attn: AttnImpl, opt: mmg_graph::OptConfig) -> Profiler {
        self.profiler(attn).with_opt_config(opt)
    }
}

/// Runs `produce(i, ctx)` for every cell index `0..n` on up to `jobs`
/// worker threads, each cell on its own fresh [`Registry`] sharing
/// `memo`. Returns the cell outputs in index order and merges each
/// cell's registry into `target` in index order, so counter totals
/// match a serial run byte for byte no matter how the workers
/// interleave. This is the general engine under [`run_suite_with`]
/// (cells = experiments) and the serving replication sweep (cells =
/// seed × scheduler × utilization grid points).
///
/// # Panics
///
/// Propagates a panic from any cell after all workers stop.
pub fn run_cells_with<T, F>(
    n: usize,
    spec: &DeviceSpec,
    jobs: usize,
    memo: &Arc<CostMemo>,
    target: &Registry,
    produce: F,
) -> Vec<T>
where
    T: Send,
    F: Fn(usize, &ExecContext) -> T + Sync,
{
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<(T, Registry)>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs.clamp(1, n.max(1)) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let ctx = ExecContext::isolated(spec.clone(), Arc::clone(memo));
                let out = produce(i, &ctx);
                *slots[i].lock().expect("cell slot lock poisoned") = Some((out, ctx.registry));
            });
        }
    });
    let mut outputs = Vec::with_capacity(n);
    for slot in slots {
        let (out, registry) = slot
            .into_inner()
            .expect("cell slot lock poisoned")
            .expect("every claimed slot is filled before join");
        target.merge_from(&registry);
        outputs.push(out);
    }
    outputs
}

/// Runs `produce` for every experiment in `ids` on the worker pool —
/// [`run_cells_with`] with cells addressed by [`ExperimentId`]. Outputs
/// and telemetry merge in `ids` order, independent of `jobs`.
pub fn run_suite_with<F>(
    ids: &[ExperimentId],
    spec: &DeviceSpec,
    jobs: usize,
    memo: &Arc<CostMemo>,
    target: &Registry,
    produce: F,
) -> Vec<String>
where
    F: Fn(ExperimentId, &ExecContext) -> String + Sync,
{
    run_cells_with(ids.len(), spec, jobs, memo, target, |i, ctx| produce(ids[i], ctx))
}

/// [`run_suite_with`] specialized to the rendered-report form the CLI
/// prints: one ASCII report per experiment, in `ids` order.
pub fn run_suite(
    ids: &[ExperimentId],
    spec: &DeviceSpec,
    jobs: usize,
    memo: &Arc<CostMemo>,
    target: &Registry,
) -> Vec<String> {
    run_suite_with(ids, spec, jobs, memo, target, run_experiment_with)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_experiment;

    const SMOKE: [ExperimentId; 5] = [
        ExperimentId::Fig4,
        ExperimentId::Fig12,
        ExperimentId::Fig13,
        ExperimentId::Tp,
        ExperimentId::Table3,
    ];

    #[test]
    fn parallel_output_matches_serial_for_any_job_count() {
        let spec = DeviceSpec::a100_80gb();
        let serial: Vec<String> =
            SMOKE.iter().map(|&id| run_experiment(id, &spec)).collect();
        for jobs in [1, 2, 8] {
            let memo = Arc::new(CostMemo::new());
            let target = Registry::new();
            let parallel = run_suite(&SMOKE, &spec, jobs, &memo, &target);
            assert_eq!(serial, parallel, "jobs={jobs}");
        }
    }

    #[test]
    fn suite_merges_counters_deterministically() {
        let spec = DeviceSpec::a100_80gb();
        let ids = [ExperimentId::Fig12, ExperimentId::Fig13];
        let totals = |jobs: usize| {
            let memo = Arc::new(CostMemo::new());
            let target = Registry::new();
            let _ = run_suite(&ids, &spec, jobs, &memo, &target);
            target.counters_snapshot().values().to_vec()
        };
        assert_eq!(totals(1), totals(2));
    }

    #[test]
    fn shared_context_uses_global_registry() {
        let ctx = ExecContext::shared(DeviceSpec::a100_80gb());
        // Telemetry recorded via the context lands in the global registry.
        ctx.registry.counter("engine_test_shared_counter_total").inc();
        assert_eq!(
            mmg_telemetry::global().counter("engine_test_shared_counter_total").get(),
            1
        );
    }
}
