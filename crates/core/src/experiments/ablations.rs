//! Extension — design-choice ablations on the simulated device:
//!
//! 1. **Convolution algorithm** (implicit GEMM vs. Winograd): how much of
//!    the post-flash convolution bottleneck (Fig. 6/9) is algorithmic.
//! 2. **Activation precision** (FP16 vs. FP8-width traffic): which models
//!    benefit from halving activation bytes — memory-bound transformers or
//!    compute-bound diffusion.

use mmg_attn::AttnImpl;
use mmg_gpu::DeviceSpec;
use mmg_graph::OpCategory;
use mmg_kernels::conv::ConvAlgorithm;
use mmg_models::{suite, ModelId};
use mmg_profiler::report::render_table;
use serde::{Deserialize, Serialize};

use crate::engine::ExecContext;

/// One model's ablation row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AblationRow {
    /// Model name.
    pub model: String,
    /// End-to-end seconds (flash attention, implicit GEMM, FP16).
    pub baseline_s: f64,
    /// End-to-end seconds with Winograd convolutions.
    pub winograd_s: f64,
    /// Post-flash convolution share with implicit GEMM.
    pub conv_share: f64,
    /// Post-flash convolution share with Winograd.
    pub conv_share_winograd: f64,
    /// End-to-end seconds with 1-byte activations (FP8-width traffic).
    pub fp8_s: f64,
}

/// Ablation result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AblationResult {
    /// Rows for the studied models.
    pub rows: Vec<AblationRow>,
}

impl AblationResult {
    /// A named row.
    #[must_use]
    pub fn row(&self, model: &str) -> Option<&AblationRow> {
        self.rows.iter().find(|r| r.model == model)
    }
}

/// Runs both ablations over the diffusion-heavy and transformer-heavy
/// representatives.
#[must_use]
pub fn run(spec: &DeviceSpec) -> AblationResult {
    run_ctx(&ExecContext::shared(spec.clone()))
}

/// [`run`] against an explicit [`ExecContext`] (worker registry + memo).
#[must_use]
pub fn run_ctx(ctx: &ExecContext) -> AblationResult {
    let targets =
        [ModelId::StableDiffusion, ModelId::Imagen, ModelId::Muse, ModelId::Llama2];
    let rows = targets
        .iter()
        .map(|&id| {
            let p = suite::build(id);
            let base_prof = ctx.profiler(AttnImpl::Flash);
            let wino_prof =
                ctx.profiler(AttnImpl::Flash).with_conv_algorithm(ConvAlgorithm::Winograd);
            let fp8_prof = ctx.profiler(AttnImpl::Flash).with_elem_bytes(1);
            let base = p.profile(&base_prof);
            let wino = p.profile(&wino_prof);
            let fp8 = p.profile(&fp8_prof);
            let share = |prof: &mmg_models::PipelineProfile| {
                let b = prof.breakdown();
                b.fraction(OpCategory::Conv)
            };
            AblationRow {
                model: p.name.clone(),
                baseline_s: base.total_time_s(),
                winograd_s: wino.total_time_s(),
                conv_share: share(&base),
                conv_share_winograd: share(&wino),
                fp8_s: fp8.total_time_s(),
            }
        })
        .collect();
    AblationResult { rows }
}

/// Renders both ablations.
#[must_use]
pub fn render(r: &AblationResult) -> String {
    let rows: Vec<(String, Vec<String>)> = r
        .rows
        .iter()
        .map(|row| {
            (
                row.model.clone(),
                vec![
                    format!("{:.0} ms", row.baseline_s * 1e3),
                    format!("{:.2}x", row.baseline_s / row.winograd_s),
                    format!("{:.0}% → {:.0}%", row.conv_share * 100.0, row.conv_share_winograd * 100.0),
                    format!("{:.2}x", row.baseline_s / row.fp8_s),
                ],
            )
        })
        .collect();
    format!(
        "Extension — design ablations (flash attention baseline)\n{}",
        render_table(
            &["Model", "Baseline", "Winograd gain", "Conv share", "FP8-traffic gain"],
            &rows
        )
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> AblationResult {
        run(&DeviceSpec::a100_80gb())
    }

    #[test]
    fn winograd_helps_conv_heavy_models_only() {
        let r = result();
        let sd = r.row("StableDiffusion").unwrap();
        assert!(sd.baseline_s / sd.winograd_s > 1.1, "SD winograd gain");
        assert!(sd.conv_share_winograd < sd.conv_share, "conv share shrinks");
        let muse = r.row("Muse").unwrap();
        assert!((muse.baseline_s / muse.winograd_s - 1.0).abs() < 1e-9, "no conv, no gain");
    }

    #[test]
    fn fp8_traffic_helps_memory_bound_models_more() {
        let r = result();
        let llama_gain = {
            let x = r.row("LLaMA2").unwrap();
            x.baseline_s / x.fp8_s
        };
        let sd_gain = {
            let x = r.row("StableDiffusion").unwrap();
            x.baseline_s / x.fp8_s
        };
        assert!(llama_gain > sd_gain, "llama {llama_gain} vs sd {sd_gain}");
        assert!(llama_gain > 1.05);
    }

    #[test]
    fn renders() {
        assert!(render(&result()).contains("Winograd"));
    }
}
