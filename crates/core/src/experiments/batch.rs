//! Extension — batch-size sensitivity (Fig. 5's "low batch" qualifier).
//!
//! The paper notes transformer TTI models are memory-bandwidth bound *at
//! low batch sizes* and that low batch is the deployment reality for
//! interactive TTI. This sweep quantifies both halves: batched decode
//! amortizes weight reads almost linearly until it turns compute-bound,
//! while the diffusion UNet — already compute-bound at batch 1 — gains
//! only modest efficiency from batching.

use mmg_attn::AttnImpl;
use mmg_gpu::DeviceSpec;
use mmg_models::blocks::{batched_decode_step_graph, unet_step_graph};
use mmg_models::suite::stable_diffusion::StableDiffusionConfig;
use mmg_models::suite::parti::PartiConfig;
use mmg_profiler::report::render_table;
use serde::{Deserialize, Serialize};

use crate::engine::ExecContext;

/// One batch point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchRow {
    /// Batch size.
    pub batch: usize,
    /// SD UNet step time per image, milliseconds.
    pub unet_ms_per_image: f64,
    /// Parti-style decode step time per token, milliseconds.
    pub decode_ms_per_token: f64,
}

/// Batch sweep result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchResult {
    /// Rows ascending by batch.
    pub rows: Vec<BatchRow>,
}

/// Sweeps batch sizes for the UNet step and the decode step.
#[must_use]
pub fn run(spec: &DeviceSpec, batches: &[usize]) -> BatchResult {
    run_ctx(&ExecContext::shared(spec.clone()), batches)
}

/// [`run`] against an explicit [`ExecContext`] (worker registry + memo).
#[must_use]
pub fn run_ctx(ctx: &ExecContext, batches: &[usize]) -> BatchResult {
    let profiler = ctx.profiler(AttnImpl::Flash);
    let sd = StableDiffusionConfig::default();
    let parti = PartiConfig::default();
    let rows = batches
        .iter()
        .map(|&batch| {
            let unet = unet_step_graph(&sd.unet(), sd.latent_res(), batch);
            let unet_s = profiler.profile(&unet).total_time_s();
            let decode = batched_decode_step_graph(&parti.decoder, 512, batch);
            let decode_s = profiler.profile(&decode).total_time_s();
            BatchRow {
                batch,
                unet_ms_per_image: unet_s * 1e3 / batch as f64,
                decode_ms_per_token: decode_s * 1e3 / batch as f64,
            }
        })
        .collect();
    BatchResult { rows }
}

/// Default sweep.
#[must_use]
pub fn default_batches() -> Vec<usize> {
    vec![1, 2, 4, 8, 16, 32]
}

/// Renders the sweep.
#[must_use]
pub fn render(r: &BatchResult) -> String {
    let rows: Vec<(String, Vec<String>)> = r
        .rows
        .iter()
        .map(|row| {
            (
                format!("batch {}", row.batch),
                vec![
                    format!("{:.1} ms", row.unet_ms_per_image),
                    format!("{:.2} ms", row.decode_ms_per_token),
                ],
            )
        })
        .collect();
    format!(
        "Extension — batch sensitivity: per-sample cost vs batch size\n{}",
        render_table(&["Batch", "SD UNet / image", "Parti decode / token"], &rows)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> BatchResult {
        run(&DeviceSpec::a100_80gb(), &default_batches())
    }

    #[test]
    fn decode_amortizes_weights_dramatically() {
        // Memory-bound decode: doubling batch nearly halves cost/token.
        let r = result();
        let first = r.rows.first().unwrap().decode_ms_per_token;
        let last = r.rows.last().unwrap().decode_ms_per_token;
        assert!(first / last > 8.0, "decode amortization {}", first / last);
    }

    #[test]
    fn unet_gains_are_modest() {
        // Compute-bound diffusion: batching saves some tile/wave waste but
        // nothing like the decode amortization.
        let r = result();
        let first = r.rows.first().unwrap().unet_ms_per_image;
        let last = r.rows.last().unwrap().unet_ms_per_image;
        let gain = first / last;
        assert!((1.0..4.0).contains(&gain), "unet gain {gain}");
    }

    #[test]
    fn per_sample_cost_never_increases_with_batch() {
        let r = result();
        for w in r.rows.windows(2) {
            assert!(w[1].unet_ms_per_image <= w[0].unet_ms_per_image * 1.02);
            assert!(w[1].decode_ms_per_token <= w[0].decode_ms_per_token * 1.02);
        }
    }

    #[test]
    fn renders() {
        assert!(render(&result()).contains("batch 1"));
    }
}
