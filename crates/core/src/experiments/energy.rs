//! Extension — power regimes and end-to-end energy per model family,
//! plus an energy-aware batch-sizing sweep on the serving DES.
//!
//! The paper's roofline story (Fig. 5) has a power corollary: where a
//! kernel sits on the roofline decides what the board *draws* while it
//! runs. Compute-bound diffusion denoising pushes the tensor cores
//! toward their power ceiling; memory-bound attention/decode streams
//! HBM and draws closer to the bandwidth-bound figure; launch gaps
//! idle. This experiment integrates the per-kernel power model over
//! every suite family's profiled pipeline and reports:
//!
//! * **Part 1 — the regime story.** Joules per request (J/image,
//!   J/video, J/req), the pipeline-mean and peak kernel draw, and the
//!   energy-dominant stage with its own mean draw — the stage-level
//!   numbers are where the regime contrast lives (a whole-pipeline mean
//!   dilutes the denoise loop with VAE/text-encoder time). An optimized
//!   column (all kernel-graph passes + the distilled sampler for
//!   diffusion) shows energy-per-image falling with the same rewrites
//!   that cut latency.
//! * **Part 2 — the goodput/Wh frontier.** The serving DES runs the
//!   canonical mix under dynamic batching at increasing batch caps,
//!   with the profiler-attached power model metering every batch span.
//!   Each cell reports goodput, cluster energy, goodput per watt-hour,
//!   and whether the mean per-GPU draw fits under a [`POWER_CAP_W`]
//!   provisioning cap — the batch size a power-capped rack should run.
//!
//! Everything is derived from the same [`DeviceSpec`] power fields and
//! roofline splits the profiler uses, so the report is deterministic
//! and byte-identical for any `--jobs`.

use mmg_attn::AttnImpl;
use mmg_gpu::DeviceSpec;
use mmg_models::{suite, ModelId};
use mmg_profiler::report::render_table;
use mmg_serve::{
    model_short_name, simulate, ArrivalProcess, RequestMix, ScenarioCfg, SchedulerKind,
    ServiceProfile, SloSpec,
};

use crate::engine::ExecContext;
use crate::experiments::optimize::{FAMILIES, SAMPLER_STEPS};
use serde::{Deserialize, Serialize};

/// Per-GPU mean-draw provisioning cap for the frontier, watts. Between
/// the A100's HBM-bound (390 W) and idle draw: a deliberately tight rack
/// budget so the sweep shows both feasible and infeasible batch caps.
pub const POWER_CAP_W: f64 = 300.0;
/// Dynamic-batching caps swept in part 2.
pub const BATCH_CAPS: [usize; 6] = [1, 2, 4, 8, 16, 32];
/// GPUs in the simulated serving cluster.
pub const GPUS: usize = 4;
/// Request mix served in part 2 (the CLI's canonical mix).
pub const MIX: &str = "sd:8,parti:2";
/// Offered utilization of aggregate batch-1 capacity in part 2.
const UTILIZATION: f64 = 0.9;
/// Simulated seconds per frontier cell.
const DURATION_S: f64 = 200.0;
/// Deadline as a multiple of batch-1 service time.
pub const SLO_MULTIPLE: f64 = 4.0;
/// Fixed seed: one sample path per cell, reproducible everywhere.
const SEED: u64 = 42;

/// One model family's energy profile (part 1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FamilyEnergy {
    /// Model short name.
    pub model: String,
    /// Family label (diffusion vs autoregressive, image vs video/text).
    pub family: String,
    /// Energy unit for the request ("J/image" | "J/video" | "J/req").
    pub unit: String,
    /// Eager end-to-end seconds per request.
    pub time_s: f64,
    /// Eager end-to-end joules per request.
    pub energy_j: f64,
    /// Pipeline-mean board draw, watts.
    pub mean_draw_w: f64,
    /// Highest per-kernel draw anywhere in the pipeline, watts (the
    /// power model caps this at the device TDP).
    pub peak_kernel_draw_w: f64,
    /// Stage contributing the most energy (repeats-weighted).
    pub dominant_stage: String,
    /// Mean draw of the dominant stage alone, watts — the regime
    /// signal: compute-bound denoise runs hot, memory-bound decode
    /// closer to the HBM-bound draw.
    pub dominant_stage_draw_w: f64,
    /// Joules per request with all kernel-graph passes (+ the
    /// [`SAMPLER_STEPS`]-step distilled sampler for diffusion).
    pub opt_energy_j: f64,
    /// `energy_j / opt_energy_j` — the energy the rewrites return.
    pub energy_ratio: f64,
}

/// One batch-cap cell of the goodput/Wh frontier (part 2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrontierCell {
    /// Dynamic-batching cap.
    pub max_batch: usize,
    /// On-time requests/s.
    pub goodput_rps: f64,
    /// Mean modeled draw per GPU over the run, watts.
    pub mean_power_w: f64,
    /// Total cluster energy over the run, watt-hours.
    pub energy_wh: f64,
    /// On-time requests per watt-hour — the frontier's y-axis.
    pub good_per_wh: f64,
    /// Whether the mean per-GPU draw fits under [`POWER_CAP_W`].
    pub within_cap: bool,
}

/// Energy-experiment result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyResult {
    /// Simulated device.
    pub device: String,
    /// Device idle draw, watts.
    pub idle_w: f64,
    /// Device TDP, watts.
    pub tdp_w: f64,
    /// Per-family energy rows, [`FAMILIES`] order (part 1).
    pub rows: Vec<FamilyEnergy>,
    /// Cluster size of the frontier sweep.
    pub gpus: usize,
    /// Request mix of the frontier sweep.
    pub mix: String,
    /// Offered arrival rate, requests/s.
    pub offered_rps: f64,
    /// The per-GPU power cap applied, watts.
    pub power_cap_w: f64,
    /// Frontier cells, [`BATCH_CAPS`] order (part 2).
    pub frontier: Vec<FrontierCell>,
    /// Best on-time-requests-per-Wh across cells *within the power
    /// cap* — the bench-snapshot headline this experiment is gated on.
    pub best_good_per_wh: f64,
}

impl EnergyResult {
    /// The row for a model short name.
    #[must_use]
    pub fn row(&self, model: &str) -> Option<&FamilyEnergy> {
        self.rows.iter().find(|r| r.model == model)
    }

    /// The frontier cell for a batch cap.
    #[must_use]
    pub fn cell(&self, max_batch: usize) -> Option<&FrontierCell> {
        self.frontier.iter().find(|c| c.max_batch == max_batch)
    }
}

fn unit_for(id: ModelId) -> &'static str {
    if id == ModelId::Llama2 {
        "J/req"
    } else if id.is_video() {
        "J/video"
    } else {
        "J/image"
    }
}

/// Runs the experiment on the default device context.
#[must_use]
pub fn run(spec: &DeviceSpec) -> EnergyResult {
    run_ctx(&ExecContext::shared(spec.clone()))
}

/// [`run`] against an explicit [`ExecContext`] (worker registry + memo).
#[must_use]
pub fn run_ctx(ctx: &ExecContext) -> EnergyResult {
    let profiler = ctx.profiler(AttnImpl::Flash);
    let optimized = ctx.profiler_opt(AttnImpl::Flash, mmg_graph::OptConfig::all());

    // Part 1: integrate the power model over every family's pipeline.
    let rows: Vec<FamilyEnergy> = FAMILIES
        .iter()
        .map(|&(id, family)| {
            let prof = suite::build(id).profile(&profiler);
            let energy_j = prof.total_energy_j();
            let peak_kernel_draw_w = prof
                .stages
                .iter()
                .flat_map(|s| s.timeline.events())
                .flat_map(|e| e.kernels.iter())
                .map(|k| k.draw_w)
                .fold(0.0, f64::max);
            let dominant = prof
                .stages
                .iter()
                .max_by(|a, b| {
                    (a.repeats as f64 * a.timeline.total_energy_j())
                        .total_cmp(&(b.repeats as f64 * b.timeline.total_energy_j()))
                })
                .expect("suite pipelines have stages");
            let mut opt_pipeline = suite::build(id);
            if opt_pipeline.has_denoising_stages() {
                opt_pipeline = opt_pipeline.with_sampler_steps(SAMPLER_STEPS);
            }
            let opt_energy_j = opt_pipeline.profile(&optimized).total_energy_j();
            FamilyEnergy {
                model: model_short_name(id).to_string(),
                family: family.to_string(),
                unit: unit_for(id).to_string(),
                time_s: prof.total_time_s(),
                energy_j,
                mean_draw_w: prof.mean_power_w(),
                peak_kernel_draw_w,
                dominant_stage: dominant.name.clone(),
                dominant_stage_draw_w: dominant.timeline.mean_power_w(),
                opt_energy_j,
                energy_ratio: energy_j / opt_energy_j,
            }
        })
        .collect();

    // Part 2: the power-metered serving DES across batch caps. The
    // sampled profile attaches the pipeline-mean draw to every curve
    // and the device idle draw to the profile, so every batch span is
    // metered.
    let mix = RequestMix::parse(MIX).expect("the built-in mix parses");
    let models: Vec<ModelId> = mix.models().collect();
    let max_cap = *BATCH_CAPS.iter().max().expect("caps are non-empty");
    let batches: Vec<usize> = (0..).map(|i| 1 << i).take_while(|&b| b <= max_cap).collect();
    let profile = ServiceProfile::from_profiler_sampled(&profiler, &models, &batches, None);
    let offered_rps = UTILIZATION * GPUS as f64 / profile.mean_base_s(&mix);

    let frontier: Vec<FrontierCell> = BATCH_CAPS
        .iter()
        .map(|&cap| {
            let mut cfg = ScenarioCfg::new(
                GPUS,
                mix.clone(),
                ArrivalProcess::poisson(offered_rps),
                SchedulerKind::Dynamic { max_batch: cap },
                SloSpec::ServiceMultiple(SLO_MULTIPLE),
                DURATION_S,
                SEED,
            );
            cfg.full_records = false;
            let r = simulate(&cfg, &profile, &ctx.registry);
            let energy_wh = r.total_energy_wh().expect("sampled profiles carry power");
            let mean_power_w = r.mean_power_w().expect("sampled profiles carry power");
            FrontierCell {
                max_batch: cap,
                goodput_rps: r.goodput_rps(),
                mean_power_w,
                energy_wh,
                good_per_wh: if energy_wh > 0.0 {
                    r.stats.on_time as f64 / energy_wh
                } else {
                    0.0
                },
                within_cap: mean_power_w <= POWER_CAP_W,
            }
        })
        .collect();

    let best_good_per_wh = frontier
        .iter()
        .filter(|c| c.within_cap)
        .map(|c| c.good_per_wh)
        .fold(0.0, f64::max);

    EnergyResult {
        device: ctx.spec.name.clone(),
        idle_w: ctx.spec.idle_w,
        tdp_w: ctx.spec.tdp_w,
        rows,
        gpus: GPUS,
        mix: MIX.to_string(),
        offered_rps,
        power_cap_w: POWER_CAP_W,
        frontier,
        best_good_per_wh,
    }
}

/// Renders both tables.
#[must_use]
pub fn render(r: &EnergyResult) -> String {
    let family_rows: Vec<(String, Vec<String>)> = r
        .rows
        .iter()
        .map(|row| {
            (
                row.model.clone(),
                vec![
                    row.family.clone(),
                    format!("{:.1} {}", row.energy_j, row.unit),
                    format!("{:.0} W", row.mean_draw_w),
                    format!("{:.0} W", row.peak_kernel_draw_w),
                    format!("{} ({:.0} W)", row.dominant_stage, row.dominant_stage_draw_w),
                    format!("{:.1} {}", row.opt_energy_j, row.unit),
                    format!("{:.2}x", row.energy_ratio),
                ],
            )
        })
        .collect();
    let frontier_rows: Vec<(String, Vec<String>)> = r
        .frontier
        .iter()
        .map(|c| {
            (
                format!("cap {}", c.max_batch),
                vec![
                    format!("{:.2}/s", c.goodput_rps),
                    format!("{:.0} W", c.mean_power_w),
                    format!("{:.2} Wh", c.energy_wh),
                    format!("{:.1}", c.good_per_wh),
                    if c.within_cap { "yes".to_string() } else { "OVER".to_string() },
                ],
            )
        })
        .collect();
    format!(
        "Extension — power regimes & energy ({}, idle {:.0} W, TDP {:.0} W)\n{}\
         \nGoodput/Wh frontier ({} GPUs, mix {}, {:.2} req/s offered, cap {:.0} W/GPU)\n{}\
         best within cap: {:.1} on-time requests per Wh\n",
        r.device,
        r.idle_w,
        r.tdp_w,
        render_table(
            &["Model", "Family", "Energy", "Mean", "Peak", "Dominant stage", "Optimized", "Ratio"],
            &family_rows
        ),
        r.gpus,
        r.mix,
        r.offered_rps,
        r.power_cap_w,
        render_table(
            &["Batch cap", "Goodput", "W/GPU", "Energy", "Good/Wh", "In cap"],
            &frontier_rows
        ),
        r.best_good_per_wh,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn result() -> &'static EnergyResult {
        static RESULT: OnceLock<EnergyResult> = OnceLock::new();
        RESULT.get_or_init(|| run(&DeviceSpec::a100_80gb()))
    }

    #[test]
    fn covers_every_family_and_cap() {
        let r = result();
        assert_eq!(r.rows.len(), FAMILIES.len());
        for short in ["sd", "mav", "parti", "llama"] {
            assert!(r.row(short).is_some(), "missing {short}");
        }
        assert_eq!(r.frontier.len(), BATCH_CAPS.len());
        for cap in BATCH_CAPS {
            assert!(r.cell(cap).is_some(), "missing cap {cap}");
        }
    }

    #[test]
    fn draws_stay_between_idle_and_tdp() {
        // The acceptance bar: no kernel anywhere draws above TDP, and
        // every pipeline's mean sits strictly between idle and TDP.
        let r = result();
        for row in &r.rows {
            assert!(
                row.peak_kernel_draw_w <= r.tdp_w + 1e-9,
                "{}: peak {} over TDP {}",
                row.model,
                row.peak_kernel_draw_w,
                r.tdp_w
            );
            assert!(
                row.mean_draw_w > r.idle_w && row.mean_draw_w < r.tdp_w,
                "{}: mean draw {} outside ({}, {})",
                row.model,
                row.mean_draw_w,
                r.idle_w,
                r.tdp_w
            );
            assert!(row.energy_j > 0.0 && row.time_s > 0.0);
        }
    }

    #[test]
    fn units_follow_the_modality() {
        let r = result();
        assert_eq!(r.row("sd").unwrap().unit, "J/image");
        assert_eq!(r.row("parti").unwrap().unit, "J/image");
        assert_eq!(r.row("mav").unwrap().unit, "J/video");
        assert_eq!(r.row("llama").unwrap().unit, "J/req");
    }

    #[test]
    fn video_costs_more_energy_than_image() {
        // Table I's latency gap becomes an energy gap: a Make-A-Video
        // request burns well over an order of magnitude more joules
        // than a Stable Diffusion image.
        let r = result();
        let sd = r.row("sd").unwrap().energy_j;
        let mav = r.row("mav").unwrap().energy_j;
        assert!(mav > 10.0 * sd, "mav {mav} J vs sd {sd} J");
    }

    #[test]
    fn optimization_returns_energy() {
        // The same rewrites that cut latency cut joules — and the
        // distilled sampler makes the diffusion ratio the largest.
        let r = result();
        for row in &r.rows {
            assert!(row.energy_ratio > 1.0, "{}: ratio {}", row.model, row.energy_ratio);
        }
        let sd = r.row("sd").unwrap().energy_ratio;
        let llama = r.row("llama").unwrap().energy_ratio;
        assert!(sd > llama, "sd ratio {sd} vs llama {llama}");
    }

    #[test]
    fn frontier_is_metered_and_has_a_feasible_cell()
    {
        let r = result();
        for c in &r.frontier {
            assert!(c.energy_wh > 0.0, "cap {}: no energy metered", c.max_batch);
            assert!(
                c.mean_power_w > r.idle_w && c.mean_power_w < r.tdp_w,
                "cap {}: mean power {} outside (idle, TDP)",
                c.max_batch,
                c.mean_power_w
            );
        }
        assert!(
            r.frontier.iter().any(|c| c.within_cap),
            "no batch cap fits under {} W",
            r.power_cap_w
        );
        assert!(r.best_good_per_wh > 0.0);
        // Batching amortizes energy: some batched cell beats batch-1
        // goodput-per-Wh.
        let b1 = r.cell(1).unwrap().good_per_wh;
        assert!(
            r.best_good_per_wh >= b1,
            "best {} below batch-1 {}",
            r.best_good_per_wh,
            b1
        );
    }

    #[test]
    fn renders() {
        let out = render(result());
        assert!(out.contains("power regimes") && out.contains("Goodput/Wh frontier"));
        assert!(out.contains("J/image") && out.contains("J/video"));
        assert!(out.contains("best within cap"));
    }
}
