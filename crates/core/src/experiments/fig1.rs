//! Fig. 1 — fleet-wide GPUs-per-parameter and memory utilization.

use mmg_analytics::fleet::{generate_fleet, summarize, FleetConfig, FleetSummary, TrainingJob};
use mmg_analytics::training::derived_fleet;
use mmg_gpu::DeviceSpec;
use mmg_profiler::report::render_table;
use serde::{Deserialize, Serialize};

/// Fig. 1 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig1Result {
    /// Jobs in the synthetic fleet.
    pub jobs: usize,
    /// GPUs-per-parameter ratio (paper: 14x).
    pub gpus_per_param_ratio: f64,
    /// Memory-utilization ratio (paper: 1.4x).
    pub memory_util_ratio: f64,
    /// Mean LLM memory utilization.
    pub llm_memory_util: f64,
    /// Mean TTI/TTV memory utilization.
    pub tti_memory_util: f64,
    /// GPUs-per-parameter ratio derived from first principles (training
    /// FLOP budgets of the suite's own graphs on the simulated device).
    pub derived_gpus_per_param_ratio: f64,
}

/// Runs the fleet aggregation over the default synthetic fleet.
#[must_use]
pub fn run(seed: u64) -> Fig1Result {
    let cfg = FleetConfig::default();
    let jobs = generate_fleet(&cfg, seed);
    let s: FleetSummary = summarize(&jobs);
    let spec = DeviceSpec::a100_80gb();
    let derived: Vec<TrainingJob> =
        derived_fleet().iter().map(|m| m.as_fleet_job(&spec)).collect();
    Fig1Result {
        jobs: jobs.len(),
        gpus_per_param_ratio: s.gpus_per_param_ratio,
        memory_util_ratio: s.memory_util_ratio,
        llm_memory_util: s.llm_memory_util,
        tti_memory_util: s.tti_memory_util,
        derived_gpus_per_param_ratio: summarize(&derived).gpus_per_param_ratio,
    }
}

/// Renders the Fig. 1 table.
#[must_use]
pub fn render(r: &Fig1Result) -> String {
    let rows = vec![
        (
            "GPUs per model parameter (TTI/LLM)".to_owned(),
            vec![format!("{:.1}x", r.gpus_per_param_ratio), "14x".to_owned()],
        ),
        (
            "Avg memory utilization (TTI/LLM)".to_owned(),
            vec![format!("{:.2}x", r.memory_util_ratio), "1.4x".to_owned()],
        ),
        (
            "LLM memory utilization".to_owned(),
            vec![format!("{:.0}%", r.llm_memory_util * 100.0), "~60%".to_owned()],
        ),
        (
            "TTI/TTV memory utilization".to_owned(),
            vec![format!("{:.0}%", r.tti_memory_util * 100.0), "~70%+".to_owned()],
        ),
        (
            "GPUs/param ratio (derived from training FLOP budgets)".to_owned(),
            vec![format!("{:.1}x", r.derived_gpus_per_param_ratio), "14x".to_owned()],
        ),
    ];
    format!(
        "Fig. 1 — fleet-wide characterization ({} synthetic jobs)\n{}",
        r.jobs,
        render_table(&["Metric", "Measured", "Paper"], &rows)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_in_band() {
        let a = run(42);
        let b = run(42);
        assert_eq!(a, b);
        assert!((8.0..22.0).contains(&a.gpus_per_param_ratio));
        assert!((1.2..1.7).contains(&a.memory_util_ratio));
    }

    #[test]
    fn renders_both_ratios() {
        let s = render(&run(42));
        assert!(s.contains("GPUs per model parameter"));
        assert!(s.contains("14x"));
    }
}
