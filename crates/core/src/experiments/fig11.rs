//! Fig. 11 — temporal vs. spatial attention in Make-A-Video: execution
//! time and FLOPs.

use mmg_attn::AttnImpl;
use mmg_gpu::DeviceSpec;
use mmg_graph::AttnKind;
use mmg_models::suite::make_a_video::{pipeline, MakeAVideoConfig};
use mmg_profiler::report::{fmt_seconds, render_table};
use serde::{Deserialize, Serialize};

use crate::engine::ExecContext;

/// Fig. 11 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig11Result {
    /// Spatial self-attention seconds (end-to-end, weighted).
    pub spatial_s: f64,
    /// Temporal attention seconds.
    pub temporal_s: f64,
    /// Spatial attention FLOPs.
    pub spatial_flops: u64,
    /// Temporal attention FLOPs.
    pub temporal_flops: u64,
}

impl Fig11Result {
    /// Temporal/spatial execution-time ratio (paper: ≈2x).
    #[must_use]
    pub fn time_ratio(&self) -> f64 {
        self.temporal_s / self.spatial_s
    }

    /// Spatial/temporal FLOP ratio (paper: ≈9x).
    #[must_use]
    pub fn flops_ratio(&self) -> f64 {
        self.spatial_flops as f64 / self.temporal_flops as f64
    }
}

/// Profiles Make-A-Video and splits attention by kind.
#[must_use]
pub fn run(spec: &DeviceSpec) -> Fig11Result {
    run_ctx(&ExecContext::shared(spec.clone()))
}

/// [`run`] against an explicit [`ExecContext`] (worker registry + memo).
#[must_use]
pub fn run_ctx(ctx: &ExecContext) -> Fig11Result {
    let profiler = ctx.profiler(AttnImpl::Flash);
    let prof = pipeline(&MakeAVideoConfig::default()).profile(&profiler);
    Fig11Result {
        spatial_s: prof.attention_time_by_kind(AttnKind::SpatialSelf),
        temporal_s: prof.attention_time_by_kind(AttnKind::Temporal),
        spatial_flops: prof.attention_flops_by_kind(AttnKind::SpatialSelf),
        temporal_flops: prof.attention_flops_by_kind(AttnKind::Temporal),
    }
}

/// Renders Fig. 11.
#[must_use]
pub fn render(r: &Fig11Result) -> String {
    let rows = vec![
        (
            "Spatial attention".to_owned(),
            vec![fmt_seconds(r.spatial_s), format!("{:.1} T", r.spatial_flops as f64 / 1e12)],
        ),
        (
            "Temporal attention".to_owned(),
            vec![fmt_seconds(r.temporal_s), format!("{:.1} T", r.temporal_flops as f64 / 1e12)],
        ),
    ];
    format!(
        "Fig. 11 — Make-A-Video: temporal is {:.1}x slower with {:.1}x fewer FLOPs (paper: 2x, 9x)\n{}",
        r.time_ratio(),
        r.flops_ratio(),
        render_table(&["Attention", "Time", "FLOPs"], &rows)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> Fig11Result {
        run(&DeviceSpec::a100_80gb())
    }

    #[test]
    fn temporal_slower_despite_fewer_flops() {
        let r = result();
        assert!(r.temporal_s > r.spatial_s, "temporal must be slower");
        assert!(r.temporal_flops < r.spatial_flops, "with fewer FLOPs");
    }

    #[test]
    fn ratios_in_paper_band() {
        let r = result();
        assert!((1.5..4.5).contains(&r.time_ratio()), "time ratio {}", r.time_ratio());
        assert!((5.0..20.0).contains(&r.flops_ratio()), "flops ratio {}", r.flops_ratio());
    }

    #[test]
    fn renders_both_rows() {
        let s = render(&result());
        assert!(s.contains("Spatial attention"));
        assert!(s.contains("Temporal attention"));
    }
}
