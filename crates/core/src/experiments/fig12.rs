//! Fig. 12 — L1/L2 cache hit rates of the attention-internal kernels,
//! spatial vs. temporal, from trace-driven cache simulation.

use mmg_gpu::DeviceSpec;
use mmg_kernels::access::{AttentionKernel, VideoAttentionAccess};
use mmg_profiler::report::{fmt_pct, render_table};
use serde::{Deserialize, Serialize};

/// Hit rates for one kernel under one attention direction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig12Row {
    /// Kernel family (`gemm` / `softmax` / `elementwise`).
    pub kernel: String,
    /// Attention direction (`spatial` / `temporal`).
    pub direction: String,
    /// L1 hit rate.
    pub l1_hit: f64,
    /// L2 hit rate (of L1 misses).
    pub l2_hit: f64,
}

/// Fig. 12 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig12Result {
    /// Six rows: 3 kernels × 2 directions.
    pub rows: Vec<Fig12Row>,
}

impl Fig12Result {
    /// A named row.
    #[must_use]
    pub fn row(&self, kernel: &str, direction: &str) -> Option<&Fig12Row> {
        self.rows.iter().find(|r| r.kernel == kernel && r.direction == direction)
    }

    /// Spatial/temporal L1 ratio for a kernel (paper: ~10x for gemm and
    /// softmax). The temporal rate is floored at 1% — in our idealized
    /// trace the temporal stream has *no* reuse at all, whereas real
    /// kernels retain a few percent of incidental hits.
    #[must_use]
    pub fn l1_ratio(&self, kernel: &str) -> f64 {
        let s = self.row(kernel, "spatial").map_or(0.0, |r| r.l1_hit);
        let t = self.row(kernel, "temporal").map_or(0.0, |r| r.l1_hit);
        s / t.max(0.01)
    }
}

/// Simulates the kernel access streams through the device cache hierarchy.
#[must_use]
pub fn run(spec: &DeviceSpec, max_probes: usize) -> Fig12Result {
    let v = VideoAttentionAccess::make_a_video_base();
    let mut rows = Vec::new();
    for (kernel, name) in [
        (AttentionKernel::Gemm, "gemm"),
        (AttentionKernel::Softmax, "softmax"),
        (AttentionKernel::Elementwise, "elementwise"),
    ] {
        for (temporal, direction) in [(false, "spatial"), (true, "temporal")] {
            let stats = v.simulate(kernel, temporal, spec, max_probes);
            rows.push(Fig12Row {
                kernel: name.to_owned(),
                direction: direction.to_owned(),
                l1_hit: stats.l1.hit_rate(),
                l2_hit: stats.l2.hit_rate(),
            });
        }
    }
    Fig12Result { rows }
}

/// Renders Fig. 12.
#[must_use]
pub fn render(r: &Fig12Result) -> String {
    let rows: Vec<(String, Vec<String>)> = r
        .rows
        .iter()
        .map(|row| {
            (
                format!("{} ({})", row.kernel, row.direction),
                vec![fmt_pct(row.l1_hit), fmt_pct(row.l2_hit)],
            )
        })
        .collect();
    format!(
        "Fig. 12 — cache hit rates during attention (trace-driven simulation)\n{}",
        render_table(&["Kernel", "L1 hit", "L2 hit"], &rows)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> Fig12Result {
        run(&DeviceSpec::a100_80gb(), 200_000)
    }

    #[test]
    fn temporal_l1_much_lower_for_gemm_and_softmax() {
        // Paper: ~10x lower L1 hit rate for gemm and softmax.
        let r = result();
        assert!(r.l1_ratio("gemm") > 5.0, "gemm ratio {}", r.l1_ratio("gemm"));
        assert!(r.l1_ratio("softmax") > 5.0, "softmax ratio {}", r.l1_ratio("softmax"));
    }

    #[test]
    fn elementwise_unaffected() {
        // Paper: elementwise hit rates stay the same or higher.
        let r = result();
        let ratio = r.l1_ratio("elementwise");
        assert!((0.8..1.3).contains(&ratio), "elementwise ratio {ratio}");
    }

    #[test]
    fn spatial_l1_is_healthy() {
        let r = result();
        assert!(r.row("gemm", "spatial").unwrap().l1_hit > 0.5);
        assert!(r.row("softmax", "spatial").unwrap().l1_hit > 0.5);
    }

    #[test]
    fn six_rows_rendered() {
        let r = result();
        assert_eq!(r.rows.len(), 6);
        assert!(render(&r).contains("softmax (temporal)"));
    }
}
