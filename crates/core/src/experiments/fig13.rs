//! Fig. 13 — temporal vs. spatial attention FLOPs as frame count grows.

use mmg_analytics::temporal::{crossover_frames, frame_sweep};
use mmg_profiler::report::render_table;
use serde::{Deserialize, Serialize};

/// Fig. 13 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig13Result {
    /// Image edge used.
    pub res: usize,
    /// `(frames, spatial flops, temporal flops)` series.
    pub series: Vec<(usize, u64, u64)>,
    /// Crossover frame count (temporal exceeds spatial), if within sweep.
    pub crossover: Option<usize>,
    /// Crossover at double the resolution — the paper notes higher
    /// resolution prolongs the crossover.
    pub crossover_high_res: Option<usize>,
}

/// Sweeps frames at a TimeSformer-like benchmark point (following the
/// paper's benchmark built on ref \[40]): `res`×`res` grid, 320 channels,
/// 8 heads.
#[must_use]
pub fn run(res: usize, frames: &[usize]) -> Fig13Result {
    let pts = frame_sweep(frames, res, 320, 8);
    let max = frames.iter().copied().max().unwrap_or(0).max(1_000_000);
    Fig13Result {
        res,
        series: pts.iter().map(|p| (p.frames, p.spatial_flops, p.temporal_flops)).collect(),
        crossover: crossover_frames(res, 320, 8, max),
        crossover_high_res: crossover_frames(res * 2, 320, 8, max * 4),
    }
}

/// Default frame sweep.
#[must_use]
pub fn default_frames() -> Vec<usize> {
    vec![4, 8, 16, 32, 64, 128, 256, 512]
}

/// Renders Fig. 13.
#[must_use]
pub fn render(r: &Fig13Result) -> String {
    let rows: Vec<(String, Vec<String>)> = r
        .series
        .iter()
        .map(|&(f, s, t)| {
            (
                format!("{f} frames"),
                vec![
                    format!("{:.2} G", s as f64 / 1e9),
                    format!("{:.2} G", t as f64 / 1e9),
                    if t > s { "temporal".into() } else { "spatial".into() },
                ],
            )
        })
        .collect();
    format!(
        "Fig. 13 — attention FLOPs vs frames at {0}x{0} (crossover at {1:?} frames; {2}x{2}: {3:?})\n{4}",
        r.res,
        r.crossover,
        r.res * 2,
        r.crossover_high_res,
        render_table(&["Frames", "Spatial FLOPs", "Temporal FLOPs", "Dominant"], &rows)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> Fig13Result {
        run(16, &default_frames())
    }

    #[test]
    fn temporal_overtakes_spatial() {
        let r = result();
        let first = r.series.first().unwrap();
        let last = r.series.last().unwrap();
        assert!(first.2 < first.1, "temporal cheaper at few frames");
        assert!(last.2 > last.1, "temporal dominates at many frames");
        assert_eq!(r.crossover, Some(16 * 16 + 1));
    }

    #[test]
    fn higher_resolution_prolongs_crossover() {
        let r = result();
        assert!(r.crossover_high_res.unwrap() > r.crossover.unwrap());
    }

    #[test]
    fn growth_rates() {
        let r = result();
        let f = |i: usize| r.series[i];
        // frames 4 -> 8: spatial x2, temporal x4.
        assert_eq!(f(1).1 / f(0).1, 2);
        assert_eq!(f(1).2 / f(0).2, 4);
    }

    #[test]
    fn renders_crossover() {
        assert!(render(&result()).contains("crossover"));
    }
}
