//! Fig. 4 — FID vs. parameter-count Pareto landscape.

use mmg_analytics::pareto::{frontier, ParetoPoint};
use mmg_models::registry;
use mmg_profiler::report::render_table;
use serde::{Deserialize, Serialize};

/// One scatter point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig4Row {
    /// Model name.
    pub model: String,
    /// Architecture class.
    pub arch: String,
    /// Parameters in billions.
    pub params_b: f64,
    /// Published COCO FID.
    pub fid: f64,
    /// Frontier membership.
    pub on_frontier: bool,
}

/// Fig. 4 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig4Result {
    /// All points, frontier members first, then by FID.
    pub rows: Vec<Fig4Row>,
}

/// Computes the landscape and frontier.
#[must_use]
pub fn run() -> Fig4Result {
    let mut rows: Vec<Fig4Row> = frontier(&registry())
        .into_iter()
        .map(|p: ParetoPoint| Fig4Row {
            model: p.record.name.to_owned(),
            arch: p.record.arch.to_string(),
            params_b: p.record.params_b,
            fid: p.record.fid,
            on_frontier: p.on_frontier,
        })
        .collect();
    rows.sort_by(|a, b| {
        b.on_frontier.cmp(&a.on_frontier).then(a.fid.total_cmp(&b.fid))
    });
    Fig4Result { rows }
}

/// Renders Fig. 4.
#[must_use]
pub fn render(r: &Fig4Result) -> String {
    let rows: Vec<(String, Vec<String>)> = r
        .rows
        .iter()
        .map(|row| {
            (
                row.model.clone(),
                vec![
                    row.arch.clone(),
                    format!("{:.2}B", row.params_b),
                    format!("{:.2}", row.fid),
                    if row.on_frontier { "yes".into() } else { "-".into() },
                ],
            )
        })
        .collect();
    format!(
        "Fig. 4 — quality/size landscape (published values) and Pareto frontier\n{}",
        render_table(&["Model", "Architecture", "Params", "FID", "Pareto"], &rows)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frontier_members_lead() {
        let r = run();
        assert!(r.rows[0].on_frontier);
        let first_off = r.rows.iter().position(|x| !x.on_frontier).unwrap();
        assert!(r.rows[first_off..].iter().all(|x| !x.on_frontier));
    }

    #[test]
    fn pareto_models_present() {
        let r = run();
        for name in ["Imagen", "StableDiffusion", "Parti"] {
            let row = r.rows.iter().find(|x| x.model == name).unwrap();
            assert!(row.on_frontier, "{name}");
        }
    }

    #[test]
    fn renders() {
        assert!(render(&run()).contains("Pareto"));
    }
}
