//! Fig. 5 — the model suite on the A100 roofline.

use mmg_analytics::roofline::suite_roofline;
use mmg_gpu::{DeviceSpec, Roofline};
use mmg_profiler::report::render_table;
use serde::{Deserialize, Serialize};

/// One roofline placement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig5Row {
    /// Model name.
    pub model: String,
    /// Arithmetic intensity (FLOPs per weight byte read).
    pub intensity: f64,
    /// Attainable TFLOP/s at that intensity.
    pub attainable_tflops: f64,
    /// Whether the point is compute-bound.
    pub compute_bound: bool,
}

/// Fig. 5 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig5Result {
    /// Device name.
    pub device: String,
    /// Ridge point (FLOPs/byte).
    pub ridge: f64,
    /// Suite placements.
    pub rows: Vec<Fig5Row>,
}

/// Places the suite on the device roofline.
#[must_use]
pub fn run(spec: &DeviceSpec) -> Fig5Result {
    let rows = suite_roofline(spec)
        .into_iter()
        .map(|p| Fig5Row {
            model: p.label,
            intensity: p.intensity_flops_per_byte,
            attainable_tflops: p.tflops,
            compute_bound: p.compute_bound,
        })
        .collect();
    Fig5Result {
        device: spec.name.clone(),
        ridge: Roofline::new(spec.clone()).ridge_point(),
        rows,
    }
}

/// Renders Fig. 5.
#[must_use]
pub fn render(r: &Fig5Result) -> String {
    let rows: Vec<(String, Vec<String>)> = r
        .rows
        .iter()
        .map(|row| {
            (
                row.model.clone(),
                vec![
                    format!("{:.1}", row.intensity),
                    format!("{:.0}", row.attainable_tflops),
                    if row.compute_bound { "compute".into() } else { "memory".into() },
                ],
            )
        })
        .collect();
    format!(
        "Fig. 5 — roofline on {} (ridge = {:.0} FLOPs/byte)\n{}",
        r.device,
        r.ridge,
        render_table(&["Model", "FLOPs/byte", "Attainable TF/s", "Bound"], &rows)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diffusion_above_ridge_parti_below() {
        let r = run(&DeviceSpec::a100_80gb());
        let get = |m: &str| r.rows.iter().find(|x| x.model == m).unwrap().clone();
        assert!(get("StableDiffusion").compute_bound);
        assert!(get("Imagen").compute_bound);
        assert!(!get("Parti").compute_bound);
    }

    #[test]
    fn attainable_capped_at_peak() {
        let r = run(&DeviceSpec::a100_80gb());
        for row in &r.rows {
            assert!(row.attainable_tflops <= 312.0 + 1e-9);
        }
    }

    #[test]
    fn renders() {
        assert!(render(&run(&DeviceSpec::a100_80gb())).contains("ridge"));
    }
}
