//! Fig. 6 — operator time breakdown across the suite, baseline attention
//! vs. Flash Attention (flash bar normalized to the baseline total).

use mmg_attn::AttnImpl;
use mmg_gpu::DeviceSpec;
use mmg_models::{suite, ModelId};
use mmg_profiler::report::{fmt_pct, render_table};
use serde::{Deserialize, Serialize};

use crate::engine::ExecContext;

/// One model's pair of stacked bars.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig6Model {
    /// Model name.
    pub model: String,
    /// Baseline end-to-end seconds.
    pub baseline_s: f64,
    /// Flash end-to-end seconds.
    pub flash_s: f64,
    /// `(category, fraction of baseline total)` for the baseline bar.
    pub baseline: Vec<(String, f64)>,
    /// `(category, fraction of baseline total)` for the flash bar — the
    /// paper normalizes the flash bar to the baseline's total.
    pub flash_normalized: Vec<(String, f64)>,
}

impl Fig6Model {
    /// Fraction of a category in one bar (0 if absent).
    #[must_use]
    pub fn fraction(&self, flash: bool, category: &str) -> f64 {
        let rows = if flash { &self.flash_normalized } else { &self.baseline };
        rows.iter().find(|(c, _)| c == category).map_or(0.0, |(_, f)| *f)
    }
}

/// Fig. 6 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig6Result {
    /// One entry per suite model.
    pub models: Vec<Fig6Model>,
}

impl Fig6Result {
    /// Mean baseline attention fraction across the TTI/TTV members
    /// (paper: ≈41.3%).
    #[must_use]
    pub fn mean_tti_attention_fraction(&self) -> f64 {
        let tti: Vec<&Fig6Model> =
            self.models.iter().filter(|m| m.model != "LLaMA2").collect();
        tti.iter().map(|m| m.fraction(false, "Attention")).sum::<f64>() / tti.len() as f64
    }
}

/// Profiles the whole suite under both attention implementations.
#[must_use]
pub fn run(spec: &DeviceSpec) -> Fig6Result {
    run_ctx(&ExecContext::shared(spec.clone()))
}

/// [`run`] against an explicit [`ExecContext`] (worker registry + memo).
#[must_use]
pub fn run_ctx(ctx: &ExecContext) -> Fig6Result {
    let base = ctx.profiler(AttnImpl::Baseline);
    let flash = ctx.profiler(AttnImpl::Flash);
    let models = ModelId::ALL
        .iter()
        .map(|&id| {
            let p = suite::build(id);
            let pb = p.profile(&base).breakdown();
            let pf = p.profile(&flash).breakdown();
            let to_rows = |b: &mmg_profiler::CategoryBreakdown, denom: f64| {
                b.rows()
                    .iter()
                    .map(|&(c, s)| (c.to_string(), s / denom))
                    .collect::<Vec<_>>()
            };
            Fig6Model {
                model: p.name.clone(),
                baseline_s: pb.total_s(),
                flash_s: pf.total_s(),
                baseline: to_rows(&pb, pb.total_s()),
                flash_normalized: to_rows(&pf, pb.total_s()),
            }
        })
        .collect();
    Fig6Result { models }
}

/// Renders Fig. 6 as one table row per model and bar.
#[must_use]
pub fn render(r: &Fig6Result) -> String {
    let cats = ["Attention", "Conv", "Linear", "GroupNorm", "LayerNorm", "Elementwise", "Memory"];
    let mut rows = Vec::new();
    for m in &r.models {
        for (tag, flash) in [("base", false), ("flash", true)] {
            let vals: Vec<String> =
                cats.iter().map(|c| fmt_pct(m.fraction(flash, c))).collect();
            rows.push((format!("{} ({tag})", m.model), vals));
        }
    }
    let mut headers = vec!["Model"];
    headers.extend(cats);
    format!(
        "Fig. 6 — operator breakdown (fractions of each model's BASELINE total;\nthe flash bar summing below 100% is the end-to-end saving)\n{}",
        render_table(&headers, &rows)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> Fig6Result {
        run(&DeviceSpec::a100_80gb())
    }

    #[test]
    fn baseline_fractions_sum_to_one() {
        for m in result().models {
            let s: f64 = m.baseline.iter().map(|(_, f)| f).sum();
            assert!((s - 1.0).abs() < 1e-9, "{}: {s}", m.model);
            let sf: f64 = m.flash_normalized.iter().map(|(_, f)| f).sum();
            assert!(sf <= 1.0 + 1e-9, "{}: flash bar exceeds baseline", m.model);
        }
    }

    #[test]
    fn conv_becomes_dominant_for_diffusion_after_flash() {
        // The headline Fig. 6 claim: post-flash, convolution is the largest
        // block for diffusion models (up to ~44% of execution time).
        let r = result();
        for name in ["StableDiffusion", "Imagen", "ProdImage"] {
            let m = r.models.iter().find(|m| m.model == name).unwrap();
            let conv = m.fraction(true, "Conv") / (m.flash_s / m.baseline_s);
            let attn = m.fraction(true, "Attention") / (m.flash_s / m.baseline_s);
            assert!(conv > attn, "{name}: conv {conv} vs attn {attn}");
        }
    }

    #[test]
    fn baseline_diffusion_conv_fraction_in_paper_band() {
        // Paper: convolution up to ~36% of baseline diffusion time, and
        // pixel models spend more than latent models.
        let r = result();
        let conv = |name: &str| {
            r.models.iter().find(|m| m.model == name).unwrap().fraction(false, "Conv")
        };
        assert!(conv("StableDiffusion") > 0.10);
        assert!(conv("Imagen") > conv("StableDiffusion"));
    }

    #[test]
    fn mean_attention_fraction_near_paper() {
        // Paper: attention ≈41.3% of baseline time averaged over TTI/TTV.
        let f = result().mean_tti_attention_fraction();
        assert!((0.10..0.60).contains(&f), "mean attention fraction {f}");
    }

    #[test]
    fn transformer_linear_dominates() {
        // Paper: Linear up to 49% for transformer-based models.
        let r = result();
        for name in ["Muse", "Parti"] {
            let m = r.models.iter().find(|m| m.model == name).unwrap();
            assert!(m.fraction(false, "Linear") > 0.4, "{name}");
        }
    }

    #[test]
    fn renders_all_models() {
        let s = render(&result());
        for name in ["LLaMA2", "Phenaki"] {
            assert!(s.contains(name));
        }
    }
}
