//! Fig. 7 — sequence length over the course of inference (one fundamental
//! period per model).

use mmg_attn::AttnImpl;
use mmg_gpu::DeviceSpec;
use mmg_models::{suite, ModelId};
use mmg_profiler::seqlen::{trace, SeqLenSample};

use crate::engine::ExecContext;
use serde::{Deserialize, Serialize};

/// One model's trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig7Trace {
    /// Model name.
    pub model: String,
    /// `(call index, seq_q)` pairs over the fundamental period.
    pub points: Vec<(usize, usize)>,
    /// max/min variation (paper: up to 4x visible for SD, 64x full-depth).
    pub variation: f64,
}

impl Fig7Trace {
    /// Whether the trace is constant (Muse's parallel decoding).
    #[must_use]
    pub fn is_constant(&self) -> bool {
        self.points.windows(2).all(|w| w[0].1 == w[1].1)
    }

    /// Whether the trace is non-decreasing (Parti's linear growth).
    #[must_use]
    pub fn is_monotone_increasing(&self) -> bool {
        !self.is_constant() && self.points.windows(2).all(|w| w[1].1 >= w[0].1)
    }

    /// Whether the trace dips and returns (the UNet's U shape).
    #[must_use]
    pub fn is_cyclical(&self) -> bool {
        let first = self.points.first().map(|p| p.1);
        let last = self.points.last().map(|p| p.1);
        let min = self.points.iter().map(|p| p.1).min();
        first == last && min < first && self.points.len() > 2
    }
}

/// Fig. 7 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig7Result {
    /// Traces for the plotted models.
    pub traces: Vec<Fig7Trace>,
}

impl Fig7Result {
    /// A named trace.
    #[must_use]
    pub fn trace(&self, model: &str) -> Option<&Fig7Trace> {
        self.traces.iter().find(|t| t.model == model)
    }
}

/// Which attention calls enter the trace: the paper plots the model's own
/// generation loop, not its frozen text encoder.
fn stage_filter(model: ModelId, stage: &str) -> bool {
    match model {
        ModelId::StableDiffusion | ModelId::ProdImage => stage == "unet_step",
        ModelId::Imagen => stage == "base_unet_step",
        ModelId::MakeAVideo => stage == "base_unet_step",
        ModelId::Muse => stage == "base_step",
        ModelId::Phenaki => stage == "maskgit_step",
        ModelId::Parti => stage.starts_with("decode"),
        ModelId::Llama2 => stage == "prefill" || stage.starts_with("decode"),
    }
}

/// Traces sequence lengths for the Fig. 7 models.
#[must_use]
pub fn run(spec: &DeviceSpec) -> Fig7Result {
    run_ctx(&ExecContext::shared(spec.clone()))
}

/// [`run`] against an explicit [`ExecContext`] (worker registry + memo).
#[must_use]
pub fn run_ctx(ctx: &ExecContext) -> Fig7Result {
    let profiler = ctx.profiler(AttnImpl::Flash);
    let traces = [ModelId::StableDiffusion, ModelId::Parti, ModelId::Muse, ModelId::Llama2]
        .iter()
        .map(|&id| {
            let p = suite::build(id);
            let prof = p.profile(&profiler);
            let mut samples: Vec<SeqLenSample> = Vec::new();
            for s in prof.stages.iter().filter(|s| stage_filter(id, &s.name)) {
                // One repetition per stage = the fundamental period.
                let t = trace(&s.timeline);
                let base = samples.len();
                samples.extend(t.into_iter().map(|mut x| {
                    x.call_index += base;
                    x
                }));
            }
            // The plotted "sequence length" is the length being attended
            // over: the query grid for prefill-style calls, the KV cache
            // for 1-token autoregressive queries. Constant-length
            // cross-attention to the text prompt is omitted, as in the
            // paper's per-module plots.
            let points: Vec<(usize, usize)> = samples
                .iter()
                .filter(|s| s.kind != mmg_graph::AttnKind::Cross)
                .map(|s| s.seq_q.max(s.seq_kv))
                .enumerate()
                .collect();
            let max = points.iter().map(|p| p.1).max().unwrap_or(1);
            let min = points.iter().map(|p| p.1).min().unwrap_or(1).max(1);
            let variation = max as f64 / min as f64;
            Fig7Trace { model: p.name.clone(), points, variation }
        })
        .collect();
    Fig7Result { traces }
}

/// Renders Fig. 7 compactly (first calls of each trace + shape class).
#[must_use]
pub fn render(r: &Fig7Result) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("Fig. 7 — sequence length over inference (fundamental period)\n");
    for t in &r.traces {
        let shape = if t.is_constant() {
            "constant (parallel decoding)"
        } else if t.is_monotone_increasing() {
            "linear growth (autoregressive)"
        } else if t.is_cyclical() {
            "cyclical / U-shaped (UNet)"
        } else {
            "mixed"
        };
        let head: Vec<usize> = t.points.iter().take(12).map(|p| p.1).collect();
        let _ = writeln!(
            out,
            "  {:<16} {} calls, variation {:>5.1}x, {shape}\n    seq_q: {head:?}…",
            t.model,
            t.points.len(),
            t.variation
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> Fig7Result {
        run(&DeviceSpec::a100_80gb())
    }

    #[test]
    fn sd_is_cyclical_with_4096_peak() {
        let r = result();
        let sd = r.trace("StableDiffusion").unwrap();
        assert!(sd.is_cyclical(), "UNet U shape");
        assert_eq!(sd.points.iter().map(|p| p.1).max().unwrap(), 4096);
        assert!(sd.variation >= 4.0, "paper: varies by ≥4x");
    }

    #[test]
    fn parti_grows_linearly() {
        let r = result();
        let parti = r.trace("Parti").unwrap();
        assert!(parti.is_monotone_increasing());
    }

    #[test]
    fn muse_is_constant() {
        let r = result();
        assert!(r.trace("Muse").unwrap().is_constant());
    }

    #[test]
    fn diffusion_seq_an_order_smaller_than_llm() {
        // Paper: diffusion sequence lengths can be an order of magnitude
        // smaller than corresponding LLMs.
        let r = result();
        let llm_max =
            r.trace("LLaMA2").unwrap().points.iter().map(|p| p.1).max().unwrap();
        let sd_min =
            r.trace("StableDiffusion").unwrap().points.iter().map(|p| p.1).min().unwrap();
        assert!(llm_max >= 10 * sd_min);
    }

    #[test]
    fn renders_shapes() {
        let s = render(&result());
        assert!(s.contains("cyclical"));
        assert!(s.contains("autoregressive"));
        assert!(s.contains("constant"));
    }
}
