//! Fig. 8 — frequency distribution of Stable Diffusion sequence lengths
//! across output image sizes.

use mmg_attn::AttnImpl;
use mmg_gpu::DeviceSpec;
use mmg_models::suite::stable_diffusion::{pipeline, StableDiffusionConfig};
use mmg_profiler::seqlen::{histogram, trace};

use crate::engine::ExecContext;
use serde::{Deserialize, Serialize};

/// One image size's histogram.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig8Series {
    /// Output image edge.
    pub image_size: usize,
    /// `(seq_len, count)` buckets ascending.
    pub histogram: Vec<(usize, usize)>,
    /// `(seq_len, fraction of attention time)` per bucket — the paper
    /// notes sequence lengths "confine themselves to distinct buckets,
    /// which could allow future systems to tailor hardware towards
    /// sequence lengths of interest"; the time share says which buckets
    /// deserve the silicon.
    pub time_share: Vec<(usize, f64)>,
}

impl Fig8Series {
    /// Largest sequence length in the distribution.
    #[must_use]
    pub fn max_seq(&self) -> usize {
        self.histogram.last().map_or(0, |&(l, _)| l)
    }
}

/// Fig. 8 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig8Result {
    /// One series per swept image size.
    pub series: Vec<Fig8Series>,
}

/// Sweeps image sizes and histograms the UNet's attention sequence
/// lengths (one denoising step = the repeating unit).
#[must_use]
pub fn run(spec: &DeviceSpec, image_sizes: &[usize]) -> Fig8Result {
    run_ctx(&ExecContext::shared(spec.clone()), image_sizes)
}

/// [`run`] against an explicit [`ExecContext`] (worker registry + memo).
#[must_use]
pub fn run_ctx(ctx: &ExecContext, image_sizes: &[usize]) -> Fig8Result {
    let profiler = ctx.profiler(AttnImpl::Flash);
    let series = image_sizes
        .iter()
        .map(|&image_size| {
            let cfg = StableDiffusionConfig { image_size, ..Default::default() };
            let p = pipeline(&cfg);
            let prof = p.profile(&profiler);
            let stage = prof.stage("unet_step").expect("unet stage");
            // Attention time per query-length bucket.
            let mut shares: Vec<(usize, f64)> = Vec::new();
            let mut total = 0.0f64;
            for ev in stage.timeline.events() {
                if let Some(a) = ev.attention {
                    total += ev.time_s;
                    if let Some(slot) = shares.iter_mut().find(|(l, _)| *l == a.seq_q) {
                        slot.1 += ev.time_s;
                    } else {
                        shares.push((a.seq_q, ev.time_s));
                    }
                }
            }
            shares.sort_by_key(|&(l, _)| l);
            for s in &mut shares {
                s.1 /= total.max(f64::MIN_POSITIVE);
            }
            Fig8Series {
                image_size,
                histogram: histogram(&trace(&stage.timeline)),
                time_share: shares,
            }
        })
        .collect();
    Fig8Result { series }
}

/// Default paper sweep: 128–1024.
#[must_use]
pub fn default_sizes() -> Vec<usize> {
    vec![128, 256, 512, 768, 1024]
}

/// Renders Fig. 8.
#[must_use]
pub fn render(r: &Fig8Result) -> String {
    use std::fmt::Write as _;
    let mut out =
        String::from("Fig. 8 — Stable Diffusion sequence-length distribution vs image size\n");
    for s in &r.series {
        let shares: Vec<String> =
            s.time_share.iter().map(|(l, f)| format!("{l}:{:.0}%", f * 100.0)).collect();
        let _ = writeln!(
            out,
            "  {:>4}px: counts {:?}  attn-time share [{}]",
            s.image_size,
            s.histogram,
            shares.join(", ")
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> Fig8Result {
        run(&DeviceSpec::a100_80gb(), &[256, 512, 1024])
    }

    #[test]
    fn distribution_shifts_right_with_image_size() {
        let r = result();
        for w in r.series.windows(2) {
            assert!(w[1].max_seq() > w[0].max_seq());
        }
    }

    #[test]
    fn seq_lengths_confined_to_distinct_buckets() {
        // The paper notes sequence lengths confine themselves to distinct
        // buckets (powers of the downsampling factor).
        let r = result();
        for s in &r.series {
            assert!(s.histogram.len() <= 6, "{}px has {} buckets", s.image_size, s.histogram.len());
            for w in s.histogram.windows(2) {
                assert_eq!(w[1].0 % w[0].0, 0, "buckets related by downsampling factors");
            }
        }
    }

    #[test]
    fn image_512_peaks_at_4096() {
        let r = result();
        let s512 = r.series.iter().find(|s| s.image_size == 512).unwrap();
        assert_eq!(s512.max_seq(), 4096);
    }

    #[test]
    fn counts_are_balanced_for_512() {
        // Fig. 8: at 512x512 the distribution over buckets is relatively
        // even (symmetric UNet).
        let r = result();
        let s = r.series.iter().find(|s| s.image_size == 512).unwrap();
        let counts: Vec<usize> = s.histogram.iter().map(|&(_, c)| c).collect();
        // The down/up levels contribute equally; only the bottleneck
        // (mid-block) bucket is rarer.
        let levels = &counts[1..];
        assert!(levels.windows(2).all(|w| w[0] == w[1]), "{counts:?}");
        let max = *counts.iter().max().unwrap() as f64;
        let min = *counts.iter().min().unwrap() as f64;
        assert!(max / min <= 8.0, "{counts:?}");
    }

    #[test]
    fn top_bucket_dominates_attention_time() {
        // Call counts are near-uniform across buckets, but the largest
        // sequence bucket owns most of the attention time — the hardware-
        // specialization argument of Section V-B.
        let r = result();
        let s = r.series.iter().find(|s| s.image_size == 512).unwrap();
        let (top_len, top_share) = *s.time_share.last().unwrap();
        assert_eq!(top_len, 4096);
        assert!(top_share > 0.5, "top bucket share {top_share}");
        let sum: f64 = s.time_share.iter().map(|(_, f)| f).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn renders() {
        let out = render(&result());
        assert!(out.contains("512px"));
        assert!(out.contains("attn-time share"));
    }
}
