//! Fig. 9 — how Attention vs. Convolution execution time scales with
//! image size for Stable Diffusion, before and after Flash Attention.

use mmg_attn::AttnImpl;
use mmg_gpu::DeviceSpec;
use mmg_graph::OpCategory;
use mmg_models::suite::stable_diffusion::{pipeline, StableDiffusionConfig};
use mmg_profiler::report::{fmt_seconds, render_table};

use crate::engine::ExecContext;
use serde::{Deserialize, Serialize};

/// One swept point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig9Row {
    /// Output image edge.
    pub image_size: usize,
    /// Attention seconds with baseline attention (whole pipeline).
    pub attn_baseline_s: f64,
    /// Attention seconds with flash attention.
    pub attn_flash_s: f64,
    /// Convolution seconds (identical under both).
    pub conv_s: f64,
}

/// Fig. 9 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig9Result {
    /// Rows ascending by image size.
    pub rows: Vec<Fig9Row>,
}

/// Sweeps Stable Diffusion output sizes.
#[must_use]
pub fn run(spec: &DeviceSpec, image_sizes: &[usize]) -> Fig9Result {
    run_ctx(&ExecContext::shared(spec.clone()), image_sizes)
}

/// [`run`] against an explicit [`ExecContext`] (worker registry + memo).
#[must_use]
pub fn run_ctx(ctx: &ExecContext, image_sizes: &[usize]) -> Fig9Result {
    let base = ctx.profiler(AttnImpl::Baseline);
    let flash = ctx.profiler(AttnImpl::Flash);
    let rows = image_sizes
        .iter()
        .map(|&image_size| {
            let cfg = StableDiffusionConfig { image_size, ..Default::default() };
            let p = pipeline(&cfg);
            let pb = p.profile(&base).breakdown();
            let pf = p.profile(&flash).breakdown();
            Fig9Row {
                image_size,
                attn_baseline_s: pb.seconds(OpCategory::Attention),
                attn_flash_s: pf.seconds(OpCategory::Attention),
                conv_s: pf.seconds(OpCategory::Conv),
            }
        })
        .collect();
    Fig9Result { rows }
}

/// Default sweep: 64–512 as in the paper.
#[must_use]
pub fn default_sizes() -> Vec<usize> {
    vec![64, 128, 256, 512]
}

/// Renders Fig. 9.
#[must_use]
pub fn render(r: &Fig9Result) -> String {
    let rows: Vec<(String, Vec<String>)> = r
        .rows
        .iter()
        .map(|row| {
            (
                format!("{}px", row.image_size),
                vec![
                    fmt_seconds(row.attn_baseline_s),
                    fmt_seconds(row.attn_flash_s),
                    fmt_seconds(row.conv_s),
                    if row.conv_s > row.attn_flash_s { "conv".into() } else { "attn".into() },
                ],
            )
        })
        .collect();
    format!(
        "Fig. 9 — Stable Diffusion attention vs convolution scaling with image size\n{}",
        render_table(
            &["Image", "Attn (baseline)", "Attn (flash)", "Conv", "Post-flash limiter"],
            &rows
        )
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> Fig9Result {
        run(&DeviceSpec::a100_80gb(), &default_sizes())
    }

    #[test]
    fn baseline_attention_scales_faster_than_conv() {
        // Pre-flash: attention (O(L⁴) scores) outgrows convolution.
        let r = result();
        let first = &r.rows[0];
        let last = r.rows.last().unwrap();
        let attn_growth = last.attn_baseline_s / first.attn_baseline_s;
        let conv_growth = last.conv_s / first.conv_s;
        assert!(attn_growth > conv_growth, "attn x{attn_growth} vs conv x{conv_growth}");
    }

    #[test]
    fn conv_is_limiting_after_flash_at_large_sizes() {
        // Post-flash: convolution becomes the larger block at 512.
        let r = result();
        let row = r.rows.iter().find(|x| x.image_size == 512).unwrap();
        assert!(row.conv_s > row.attn_flash_s);
    }

    #[test]
    fn baseline_attention_dominates_at_512() {
        let r = result();
        let row = r.rows.iter().find(|x| x.image_size == 512).unwrap();
        assert!(row.attn_baseline_s > row.conv_s);
    }

    #[test]
    fn everything_grows_with_image_size() {
        let r = result();
        for w in r.rows.windows(2) {
            assert!(w[1].attn_baseline_s > w[0].attn_baseline_s);
            assert!(w[1].conv_s > w[0].conv_s);
        }
    }

    #[test]
    fn renders() {
        assert!(render(&result()).contains("Post-flash limiter"));
    }
}
