//! Extension — Flash-Decoding (the paper's ref \[47]) across the suite.
//!
//! The paper observes that autoregressive models gain little from Flash
//! Attention because their decode phase is a `1×N` query. Flash-Decoding
//! targets exactly that shape by splitting the KV cache across thread
//! blocks. This experiment quantifies how much of the transformer-TTI gap
//! it closes — and that diffusion models (which have no decode phase) are
//! unaffected, reinforcing the paper's point that the two families need
//! different optimizations.

use mmg_attn::AttnImpl;
use mmg_gpu::DeviceSpec;
use mmg_graph::OpCategory;
use mmg_models::{suite, ModelId};
use mmg_profiler::report::render_table;

use crate::engine::ExecContext;
use serde::{Deserialize, Serialize};

/// One model's three-way comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlashDecRow {
    /// Model name.
    pub model: String,
    /// Baseline → Flash speedup (Table II).
    pub flash_speedup: f64,
    /// Baseline → Flash-Decoding speedup.
    pub flash_decoding_speedup: f64,
    /// Decode-phase *attention-module* speedup of Flash-Decoding over
    /// Flash (1.0 for models without a decode phase). Decode attention is
    /// a small slice of weight-bound decode steps, so the end-to-end
    /// effect is small even when the kernel gain is large — itself an
    /// Amdahl's-law observation worth recording.
    pub decode_attention_speedup: f64,
}

/// Flash-Decoding experiment result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlashDecResult {
    /// Rows in suite order.
    pub rows: Vec<FlashDecRow>,
}

impl FlashDecResult {
    /// A named row.
    #[must_use]
    pub fn row(&self, model: &str) -> Option<&FlashDecRow> {
        self.rows.iter().find(|r| r.model == model)
    }
}

/// Profiles the suite under all three attention implementations.
#[must_use]
pub fn run(spec: &DeviceSpec) -> FlashDecResult {
    run_ctx(&ExecContext::shared(spec.clone()))
}

/// [`run`] against an explicit [`ExecContext`] (worker registry + memo).
#[must_use]
pub fn run_ctx(ctx: &ExecContext) -> FlashDecResult {
    let profile =
        |id: ModelId, attn: AttnImpl| suite::build(id).profile(&ctx.profiler(attn));
    let decode_attention_s = |p: &mmg_models::PipelineProfile| -> f64 {
        p.stages
            .iter()
            .filter(|s| s.name.starts_with("decode"))
            .map(|s| s.repeats as f64 * s.timeline.breakdown().seconds(OpCategory::Attention))
            .sum()
    };
    let rows = ModelId::ALL
        .iter()
        .map(|&id| {
            let base = profile(id, AttnImpl::Baseline);
            let flash = profile(id, AttnImpl::Flash);
            let flashdec = profile(id, AttnImpl::FlashDecoding);
            let da_flash = decode_attention_s(&flash);
            let da_dec = decode_attention_s(&flashdec);
            FlashDecRow {
                model: id.to_string(),
                flash_speedup: base.total_time_s() / flash.total_time_s(),
                flash_decoding_speedup: base.total_time_s() / flashdec.total_time_s(),
                decode_attention_speedup: if da_dec > 0.0 { da_flash / da_dec } else { 1.0 },
            }
        })
        .collect();
    FlashDecResult { rows }
}

/// Renders the comparison.
#[must_use]
pub fn render(r: &FlashDecResult) -> String {
    let rows: Vec<(String, Vec<String>)> = r
        .rows
        .iter()
        .map(|row| {
            (
                row.model.clone(),
                vec![
                    format!("{:.2}x", row.flash_speedup),
                    format!("{:.2}x", row.flash_decoding_speedup),
                    format!("{:.2}x", row.decode_attention_speedup),
                ],
            )
        })
        .collect();
    format!(
        "Extension — Flash-Decoding vs Flash Attention (end-to-end speedup over baseline)\n{}",
        render_table(&["Model", "Flash e2e", "Flash-Decoding e2e", "Decode-attn kernel"], &rows)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> FlashDecResult {
        run(&DeviceSpec::a100_80gb())
    }

    #[test]
    fn decoding_accelerates_decode_attention_kernels() {
        let r = result();
        // LLaMA decodes against a 4096-token cache (big KV reads); Parti's
        // cache is ≤1024 tokens, so launch overheads dilute its gain.
        for (name, min_gain) in [("LLaMA2", 1.15), ("Parti", 1.04)] {
            let row = r.row(name).unwrap();
            assert!(
                row.decode_attention_speedup > min_gain,
                "{name}: decode-attn speedup {}",
                row.decode_attention_speedup
            );
            // …but Amdahl's law caps the end-to-end effect.
            assert!(row.flash_decoding_speedup >= row.flash_speedup - 1e-9);
        }
    }

    #[test]
    fn diffusion_models_unaffected() {
        let r = result();
        for name in ["StableDiffusion", "Imagen", "ProdImage"] {
            let row = r.row(name).unwrap();
            assert!(
                (row.flash_decoding_speedup - row.flash_speedup).abs() < 1e-6,
                "{name} has no decode phase to accelerate"
            );
            assert!((row.decode_attention_speedup - 1.0).abs() < 1e-9, "{name}");
        }
    }

    #[test]
    fn renders() {
        assert!(render(&result()).contains("Flash-Decoding"));
    }
}
