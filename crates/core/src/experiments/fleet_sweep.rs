//! Extension — fleet-scale serving: autoscaler policy × utilization
//! over a heterogeneous multi-cluster GPU fleet.
//!
//! The paper's opening fleet characterization (Fig. 1) is about which
//! hardware serves multi-modal traffic at what cost; this experiment
//! closes that loop with the `mmg-serve::fleet` simulator. Four
//! clusters — A100, H100, L4 and H200 pools in four regions with
//! phase-shifted diurnal traffic — serve the standard SD + Parti mix,
//! with per-SKU service curves from the real roofline profiler. Three
//! autoscaler policies (fixed provisioning, reactive scaling with a
//! warm pool, reactive over spot capacity with churn) are swept across
//! offered utilizations, and each policy is scored the way a capacity
//! team would score it: SLO attainment against $/1k-images.
//!
//! Sharding: every (policy × utilization × cluster) triple is one
//! independent [`run_cluster`] call on its own registry — the fleet's
//! per-region arrival split is exact by construction, so the grid runs
//! on the [`run_cells_with`] worker pool and merges byte-identically
//! for every `--jobs` value.
//!
//! The expected shape (and what the tests pin): fixed provisioning
//! sized for the mean wastes GPU-hours in every diurnal trough, so the
//! reactive policy serves the same stream at a lower $/1k-images; spot
//! churn claws back more dollars but gives up SLO attainment when
//! reclaims land on a diurnal peak.

use std::sync::Arc;

use mmg_gpu::DeviceSpec;
use mmg_profiler::report::render_table;
use mmg_profiler::CostMemo;
use mmg_serve::{
    run_cluster, ArrivalProcess, AutoscalerPolicy, ClusterCfg, FleetCfg, FleetResult, RouterKind,
    SchedulerKind, SloSpec, SpotChurn, FLEET_SKETCH_EPS,
};
use mmg_telemetry::{QuantileSketch, Registry};

use crate::engine::{run_cells_with, ExecContext};
use serde::{Deserialize, Serialize};

/// Request mix (matches the other serving experiments).
pub const MIX: &str = "sd:8,parti:2";
/// Deadline as a multiple of batch-1 service time.
pub const SLO_MULTIPLE: f64 = 4.0;
/// Offered utilizations swept (fraction of fleet batch-1 capacity).
pub const UTILIZATIONS: [f64; 2] = [0.6, 0.9];
/// Evaluation-window width, simulated seconds.
pub const WINDOW_S: f64 = 300.0;
/// Windows per run (one simulated hour).
pub const WINDOWS: usize = 12;
/// Diurnal period: one full cycle over the horizon.
pub const PERIOD_S: f64 = 3600.0;
/// Diurnal modulation amplitude.
pub const AMPLITUDE: f64 = 0.4;
/// Fleet seed.
pub const SEED: u64 = 42;
/// Batch cap used when profiling service curves (FIFO serves batch 1;
/// the curves above it exist so the same profiles serve other
/// schedulers).
const MAX_BATCH: usize = 16;

/// The GPU SKUs the fleet deploys, in cluster order.
pub const SKUS: [&str; 4] = ["a100", "h100", "l4", "h200"];

/// Resolves a fleet SKU key to its device spec.
///
/// # Panics
///
/// Panics on an unknown key.
#[must_use]
pub fn device_for_sku(sku: &str) -> DeviceSpec {
    match sku {
        "a100" => DeviceSpec::a100_80gb(),
        "h100" => DeviceSpec::h100_80gb(),
        "l4" => DeviceSpec::l4_24gb(),
        "h200" => DeviceSpec::h200_141gb(),
        other => panic!("unknown fleet SKU {other:?} (expected one of {SKUS:?})"),
    }
}

/// Representative on-demand price for a fleet SKU, $/GPU-hr.
///
/// # Panics
///
/// Panics on an unknown key.
#[must_use]
pub fn sku_price_per_gpu_hr(sku: &str) -> f64 {
    match sku {
        "a100" => 2.21,
        "h100" => 4.10,
        "l4" => 0.81,
        "h200" => 5.30,
        other => panic!("unknown fleet SKU {other:?} (expected one of {SKUS:?})"),
    }
}

/// The fleet topology: four regions, one SKU each, diurnal peaks
/// staggered by a quarter period. GPU counts are sized so no single
/// cluster dwarfs the rest despite the ~20× service-time spread between
/// H200 and L4; prices are representative on-demand $/GPU-hr.
#[must_use]
pub fn clusters() -> Vec<ClusterCfg> {
    vec![
        ClusterCfg {
            name: "us-east".into(),
            sku: "a100".into(),
            gpus: 12,
            price_per_gpu_hr: sku_price_per_gpu_hr("a100"),
            weight: 1.0,
            phase_s: 0.0,
        },
        ClusterCfg {
            name: "eu-west".into(),
            sku: "h100".into(),
            gpus: 8,
            price_per_gpu_hr: sku_price_per_gpu_hr("h100"),
            weight: 1.0,
            phase_s: PERIOD_S * 0.25,
        },
        ClusterCfg {
            name: "apac".into(),
            sku: "l4".into(),
            gpus: 24,
            price_per_gpu_hr: sku_price_per_gpu_hr("l4"),
            weight: 1.0,
            phase_s: PERIOD_S * 0.5,
        },
        ClusterCfg {
            name: "us-west".into(),
            sku: "h200".into(),
            gpus: 6,
            price_per_gpu_hr: sku_price_per_gpu_hr("h200"),
            weight: 1.0,
            phase_s: PERIOD_S * 0.75,
        },
    ]
}

/// The swept autoscaler policies, in report order.
#[must_use]
pub fn policies() -> Vec<AutoscalerPolicy> {
    vec![
        AutoscalerPolicy::Fixed,
        AutoscalerPolicy::Reactive {
            target_util: 0.85,
            min_gpus: 2,
            max_gpus: 64,
            lag_windows: 1,
            warm_pool: 1,
            churn: None,
        },
        AutoscalerPolicy::Reactive {
            target_util: 0.85,
            min_gpus: 2,
            max_gpus: 64,
            lag_windows: 1,
            warm_pool: 1,
            churn: Some(SpotChurn { prob: 0.25, frac: 0.25 }),
        },
    ]
}

/// One (policy × utilization) row of the sweep, aggregated fleet-wide.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetSweepCell {
    /// Autoscaler policy name (`fixed` | `reactive` | `reactive+spot`).
    pub policy: String,
    /// Offered utilization target (fraction of fleet batch-1 capacity).
    pub utilization: f64,
    /// Offered fleet-wide arrival rate, requests/s.
    pub offered_rps: f64,
    /// Requests that arrived over the horizon, fleet-wide.
    pub requests: u64,
    /// Fleet-wide SLO attainment.
    pub slo_attainment: f64,
    /// Provisioned GPU-hours billed (serving + warm pools).
    pub gpu_hours: f64,
    /// Dollars billed.
    pub cost_usd: f64,
    /// Dollars per thousand completed requests.
    pub cost_per_1k: f64,
    /// Fleet-wide 99th-percentile latency, seconds (merged sketches,
    /// rank error [`FLEET_SKETCH_EPS`] per cluster).
    pub p99_s: f64,
}

/// Fleet-sweep result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetSweepResult {
    /// Cluster count.
    pub clusters: usize,
    /// Initially provisioned GPUs fleet-wide.
    pub gpus: usize,
    /// Request mix, `model:weight` list.
    pub mix: String,
    /// Mix-weighted mean batch-1 service seconds per SKU, cluster order.
    pub mean_base_s: Vec<(String, f64)>,
    /// Mean batch-1 service seconds per SKU on the *optimized* curves
    /// (all kernel-graph passes + distilled sampler) — the per-SKU
    /// serving-capacity gain `mean_base_s / opt_mean_base_s` a compiled
    /// deployment would realize at the same SLO.
    pub opt_mean_base_s: Vec<(String, f64)>,
    /// Sweep rows, policy-major in [`UTILIZATIONS`] order.
    pub cells: Vec<FleetSweepCell>,
}

impl FleetSweepResult {
    /// The row for a policy at an offered utilization.
    #[must_use]
    pub fn cell(&self, policy: &str, utilization: f64) -> Option<&FleetSweepCell> {
        self.cells
            .iter()
            .find(|c| c.policy == policy && (c.utilization - utilization).abs() < 1e-9)
    }
}

/// The fleet scenario for one (policy, utilization) grid point: rate
/// sized as `utilization ×` the fleet's aggregate batch-1 capacity,
/// region weights proportional to cluster capacity so every cluster is
/// offered the same relative load.
#[must_use]
pub fn fleet_cfg(
    policy: AutoscalerPolicy,
    utilization: f64,
    mean_base_s: &[(String, f64)],
) -> FleetCfg {
    let mut clusters = clusters();
    let mut total_capacity = 0.0;
    for (c, (_, mean_s)) in clusters.iter_mut().zip(mean_base_s) {
        let capacity = c.gpus as f64 / mean_s;
        c.weight = capacity;
        total_capacity += capacity;
    }
    FleetCfg {
        clusters,
        mix: mmg_serve::RequestMix::parse(MIX).expect("the built-in mix parses"),
        arrival: ArrivalProcess::Diurnal {
            rate_rps: utilization * total_capacity,
            amplitude: AMPLITUDE,
            period_s: PERIOD_S,
            phase_s: 0.0,
        },
        scheduler: SchedulerKind::Fifo,
        router: RouterKind::RoundRobin,
        slo: SloSpec::ServiceMultiple(SLO_MULTIPLE),
        window_s: WINDOW_S,
        windows: WINDOWS,
        autoscaler: policy,
        seed: SEED,
    }
}

/// Runs the sweep with one worker on the default device context.
#[must_use]
pub fn run(spec: &DeviceSpec) -> FleetSweepResult {
    run_ctx(&ExecContext::shared(spec.clone()))
}

/// [`run`] against an explicit [`ExecContext`] (worker registry + memo).
#[must_use]
pub fn run_ctx(ctx: &ExecContext) -> FleetSweepResult {
    run_jobs(&ctx.spec, 1, &ctx.memo, &ctx.registry)
}

/// Runs the (policy × utilization × cluster) grid on the
/// [`run_cells_with`] worker pool. Per-SKU profiles are built once up
/// front (isolated registries merged into `target` in SKU order); each
/// cell simulates one cluster's full horizon against its exact slice of
/// the fleet arrival stream, so results and telemetry merge
/// byte-identically for every `jobs` value.
///
/// `spec` seeds the worker contexts (the per-cluster device comes from
/// the cluster's SKU, not from `spec`).
#[must_use]
pub fn run_jobs(
    spec: &DeviceSpec,
    jobs: usize,
    memo: &Arc<CostMemo>,
    target: &Registry,
) -> FleetSweepResult {
    let topology = clusters();
    // Profile each SKU once, in cluster order, before any cell runs.
    let profiled: Vec<super::serve_common::ProfiledMix> = topology
        .iter()
        .map(|c| {
            super::serve_common::profile_mix(
                &device_for_sku(&c.sku),
                memo,
                target,
                MIX,
                MAX_BATCH,
                false,
            )
        })
        .collect();
    let mean_base_s: Vec<(String, f64)> = topology
        .iter()
        .zip(&profiled)
        .map(|(c, p)| (c.sku.clone(), p.mean_base_s))
        .collect();
    // The optimized counterpart of each SKU's curves, profiled in the
    // same deterministic order (the arrival grid below still runs on the
    // eager curves; the optimized ones quantify per-SKU capacity gain).
    let opt_mean_base_s: Vec<(String, f64)> = topology
        .iter()
        .map(|c| {
            let p = super::serve_common::profile_mix_opt(
                &device_for_sku(&c.sku),
                memo,
                target,
                MIX,
                MAX_BATCH,
                false,
                mmg_graph::OptConfig::all(),
                Some(super::optimize::SAMPLER_STEPS),
            );
            (c.sku.clone(), p.mean_base_s)
        })
        .collect();

    let mut points: Vec<(AutoscalerPolicy, f64)> = Vec::new();
    for policy in policies() {
        for utilization in UTILIZATIONS {
            points.push((policy, utilization));
        }
    }
    let n_clusters = topology.len();
    let fleets: Vec<FleetCfg> = points
        .iter()
        .map(|&(policy, utilization)| fleet_cfg(policy, utilization, &mean_base_s))
        .collect();

    let results = run_cells_with(
        points.len() * n_clusters,
        spec,
        jobs,
        memo,
        target,
        |i, cell_ctx| {
            let (point, cluster_idx) = (i / n_clusters, i % n_clusters);
            run_cluster(
                &fleets[point],
                cluster_idx,
                &profiled[cluster_idx].profile,
                &cell_ctx.registry,
            )
        },
    );

    let cells = results
        .chunks(n_clusters)
        .enumerate()
        .map(|(pi, chunk)| {
            let (policy, utilization) = points[pi];
            let fleet = FleetResult::from_clusters(chunk.to_vec());
            let mut pooled = QuantileSketch::new(FLEET_SKETCH_EPS);
            for c in &fleet.clusters {
                pooled.merge(&c.latency);
            }
            let rate = fleets[pi].arrival.mean_rate_rps();
            FleetSweepCell {
                policy: policy.name().to_string(),
                utilization,
                offered_rps: rate,
                requests: fleet.arrivals(),
                slo_attainment: fleet.slo_attainment(),
                gpu_hours: fleet.gpu_hours(),
                cost_usd: fleet.cost_usd(),
                cost_per_1k: fleet.cost_per_1k(),
                p99_s: pooled.quantile(0.99).unwrap_or(0.0),
            }
        })
        .collect();

    FleetSweepResult {
        clusters: n_clusters,
        gpus: topology.iter().map(|c| c.gpus).sum(),
        mix: MIX.to_string(),
        mean_base_s,
        opt_mean_base_s,
        cells,
    }
}

/// Renders the policy × utilization fleet sweep.
#[must_use]
pub fn render(r: &FleetSweepResult) -> String {
    let rows: Vec<(String, Vec<String>)> = r
        .cells
        .iter()
        .map(|c| {
            (
                format!("{}@{:.2}", c.policy, c.utilization),
                vec![
                    format!("{:.1}/s", c.offered_rps),
                    format!("{}", c.requests),
                    format!("{:.1}%", c.slo_attainment * 100.0),
                    format!("{:.1}", c.gpu_hours),
                    format!("${:.2}", c.cost_usd),
                    format!("${:.3}", c.cost_per_1k),
                    format!("{:.2} s", c.p99_s),
                ],
            )
        })
        .collect();
    let skus = r
        .mean_base_s
        .iter()
        .map(|(s, m)| format!("{s} {m:.3}s"))
        .collect::<Vec<_>>()
        .join(", ");
    let gains = r
        .mean_base_s
        .iter()
        .zip(&r.opt_mean_base_s)
        .map(|((s, base), (_, opt))| format!("{s} {:.1}x", base / opt))
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "Extension — fleet sweep ({} clusters, {} GPUs, mix {}, batch-1 service: {})\noptimized capacity gain: {}\n{}",
        r.clusters,
        r.gpus,
        r.mix,
        skus,
        gains,
        render_table(
            &["Policy@util", "Offered", "Requests", "SLO attain", "GPU-hrs", "Cost", "$/1k-img", "p99"],
            &rows
        )
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::global_memo;
    use std::sync::OnceLock;

    fn result() -> &'static FleetSweepResult {
        static RESULT: OnceLock<FleetSweepResult> = OnceLock::new();
        RESULT.get_or_init(|| run(&DeviceSpec::a100_80gb()))
    }

    #[test]
    fn covers_the_full_grid() {
        let r = result();
        assert_eq!(r.cells.len(), 3 * UTILIZATIONS.len());
        for p in ["fixed", "reactive", "reactive+spot"] {
            for u in UTILIZATIONS {
                assert!(r.cell(p, u).is_some(), "{p}@{u}");
            }
        }
        assert_eq!(r.clusters, 4);
        assert_eq!(r.gpus, 50);
    }

    #[test]
    fn faster_skus_have_shorter_service_times() {
        let r = result();
        let mean = |sku: &str| {
            r.mean_base_s
                .iter()
                .find(|(s, _)| s == sku)
                .map(|&(_, m)| m)
                .unwrap()
        };
        assert!(mean("h100") < mean("a100"), "H100 must out-serve A100");
        assert!(mean("h200") <= mean("h100"), "H200 is at least H100");
        assert!(mean("l4") > mean("a100") * 2.0, "L4 is the slow tier");
    }

    #[test]
    fn optimized_curves_raise_capacity_on_every_sku() {
        let r = result();
        assert_eq!(r.opt_mean_base_s.len(), r.mean_base_s.len());
        for ((sku, base), (_, opt)) in r.mean_base_s.iter().zip(&r.opt_mean_base_s) {
            assert!(
                *opt < base / 1.5,
                "{sku}: optimized {opt} vs eager {base} — passes must raise capacity >=1.5x"
            );
        }
    }

    #[test]
    fn reactive_is_cheaper_per_image_than_fixed_at_light_load() {
        // Fixed provisioning pays for every diurnal trough; the
        // reactive policy sheds those GPU-hours.
        let r = result();
        let fixed = r.cell("fixed", 0.6).unwrap();
        let reactive = r.cell("reactive", 0.6).unwrap();
        assert!(
            reactive.cost_per_1k < fixed.cost_per_1k,
            "reactive ${} vs fixed ${} per 1k",
            reactive.cost_per_1k,
            fixed.cost_per_1k
        );
        // Same offered stream in both rows.
        assert_eq!(reactive.requests, fixed.requests);
    }

    #[test]
    fn spot_churn_trades_attainment_for_dollars() {
        let r = result();
        let reactive = r.cell("reactive", 0.9).unwrap();
        let spot = r.cell("reactive+spot", 0.9).unwrap();
        assert!(
            spot.slo_attainment <= reactive.slo_attainment + 1e-9,
            "spot {} vs reactive {}",
            spot.slo_attainment,
            reactive.slo_attainment
        );
    }

    #[test]
    fn attainment_degrades_with_load() {
        let r = result();
        for p in ["fixed", "reactive"] {
            let light = r.cell(p, 0.6).unwrap();
            let heavy = r.cell(p, 0.9).unwrap();
            assert!(
                heavy.slo_attainment <= light.slo_attainment + 1e-9,
                "{p}: heavy {} vs light {}",
                heavy.slo_attainment,
                light.slo_attainment
            );
        }
    }

    #[test]
    fn renders() {
        let out = render(result());
        assert!(out.contains("fleet sweep") && out.contains("reactive+spot@0.90"));
        assert!(out.contains("$/1k-img"));
    }

    #[test]
    fn sweep_is_identical_across_job_counts() {
        let spec = DeviceSpec::a100_80gb();
        let run_with = |jobs: usize| {
            let target = Registry::new();
            let r = run_jobs(&spec, jobs, &global_memo(), &target);
            (r, target.counters_snapshot().values().to_vec())
        };
        let serial = run_with(1);
        let parallel = run_with(4);
        assert_eq!(serial.0, parallel.0, "results diverged at jobs=4");
        assert_eq!(serial.1, parallel.1, "counters diverged at jobs=4");
        for c in &serial.0.cells {
            assert!((0.0..=1.0).contains(&c.slo_attainment));
            assert!(c.cost_usd > 0.0);
            assert!(c.requests > 0);
        }
    }
}
