//! One module per reproduced table/figure, plus extensions.

pub mod ablations;
pub mod batch;
pub mod fig1;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod flashdec;
pub mod optimize;
pub mod pods;
pub mod secv;
pub mod fleet_sweep;
pub mod serve_common;
pub mod serve_sweep;
pub mod serve_attrib;
pub mod serve_timeline;
pub mod table1;
pub mod token_sweep;
pub mod table2;
pub mod table3;
pub mod tp;
