//! Extension — kernel-graph optimization passes: how much each rewrite
//! buys per model family.
//!
//! The follow-on serving literature orders the classic inference
//! optimizations by payoff: reduced element width (int8/fp8) beats
//! epilogue fusion beats CUDA-graph launch elision as *per-kernel*
//! rewrites, while distilled few-step sampling — a pipeline-level
//! rewrite that deletes whole denoising iterations — dominates them all
//! end-to-end for diffusion models. This experiment reproduces that
//! ordering on the roofline simulator: every suite family is profiled
//! eagerly (baseline attention, no passes) and then re-profiled under
//! each [`OptConfig`] pass in isolation, all passes together, and all
//! passes plus a 4-step distilled sampler.
//!
//! The eager baseline uses [`AttnImpl::Baseline`] on purpose: unfused
//! attention lowers to the full qk → scale → mask → softmax → pv kernel
//! chain, which is exactly the stream epilogue fusion is designed to
//! collapse — the same starting point a torch-eager deployment would
//! hand an inference compiler.
//!
//! Per-pass telemetry (`kernel_fused_total`,
//! `kernel_launches_elided_total`, `kernel_opt_hbm_bytes_saved_total`)
//! is re-derived on an isolated registry so the reported totals are
//! exact for this experiment regardless of what else ran in the
//! process.

use mmg_attn::AttnImpl;
use mmg_gpu::DeviceSpec;
use mmg_graph::{ElemWidth, OptConfig};
use mmg_models::{suite, ModelId};
use mmg_profiler::report::render_table;
use mmg_profiler::Profiler;
use mmg_telemetry::Registry;

use crate::engine::ExecContext;
use serde::{Deserialize, Serialize};

/// Distilled-sampler denoising steps (progressive-distillation regime).
pub const SAMPLER_STEPS: usize = 4;
/// Element width used for the width pass: int8 keeps the speedup-order
/// claim portable to every simulated SKU (fp8 tensor cores only exist
/// on Hopper/Ada).
pub const WIDTH: ElemWidth = ElemWidth::Int8;

/// The model families compared, `(model, family label)`.
pub const FAMILIES: [(ModelId, &str); 4] = [
    (ModelId::StableDiffusion, "diffusion TTI"),
    (ModelId::MakeAVideo, "diffusion TTV"),
    (ModelId::Parti, "AR image"),
    (ModelId::Llama2, "AR text"),
];

/// One model family's speedups, all relative to the eager baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OptRow {
    /// Model short name.
    pub model: String,
    /// Family label (diffusion vs autoregressive, image vs video/text).
    pub family: String,
    /// Eager end-to-end seconds (baseline attention, no passes).
    pub baseline_s: f64,
    /// Speedup from epilogue fusion alone.
    pub fuse_speedup: f64,
    /// Speedup from the element-width pass alone ([`WIDTH`]).
    pub width_speedup: f64,
    /// Speedup from CUDA-graph launch elision alone.
    pub capture_speedup: f64,
    /// Speedup with every kernel-level pass enabled.
    pub all_speedup: f64,
    /// End-to-end speedup with all passes plus the [`SAMPLER_STEPS`]-step
    /// distilled sampler; `None` for non-diffusion families (their
    /// iteration counts are structural).
    pub sampler_speedup: Option<f64>,
}

/// Optimization-pass experiment result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OptResult {
    /// Simulated device.
    pub device: String,
    /// Element width the width pass ran at.
    pub width: String,
    /// Distilled-sampler step count.
    pub sampler_steps: usize,
    /// Per-family speedup rows, [`FAMILIES`] order.
    pub rows: Vec<OptRow>,
    /// Epilogue kernels folded into their producers (all-passes run,
    /// whole suite, exact — isolated registry).
    pub kernels_fused: u64,
    /// Kernel launches whose overhead CUDA-graph capture elided.
    pub launches_elided: u64,
    /// HBM round-trip traffic the fusion pass removed, GiB.
    pub hbm_gib_saved: f64,
    /// Geometric-mean all-passes speedup across families — the
    /// bench-snapshot headline this experiment is gated on.
    pub speedup_all_passes: f64,
}

impl OptResult {
    /// The row for a model short name.
    #[must_use]
    pub fn row(&self, model: &str) -> Option<&OptRow> {
        self.rows.iter().find(|r| r.model == model)
    }
}

fn pipeline_time_s(profiler: &Profiler, id: ModelId, sampler_steps: Option<usize>) -> f64 {
    let mut pipeline = suite::build(id);
    if let Some(steps) = sampler_steps {
        pipeline = pipeline.with_sampler_steps(steps);
    }
    pipeline.profile(profiler).total_time_s()
}

/// Runs the experiment on the default device context.
#[must_use]
pub fn run(spec: &DeviceSpec) -> OptResult {
    run_ctx(&ExecContext::shared(spec.clone()))
}

/// [`run`] against an explicit [`ExecContext`] (worker registry + memo).
#[must_use]
pub fn run_ctx(ctx: &ExecContext) -> OptResult {
    let fuse_only = OptConfig { fuse: true, ..OptConfig::none() };
    let width_only = OptConfig { width: WIDTH, ..OptConfig::none() };
    let capture_only = OptConfig { graph_capture: true, ..OptConfig::none() };
    let all = OptConfig::all();

    let eager = ctx.profiler(AttnImpl::Baseline);
    let rows: Vec<OptRow> = FAMILIES
        .iter()
        .map(|&(id, family)| {
            let baseline_s = pipeline_time_s(&eager, id, None);
            let speedup = |opt: OptConfig, steps: Option<usize>| {
                baseline_s / pipeline_time_s(&ctx.profiler_opt(AttnImpl::Baseline, opt), id, steps)
            };
            let sampler_speedup = suite::build(id)
                .has_denoising_stages()
                .then(|| speedup(all, Some(SAMPLER_STEPS)));
            OptRow {
                model: mmg_serve::model_short_name(id).to_string(),
                family: family.to_string(),
                baseline_s,
                fuse_speedup: speedup(fuse_only, None),
                width_speedup: speedup(width_only, None),
                capture_speedup: speedup(capture_only, None),
                all_speedup: speedup(all, None),
                sampler_speedup,
            }
        })
        .collect();

    // Exact pass counters for this experiment alone: replay the
    // all-passes profile of every family onto a fresh registry (memo
    // replay reproduces the live counter deltas byte for byte, so the
    // totals are identical whether these profiles hit or miss).
    let scoped = Registry::new();
    let counted = Profiler::with_registry(ctx.spec.clone(), AttnImpl::Baseline, &scoped)
        .with_memo(std::sync::Arc::clone(&ctx.memo))
        .with_opt_config(all);
    for &(id, _) in &FAMILIES {
        let _ = pipeline_time_s(&counted, id, None);
    }
    let counter = |name: &str| scoped.counter(name).get();

    let geomean =
        (rows.iter().map(|r| r.all_speedup.ln()).sum::<f64>() / rows.len() as f64).exp();

    OptResult {
        device: ctx.spec.name.clone(),
        width: WIDTH.to_string(),
        sampler_steps: SAMPLER_STEPS,
        rows,
        kernels_fused: counter("kernel_fused_total"),
        launches_elided: counter("kernel_launches_elided_total"),
        hbm_gib_saved: counter("kernel_opt_hbm_bytes_saved_total") as f64 / (1u64 << 30) as f64,
        speedup_all_passes: geomean,
    }
}

/// Renders the per-family speedup table.
#[must_use]
pub fn render(r: &OptResult) -> String {
    let rows: Vec<(String, Vec<String>)> = r
        .rows
        .iter()
        .map(|row| {
            (
                row.model.clone(),
                vec![
                    row.family.clone(),
                    format!("{:.3} s", row.baseline_s),
                    format!("{:.2}x", row.fuse_speedup),
                    format!("{:.2}x", row.width_speedup),
                    format!("{:.2}x", row.capture_speedup),
                    format!("{:.2}x", row.all_speedup),
                    row.sampler_speedup
                        .map_or_else(|| "structural".to_string(), |s| format!("{s:.2}x")),
                ],
            )
        })
        .collect();
    format!(
        "Extension — kernel-graph optimization passes ({}, width {}, {}-step sampler)\n{}\
         fused {} epilogues, elided {} launches, saved {:.2} GiB HBM; geomean all-passes {:.2}x\n",
        r.device,
        r.width,
        r.sampler_steps,
        render_table(
            &["Model", "Family", "Eager", "Fuse", "Width", "Capture", "All", "+sampler"],
            &rows
        ),
        r.kernels_fused,
        r.launches_elided,
        r.hbm_gib_saved,
        r.speedup_all_passes,
    )
}

/// One model's row under a single caller-chosen pass configuration
/// (the `repro optimize --fuse/--width/--graph-capture/--sampler-steps`
/// path).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SingleRow {
    /// Model short name.
    pub model: String,
    /// Eager end-to-end seconds.
    pub baseline_s: f64,
    /// Optimized end-to-end seconds.
    pub optimized_s: f64,
    /// `baseline_s / optimized_s`.
    pub speedup: f64,
}

/// Result of profiling the suite under one explicit pass configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SingleResult {
    /// Simulated device.
    pub device: String,
    /// The pass configuration applied.
    pub fuse: bool,
    /// Element width applied.
    pub width: String,
    /// Whether launch overheads were elided.
    pub graph_capture: bool,
    /// Sampler cap, if any.
    pub sampler_steps: Option<usize>,
    /// Per-family rows, [`FAMILIES`] order.
    pub rows: Vec<SingleRow>,
}

/// Profiles every family eagerly and under `opt` (+ optional distilled
/// sampler) against an explicit context.
#[must_use]
pub fn run_single_ctx(
    ctx: &ExecContext,
    opt: OptConfig,
    sampler_steps: Option<usize>,
) -> SingleResult {
    let eager = ctx.profiler(AttnImpl::Baseline);
    let optimized = ctx.profiler_opt(AttnImpl::Baseline, opt);
    let rows = FAMILIES
        .iter()
        .map(|&(id, _)| {
            let baseline_s = pipeline_time_s(&eager, id, None);
            // The sampler cap only reaches denoising stages; structural
            // (AR / MaskGIT) iteration counts pass through untouched.
            let optimized_s = pipeline_time_s(&optimized, id, sampler_steps);
            SingleRow {
                model: mmg_serve::model_short_name(id).to_string(),
                baseline_s,
                optimized_s,
                speedup: baseline_s / optimized_s,
            }
        })
        .collect();
    SingleResult {
        device: ctx.spec.name.clone(),
        fuse: opt.fuse,
        width: opt.width.to_string(),
        graph_capture: opt.graph_capture,
        sampler_steps,
        rows,
    }
}

/// Renders the single-configuration table.
#[must_use]
pub fn render_single(r: &SingleResult) -> String {
    let rows: Vec<(String, Vec<String>)> = r
        .rows
        .iter()
        .map(|row| {
            (
                row.model.clone(),
                vec![
                    format!("{:.3} s", row.baseline_s),
                    format!("{:.3} s", row.optimized_s),
                    format!("{:.2}x", row.speedup),
                ],
            )
        })
        .collect();
    format!(
        "Optimization passes on {} (fuse: {}, width: {}, graph capture: {}, sampler: {})\n{}",
        r.device,
        r.fuse,
        r.width,
        r.graph_capture,
        r.sampler_steps.map_or_else(|| "full".to_string(), |s| format!("{s} steps")),
        render_table(&["Model", "Eager", "Optimized", "Speedup"], &rows)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn result() -> &'static OptResult {
        static RESULT: OnceLock<OptResult> = OnceLock::new();
        RESULT.get_or_init(|| run(&DeviceSpec::a100_80gb()))
    }

    #[test]
    fn covers_every_family() {
        let r = result();
        assert_eq!(r.rows.len(), FAMILIES.len());
        for short in ["sd", "mav", "parti", "llama"] {
            assert!(r.row(short).is_some(), "missing {short}");
        }
        assert_eq!(r.width, "int8");
    }

    #[test]
    fn per_pass_ordering_width_over_fuse_over_capture() {
        // The acceptance bar: per-kernel passes land in the published
        // order for every family — element width > epilogue fusion >
        // launch elision.
        for row in &result().rows {
            assert!(
                row.width_speedup > row.fuse_speedup,
                "{}: width {} vs fuse {}",
                row.model,
                row.width_speedup,
                row.fuse_speedup
            );
            assert!(
                row.fuse_speedup > row.capture_speedup,
                "{}: fuse {} vs capture {}",
                row.model,
                row.fuse_speedup,
                row.capture_speedup
            );
        }
    }

    #[test]
    fn every_pass_helps_and_composes() {
        for row in &result().rows {
            for (name, s) in [("fuse", row.fuse_speedup), ("width", row.width_speedup)] {
                assert!(s > 1.0, "{}: {name} speedup {s}", row.model);
                assert!(
                    row.all_speedup >= s - 1e-9,
                    "{}: all {} < {name} {s}",
                    row.model,
                    row.all_speedup
                );
            }
            if row.family.starts_with("diffusion") {
                // Capture holds the denoising loop's static kernel
                // sequence; dynamic-shape AR decode cannot stay
                // captured, so its capture speedup is exactly 1.
                assert!(row.capture_speedup > 1.0, "{}: capture {}", row.model, row.capture_speedup);
            } else {
                assert!(
                    (row.capture_speedup - 1.0).abs() < 1e-12,
                    "{}: AR capture must be a no-op, got {}",
                    row.model,
                    row.capture_speedup
                );
            }
        }
    }

    #[test]
    fn distilled_sampler_dominates_end_to_end_for_diffusion() {
        let r = result();
        for row in &r.rows {
            match row.sampler_speedup {
                Some(s) => {
                    assert!(row.family.starts_with("diffusion"), "{}", row.model);
                    assert!(
                        s > row.all_speedup * 2.0,
                        "{}: sampler {} vs all-passes {}",
                        row.model,
                        s,
                        row.all_speedup
                    );
                }
                None => assert!(row.family.starts_with("AR"), "{}", row.model),
            }
        }
    }

    #[test]
    fn pass_counters_are_nonzero_and_consistent() {
        let r = result();
        assert!(r.kernels_fused > 0, "fusion never fired");
        assert!(r.launches_elided > 0, "capture never fired");
        assert!(r.hbm_gib_saved > 0.0, "fusion saved no bytes");
        // Fusion applies everywhere; capture only inside static-shape
        // denoising loops — so no ordering holds between the two counts,
        // only that both fired.
        assert!(r.speedup_all_passes > 1.0);
    }

    #[test]
    fn single_config_matches_grid_column() {
        let ctx = ExecContext::shared(DeviceSpec::a100_80gb());
        let single = run_single_ctx(&ctx, OptConfig::all(), None);
        let r = result();
        for row in &single.rows {
            let grid = r.row(&row.model).unwrap();
            assert!(
                (row.speedup - grid.all_speedup).abs() < 1e-9,
                "{}: single {} vs grid {}",
                row.model,
                row.speedup,
                grid.all_speedup
            );
        }
    }

    #[test]
    fn renders() {
        let out = render(result());
        assert!(out.contains("optimization passes") && out.contains("geomean"));
        assert!(out.contains("structural"));
        let single = run_single_ctx(
            &ExecContext::shared(DeviceSpec::a100_80gb()),
            OptConfig { fuse: true, ..OptConfig::none() },
            Some(4),
        );
        let out = render_single(&single);
        assert!(out.contains("fuse: true") && out.contains("4 steps"));
    }
}
