//! Extension — quantifying Section V's proposed denoising-pod scheduling.

use mmg_analytics::scheduling::{pod_estimate, simulated_pod_speedup, PodEstimate};
use mmg_attn::AttnImpl;
use mmg_gpu::DeviceSpec;
use mmg_models::{suite, ModelId};
use mmg_profiler::report::render_table;

use crate::engine::ExecContext;
use serde::{Deserialize, Serialize};

/// One model's pod-scheduling headroom.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PodsRow {
    /// Model name.
    pub model: String,
    /// Serial per-inference seconds.
    pub serial_s: f64,
    /// Lower-bound per-inference seconds under staggered pods.
    pub pod_s: f64,
    /// Throughput speedup bound.
    pub speedup: f64,
    /// Event-driven simulated speedup with 2 staggered pods, on the
    /// dominant repeated stage.
    pub simulated_speedup_k2: f64,
    /// Busier-pipe utilization in the serial schedule.
    pub dominant_utilization: f64,
}

/// Pod experiment result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PodsResult {
    /// Rows in suite order.
    pub rows: Vec<PodsRow>,
}

impl PodsResult {
    /// A named row.
    #[must_use]
    pub fn row(&self, model: &str) -> Option<&PodsRow> {
        self.rows.iter().find(|r| r.model == model)
    }
}

/// Estimates pod headroom for the diffusion members of the suite (the
/// proposal targets denoising loops) plus LLaMA2 for contrast.
#[must_use]
pub fn run(spec: &DeviceSpec) -> PodsResult {
    run_ctx(&ExecContext::shared(spec.clone()))
}

/// [`run`] against an explicit [`ExecContext`] (worker registry + memo).
#[must_use]
pub fn run_ctx(ctx: &ExecContext) -> PodsResult {
    let profiler = ctx.profiler(AttnImpl::Flash);
    let targets = [
        ModelId::StableDiffusion,
        ModelId::Imagen,
        ModelId::ProdImage,
        ModelId::MakeAVideo,
        ModelId::Llama2,
    ];
    let rows = targets
        .iter()
        .map(|&id| {
            let prof = suite::build(id).profile(&profiler);
            // Aggregate the estimate over all stages, weighted by repeats.
            let mut agg = PodEstimate {
                serial_s: 0.0,
                compute_s: 0.0,
                memory_s: 0.0,
                overhead_s: 0.0,
                pod_s: 0.0,
            };
            for s in &prof.stages {
                let e = pod_estimate(&s.timeline);
                let w = s.repeats as f64;
                agg.serial_s += w * e.serial_s;
                agg.compute_s += w * e.compute_s;
                agg.memory_s += w * e.memory_s;
                agg.overhead_s += w * e.overhead_s;
            }
            agg.pod_s = agg.compute_s.max(agg.memory_s).max(agg.overhead_s);
            // Simulate on the most repeated stage (the denoising/decode
            // loop body dominates the pipeline).
            let hot = prof
                .stages
                .iter()
                .max_by_key(|s| s.repeats)
                .expect("pipeline has stages");
            let simulated = simulated_pod_speedup(&hot.timeline, 2);
            PodsRow {
                model: id.to_string(),
                serial_s: agg.serial_s,
                pod_s: agg.pod_s,
                speedup: agg.speedup(),
                simulated_speedup_k2: simulated,
                dominant_utilization: agg.dominant_pipe_utilization(),
            }
        })
        .collect();
    PodsResult { rows }
}

/// Renders the pod study.
#[must_use]
pub fn render(r: &PodsResult) -> String {
    let rows: Vec<(String, Vec<String>)> = r
        .rows
        .iter()
        .map(|row| {
            (
                row.model.clone(),
                vec![
                    format!("{:.0} ms", row.serial_s * 1e3),
                    format!("{:.0} ms", row.pod_s * 1e3),
                    format!("{:.2}x", row.speedup),
                    format!("{:.2}x", row.simulated_speedup_k2),
                    format!("{:.0}%", row.dominant_utilization * 100.0),
                ],
            )
        })
        .collect();
    format!(
        "Extension — denoising-pod co-scheduling headroom (Section V proposal)\n{}",
        render_table(
            &["Model", "Serial/infer", "Pod bound/infer", "Bound gain", "Simulated (k=2)", "Busy pipe"],
            &rows
        )
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> PodsResult {
        run(&DeviceSpec::a100_80gb())
    }

    #[test]
    fn diffusion_models_have_headroom() {
        let r = result();
        for name in ["StableDiffusion", "Imagen", "ProdImage"] {
            let row = r.row(name).unwrap();
            assert!(row.speedup > 1.1, "{name}: {}", row.speedup);
            assert!(row.speedup < 3.0, "{name}: bound too loose");
        }
    }

    #[test]
    fn simulation_confirms_headroom() {
        let r = result();
        let sd = r.row("StableDiffusion").unwrap();
        assert!(sd.simulated_speedup_k2 > 1.1, "simulated {}", sd.simulated_speedup_k2);
        assert!(sd.simulated_speedup_k2 <= sd.speedup + 1e-6);
    }

    #[test]
    fn pod_bound_never_exceeds_serial() {
        for row in &result().rows {
            assert!(row.pod_s <= row.serial_s * (1.0 + 1e-9), "{}", row.model);
        }
    }

    #[test]
    fn renders() {
        assert!(render(&result()).contains("pod"));
    }
}
