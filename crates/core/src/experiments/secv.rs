//! Section V — the analytical sequence-length/memory framework,
//! cross-checked against the traced simulation.

use mmg_analytics::seqlen_model::{scaling_exponent, DiffusionSeqModel};
use mmg_attn::AttnImpl;
use mmg_gpu::DeviceSpec;
use mmg_models::suite::stable_diffusion::{pipeline, StableDiffusionConfig};
use mmg_profiler::seqlen::trace;
use mmg_profiler::report::render_table;

use crate::engine::ExecContext;
use serde::{Deserialize, Serialize};

/// Section V result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SecVResult {
    /// Image size analyzed.
    pub image_size: usize,
    /// Analytical peak sequence length.
    pub analytic_max_seq: u64,
    /// Traced peak sequence length from the simulated UNet.
    pub traced_max_seq: usize,
    /// Analytical cumulative similarity-matrix bytes over the UNet.
    pub cumulative_similarity_bytes: u64,
    /// Fitted memory-scaling exponent over a size sweep (paper: 4).
    pub memory_exponent: f64,
}

/// Evaluates the analytical model and cross-checks it against the traced
/// graphs.
#[must_use]
pub fn run(spec: &DeviceSpec, image_size: usize) -> SecVResult {
    run_ctx(&ExecContext::shared(spec.clone()), image_size)
}

/// [`run`] against an explicit [`ExecContext`] (worker registry + memo).
#[must_use]
pub fn run_ctx(ctx: &ExecContext, image_size: usize) -> SecVResult {
    let model = DiffusionSeqModel::stable_diffusion(image_size);
    // Traced check.
    let profiler = ctx.profiler(AttnImpl::Flash);
    let cfg = StableDiffusionConfig { image_size, ..Default::default() };
    let prof = pipeline(&cfg).profile(&profiler);
    let traced = trace(&prof.stage("unet_step").expect("unet stage").timeline);
    let traced_max = traced.iter().map(|s| s.seq_q).max().unwrap_or(0);
    // Exponent fit over a 4x size range.
    let a = DiffusionSeqModel::stable_diffusion(image_size / 2);
    let b = DiffusionSeqModel::stable_diffusion(image_size * 2);
    let k = scaling_exponent(
        (image_size / 2) as f64,
        a.cumulative_similarity_bytes() as f64,
        (image_size * 2) as f64,
        b.cumulative_similarity_bytes() as f64,
    );
    SecVResult {
        image_size,
        analytic_max_seq: model.self_attn_seq(0),
        traced_max_seq: traced_max,
        cumulative_similarity_bytes: model.cumulative_similarity_bytes(),
        memory_exponent: k,
    }
}

/// Renders the Section V summary.
#[must_use]
pub fn render(r: &SecVResult) -> String {
    let rows = vec![
        ("Peak sequence (analytic)".to_owned(), vec![r.analytic_max_seq.to_string()]),
        ("Peak sequence (traced)".to_owned(), vec![r.traced_max_seq.to_string()]),
        (
            "Cumulative similarity memory".to_owned(),
            vec![format!("{:.1} MiB", r.cumulative_similarity_bytes as f64 / (1 << 20) as f64)],
        ),
        ("Memory scaling exponent".to_owned(), vec![format!("{:.2} (paper: 4)", r.memory_exponent)]),
    ];
    format!(
        "Section V — analytical framework at {0}x{0}\n{1}",
        r.image_size,
        render_table(&["Quantity", "Value"], &rows)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> SecVResult {
        run(&DeviceSpec::a100_80gb(), 512)
    }

    #[test]
    fn analytic_matches_traced_peak() {
        let r = result();
        assert_eq!(r.analytic_max_seq as usize, r.traced_max_seq);
    }

    #[test]
    fn exponent_is_four() {
        let r = result();
        assert!((3.7..4.1).contains(&r.memory_exponent), "k = {}", r.memory_exponent);
    }

    #[test]
    fn renders() {
        assert!(render(&result()).contains("paper: 4"));
    }
}
