//! Extension — latency attribution under load: *where* each
//! scheduler's latency comes from, and how fast the SLO health engine
//! notices when a cell is underprovisioned.
//!
//! The timeline experiment (`serve-timeline`) shows *when* schedulers
//! diverge; this one decomposes *why*. Every (scheduler × utilization)
//! cell runs with per-request phase attribution on — each completion's
//! latency split exactly into queue (GPU busy with other work), hold
//! (batch-formation wait on an idle GPU), and execute seconds — plus
//! the multi-window burn-rate alert engine, so the grid reports both
//! the phase shares and the time-to-first-alert. The per-seed
//! [`PhaseStats`] aggregates are mergeable, so cells pooled on the
//! [`run_cells_with`] worker pool are byte-identical for every `--jobs`
//! value.
//!
//! The expected shape (and what the tests pin): at low utilization the
//! static batcher's latency is hold-dominated (its wait timer withholds
//! launches on an idle GPU) while FIFO's is pure execute; past
//! saturation FIFO's latency collapses into queue time and the burn
//! alert fires within the first fraction of the horizon.

use std::sync::Arc;

use mmg_gpu::DeviceSpec;
use mmg_profiler::report::render_table;
use mmg_profiler::CostMemo;
use mmg_serve::{simulate, ArrivalProcess, PhaseStats, ScenarioCfg, SchedulerKind, SloSpec};
use mmg_telemetry::Registry;

use crate::engine::{global_memo, run_cells_with, ExecContext};
use serde::{Deserialize, Serialize};

/// GPUs in the simulated cluster (matches `serve-sweep`).
pub const GPUS: usize = 4;
/// Request mix (matches `serve-sweep` and the CLI default).
pub const MIX: &str = "sd:8,parti:2";
/// Offered loads relative to the cluster's *batch-1* capacity: one
/// provisioned cell (head-of-line blocking behind the long Parti
/// requests stays inside the error budget) and one past saturation.
pub const UTILIZATIONS: [f64; 2] = [0.4, 1.25];
/// Deadline as a multiple of batch-1 service time.
pub const SLO_MULTIPLE: f64 = 4.0;
/// On-time objective the burn-rate budget is measured against. The
/// 10% budget absorbs the miss clusters a single long Parti request
/// causes at provisioned load (head-of-line blocking is bursty, not
/// sustained) while sustained saturation still burns through fast.
pub const OBJECTIVE: f64 = 0.90;
/// Simulated seconds of arrivals per seed. Long enough that the
/// burn-rate windows (scaled to the horizon) dwarf the mix's longest
/// single service time — a lone Parti request must not be able to fill
/// an alert window with misses by itself.
pub const DURATION_S: f64 = 960.0;
/// Seeds pooled per cell.
pub const REPLICATIONS: u64 = 2;
/// First seed; replication `k` uses `BASE_SEED + k`.
pub const BASE_SEED: u64 = 42;
/// Batch cap for the dynamic scheduler.
const MAX_BATCH: usize = 16;
/// Static-scheduler target batch and wait timer.
const STATIC_BATCH: usize = 8;
const STATIC_WAIT_S: f64 = 0.25;

/// One (scheduler × utilization) cell, pooled over seeds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttribCell {
    /// Scheduler name (`fifo` | `static` | `dynamic`).
    pub scheduler: String,
    /// Offered utilization on a batch-1 basis.
    pub utilization: f64,
    /// Offered arrival rate, requests/s.
    pub offered_rps: f64,
    /// Queue-phase share of total latency seconds (exact sums).
    pub queue_share: f64,
    /// Hold-phase share of total latency seconds.
    pub hold_share: f64,
    /// Execute-phase share of total latency seconds.
    pub execute_share: f64,
    /// Pooled 99th-percentile queue-phase seconds.
    pub queue_p99_s: f64,
    /// Pooled 99th-percentile hold-phase seconds.
    pub hold_p99_s: f64,
    /// Pooled 99th-percentile execute-phase seconds.
    pub execute_p99_s: f64,
    /// Seeds whose burn-rate engine fired at least once.
    pub alerted: u64,
    /// Mean sim time of the first alert over the seeds that alerted.
    pub mean_time_to_first_alert_s: Option<f64>,
}

/// Serve-attrib result: the full grid, schedulers outermost.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeAttribResult {
    /// Cluster size.
    pub gpus: usize,
    /// Request mix, `model:weight` list.
    pub mix: String,
    /// On-time objective for the burn-rate budget.
    pub objective: f64,
    /// Seeds pooled per cell.
    pub replications: u64,
    /// Grid cells, scheduler-major then utilization order.
    pub cells: Vec<AttribCell>,
}

impl ServeAttribResult {
    /// The cell for a scheduler at an offered utilization.
    #[must_use]
    pub fn cell(&self, scheduler: &str, utilization: f64) -> Option<&AttribCell> {
        self.cells
            .iter()
            .find(|c| c.scheduler == scheduler && (c.utilization - utilization).abs() < 1e-9)
    }
}

/// Runs the grid on the default device with one worker.
#[must_use]
pub fn run(spec: &DeviceSpec) -> ServeAttribResult {
    run_jobs(spec, 1, &global_memo(), &Registry::new())
}

/// [`run`] against an explicit [`ExecContext`] (dispatch entry point;
/// cells still run on isolated registries merged into `ctx.registry`).
#[must_use]
pub fn run_ctx(ctx: &ExecContext) -> ServeAttribResult {
    run_jobs(&ctx.spec, 1, &ctx.memo, &ctx.registry)
}

/// Runs the (scheduler × utilization × seed) grid on the
/// [`run_cells_with`] worker pool and pools each cell's [`PhaseStats`]
/// and first-alert times in grid order — identical for every `jobs`
/// value.
#[must_use]
pub fn run_jobs(
    spec: &DeviceSpec,
    jobs: usize,
    memo: &Arc<CostMemo>,
    target: &Registry,
) -> ServeAttribResult {
    // Profile once up front (same pattern as the replicated sweep).
    let profiled =
        super::serve_common::profile_mix(spec, memo, target, MIX, MAX_BATCH, false);
    let (mix, profile) = (profiled.mix, profiled.profile);
    let mean_base_s = profiled.mean_base_s;

    let schedulers = [
        SchedulerKind::Fifo,
        SchedulerKind::Static { batch: STATIC_BATCH, wait_s: STATIC_WAIT_S },
        SchedulerKind::Dynamic { max_batch: MAX_BATCH },
    ];
    let mut keys: Vec<(SchedulerKind, f64)> = Vec::new();
    for scheduler in schedulers {
        for utilization in UTILIZATIONS {
            keys.push((scheduler, utilization));
        }
    }
    let grid: Vec<((SchedulerKind, f64), u64)> =
        super::serve_common::replicated_grid(&keys, REPLICATIONS, BASE_SEED);

    let seeds: Vec<(PhaseStats, Option<f64>)> =
        run_cells_with(grid.len(), spec, jobs, memo, target, |i, cell_ctx| {
            let ((scheduler, utilization), seed) = grid[i];
            let offered_rps = utilization * GPUS as f64 / mean_base_s;
            let mut cfg = ScenarioCfg::new(
                GPUS,
                mix.clone(),
                ArrivalProcess::poisson(offered_rps),
                scheduler,
                SloSpec::ServiceMultiple(SLO_MULTIPLE),
                DURATION_S,
                seed,
            )
            .with_health(OBJECTIVE);
            cfg.full_records = false;
            let result = simulate(&cfg, &profile, &cell_ctx.registry);
            let phases = result.stats.phases.clone().expect("attribution is on");
            let tta = result
                .health
                .as_ref()
                .expect("an SLO policy is set")
                .time_to_first_alert_s();
            (phases, tta)
        });

    let reps = REPLICATIONS as usize;
    let cells = seeds
        .chunks(reps)
        .zip(keys.iter())
        .map(|(chunk, cell_key)| {
            let &(scheduler, utilization) = cell_key;
            let mut pooled = chunk[0].0.clone();
            for (ph, _) in &chunk[1..] {
                pooled.merge_from(ph);
            }
            let ttas: Vec<f64> = chunk.iter().filter_map(|(_, tta)| *tta).collect();
            let total = pooled.queue_sum_s + pooled.hold_sum_s + pooled.execute_sum_s;
            let share = |s: f64| if total > 0.0 { s / total } else { 0.0 };
            AttribCell {
                scheduler: scheduler.name().to_string(),
                utilization,
                offered_rps: utilization * GPUS as f64 / mean_base_s,
                queue_share: share(pooled.queue_sum_s),
                hold_share: share(pooled.hold_sum_s),
                execute_share: share(pooled.execute_sum_s),
                queue_p99_s: pooled.queue.quantile(0.99).unwrap_or(0.0),
                hold_p99_s: pooled.hold.quantile(0.99).unwrap_or(0.0),
                execute_p99_s: pooled.execute.quantile(0.99).unwrap_or(0.0),
                alerted: ttas.len() as u64,
                mean_time_to_first_alert_s: if ttas.is_empty() {
                    None
                } else {
                    Some(ttas.iter().sum::<f64>() / ttas.len() as f64)
                },
            }
        })
        .collect();

    ServeAttribResult {
        gpus: GPUS,
        mix: MIX.to_string(),
        objective: OBJECTIVE,
        replications: REPLICATIONS,
        cells,
    }
}

/// Renders the attribution grid plus the alert narrative.
#[must_use]
pub fn render(r: &ServeAttribResult) -> String {
    let mut out = format!(
        "Extension — latency attribution ({} GPUs, mix {}, {:.0}% objective, {} seeds)\n\n",
        r.gpus,
        r.mix,
        r.objective * 100.0,
        r.replications,
    );
    let rows: Vec<(String, Vec<String>)> = r
        .cells
        .iter()
        .map(|c| {
            (
                format!("{} @ {:.2}", c.scheduler, c.utilization),
                vec![
                    format!("{:.0}%", c.queue_share * 100.0),
                    format!("{:.0}%", c.hold_share * 100.0),
                    format!("{:.0}%", c.execute_share * 100.0),
                    format!("{:.2} s", c.queue_p99_s),
                    format!("{:.2} s", c.hold_p99_s),
                    format!("{:.2} s", c.execute_p99_s),
                    match c.mean_time_to_first_alert_s {
                        Some(t) => format!("{t:.1} s ({}/{})", c.alerted, r.replications),
                        None => "—".to_string(),
                    },
                ],
            )
        })
        .collect();
    out.push_str(&render_table(
        &["Cell", "Queue", "Hold", "Exec", "Queue p99", "Hold p99", "Exec p99", "First alert"],
        &rows,
    ));
    if let (Some(sat), Some(ok)) = (r.cell("fifo", UTILIZATIONS[1]), r.cell("fifo", UTILIZATIONS[0])) {
        out.push_str(&format!(
            "\nfifo past saturation: queue share {:.0}% (vs {:.0}% provisioned); \
             burn alert after {} of the {DURATION_S:.0}s horizon\n",
            sat.queue_share * 100.0,
            ok.queue_share * 100.0,
            match sat.mean_time_to_first_alert_s {
                Some(t) => format!("{t:.1}s"),
                None => "never".to_string(),
            },
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn result() -> &'static ServeAttribResult {
        static RESULT: OnceLock<ServeAttribResult> = OnceLock::new();
        RESULT.get_or_init(|| run(&DeviceSpec::a100_80gb()))
    }

    #[test]
    fn grid_covers_every_cell_with_conserving_shares() {
        let r = result();
        assert_eq!(r.cells.len(), 3 * UTILIZATIONS.len());
        for c in &r.cells {
            let total = c.queue_share + c.hold_share + c.execute_share;
            assert!(
                (total - 1.0).abs() < 1e-9,
                "{} @ {}: shares sum to {total}",
                c.scheduler,
                c.utilization
            );
            for s in [c.queue_share, c.hold_share, c.execute_share] {
                assert!((0.0..=1.0).contains(&s));
            }
            assert!(c.alerted <= r.replications);
        }
    }

    #[test]
    fn phase_mix_tells_the_schedulers_apart() {
        let r = result();
        // Provisioned: static's wait timer makes it hold-heavy; FIFO
        // launches the moment a GPU frees, so it accrues no hold at all.
        let st = r.cell("static", UTILIZATIONS[0]).unwrap();
        let fifo = r.cell("fifo", UTILIZATIONS[0]).unwrap();
        assert!(
            st.hold_share > 10.0 * fifo.hold_share.max(1e-12),
            "static hold {} vs fifo {}",
            st.hold_share,
            fifo.hold_share
        );
        // Past saturation FIFO's latency collapses into queueing.
        let sat = r.cell("fifo", UTILIZATIONS[1]).unwrap();
        assert!(
            sat.queue_share > fifo.queue_share && sat.queue_share > 0.5,
            "saturated fifo queue share {} vs provisioned {}",
            sat.queue_share,
            fifo.queue_share
        );
    }

    #[test]
    fn alerts_fire_exactly_where_the_cluster_is_underprovisioned() {
        let r = result();
        // Provisioned cells stay inside the error budget for every
        // scheduler — the engine must not cry wolf.
        for c in r.cells.iter().filter(|c| c.utilization == UTILIZATIONS[0]) {
            assert_eq!(
                c.alerted, 0,
                "{} @ {} alerted: {:?}",
                c.scheduler, c.utilization, c.mean_time_to_first_alert_s
            );
        }
        // Past saturation every seed of the saturated FIFO cell burns
        // through the budget early in the horizon.
        let sat = r.cell("fifo", UTILIZATIONS[1]).unwrap();
        assert_eq!(sat.alerted, r.replications, "saturated fifo must alert every seed");
        let tta = sat.mean_time_to_first_alert_s.unwrap();
        assert!(
            tta > 0.0 && tta < DURATION_S / 2.0,
            "first alert should land early, got {tta}"
        );
    }

    #[test]
    fn identical_across_job_counts() {
        let spec = DeviceSpec::a100_80gb();
        let run_with = |jobs: usize| {
            let target = Registry::new();
            let r = run_jobs(&spec, jobs, &global_memo(), &target);
            (r, target.counters_snapshot().values().to_vec())
        };
        let serial = run_with(1);
        for jobs in [2, 4] {
            let parallel = run_with(jobs);
            assert_eq!(serial.0, parallel.0, "results diverged at jobs={jobs}");
            assert_eq!(serial.1, parallel.1, "counters diverged at jobs={jobs}");
        }
    }

    #[test]
    fn renders() {
        let out = render(result());
        assert!(out.contains("latency attribution"));
        assert!(out.contains("fifo @ 1.25") && out.contains("fifo @ 0.40"));
        assert!(out.contains("First alert"));
    }
}
