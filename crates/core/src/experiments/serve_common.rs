//! Shared scaffolding for the serving experiments.
//!
//! Every serving experiment (`serve-sweep`, `serve-timeline`,
//! `serve-attrib`, `fleet-sweep`) opens the same way: profile the mix's
//! models once on an isolated registry, build the [`ServiceProfile`]
//! from the real profiler, and merge that registry into the target
//! before any cell telemetry — the same order a serial run would record
//! in, which is what keeps `--jobs N` byte-identical. They also all
//! build the same replicated grid: a key list crossed with
//! `replications` consecutive seeds, pooled back per key with
//! `chunks(reps)`. Both live here so the experiments stay small and the
//! determinism-critical ordering is written (and tested) once.

use std::sync::Arc;

use mmg_attn::AttnImpl;
use mmg_gpu::DeviceSpec;
use mmg_models::ModelId;
use mmg_profiler::CostMemo;
use mmg_serve::{RequestMix, ServiceProfile};
use mmg_telemetry::Registry;

use crate::engine::ExecContext;

/// The profile-once preamble's output: everything a serving experiment
/// needs before its first simulated cell.
#[derive(Debug, Clone)]
pub struct ProfiledMix {
    /// The parsed request mix.
    pub mix: RequestMix,
    /// Per-model, per-batch-size service curves from the profiler
    /// (with Section V pod factors when requested).
    pub profile: ServiceProfile,
    /// Mix-weighted mean batch-1 service time, seconds — the unit
    /// offered-utilization rates are derived from.
    pub mean_base_s: f64,
    /// `(model, factor)` pod throughput factors; empty unless requested.
    pub pod_factors: Vec<(ModelId, f64)>,
}

/// Profiles `mix_str`'s models once on an isolated registry (batch
/// sizes: powers of two up to `max_batch`) and merges the profiling
/// telemetry into `target` *before* returning — ahead of any cell
/// telemetry, exactly as a serial run would record it. When
/// `with_pods` is set, Section V pod factors are computed from the same
/// profiler and attached to the profile.
///
/// # Panics
///
/// Panics if `mix_str` does not parse.
#[must_use]
pub fn profile_mix(
    spec: &DeviceSpec,
    memo: &Arc<CostMemo>,
    target: &Registry,
    mix_str: &str,
    max_batch: usize,
    with_pods: bool,
) -> ProfiledMix {
    profile_mix_impl(spec, memo, target, mix_str, max_batch, with_pods, None)
}

/// Like [`profile_mix`], but with the kernel-graph optimization passes
/// `opt` applied when lowering and the diffusion sampler capped at
/// `sampler_steps` — the service curves an *optimized* deployment of
/// the same mix would exhibit. The `OptConfig` participates in memo
/// keys, so the shared memo stays safe across eager and optimized
/// profiles.
///
/// # Panics
///
/// Panics if `mix_str` does not parse.
#[must_use]
#[allow(clippy::too_many_arguments)] // the eager signature plus the two pass knobs
pub fn profile_mix_opt(
    spec: &DeviceSpec,
    memo: &Arc<CostMemo>,
    target: &Registry,
    mix_str: &str,
    max_batch: usize,
    with_pods: bool,
    opt: mmg_graph::OptConfig,
    sampler_steps: Option<usize>,
) -> ProfiledMix {
    profile_mix_impl(spec, memo, target, mix_str, max_batch, with_pods, Some((opt, sampler_steps)))
}

fn profile_mix_impl(
    spec: &DeviceSpec,
    memo: &Arc<CostMemo>,
    target: &Registry,
    mix_str: &str,
    max_batch: usize,
    with_pods: bool,
    opt: Option<(mmg_graph::OptConfig, Option<usize>)>,
) -> ProfiledMix {
    let ctx = ExecContext::isolated(spec.clone(), Arc::clone(memo));
    let profiler = match opt {
        Some((cfg, _)) => ctx.profiler_opt(AttnImpl::Flash, cfg),
        None => ctx.profiler(AttnImpl::Flash),
    };
    let sampler_steps = opt.and_then(|(_, steps)| steps);
    let mix = RequestMix::parse(mix_str).unwrap_or_else(|e| panic!("mix {mix_str:?}: {e}"));
    let models: Vec<ModelId> = mix.models().collect();
    let batches: Vec<usize> = (0..).map(|i| 1 << i).take_while(|&b| b <= max_batch).collect();
    let pod_factors: Vec<(ModelId, f64)> = if with_pods {
        models
            .iter()
            .map(|&m| (m, super::serve_sweep::pod_factor(&profiler, m)))
            .collect()
    } else {
        Vec::new()
    };
    let mut profile =
        ServiceProfile::from_profiler_sampled(&profiler, &models, &batches, sampler_steps);
    if with_pods {
        profile = profile.with_pod_factors(&pod_factors);
    }
    let mean_base_s = profile.mean_base_s(&mix);
    target.merge_from(&ctx.registry);
    ProfiledMix { mix, profile, mean_base_s, pod_factors }
}

/// The replicated grid every serving experiment shards over: each key
/// in order, crossed with `replications` consecutive seeds starting at
/// `base_seed`. Cell `keys[i]` with replicate `k` lands at index
/// `i * replications + k`, so per-key pooling is `chunks(replications)`
/// over the results in the same order.
///
/// # Panics
///
/// Panics if `replications` is zero.
#[must_use]
pub fn replicated_grid<K: Clone>(
    keys: &[K],
    replications: u64,
    base_seed: u64,
) -> Vec<(K, u64)> {
    assert!(replications >= 1, "need at least one replication");
    let mut grid = Vec::with_capacity(keys.len() * replications as usize);
    for key in keys {
        for k in 0..replications {
            grid.push((key.clone(), base_seed.wrapping_add(k)));
        }
    }
    grid
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_is_key_major_with_consecutive_seeds() {
        let grid = replicated_grid(&["a", "b", "c"], 3, 100);
        assert_eq!(grid.len(), 9);
        let expect = [
            ("a", 100),
            ("a", 101),
            ("a", 102),
            ("b", 100),
            ("b", 101),
            ("b", 102),
            ("c", 100),
            ("c", 101),
            ("c", 102),
        ];
        for (got, want) in grid.iter().zip(expect) {
            assert_eq!((got.0, got.1), want);
        }
        // chunks(reps) recovers each key's replicates.
        for (chunk, key) in grid.chunks(3).zip(["a", "b", "c"]) {
            assert!(chunk.iter().all(|(k, _)| *k == key));
        }
    }

    #[test]
    fn grid_seed_wraps_instead_of_panicking() {
        let grid = replicated_grid(&[0u8], 2, u64::MAX);
        assert_eq!(grid[0].1, u64::MAX);
        assert_eq!(grid[1].1, 0);
    }

    #[test]
    fn profile_mix_profiles_once_and_merges_telemetry() {
        let target = Registry::new();
        let p = profile_mix(
            &DeviceSpec::a100_80gb(),
            &crate::engine::global_memo(),
            &target,
            "sd:8,parti:2",
            16,
            false,
        );
        assert!(p.mean_base_s > 0.0);
        assert!(p.pod_factors.is_empty());
        // Curves exist for every mix model at batch 1.
        for m in p.mix.models() {
            assert!(p.profile.curve(m).is_some(), "no curve for {m}");
        }
        // The profiling registry was folded into the target.
        assert!(!target.counters_snapshot().values().is_empty());
    }

    #[test]
    fn optimized_profile_mix_serves_much_faster() {
        let target = Registry::new();
        let spec = DeviceSpec::a100_80gb();
        let memo = crate::engine::global_memo();
        let base = profile_mix(&spec, &memo, &target, "sd:8,parti:2", 16, false);
        let opt = profile_mix_opt(
            &spec,
            &memo,
            &target,
            "sd:8,parti:2",
            16,
            false,
            mmg_graph::OptConfig::all(),
            Some(4),
        );
        // All passes plus the 4-step sampler cut the mix's mean service
        // time substantially. The AR share (parti) caps the aggregate:
        // its decode loop gets fusion and width but no graph capture and
        // no sampler distillation.
        assert!(
            opt.mean_base_s < base.mean_base_s / 1.5,
            "opt {} vs base {}",
            opt.mean_base_s,
            base.mean_base_s
        );
    }

    #[test]
    fn profile_mix_pod_factors_cover_the_mix() {
        let target = Registry::new();
        let p = profile_mix(
            &DeviceSpec::a100_80gb(),
            &crate::engine::global_memo(),
            &target,
            "sd:8,parti:2",
            16,
            true,
        );
        assert_eq!(p.pod_factors.len(), 2);
        assert!(p.pod_factors.iter().all(|&(_, f)| f >= 1.0));
    }
}
