//! Extension — cluster-serving scheduler sweep on the `mmg-serve` DES.
//!
//! The paper closes on *deployable* systems for TTI/TTV workloads; this
//! experiment quantifies the deployment story. A simulated multi-GPU
//! cluster serves a mixed Stable Diffusion + Parti request stream whose
//! per-model, per-batch-size service times come from the real roofline
//! profiler (via [`ServiceProfile::from_profiler`]), and four schedulers
//! are swept across offered utilizations:
//!
//! * `fifo` — one request at a time, no batching (the baseline);
//! * `static` — waits to fill a fixed batch (classic batching);
//! * `dynamic` — deadline-aware dynamic batching up to a cap;
//! * `pods` — dynamic batching plus Section V denoising-pod
//!   co-scheduling, whose per-model throughput factors come from
//!   [`mmg_analytics::scheduling::pod_estimate`] on profiled timelines.
//!
//! The paper's batching-regime observation (Fig. 5) becomes a
//! cluster-level effect here: the memory-bound Parti decode amortizes
//! dramatically under batching while the compute-bound SD UNet barely
//! does, so dynamic batching's goodput win over FIFO grows with load.

use std::sync::Arc;

use mmg_analytics::scheduling::pod_estimate;
use mmg_attn::AttnImpl;
use mmg_gpu::DeviceSpec;
use mmg_models::{suite, ModelId};
use mmg_profiler::report::render_table;
use mmg_profiler::{CostMemo, Profiler};
use mmg_serve::{
    simulate, model_short_name, RequestMix, ScenarioCfg, SchedulerKind, ServiceProfile,
    SimResult, SloSpec,
};
use mmg_telemetry::{QuantileSketch, Registry};

use crate::engine::{run_cells_with, ExecContext};
use serde::{Deserialize, Serialize};

/// GPUs in the simulated cluster.
pub const GPUS: usize = 4;
/// Request mix: an image-generation-heavy stream with an autoregressive
/// minority, matching the CLI default (`sd:8,parti:2`).
pub const MIX: &str = "sd:8,parti:2";
/// Deadline as a multiple of a request's own batch-1 service time.
pub const SLO_MULTIPLE: f64 = 4.0;
/// Offered utilizations swept (fraction of aggregate batch-1 capacity).
pub const UTILIZATIONS: [f64; 3] = [0.5, 0.8, 0.95];
/// Simulated seconds per sweep cell.
const DURATION_S: f64 = 300.0;
/// Batch cap for the batching schedulers.
const MAX_BATCH: usize = 16;
/// Fixed seed: one sample path per cell, reproducible everywhere.
const SEED: u64 = 42;

/// One (scheduler, utilization) cell of the sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeSweepCell {
    /// Scheduler name (`fifo` | `static` | `dynamic` | `pods`).
    pub scheduler: String,
    /// Offered utilization target (fraction of batch-1 capacity).
    pub utilization: f64,
    /// Offered arrival rate, requests/s.
    pub offered_rps: f64,
    /// Completed requests/s over the run.
    pub throughput_rps: f64,
    /// Completed-within-SLO requests/s over the run.
    pub goodput_rps: f64,
    /// Goodput of the same scenario served on the *optimized* service
    /// curves (all kernel-graph passes + the distilled sampler) — the
    /// serving-capacity gain the optimization passes buy at fixed SLO.
    pub opt_goodput_rps: f64,
    /// Fraction of completed requests that met their deadline.
    pub slo_attainment: f64,
    /// 99th-percentile end-to-end latency, seconds.
    pub p99_s: f64,
    /// Mean formed batch size.
    pub mean_batch: f64,
    /// Measured GPU-time utilization (busy / (gpus × horizon)).
    pub measured_utilization: f64,
}

/// Serving-sweep result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeSweepResult {
    /// Cluster size.
    pub gpus: usize,
    /// Request mix, `model:weight` list.
    pub mix: String,
    /// Deadline multiple of batch-1 service time.
    pub slo_multiple: f64,
    /// Mix-weighted mean batch-1 service time, seconds.
    pub mean_service_s: f64,
    /// Mean batch-1 service time on the optimized curves, seconds.
    pub opt_mean_service_s: f64,
    /// Per-model Section V pod throughput factors used by `pods`.
    pub pod_factors: Vec<(String, f64)>,
    /// Sweep cells, scheduler-major in [`UTILIZATIONS`] order.
    pub cells: Vec<ServeSweepCell>,
}

impl ServeSweepResult {
    /// The cell for a scheduler at an offered utilization.
    #[must_use]
    pub fn cell(&self, scheduler: &str, utilization: f64) -> Option<&ServeSweepCell> {
        self.cells
            .iter()
            .find(|c| c.scheduler == scheduler && (c.utilization - utilization).abs() < 1e-9)
    }
}

/// Section V pod throughput factor for one model: the repeats-weighted
/// pod estimate over the profiled pipeline (same aggregation as the
/// `pods` experiment). Also used by the `repro serve` CLI to ground its
/// `pods` scheduler.
#[must_use]
pub fn pod_factor(profiler: &Profiler, id: ModelId) -> f64 {
    let prof = suite::build(id).profile(profiler);
    let (mut serial, mut compute, mut memory, mut overhead) = (0.0, 0.0, 0.0, 0.0);
    for s in &prof.stages {
        let e = pod_estimate(&s.timeline);
        let w = s.repeats as f64;
        serial += w * e.serial_s;
        compute += w * e.compute_s;
        memory += w * e.memory_s;
        overhead += w * e.overhead_s;
    }
    let pod = compute.max(memory).max(overhead);
    if pod > 0.0 { (serial / pod).max(1.0) } else { 1.0 }
}

fn p99_latency(r: &SimResult) -> f64 {
    let mut lat: Vec<f64> = r.records.iter().map(mmg_serve::RequestRecord::latency_s).collect();
    lat.sort_by(f64::total_cmp);
    mmg_telemetry::quantile_sorted(&lat, 0.99).unwrap_or(0.0)
}

fn mean_batch(r: &SimResult) -> f64 {
    if r.records.is_empty() {
        return 0.0;
    }
    r.records.iter().map(|rec| rec.batch as f64).sum::<f64>() / r.records.len() as f64
}

/// Runs the sweep on the default device context.
#[must_use]
pub fn run(spec: &DeviceSpec) -> ServeSweepResult {
    run_ctx(&ExecContext::shared(spec.clone()))
}

/// [`run`] against an explicit [`ExecContext`] (worker registry + memo).
#[must_use]
pub fn run_ctx(ctx: &ExecContext) -> ServeSweepResult {
    let profiler = ctx.profiler(AttnImpl::Flash);
    let mix = RequestMix::parse(MIX).expect("the built-in mix parses");
    let models: Vec<ModelId> = mix.models().collect();
    let batches: Vec<usize> = (0..).map(|i| 1 << i).take_while(|&b| b <= MAX_BATCH).collect();
    let factors: Vec<(ModelId, f64)> =
        models.iter().map(|&m| (m, pod_factor(&profiler, m))).collect();
    let profile = ServiceProfile::from_profiler(&profiler, &models, &batches)
        .with_pod_factors(&factors);
    let mean_service_s = profile.mean_base_s(&mix);
    // The optimized deployment: every kernel-graph pass plus the
    // distilled sampler, same batch grid and pod factors. The OptConfig
    // participates in memo keys, so both profiles share ctx.memo.
    let opt_profiler = ctx.profiler_opt(AttnImpl::Flash, mmg_graph::OptConfig::all());
    let opt_profile = ServiceProfile::from_profiler_sampled(
        &opt_profiler,
        &models,
        &batches,
        Some(super::optimize::SAMPLER_STEPS),
    )
    .with_pod_factors(&factors);
    let opt_mean_service_s = opt_profile.mean_base_s(&mix);

    let schedulers = [
        SchedulerKind::Fifo,
        SchedulerKind::Static { batch: MAX_BATCH / 2, wait_s: 0.5 },
        SchedulerKind::Dynamic { max_batch: MAX_BATCH },
        SchedulerKind::Pods { max_batch: MAX_BATCH },
    ];
    let mut cells = Vec::with_capacity(schedulers.len() * UTILIZATIONS.len());
    for scheduler in schedulers {
        for utilization in UTILIZATIONS {
            let offered_rps = utilization * GPUS as f64 / mean_service_s;
            let cfg = ScenarioCfg::new(
                GPUS,
                mix.clone(),
                mmg_serve::ArrivalProcess::poisson(offered_rps),
                scheduler,
                SloSpec::ServiceMultiple(SLO_MULTIPLE),
                DURATION_S,
                SEED,
            );
            let r = simulate(&cfg, &profile, &ctx.registry);
            // Same offered stream and deadline policy, served on the
            // optimized curves: the capacity headroom the passes buy.
            let opt_r = simulate(&cfg, &opt_profile, &ctx.registry);
            cells.push(ServeSweepCell {
                scheduler: scheduler.name().to_string(),
                utilization,
                offered_rps,
                throughput_rps: r.throughput_rps(),
                goodput_rps: r.goodput_rps(),
                opt_goodput_rps: opt_r.goodput_rps(),
                slo_attainment: r.slo_attainment(),
                p99_s: p99_latency(&r),
                mean_batch: mean_batch(&r),
                measured_utilization: r.utilization(),
            });
        }
    }
    ServeSweepResult {
        gpus: GPUS,
        mix: MIX.to_string(),
        slo_multiple: SLO_MULTIPLE,
        mean_service_s,
        opt_mean_service_s,
        pod_factors: factors
            .iter()
            .map(|&(m, f)| (model_short_name(m).to_string(), f))
            .collect(),
        cells,
    }
}

/// One aggregated (scheduler, utilization) cell of a replicated sweep:
/// statistics pooled across all replication seeds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplicatedCell {
    /// Scheduler name.
    pub scheduler: String,
    /// Offered utilization target.
    pub utilization: f64,
    /// Offered arrival rate, requests/s (same for every seed).
    pub offered_rps: f64,
    /// Seeds pooled into this cell.
    pub replications: u64,
    /// Mean completed requests/s across seeds.
    pub mean_throughput_rps: f64,
    /// Mean on-time requests/s across seeds.
    pub mean_goodput_rps: f64,
    /// Pooled SLO attainment: total on-time over total completed.
    pub slo_attainment: f64,
    /// 99th-percentile latency from the seeds' merged quantile sketches
    /// (rank error bounded by [`mmg_serve::LATENCY_SKETCH_EPS`]).
    pub p99_s: f64,
    /// Pooled mean served batch size.
    pub mean_batch: f64,
    /// Mean measured GPU-time utilization across seeds.
    pub mean_measured_utilization: f64,
}

/// Replicated serving sweep: the scheduler × utilization grid run at
/// `replications` seeds each, in parallel, deterministically merged.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplicatedSweepResult {
    /// Cluster size.
    pub gpus: usize,
    /// Request mix, `model:weight` list.
    pub mix: String,
    /// Deadline multiple of batch-1 service time.
    pub slo_multiple: f64,
    /// Seeds per cell.
    pub replications: u64,
    /// First seed; cell `k` of a grid point uses `base_seed + k`.
    pub base_seed: u64,
    /// Aggregated cells, scheduler-major in [`UTILIZATIONS`] order.
    pub cells: Vec<ReplicatedCell>,
}

impl ReplicatedSweepResult {
    /// The aggregated cell for a scheduler at an offered utilization.
    #[must_use]
    pub fn cell(&self, scheduler: &str, utilization: f64) -> Option<&ReplicatedCell> {
        self.cells
            .iter()
            .find(|c| c.scheduler == scheduler && (c.utilization - utilization).abs() < 1e-9)
    }
}

/// Runs the scheduler × utilization grid at `replications` seeds per
/// cell on the [`run_cells_with`] worker pool. Every (scheduler,
/// utilization, seed) triple is one independent streaming-mode DES run
/// on its own registry; outputs and telemetry merge in grid order, so
/// the result — and the merged counter totals — are byte-identical for
/// every `jobs` value. Per-seed latency sketches are merged per grid
/// point, so pooled quantiles keep the documented rank-error bound.
#[must_use]
pub fn run_replicated(
    spec: &DeviceSpec,
    replications: u64,
    base_seed: u64,
    jobs: usize,
    memo: &Arc<CostMemo>,
    target: &Registry,
) -> ReplicatedSweepResult {
    // Profile once up front on its own registry, merged before any
    // cell's telemetry — same order a serial run would record in.
    let profiled =
        super::serve_common::profile_mix(spec, memo, target, MIX, MAX_BATCH, true);
    let (mix, profile) = (profiled.mix, profiled.profile);
    let mean_service_s = profiled.mean_base_s;

    let schedulers = [
        SchedulerKind::Fifo,
        SchedulerKind::Static { batch: MAX_BATCH / 2, wait_s: 0.5 },
        SchedulerKind::Dynamic { max_batch: MAX_BATCH },
        SchedulerKind::Pods { max_batch: MAX_BATCH },
    ];
    let mut keys: Vec<(SchedulerKind, f64)> = Vec::new();
    for scheduler in schedulers {
        for utilization in UTILIZATIONS {
            keys.push((scheduler, utilization));
        }
    }
    let grid: Vec<((SchedulerKind, f64), u64)> =
        super::serve_common::replicated_grid(&keys, replications, base_seed);

    struct SeedRun {
        completed: u64,
        on_time: u64,
        batch_sum: u64,
        throughput_rps: f64,
        goodput_rps: f64,
        measured_utilization: f64,
        sketch: QuantileSketch,
    }

    let runs: Vec<SeedRun> = run_cells_with(grid.len(), spec, jobs, memo, target, |i, ctx| {
        let ((scheduler, utilization), seed) = grid[i];
        let offered_rps = utilization * GPUS as f64 / mean_service_s;
        let mut cfg = ScenarioCfg::new(
            GPUS,
            mix.clone(),
            mmg_serve::ArrivalProcess::poisson(offered_rps),
            scheduler,
            SloSpec::ServiceMultiple(SLO_MULTIPLE),
            DURATION_S,
            seed,
        );
        cfg.full_records = false;
        let r = simulate(&cfg, &profile, &ctx.registry);
        SeedRun {
            completed: r.stats.completed,
            on_time: r.stats.on_time,
            batch_sum: r.stats.batch_sum,
            throughput_rps: r.throughput_rps(),
            goodput_rps: r.goodput_rps(),
            measured_utilization: r.utilization(),
            sketch: r.stats.latency_sketch.clone(),
        }
    });

    let reps = replications as usize;
    let cells = runs
        .chunks(reps)
        .zip(keys.iter())
        .map(|(chunk, &(scheduler, utilization))| {
            let offered_rps = utilization * GPUS as f64 / mean_service_s;
            let completed: u64 = chunk.iter().map(|r| r.completed).sum();
            let on_time: u64 = chunk.iter().map(|r| r.on_time).sum();
            let batch_sum: u64 = chunk.iter().map(|r| r.batch_sum).sum();
            let mut pooled = QuantileSketch::new(mmg_serve::LATENCY_SKETCH_EPS);
            for r in chunk {
                pooled.merge(&r.sketch);
            }
            let n = chunk.len() as f64;
            ReplicatedCell {
                scheduler: scheduler.name().to_string(),
                utilization,
                offered_rps,
                replications,
                mean_throughput_rps: chunk.iter().map(|r| r.throughput_rps).sum::<f64>() / n,
                mean_goodput_rps: chunk.iter().map(|r| r.goodput_rps).sum::<f64>() / n,
                slo_attainment: if completed == 0 {
                    1.0
                } else {
                    on_time as f64 / completed as f64
                },
                p99_s: pooled.quantile(0.99).unwrap_or(0.0),
                mean_batch: if completed == 0 {
                    0.0
                } else {
                    batch_sum as f64 / completed as f64
                },
                mean_measured_utilization: chunk
                    .iter()
                    .map(|r| r.measured_utilization)
                    .sum::<f64>()
                    / n,
            }
        })
        .collect();

    ReplicatedSweepResult {
        gpus: GPUS,
        mix: MIX.to_string(),
        slo_multiple: SLO_MULTIPLE,
        replications,
        base_seed,
        cells,
    }
}

/// Renders the replicated scheduler × utilization sweep.
#[must_use]
pub fn render_replicated(r: &ReplicatedSweepResult) -> String {
    let rows: Vec<(String, Vec<String>)> = r
        .cells
        .iter()
        .map(|c| {
            (
                format!("{}@{:.2}", c.scheduler, c.utilization),
                vec![
                    format!("{:.2}/s", c.offered_rps),
                    format!("{:.2}/s", c.mean_throughput_rps),
                    format!("{:.2}/s", c.mean_goodput_rps),
                    format!("{:.0}%", c.slo_attainment * 100.0),
                    format!("{:.2} s", c.p99_s),
                    format!("{:.1}", c.mean_batch),
                    format!("{:.0}%", c.mean_measured_utilization * 100.0),
                ],
            )
        })
        .collect();
    format!(
        "Extension — replicated serving sweep ({} GPUs, mix {}, SLO {}x service, {} seeds from {})\n{}",
        r.gpus,
        r.mix,
        r.slo_multiple,
        r.replications,
        r.base_seed,
        render_table(
            &["Scheduler@util", "Offered", "Throughput", "Goodput", "SLO attain", "p99", "Mean batch", "GPU busy"],
            &rows
        )
    )
}

/// Renders the scheduler × utilization sweep.
#[must_use]
pub fn render(r: &ServeSweepResult) -> String {
    let rows: Vec<(String, Vec<String>)> = r
        .cells
        .iter()
        .map(|c| {
            (
                format!("{}@{:.2}", c.scheduler, c.utilization),
                vec![
                    format!("{:.2}/s", c.offered_rps),
                    format!("{:.2}/s", c.throughput_rps),
                    format!("{:.2}/s", c.goodput_rps),
                    format!("{:.2}/s", c.opt_goodput_rps),
                    format!("{:.0}%", c.slo_attainment * 100.0),
                    format!("{:.2} s", c.p99_s),
                    format!("{:.1}", c.mean_batch),
                    format!("{:.0}%", c.measured_utilization * 100.0),
                ],
            )
        })
        .collect();
    let factors = r
        .pod_factors
        .iter()
        .map(|(m, f)| format!("{m} {f:.2}x"))
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "Extension — serving-cluster scheduler sweep ({} GPUs, mix {}, SLO {}x service)\npod factors: {factors}\nbatch-1 service: {:.3}s eager, {:.3}s optimized\n{}",
        r.gpus,
        r.mix,
        r.slo_multiple,
        r.mean_service_s,
        r.opt_mean_service_s,
        render_table(
            &["Scheduler@util", "Offered", "Throughput", "Goodput", "Opt goodput", "SLO attain", "p99", "Mean batch", "GPU busy"],
            &rows
        )
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn result() -> &'static ServeSweepResult {
        static RESULT: OnceLock<ServeSweepResult> = OnceLock::new();
        RESULT.get_or_init(|| run(&DeviceSpec::a100_80gb()))
    }

    #[test]
    fn covers_the_full_grid() {
        let r = result();
        assert_eq!(r.cells.len(), 4 * UTILIZATIONS.len());
        for s in ["fifo", "static", "dynamic", "pods"] {
            for u in UTILIZATIONS {
                assert!(r.cell(s, u).is_some(), "{s}@{u}");
            }
        }
    }

    #[test]
    fn dynamic_beats_fifo_on_goodput_at_load() {
        // The acceptance bar: at ≥0.8 offered utilization the
        // deadline-aware batcher must out-serve one-at-a-time FIFO.
        let r = result();
        for u in [0.8, 0.95] {
            let fifo = r.cell("fifo", u).unwrap();
            let dynamic = r.cell("dynamic", u).unwrap();
            assert!(
                dynamic.goodput_rps > fifo.goodput_rps,
                "util {u}: dynamic {} vs fifo {}",
                dynamic.goodput_rps,
                fifo.goodput_rps
            );
        }
    }

    #[test]
    fn optimized_curves_raise_goodput_at_load() {
        // The acceptance bar: at ≥0.8 offered utilization the optimized
        // service curves (all passes + distilled sampler) must serve
        // strictly more on-time requests than the eager curves.
        let r = result();
        assert!(
            r.opt_mean_service_s < r.mean_service_s,
            "optimized mean service {} vs eager {}",
            r.opt_mean_service_s,
            r.mean_service_s
        );
        for s in ["fifo", "dynamic"] {
            for u in [0.8, 0.95] {
                let c = r.cell(s, u).unwrap();
                assert!(
                    c.opt_goodput_rps > c.goodput_rps,
                    "{s}@{u}: opt {} vs eager {}",
                    c.opt_goodput_rps,
                    c.goodput_rps
                );
            }
        }
    }

    #[test]
    fn pods_factor_exceeds_one_for_diffusion() {
        let r = result();
        let sd = r.pod_factors.iter().find(|(m, _)| m == "sd").unwrap();
        assert!(sd.1 > 1.1, "SD pod factor {}", sd.1);
    }

    #[test]
    fn light_load_is_mostly_on_time() {
        let r = result();
        for s in ["fifo", "dynamic", "pods"] {
            let c = r.cell(s, 0.5).unwrap();
            assert!(c.slo_attainment > 0.8, "{s}@0.5 attainment {}", c.slo_attainment);
        }
    }

    #[test]
    fn renders() {
        let out = render(result());
        assert!(out.contains("scheduler sweep") && out.contains("dynamic@0.95"));
    }

    #[test]
    fn replicated_sweep_is_identical_across_job_counts() {
        let spec = DeviceSpec::a100_80gb();
        let run_with = |jobs: usize| {
            let target = Registry::new();
            let r = run_replicated(&spec, 2, 42, jobs, &crate::engine::global_memo(), &target);
            (r, target.counters_snapshot().values().to_vec())
        };
        let serial = run_with(1);
        for jobs in [2, 8] {
            let parallel = run_with(jobs);
            assert_eq!(serial.0, parallel.0, "results diverged at jobs={jobs}");
            assert_eq!(serial.1, parallel.1, "counters diverged at jobs={jobs}");
        }
        // Sanity on the aggregation itself.
        assert_eq!(serial.0.cells.len(), 4 * UTILIZATIONS.len());
        for c in &serial.0.cells {
            assert_eq!(c.replications, 2);
            assert!(c.mean_goodput_rps <= c.mean_throughput_rps + 1e-12);
            assert!((0.0..=1.0).contains(&c.slo_attainment));
        }
        // Replication changes the seed set, so pooled numbers differ
        // from any single-seed run but stay in the same regime as the
        // classic sweep.
        let classic = result();
        let rep = serial.0.cell("dynamic", 0.8).unwrap();
        let one = classic.cell("dynamic", 0.8).unwrap();
        assert!(
            (rep.mean_throughput_rps - one.throughput_rps).abs() < 0.5 * one.throughput_rps,
            "replicated {} vs classic {}",
            rep.mean_throughput_rps,
            one.throughput_rps
        );
    }
}
