//! Extension — serving timeline: utilization and tail latency *over
//! time* for FIFO vs dynamic batching.
//!
//! The scheduler sweep (`serve-sweep`) reports end-of-run aggregates;
//! this experiment shows *when* the schedulers diverge. Both schedulers
//! serve the same mixed SD + Parti stream offered at 1.25× the
//! cluster's batch-1 capacity, and the `mmg-flight` recorder splits the
//! run into fixed windows of simulated time. Each window keeps
//! completion counts, on-time counts, per-GPU busy seconds, a
//! queue-depth integral, and a latency quantile sketch — all
//! [`WindowedSeries`]-mergeable, so the per-seed timelines produced on
//! the [`run_cells_with`] worker pool fold into one pooled timeline
//! that is byte-identical for every `--jobs` value.
//!
//! The expected shape (and what the tests pin): FIFO is past
//! saturation, so its queue depth ratchets upward window after window
//! while p99 climbs without bound; the dynamic batcher amortizes
//! per-request GPU time across the batch and holds a bounded queue.
//! The end-of-run averages hide this — the timeline is where the
//! divergence lives.

use std::sync::Arc;

use mmg_gpu::DeviceSpec;
use mmg_profiler::report::render_table;
use mmg_profiler::CostMemo;
use mmg_serve::{
    simulate_recorded, ArrivalProcess, FlightCfg, ScenarioCfg, SchedulerKind, ServeWindow, SloSpec,
};
use mmg_telemetry::{Registry, WindowedSeries};

use crate::engine::{global_memo, run_cells_with, ExecContext};
use serde::{Deserialize, Serialize};

/// GPUs in the simulated cluster (matches `serve-sweep`).
pub const GPUS: usize = 4;
/// Request mix (matches `serve-sweep` and the CLI default).
pub const MIX: &str = "sd:8,parti:2";
/// Offered load relative to the cluster's *batch-1* capacity. Above
/// 1.0 the FIFO scheduler is saturated and its backlog ratchets, while
/// the dynamic batcher still has headroom (batching cuts per-request
/// GPU time well below the batch-1 cost) — the regime where the
/// timelines diverge.
pub const UTILIZATION: f64 = 1.25;
/// Deadline as a multiple of batch-1 service time.
pub const SLO_MULTIPLE: f64 = 4.0;
/// Simulated seconds of arrivals per seed.
pub const DURATION_S: f64 = 240.0;
/// Timeline window width, simulated seconds.
pub const WINDOW_S: f64 = 20.0;
/// Seeds pooled per scheduler.
pub const REPLICATIONS: u64 = 2;
/// First seed; replication `k` uses `BASE_SEED + k`.
pub const BASE_SEED: u64 = 42;
/// Batch cap for the dynamic scheduler.
const MAX_BATCH: usize = 16;
/// Window-ring capacity: enough for the horizon plus drain without
/// folding (240 s / 20 s = 12 windows, plus drain slack).
const MAX_WINDOWS: usize = 64;

/// One timeline window of one scheduler's pooled run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimelineWindow {
    /// Window start, simulated seconds.
    pub start_s: f64,
    /// Window end, simulated seconds.
    pub end_s: f64,
    /// Mean completions/s in the window (per seed).
    pub throughput_rps: f64,
    /// Mean on-time completions/s in the window (per seed).
    pub goodput_rps: f64,
    /// SLO attainment among the window's completions (1.0 when none).
    pub slo_attainment: f64,
    /// 99th-percentile latency of the window's completions, seconds
    /// (0 when the window completed nothing).
    pub p99_s: f64,
    /// Mean cluster GPU-time utilization in the window.
    pub utilization: f64,
    /// Time-average requests in the system during the window (per seed).
    pub queue_depth: f64,
}

/// The pooled timeline for one scheduler.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchedulerTimeline {
    /// Scheduler name (`fifo` | `dynamic`).
    pub scheduler: String,
    /// Windows in time order.
    pub windows: Vec<TimelineWindow>,
}

impl SchedulerTimeline {
    /// Cumulative on-time completions/s·window over the whole timeline —
    /// the integral the divergence narrative is about.
    #[must_use]
    pub fn total_goodput(&self) -> f64 {
        self.windows.iter().map(|w| w.goodput_rps * (w.end_s - w.start_s)).sum()
    }
}

/// Serve-timeline result: FIFO vs dynamic, pooled over seeds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeTimelineResult {
    /// Cluster size.
    pub gpus: usize,
    /// Request mix, `model:weight` list.
    pub mix: String,
    /// Offered utilization target.
    pub utilization: f64,
    /// Offered arrival rate, requests/s.
    pub offered_rps: f64,
    /// Window width, simulated seconds.
    pub window_s: f64,
    /// Seeds pooled per scheduler.
    pub replications: u64,
    /// Per-scheduler timelines, [`SchedulerKind::Fifo`] first.
    pub timelines: Vec<SchedulerTimeline>,
}

impl ServeTimelineResult {
    /// The timeline for a scheduler by name.
    #[must_use]
    pub fn timeline(&self, scheduler: &str) -> Option<&SchedulerTimeline> {
        self.timelines.iter().find(|t| t.scheduler == scheduler)
    }
}

fn flatten(series: &WindowedSeries<ServeWindow>, gpus: usize, reps: f64) -> Vec<TimelineWindow> {
    let w_s = series.window_s();
    series
        .iter()
        .map(|(start_s, end_s, win)| TimelineWindow {
            start_s,
            end_s,
            throughput_rps: win.completed as f64 / (w_s * reps),
            goodput_rps: win.on_time as f64 / (w_s * reps),
            slo_attainment: win.slo_attainment(),
            p99_s: win.latency.quantile(0.99).unwrap_or(0.0),
            utilization: win.busy_per_gpu_s.iter().sum::<f64>() / (gpus as f64 * w_s * reps),
            queue_depth: win.depth_time_s / (w_s * reps),
        })
        .collect()
}

/// Runs the timeline on the default device with one worker.
#[must_use]
pub fn run(spec: &DeviceSpec) -> ServeTimelineResult {
    run_jobs(spec, 1, &global_memo(), &Registry::new())
}

/// [`run`] against an explicit [`ExecContext`] (dispatch entry point;
/// cells still run on isolated registries merged into `ctx.registry`).
#[must_use]
pub fn run_ctx(ctx: &ExecContext) -> ServeTimelineResult {
    run_jobs(&ctx.spec, 1, &ctx.memo, &ctx.registry)
}

/// Runs the (scheduler × seed) grid on the [`run_cells_with`] worker
/// pool and merges the per-seed [`WindowedSeries`] timelines in grid
/// order. The result — including every merged sketch — is identical for
/// every `jobs` value.
#[must_use]
pub fn run_jobs(
    spec: &DeviceSpec,
    jobs: usize,
    memo: &Arc<CostMemo>,
    target: &Registry,
) -> ServeTimelineResult {
    // Profile once up front (same pattern as the replicated sweep).
    let profiled =
        super::serve_common::profile_mix(spec, memo, target, MIX, MAX_BATCH, false);
    let (mix, profile) = (profiled.mix, profiled.profile);
    let offered_rps = UTILIZATION * GPUS as f64 / profiled.mean_base_s;

    let schedulers = [SchedulerKind::Fifo, SchedulerKind::Dynamic { max_batch: MAX_BATCH }];
    let grid: Vec<(SchedulerKind, u64)> =
        super::serve_common::replicated_grid(&schedulers, REPLICATIONS, BASE_SEED);

    let series: Vec<WindowedSeries<ServeWindow>> =
        run_cells_with(grid.len(), spec, jobs, memo, target, |i, cell_ctx| {
            let (scheduler, seed) = grid[i];
            let mut cfg = ScenarioCfg::new(
                GPUS,
                mix.clone(),
                ArrivalProcess::poisson(offered_rps),
                scheduler,
                SloSpec::ServiceMultiple(SLO_MULTIPLE),
                DURATION_S,
                seed,
            );
            cfg.full_records = false;
            let (_result, flight) = simulate_recorded(
                &cfg,
                &profile,
                &cell_ctx.registry,
                FlightCfg { window_s: WINDOW_S, max_windows: MAX_WINDOWS, ..FlightCfg::default() },
            );
            flight.series
        });

    let reps = REPLICATIONS as usize;
    let timelines = series
        .chunks(reps)
        .zip(schedulers)
        .map(|(chunk, scheduler)| {
            let mut pooled = chunk[0].clone();
            for s in &chunk[1..] {
                pooled.merge_from(s);
            }
            SchedulerTimeline {
                scheduler: scheduler.name().to_string(),
                windows: flatten(&pooled, GPUS, reps as f64),
            }
        })
        .collect();

    ServeTimelineResult {
        gpus: GPUS,
        mix: MIX.to_string(),
        utilization: UTILIZATION,
        offered_rps,
        window_s: WINDOW_S,
        replications: REPLICATIONS,
        timelines,
    }
}

/// Renders one table per scheduler plus the divergence summary.
#[must_use]
pub fn render(r: &ServeTimelineResult) -> String {
    let mut out = format!(
        "Extension — serving timeline ({} GPUs, mix {}, {:.2} offered utilization, {} seeds, \
         {:.0}s windows)\n",
        r.gpus, r.mix, r.utilization, r.replications, r.window_s,
    );
    for t in &r.timelines {
        let rows: Vec<(String, Vec<String>)> = t
            .windows
            .iter()
            .map(|w| {
                (
                    format!("[{:.0}s, {:.0}s)", w.start_s, w.end_s),
                    vec![
                        format!("{:.2}/s", w.throughput_rps),
                        format!("{:.2}/s", w.goodput_rps),
                        format!("{:.0}%", w.slo_attainment * 100.0),
                        format!("{:.2} s", w.p99_s),
                        format!("{:.0}%", w.utilization * 100.0),
                        format!("{:.1}", w.queue_depth),
                    ],
                )
            })
            .collect();
        out.push_str(&format!("\nscheduler: {}\n", t.scheduler));
        out.push_str(&render_table(
            &["Window", "Throughput", "Goodput", "SLO attain", "p99", "GPU busy", "Depth"],
            &rows,
        ));
    }
    if let (Some(fifo), Some(dynamic)) = (r.timeline("fifo"), r.timeline("dynamic")) {
        let (f, d) = (fifo.total_goodput(), dynamic.total_goodput());
        out.push_str(&format!(
            "\ncumulative on-time completions (per seed): fifo {f:.0}, dynamic {d:.0} \
             ({:+.0}%)\n",
            if f > 0.0 { (d / f - 1.0) * 100.0 } else { 0.0 },
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn result() -> &'static ServeTimelineResult {
        static RESULT: OnceLock<ServeTimelineResult> = OnceLock::new();
        RESULT.get_or_init(|| run(&DeviceSpec::a100_80gb()))
    }

    #[test]
    fn timeline_covers_the_horizon_for_both_schedulers() {
        let r = result();
        assert_eq!(r.timelines.len(), 2);
        for t in &r.timelines {
            assert!(
                t.windows.len() >= (DURATION_S / WINDOW_S) as usize,
                "{}: {} windows",
                t.scheduler,
                t.windows.len()
            );
            for w in &t.windows {
                assert!(w.goodput_rps <= w.throughput_rps + 1e-12);
                assert!((0.0..=1.0).contains(&w.slo_attainment));
                assert!((0.0..=1.0 + 1e-9).contains(&w.utilization));
                assert!(w.queue_depth >= 0.0);
            }
        }
    }

    #[test]
    fn dynamic_diverges_from_fifo_over_time() {
        let r = result();
        let fifo = r.timeline("fifo").unwrap();
        let dynamic = r.timeline("dynamic").unwrap();
        // The divergence narrative: dynamic wins on cumulative goodput…
        assert!(
            dynamic.total_goodput() > fifo.total_goodput(),
            "dynamic {} vs fifo {}",
            dynamic.total_goodput(),
            fifo.total_goodput()
        );
        // …and FIFO's backlog grows while dynamic's stays bounded: by the
        // last arrival window FIFO's queue depth dwarfs dynamic's.
        let last = (DURATION_S / WINDOW_S) as usize - 1;
        assert!(
            fifo.windows[last].queue_depth > 2.0 * dynamic.windows[last].queue_depth,
            "fifo depth {} vs dynamic {}",
            fifo.windows[last].queue_depth,
            dynamic.windows[last].queue_depth
        );
    }

    #[test]
    fn identical_across_job_counts() {
        let spec = DeviceSpec::a100_80gb();
        let run_with = |jobs: usize| {
            let target = Registry::new();
            let r = run_jobs(&spec, jobs, &global_memo(), &target);
            (r, target.counters_snapshot().values().to_vec())
        };
        let serial = run_with(1);
        for jobs in [2, 4] {
            let parallel = run_with(jobs);
            assert_eq!(serial.0, parallel.0, "results diverged at jobs={jobs}");
            assert_eq!(serial.1, parallel.1, "counters diverged at jobs={jobs}");
        }
    }

    #[test]
    fn renders() {
        let out = render(result());
        assert!(out.contains("serving timeline"));
        assert!(out.contains("scheduler: fifo") && out.contains("scheduler: dynamic"));
        assert!(out.contains("cumulative on-time"));
    }
}
