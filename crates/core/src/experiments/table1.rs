//! Table I — taxonomy of the TTI models (measured from our builders).

use mmg_graph::memory::MemoryClass;
use mmg_models::{suite, ModelId};
use mmg_profiler::report::render_table;
use serde::{Deserialize, Serialize};

/// One taxonomy row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaxonomyRow {
    /// Model name.
    pub model: String,
    /// Architecture class.
    pub arch: String,
    /// Measured parameter count (billions), from the built pipelines.
    pub params_b: f64,
    /// End-to-end FLOPs of one inference (TFLOPs).
    pub tflops: f64,
    /// Arithmetic intensity (FLOPs per weight byte read).
    pub intensity: f64,
    /// Inference memory footprint in GiB (weights + peak activations +
    /// KV cache at FP16).
    pub memory_gib: f64,
    /// Table I's qualitative memory axis.
    pub memory_class: String,
}

/// Table I result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Result {
    /// Rows in suite order.
    pub rows: Vec<TaxonomyRow>,
}

/// Builds the taxonomy from the model builders.
#[must_use]
pub fn run() -> Table1Result {
    let rows = ModelId::ALL
        .iter()
        .map(|&id| {
            let p = suite::build(id);
            TaxonomyRow {
                model: p.name.clone(),
                arch: id.arch().to_string(),
                params_b: p.param_count() as f64 / 1e9,
                tflops: p.total_flops() as f64 / 1e12,
                intensity: p.arithmetic_intensity(),
                memory_gib: p.memory_footprint().total_bytes() as f64 / (1u64 << 30) as f64,
                memory_class: MemoryClass::of(p.memory_footprint().total_bytes()).to_string(),
            }
        })
        .collect();
    Table1Result { rows }
}

/// Renders Table I.
#[must_use]
pub fn render(r: &Table1Result) -> String {
    let rows: Vec<(String, Vec<String>)> = r
        .rows
        .iter()
        .map(|row| {
            (
                row.model.clone(),
                vec![
                    row.arch.clone(),
                    format!("{:.2}B", row.params_b),
                    format!("{:.1}", row.tflops),
                    format!("{:.0}", row.intensity),
                    format!("{:.1} GiB ({})", row.memory_gib, row.memory_class),
                ],
            )
        })
        .collect();
    format!(
        "Table I — model taxonomy (measured from the built pipelines)\n{}",
        render_table(&["Model", "Architecture", "Params", "TFLOPs", "FLOPs/B", "Memory"], &rows)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_whole_suite() {
        let r = run();
        assert_eq!(r.rows.len(), 8);
        for row in &r.rows {
            assert!(row.params_b > 0.1, "{}", row.model);
            assert!(row.tflops > 0.0);
        }
    }

    #[test]
    fn parti_is_largest_tti() {
        let r = run();
        let parti = r.rows.iter().find(|x| x.model == "Parti").unwrap();
        for row in r.rows.iter().filter(|x| x.model != "Parti") {
            assert!(parti.params_b > row.params_b, "Parti vs {}", row.model);
        }
        assert!((14.0..26.0).contains(&parti.params_b));
    }

    #[test]
    fn memory_axis_matches_table_i() {
        // Table I: Parti High, SD Low, Imagen Medium-ish.
        let r = run();
        let get = |m: &str| r.rows.iter().find(|x| x.model == m).unwrap();
        assert_eq!(get("Parti").memory_class, "High");
        assert_eq!(get("StableDiffusion").memory_class, "Low");
        assert!(get("Imagen").memory_gib > get("StableDiffusion").memory_gib);
    }

    #[test]
    fn renders() {
        let s = render(&run());
        assert!(s.contains("StableDiffusion"));
        assert!(s.contains("GiB"));
    }
}
