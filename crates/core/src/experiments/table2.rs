//! Table II — end-to-end Flash Attention speedup per model, and the
//! Section IV-B isolated attention-module speedups.

use mmg_attn::AttnImpl;
use mmg_gpu::DeviceSpec;
use mmg_graph::OpCategory;
use mmg_models::{suite, ModelId};
use mmg_profiler::report::render_table;

use crate::engine::ExecContext;
use serde::{Deserialize, Serialize};

/// Paper-reported Table II values, for the comparison column.
#[must_use]
pub fn paper_speedup(model: &str) -> Option<f64> {
    Some(match model {
        "LLaMA2" => 1.52,
        "Imagen" => 1.22,
        "StableDiffusion" => 1.67,
        "Muse" => 1.11,
        "Parti" => 1.17,
        "ProdImage" => 1.04,
        "MakeAVideo" => 1.06,
        "Phenaki" => 1.15,
        _ => return None,
    })
}

/// One model's speedups.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2Row {
    /// Model name.
    pub model: String,
    /// End-to-end baseline/flash time ratio.
    pub e2e_speedup: f64,
    /// Attention-module-only speedup (the Fig. 6 red-bar comparison).
    pub attention_speedup: f64,
    /// Paper-reported end-to-end value.
    pub paper_e2e: Option<f64>,
}

/// Table II result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2Result {
    /// Rows in suite order.
    pub rows: Vec<Table2Row>,
}

impl Table2Result {
    /// A named row.
    #[must_use]
    pub fn row(&self, model: &str) -> Option<&Table2Row> {
        self.rows.iter().find(|r| r.model == model)
    }
}

/// Profiles the suite under both implementations.
#[must_use]
pub fn run(spec: &DeviceSpec) -> Table2Result {
    run_ctx(&ExecContext::shared(spec.clone()))
}

/// [`run`] against an explicit [`ExecContext`] (worker registry + memo).
#[must_use]
pub fn run_ctx(ctx: &ExecContext) -> Table2Result {
    let base = ctx.profiler(AttnImpl::Baseline);
    let flash = ctx.profiler(AttnImpl::Flash);
    let rows = ModelId::ALL
        .iter()
        .map(|&id| {
            let p = suite::build(id);
            let pb = p.profile(&base);
            let pf = p.profile(&flash);
            let attn = |prof: &mmg_models::PipelineProfile| {
                prof.breakdown().seconds(OpCategory::Attention)
            };
            Table2Row {
                model: p.name.clone(),
                e2e_speedup: pb.total_time_s() / pf.total_time_s(),
                attention_speedup: attn(&pb) / attn(&pf).max(1e-12),
                paper_e2e: paper_speedup(&p.name),
            }
        })
        .collect();
    Table2Result { rows }
}

/// Renders Table II.
#[must_use]
pub fn render(r: &Table2Result) -> String {
    let rows: Vec<(String, Vec<String>)> = r
        .rows
        .iter()
        .map(|row| {
            (
                row.model.clone(),
                vec![
                    format!("{:.2}x", row.e2e_speedup),
                    row.paper_e2e.map_or("-".into(), |v| format!("{v:.2}x")),
                    format!("{:.2}x", row.attention_speedup),
                ],
            )
        })
        .collect();
    format!(
        "Table II — Flash Attention speedup (end-to-end) + attention-module speedup\n{}",
        render_table(&["Model", "E2E (measured)", "E2E (paper)", "Attn module"], &rows)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> Table2Result {
        run(&DeviceSpec::a100_80gb())
    }

    #[test]
    fn speedups_in_paper_band() {
        // Paper: 4%–67% end-to-end benefit across the suite.
        for row in &result().rows {
            assert!(
                (0.98..2.0).contains(&row.e2e_speedup),
                "{}: {}",
                row.model,
                row.e2e_speedup
            );
        }
    }

    #[test]
    fn stable_diffusion_gains_most_prod_least() {
        let r = result();
        let sd = r.row("StableDiffusion").unwrap().e2e_speedup;
        for row in &r.rows {
            assert!(sd >= row.e2e_speedup - 1e-9, "{} beats SD", row.model);
        }
        let prod = r.row("ProdImage").unwrap().e2e_speedup;
        assert!(prod < 1.10, "ProdImage {prod}");
    }

    #[test]
    fn measured_close_to_paper() {
        // Shape fidelity: within 0.3x absolute of every Table II entry
        // except LLaMA (see EXPERIMENTS.md for the documented gap).
        for row in &result().rows {
            if row.model == "LLaMA2" {
                continue;
            }
            let paper = row.paper_e2e.unwrap();
            assert!(
                (row.e2e_speedup - paper).abs() < 0.3,
                "{}: measured {} vs paper {}",
                row.model,
                row.e2e_speedup,
                paper
            );
        }
    }

    #[test]
    fn diffusion_attention_module_speedup_exceeds_transformer_tti() {
        // Section IV-B: 1.1–2.5x greater attention-module speedup for
        // diffusion than transformer TTI.
        let r = result();
        let sd = r.row("StableDiffusion").unwrap().attention_speedup;
        for name in ["Muse", "Parti"] {
            let t = r.row(name).unwrap().attention_speedup;
            assert!(sd > 1.1 * t, "SD {sd} vs {name} {t}");
        }
    }

    #[test]
    fn renders_with_paper_column() {
        let s = render(&result());
        assert!(s.contains("1.67x"), "paper SD value shown");
    }
}
