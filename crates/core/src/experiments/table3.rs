//! Table III — how LLM prefill/decode maps onto TTI architectures,
//! verified against the built graphs rather than merely restated.

use mmg_models::{suite, ModelId};
use mmg_profiler::report::render_table;
use serde::{Deserialize, Serialize};

/// One correspondence row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table3Row {
    /// Model class.
    pub class: String,
    /// What corresponds to prefill.
    pub prefill: String,
    /// What corresponds to decode.
    pub decode: String,
    /// Measured evidence: maximum query length over the model's attention
    /// calls (prefill-like ⇒ large; decode-like ⇒ 1).
    pub max_query_len: usize,
    /// Minimum query length.
    pub min_query_len: usize,
}

/// Table III result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table3Result {
    /// The three classes.
    pub rows: Vec<Table3Row>,
}

fn query_lens(id: ModelId) -> (usize, usize) {
    let p = suite::build(id);
    let mut min = usize::MAX;
    let mut max = 0;
    for s in &p.stages {
        for n in s.graph.attention_nodes() {
            let (shape, _) = n.op.attention_shape().expect("attention node");
            min = min.min(shape.seq_q);
            max = max.max(shape.seq_q);
        }
    }
    (min, max)
}

/// Builds the correspondence with measured evidence.
#[must_use]
pub fn run() -> Table3Result {
    let (llm_min, llm_max) = query_lens(ModelId::Llama2);
    let (sd_min, sd_max) = query_lens(ModelId::StableDiffusion);
    let (parti_min, parti_max) = query_lens(ModelId::Parti);
    Table3Result {
        rows: vec![
            Table3Row {
                class: "LLM".into(),
                prefill: "1st token (whole prompt)".into(),
                decode: "2nd token onward (1×N queries)".into(),
                max_query_len: llm_max,
                min_query_len: llm_min,
            },
            Table3Row {
                class: "Diffusion-based".into(),
                prefill: "all pixels generated at once each step".into(),
                decode: "N/A".into(),
                max_query_len: sd_max,
                min_query_len: sd_min,
            },
            Table3Row {
                class: "Transformer-based".into(),
                prefill: "process text prompt".into(),
                decode: "each image token autoregressively".into(),
                max_query_len: parti_max,
                min_query_len: parti_min,
            },
        ],
    }
}

/// Renders Table III.
#[must_use]
pub fn render(r: &Table3Result) -> String {
    let rows: Vec<(String, Vec<String>)> = r
        .rows
        .iter()
        .map(|row| {
            (
                row.class.clone(),
                vec![
                    row.prefill.clone(),
                    row.decode.clone(),
                    format!("{}..{}", row.min_query_len, row.max_query_len),
                ],
            )
        })
        .collect();
    format!(
        "Table III — prefill/decode correspondence (query-length evidence from the graphs)\n{}",
        render_table(&["Class", "Prefill analogue", "Decode analogue", "Query lens"], &rows)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diffusion_never_decodes() {
        let r = run();
        let sd = &r.rows[1];
        assert!(sd.min_query_len > 1, "diffusion attention is always prefill-like");
    }

    #[test]
    fn transformer_tti_decodes() {
        let r = run();
        let parti = &r.rows[2];
        assert_eq!(parti.min_query_len, 1, "autoregressive 1-token queries");
        assert!(parti.max_query_len > 1, "its encoder is prefill-like");
    }

    #[test]
    fn llm_has_both_phases() {
        let r = run();
        let llm = &r.rows[0];
        assert_eq!(llm.min_query_len, 1);
        assert!(llm.max_query_len >= 2048);
    }

    #[test]
    fn renders() {
        assert!(render(&run()).contains("Diffusion-based"));
    }
}
