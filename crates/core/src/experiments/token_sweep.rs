//! Extension — token-level autoregressive serving sweep on the
//! `mmg-serve::token` engine.
//!
//! The paper's autoregressive models (LLaMA text, Parti image tokens)
//! decode one step at a time, so the serving-relevant unit is the
//! *iteration*, not the request. This experiment sweeps the two
//! token-granularity batching disciplines across offered utilizations
//! and KV-cache budgets on a profiler-grounded LLaMA decode curve
//! ([`TokenServiceCurve::from_profiler`]):
//!
//! * `static` — request-level batching: a batch is admitted only when
//!   the GPU is idle and runs to completion, so slots freed by short
//!   sequences idle until the longest member finishes;
//! * `continuous` — iteration-level (Orca/vLLM-style) batching:
//!   sequences join and leave the running batch at every decode
//!   iteration, with chunked prefill interleaved into decode steps.
//!
//! The second axis is the KV-cache budget: shrinking it below the
//! working set pushes the engine into preemption-and-recompute, and
//! goodput falls off a cliff while the preemption counter climbs —
//! the capacity analogue of the paper's memory-bound decode argument.

use mmg_attn::AttnImpl;
use mmg_gpu::DeviceSpec;
use mmg_models::ModelId;
use mmg_profiler::report::render_table;
use mmg_serve::{
    simulate_token, ArrivalProcess, KvAdmission, KvLedger, LengthDist, PhasePriority,
    TokenBatching, TokenScenarioCfg, TokenServiceCurve, TokenSlo, GIB,
};

use crate::engine::ExecContext;
use serde::{Deserialize, Serialize};

/// GPUs in the simulated token-serving cluster.
pub const GPUS: usize = 2;
/// Batch cap for both disciplines.
pub const MAX_BATCH: usize = 16;
/// Prefill chunk size, tokens per iteration slice.
pub const CHUNK_TOKENS: usize = 256;
/// Offered utilizations swept at the ample (default) KV budget.
pub const UTILIZATIONS: [f64; 3] = [0.5, 0.8, 0.95];
/// Constrained per-GPU KV budgets (GiB) swept at
/// [`KV_SWEEP_UTILIZATION`] under continuous batching.
pub const KV_BUDGETS_GIB: [f64; 2] = [1.0, 0.5];
/// Utilization the KV-budget axis is swept at.
pub const KV_SWEEP_UTILIZATION: f64 = 0.9;
/// Median prompt length, tokens.
pub const PROMPT_MEDIAN: f64 = 512.0;
/// Median output length, tokens.
pub const OUTPUT_MEDIAN: f64 = 128.0;
/// Lognormal spread of both length distributions.
const SIGMA: f64 = 0.3;
/// Simulated seconds of arrivals per cell (the run drains afterwards).
const DURATION_S: f64 = 150.0;
/// Fixed seed: one sample path per cell, reproducible everywhere.
const SEED: u64 = 42;

/// One (scheduler, utilization, KV budget) cell of the sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TokenSweepCell {
    /// Batching discipline (`static` | `continuous`).
    pub scheduler: String,
    /// Offered utilization target (fraction of batch-cap capacity).
    pub utilization: f64,
    /// Per-GPU KV budget, GiB.
    pub kv_budget_gib: f64,
    /// Whether this cell uses the SKU-default budget (HBM − weights).
    pub default_budget: bool,
    /// Offered arrival rate, requests/s.
    pub offered_rps: f64,
    /// Completed requests/s over the run.
    pub throughput_rps: f64,
    /// Completed-within-SLO (TTFT and TPOT) requests/s over the run.
    pub goodput_rps: f64,
    /// Fraction of completions that met both SLO bounds.
    pub slo_attainment: f64,
    /// 95th-percentile time-to-first-token, seconds.
    pub p95_ttft_s: f64,
    /// 95th-percentile time-per-output-token, seconds.
    pub p95_tpot_s: f64,
    /// Mean decode batch size over decode-carrying iterations.
    pub mean_decode_batch: f64,
    /// Sequences evicted for recompute (summed over GPUs).
    pub preemptions: u64,
    /// Arrivals dropped because they could never fit the budget.
    pub dropped: u64,
    /// Measured GPU-time utilization.
    pub measured_utilization: f64,
}

/// Token-serving sweep result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TokenSweepResult {
    /// Cluster size.
    pub gpus: usize,
    /// The model served (short name).
    pub model: String,
    /// Median prompt length, tokens.
    pub prompt_median: f64,
    /// Median output length, tokens.
    pub output_median: f64,
    /// TTFT SLO bound, seconds (derived from the curve).
    pub ttft_slo_s: f64,
    /// TPOT SLO bound, seconds (derived from the curve).
    pub tpot_slo_s: f64,
    /// The SKU-default per-GPU KV budget (HBM − weights), GiB.
    pub default_budget_gib: f64,
    /// KV bytes per token of the served model.
    pub kv_bytes_per_token: u64,
    /// Sweep cells: the scheduler × utilization grid at the default
    /// budget, then the constrained-budget axis.
    pub cells: Vec<TokenSweepCell>,
}

impl TokenSweepResult {
    /// The default-budget cell for a scheduler at an offered utilization.
    #[must_use]
    pub fn cell(&self, scheduler: &str, utilization: f64) -> Option<&TokenSweepCell> {
        self.cells.iter().find(|c| {
            c.scheduler == scheduler
                && c.default_budget
                && (c.utilization - utilization).abs() < 1e-9
        })
    }

    /// The constrained-budget cell closest to `budget_gib`.
    #[must_use]
    pub fn kv_cell(&self, budget_gib: f64) -> Option<&TokenSweepCell> {
        self.cells
            .iter()
            .find(|c| !c.default_budget && (c.kv_budget_gib - budget_gib).abs() < 1e-9)
    }
}

/// Runs the sweep on the default device context.
#[must_use]
pub fn run(spec: &DeviceSpec) -> TokenSweepResult {
    run_ctx(&ExecContext::shared(spec.clone()))
}

/// [`run`] against an explicit [`ExecContext`] (worker registry + memo).
#[must_use]
pub fn run_ctx(ctx: &ExecContext) -> TokenSweepResult {
    let profiler = ctx.profiler(AttnImpl::Flash);
    let curve = TokenServiceCurve::from_profiler(&profiler, ModelId::Llama2);
    let default_budget = KvLedger::default_budget(&ctx.spec, curve.weight_bytes);
    let prompt = LengthDist::new(PROMPT_MEDIAN, SIGMA, 16, 4096);
    let output = LengthDist::new(OUTPUT_MEDIAN, SIGMA, 4, 1024);
    let slo = TokenSlo::from_curve(&curve, prompt.mean(), output.mean(), MAX_BATCH);
    let request_gpu_s = curve.request_gpu_s(prompt.mean(), output.mean(), MAX_BATCH);

    let run_cell = |batching: TokenBatching, utilization: f64, budget: u64, default: bool| {
        let offered_rps = utilization * GPUS as f64 / request_gpu_s;
        let cfg = TokenScenarioCfg {
            gpus: GPUS,
            model: ModelId::Llama2,
            arrival: ArrivalProcess::poisson(offered_rps),
            batching,
            priority: PhasePriority::Decode,
            admission: KvAdmission::Prompt,
            chunk_tokens: CHUNK_TOKENS,
            prompt,
            output,
            slo,
            duration_s: DURATION_S,
            max_requests: None,
            seed: SEED,
        };
        let r = simulate_token(&cfg, &curve, budget, &ctx.registry);
        TokenSweepCell {
            scheduler: batching.name().to_string(),
            utilization,
            kv_budget_gib: budget as f64 / GIB,
            default_budget: default,
            offered_rps,
            throughput_rps: r.throughput_rps(),
            goodput_rps: r.goodput_rps(),
            slo_attainment: r.slo_attainment(),
            p95_ttft_s: r.stats.phases.ttft.quantile(0.95).unwrap_or(0.0),
            p95_tpot_s: r.stats.phases.tpot.quantile(0.95).unwrap_or(0.0),
            mean_decode_batch: r.mean_decode_batch(),
            preemptions: r.preemptions(),
            dropped: r.stats.dropped_oversized,
            measured_utilization: r.utilization(),
        }
    };

    let mut cells = Vec::new();
    for batching in [
        TokenBatching::Static { batch: MAX_BATCH },
        TokenBatching::Continuous { max_batch: MAX_BATCH },
    ] {
        for utilization in UTILIZATIONS {
            cells.push(run_cell(batching, utilization, default_budget, true));
        }
    }
    // The cache-pressure axis: same offered load, shrinking budget.
    for budget_gib in KV_BUDGETS_GIB {
        cells.push(run_cell(
            TokenBatching::Continuous { max_batch: MAX_BATCH },
            KV_SWEEP_UTILIZATION,
            (budget_gib * GIB) as u64,
            false,
        ));
    }

    TokenSweepResult {
        gpus: GPUS,
        model: mmg_serve::model_short_name(ModelId::Llama2).to_string(),
        prompt_median: PROMPT_MEDIAN,
        output_median: OUTPUT_MEDIAN,
        ttft_slo_s: slo.ttft_s,
        tpot_slo_s: slo.tpot_s,
        default_budget_gib: default_budget as f64 / GIB,
        kv_bytes_per_token: curve.kv_bytes_per_token,
        cells,
    }
}

/// Renders the token-serving sweep.
#[must_use]
pub fn render(r: &TokenSweepResult) -> String {
    let rows: Vec<(String, Vec<String>)> = r
        .cells
        .iter()
        .map(|c| {
            let label = if c.default_budget {
                format!("{}@{:.2}", c.scheduler, c.utilization)
            } else {
                format!("{}@{:.2}/{:.1}GiB", c.scheduler, c.utilization, c.kv_budget_gib)
            };
            (
                label,
                vec![
                    format!("{:.2}/s", c.offered_rps),
                    format!("{:.2}/s", c.throughput_rps),
                    format!("{:.2}/s", c.goodput_rps),
                    format!("{:.0}%", c.slo_attainment * 100.0),
                    format!("{:.0} ms", c.p95_ttft_s * 1e3),
                    format!("{:.1} ms", c.p95_tpot_s * 1e3),
                    format!("{:.1}", c.mean_decode_batch),
                    format!("{}", c.preemptions),
                    format!("{:.0}%", c.measured_utilization * 100.0),
                ],
            )
        })
        .collect();
    format!(
        "Extension — token-serving sweep ({} on {} GPUs, prompt ~{:.0}, output ~{:.0} tokens, \
         KV {} KiB/token, default budget {:.1} GiB/GPU, SLO TTFT <= {:.0} ms, TPOT <= {:.1} ms)\n{}",
        r.model,
        r.gpus,
        r.prompt_median,
        r.output_median,
        r.kv_bytes_per_token / 1024,
        r.default_budget_gib,
        r.ttft_slo_s * 1e3,
        r.tpot_slo_s * 1e3,
        render_table(
            &[
                "Scheduler@util",
                "Offered",
                "Throughput",
                "Goodput",
                "SLO attain",
                "p95 TTFT",
                "p95 TPOT",
                "Decode batch",
                "Preempt",
                "GPU busy",
            ],
            &rows
        )
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn result() -> &'static TokenSweepResult {
        static RESULT: OnceLock<TokenSweepResult> = OnceLock::new();
        RESULT.get_or_init(|| run(&DeviceSpec::a100_80gb()))
    }

    #[test]
    fn covers_the_full_grid() {
        let r = result();
        assert_eq!(r.cells.len(), 2 * UTILIZATIONS.len() + KV_BUDGETS_GIB.len());
        for s in ["static", "continuous"] {
            for u in UTILIZATIONS {
                assert!(r.cell(s, u).is_some(), "{s}@{u}");
            }
        }
        for b in KV_BUDGETS_GIB {
            assert!(r.kv_cell(b).is_some(), "kv cell {b} GiB");
        }
    }

    #[test]
    fn continuous_beats_static_on_goodput_at_load() {
        // The acceptance bar: at ≥0.8 offered utilization iteration-level
        // batching must out-serve run-to-completion static batching.
        let r = result();
        for u in [0.8, 0.95] {
            let st = r.cell("static", u).unwrap();
            let ct = r.cell("continuous", u).unwrap();
            assert!(
                ct.goodput_rps > st.goodput_rps,
                "util {u}: continuous {} vs static {}",
                ct.goodput_rps,
                st.goodput_rps
            );
        }
    }

    #[test]
    fn cache_pressure_preempts_and_costs_goodput() {
        let r = result();
        let ample = r.cell("continuous", 0.95).unwrap();
        assert_eq!(ample.preemptions, 0, "default budget must not preempt");
        let tight = r.kv_cell(KV_BUDGETS_GIB[KV_BUDGETS_GIB.len() - 1]).unwrap();
        assert!(tight.preemptions > 0, "tight budget must preempt");
        // The cliff: the same offered load completes less useful work.
        let roomy = r.kv_cell(KV_BUDGETS_GIB[0]).unwrap();
        assert!(
            tight.goodput_rps < roomy.goodput_rps,
            "tight {} vs roomy {}",
            tight.goodput_rps,
            roomy.goodput_rps
        );
    }

    #[test]
    fn light_load_is_mostly_on_time() {
        let r = result();
        let c = r.cell("continuous", 0.5).unwrap();
        assert!(c.slo_attainment > 0.8, "attainment {}", c.slo_attainment);
    }

    #[test]
    fn renders() {
        let out = render(result());
        assert!(out.contains("token-serving sweep") && out.contains("continuous@0.95"));
        assert!(out.contains("Preempt"));
    }
}
