//! Extension — tensor-parallel decode for the memory-bound transformer
//! TTI models (the deployment answer to Fig. 5's low-batch bandwidth
//! wall).

use mmg_analytics::parallel::{tp_sweep, TpDecodeEstimate};
use mmg_gpu::DeviceSpec;
use mmg_models::suite::parti::PartiConfig;
use mmg_profiler::report::render_table;
use serde::{Deserialize, Serialize};

/// One tensor-parallel width.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TpRow {
    /// GPUs in the group.
    pub k: usize,
    /// Decode-step latency, milliseconds.
    pub step_ms: f64,
    /// Speedup over one GPU.
    pub speedup: f64,
    /// Fraction of the step spent in all-reduces.
    pub comms_fraction: f64,
}

/// TP experiment result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TpResult {
    /// Swept widths ascending.
    pub rows: Vec<TpRow>,
}

/// Sweeps tensor-parallel widths for a Parti-style decode step
/// (KV cache 512 tokens, batch 1 — the interactive TTI case).
#[must_use]
pub fn run(spec: &DeviceSpec, widths: &[usize]) -> TpResult {
    let cfg = PartiConfig::default();
    let sweep: Vec<TpDecodeEstimate> = tp_sweep(&cfg.decoder, 512, 1, widths, spec);
    let base = sweep.first().map_or(1.0, |e| e.total_s);
    let rows = sweep
        .iter()
        .map(|e| TpRow {
            k: e.k,
            step_ms: e.total_s * 1e3,
            speedup: base / e.total_s,
            comms_fraction: e.comms_fraction(),
        })
        .collect();
    TpResult { rows }
}

/// Default widths.
#[must_use]
pub fn default_widths() -> Vec<usize> {
    vec![1, 2, 4, 8]
}

/// Renders the sweep.
#[must_use]
pub fn render(r: &TpResult) -> String {
    let rows: Vec<(String, Vec<String>)> = r
        .rows
        .iter()
        .map(|row| {
            (
                format!("{} GPU{}", row.k, if row.k == 1 { "" } else { "s" }),
                vec![
                    format!("{:.2} ms", row.step_ms),
                    format!("{:.2}x", row.speedup),
                    format!("{:.0}%", row.comms_fraction * 100.0),
                ],
            )
        })
        .collect();
    format!(
        "Extension — tensor-parallel Parti decode step (kv=512, batch=1)\n{}",
        render_table(&["Group", "Step latency", "Speedup", "Comms"], &rows)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> TpResult {
        run(&DeviceSpec::a100_80gb(), &default_widths())
    }

    #[test]
    fn decode_scales_with_tp_width() {
        let r = result();
        assert!((1.5..2.05).contains(&r.rows[1].speedup), "k=2: {}", r.rows[1].speedup);
        assert!(r.rows[3].speedup > 2.5, "k=8: {}", r.rows[3].speedup);
        assert!(r.rows[3].speedup > r.rows[1].speedup, "k=8 beats k=2");
    }

    #[test]
    fn comms_fraction_grows() {
        let r = result();
        for w in r.rows.windows(2) {
            assert!(w[1].comms_fraction >= w[0].comms_fraction - 1e-12);
        }
        assert_eq!(r.rows[0].comms_fraction, 0.0);
    }

    #[test]
    fn renders() {
        assert!(render(&result()).contains("tensor-parallel"));
    }
}
