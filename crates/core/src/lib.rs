//! # mmg-core
//!
//! The facade of the suite: one experiment runner per table and figure of
//! *"Generative AI Beyond LLMs: System Implications of Multi-Modal
//! Generation"* (ISPASS 2024), plus the `repro` CLI that renders them.
//!
//! | Experiment | Paper artifact | Module |
//! |---|---|---|
//! | `fig1` | fleet GPUs/param + memory utilization | [`experiments::fig1`] |
//! | `table1` | model taxonomy | [`experiments::table1`] |
//! | `fig4` | FID/params Pareto frontier | [`experiments::fig4`] |
//! | `fig5` | A100 roofline placement | [`experiments::fig5`] |
//! | `fig6` | operator breakdown, baseline vs flash | [`experiments::fig6`] |
//! | `table2` | end-to-end Flash Attention speedup | [`experiments::table2`] |
//! | `table3` | prefill/decode correspondence | [`experiments::table3`] |
//! | `fig7` | sequence-length traces | [`experiments::fig7`] |
//! | `fig8` | SD sequence-length distribution vs image size | [`experiments::fig8`] |
//! | `fig9` | attention vs convolution scaling with image size | [`experiments::fig9`] |
//! | `fig11` | temporal vs spatial attention time/FLOPs | [`experiments::fig11`] |
//! | `fig12` | L1/L2 hit rates, spatial vs temporal | [`experiments::fig12`] |
//! | `fig13` | temporal FLOPs vs frame count | [`experiments::fig13`] |
//! | `secv` | Section V analytical memory model | [`experiments::secv`] |
//!
//! Every runner is deterministic and returns a serializable result; the
//! renderers produce the ASCII tables the CLI prints.
//!
//! # Example
//!
//! ```
//! use mmg_core::experiments::table2;
//!
//! let result = table2::run(&mmg_gpu::DeviceSpec::a100_80gb());
//! assert_eq!(result.rows.len(), 8);
//! println!("{}", table2::render(&result));
//! ```

#![deny(missing_docs)]

pub mod benchcheck;
pub mod engine;
pub mod experiments;
mod runner;

pub use engine::{global_memo, run_cells_with, run_suite, run_suite_with, ExecContext};
pub use runner::{
    run_experiment, run_experiment_json, run_experiment_value, run_experiment_value_with,
    run_experiment_with, run_manifest, ExperimentId,
};
