//! Experiment dispatch for the `repro` CLI.

use std::fmt;
use std::str::FromStr;

use mmg_gpu::DeviceSpec;

use crate::engine::ExecContext;
use crate::experiments::{
    ablations, batch, energy, fig1, fig11, fig12, fig13, fig4, fig5, fig6, fig7, fig8, fig9,
    flashdec, fleet_sweep, optimize, pods, secv, serve_attrib, serve_sweep, serve_timeline, table1,
    table2, table3, token_sweep, tp,
};

/// Identifier of one reproducible artifact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExperimentId {
    /// Fleet study.
    Fig1,
    /// Model taxonomy.
    Table1,
    /// Pareto landscape.
    Fig4,
    /// Roofline.
    Fig5,
    /// Operator breakdown.
    Fig6,
    /// Flash speedups.
    Table2,
    /// Prefill/decode correspondence.
    Table3,
    /// Sequence-length traces.
    Fig7,
    /// Sequence-length distributions.
    Fig8,
    /// Attention/conv image-size scaling.
    Fig9,
    /// Temporal vs spatial attention.
    Fig11,
    /// Cache hit rates.
    Fig12,
    /// Frame scaling.
    Fig13,
    /// Section V analytics.
    SecV,
    /// Extension: Flash-Decoding comparison.
    FlashDec,
    /// Extension: kernel-graph optimization passes per model family.
    Optimize,
    /// Extension: denoising-pod co-scheduling headroom.
    Pods,
    /// Extension: batch-size sensitivity.
    Batch,
    /// Extension: tensor-parallel decode.
    Tp,
    /// Extension: conv-algorithm and precision ablations.
    Ablations,
    /// Extension: serving-cluster scheduler sweep on the DES.
    ServeSweep,
    /// Extension: windowed serving timeline (FIFO vs dynamic over time).
    ServeTimeline,
    /// Extension: latency attribution and SLO burn-rate alerts per cell.
    ServeAttrib,
    /// Extension: heterogeneous multi-cluster fleet policy sweep.
    FleetSweep,
    /// Extension: token-level serving sweep (static vs continuous
    /// batching × utilization × KV-cache budget).
    TokenSweep,
    /// Extension: per-kernel power regimes, energy per request, and the
    /// goodput/Wh serving frontier under a power cap.
    Energy,
}

impl ExperimentId {
    /// All experiments in paper order.
    pub const ALL: [ExperimentId; 26] = [
        ExperimentId::Fig1,
        ExperimentId::Table1,
        ExperimentId::Fig4,
        ExperimentId::Fig5,
        ExperimentId::Fig6,
        ExperimentId::Table2,
        ExperimentId::Table3,
        ExperimentId::Fig7,
        ExperimentId::Fig8,
        ExperimentId::Fig9,
        ExperimentId::Fig11,
        ExperimentId::Fig12,
        ExperimentId::Fig13,
        ExperimentId::SecV,
        ExperimentId::FlashDec,
        ExperimentId::Optimize,
        ExperimentId::Pods,
        ExperimentId::Batch,
        ExperimentId::Tp,
        ExperimentId::Ablations,
        ExperimentId::ServeSweep,
        ExperimentId::ServeTimeline,
        ExperimentId::ServeAttrib,
        ExperimentId::FleetSweep,
        ExperimentId::TokenSweep,
        ExperimentId::Energy,
    ];
}

impl fmt::Display for ExperimentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ExperimentId::Fig1 => "fig1",
            ExperimentId::Table1 => "table1",
            ExperimentId::Fig4 => "fig4",
            ExperimentId::Fig5 => "fig5",
            ExperimentId::Fig6 => "fig6",
            ExperimentId::Table2 => "table2",
            ExperimentId::Table3 => "table3",
            ExperimentId::Fig7 => "fig7",
            ExperimentId::Fig8 => "fig8",
            ExperimentId::Fig9 => "fig9",
            ExperimentId::Fig11 => "fig11",
            ExperimentId::Fig12 => "fig12",
            ExperimentId::Fig13 => "fig13",
            ExperimentId::SecV => "secv",
            ExperimentId::FlashDec => "flashdec",
            ExperimentId::Optimize => "optimize",
            ExperimentId::Pods => "pods",
            ExperimentId::Batch => "batch",
            ExperimentId::Tp => "tp",
            ExperimentId::Ablations => "ablations",
            ExperimentId::ServeSweep => "serve-sweep",
            ExperimentId::ServeTimeline => "serve-timeline",
            ExperimentId::ServeAttrib => "serve-attrib",
            ExperimentId::FleetSweep => "fleet-sweep",
            ExperimentId::TokenSweep => "token-sweep",
            ExperimentId::Energy => "energy",
        };
        f.write_str(s)
    }
}

/// Error for unknown experiment names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseExperimentError(String);

impl fmt::Display for ParseExperimentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown experiment '{}'; expected one of ", self.0)?;
        for (i, e) in ExperimentId::ALL.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{e}")?;
        }
        Ok(())
    }
}

impl std::error::Error for ParseExperimentError {}

impl FromStr for ExperimentId {
    type Err = ParseExperimentError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        ExperimentId::ALL
            .iter()
            .find(|e| e.to_string() == s.to_lowercase())
            .copied()
            .ok_or_else(|| ParseExperimentError(s.to_owned()))
    }
}

/// Runs one experiment with default parameters and returns its rendered
/// report. Uses the shared context (global registry + global memo).
#[must_use]
pub fn run_experiment(id: ExperimentId, spec: &DeviceSpec) -> String {
    run_experiment_with(id, &ExecContext::shared(spec.clone()))
}

/// Runs one experiment with default parameters against an explicit
/// [`ExecContext`], returning its rendered report. Experiments that
/// profile graphs record telemetry into `ctx.registry` and share
/// `ctx.memo`; the purely analytic ones just use `ctx.spec`.
#[must_use]
pub fn run_experiment_with(id: ExperimentId, ctx: &ExecContext) -> String {
    let spec = &ctx.spec;
    match id {
        ExperimentId::Fig1 => fig1::render(&fig1::run(42)),
        ExperimentId::Table1 => table1::render(&table1::run()),
        ExperimentId::Fig4 => fig4::render(&fig4::run()),
        ExperimentId::Fig5 => fig5::render(&fig5::run(spec)),
        ExperimentId::Fig6 => fig6::render(&fig6::run_ctx(ctx)),
        ExperimentId::Table2 => table2::render(&table2::run_ctx(ctx)),
        ExperimentId::Table3 => table3::render(&table3::run()),
        ExperimentId::Fig7 => fig7::render(&fig7::run_ctx(ctx)),
        ExperimentId::Fig8 => fig8::render(&fig8::run_ctx(ctx, &fig8::default_sizes())),
        ExperimentId::Fig9 => fig9::render(&fig9::run_ctx(ctx, &fig9::default_sizes())),
        ExperimentId::Fig11 => fig11::render(&fig11::run_ctx(ctx)),
        ExperimentId::Fig12 => fig12::render(&fig12::run(spec, 200_000)),
        ExperimentId::Fig13 => fig13::render(&fig13::run(16, &fig13::default_frames())),
        ExperimentId::SecV => secv::render(&secv::run_ctx(ctx, 512)),
        ExperimentId::FlashDec => flashdec::render(&flashdec::run_ctx(ctx)),
        ExperimentId::Optimize => optimize::render(&optimize::run_ctx(ctx)),
        ExperimentId::Pods => pods::render(&pods::run_ctx(ctx)),
        ExperimentId::Batch => batch::render(&batch::run_ctx(ctx, &batch::default_batches())),
        ExperimentId::Tp => tp::render(&tp::run(spec, &tp::default_widths())),
        ExperimentId::Ablations => ablations::render(&ablations::run_ctx(ctx)),
        ExperimentId::ServeSweep => serve_sweep::render(&serve_sweep::run_ctx(ctx)),
        ExperimentId::ServeTimeline => serve_timeline::render(&serve_timeline::run_ctx(ctx)),
        ExperimentId::ServeAttrib => serve_attrib::render(&serve_attrib::run_ctx(ctx)),
        ExperimentId::FleetSweep => fleet_sweep::render(&fleet_sweep::run_ctx(ctx)),
        ExperimentId::TokenSweep => token_sweep::render(&token_sweep::run_ctx(ctx)),
        ExperimentId::Energy => energy::render(&energy::run_ctx(ctx)),
    }
}

/// Runs one experiment and returns its result as a JSON value tree
/// (same defaults as [`run_experiment`]; shared context).
///
/// # Panics
///
/// Never panics: every experiment result is serializable.
#[must_use]
pub fn run_experiment_value(id: ExperimentId, spec: &DeviceSpec) -> serde_json::Value {
    run_experiment_value_with(id, &ExecContext::shared(spec.clone()))
}

/// Runs one experiment against an explicit [`ExecContext`] and returns
/// its result as a JSON value tree (same defaults as
/// [`run_experiment_with`]).
///
/// # Panics
///
/// Never panics: every experiment result is serializable.
#[must_use]
pub fn run_experiment_value_with(id: ExperimentId, ctx: &ExecContext) -> serde_json::Value {
    fn v<T: serde::Serialize>(x: &T) -> serde_json::Value {
        serde_json::to_value(x).expect("experiment results always serialize")
    }
    let spec = &ctx.spec;
    match id {
        ExperimentId::Fig1 => v(&fig1::run(42)),
        ExperimentId::Table1 => v(&table1::run()),
        ExperimentId::Fig4 => v(&fig4::run()),
        ExperimentId::Fig5 => v(&fig5::run(spec)),
        ExperimentId::Fig6 => v(&fig6::run_ctx(ctx)),
        ExperimentId::Table2 => v(&table2::run_ctx(ctx)),
        ExperimentId::Table3 => v(&table3::run()),
        ExperimentId::Fig7 => v(&fig7::run_ctx(ctx)),
        ExperimentId::Fig8 => v(&fig8::run_ctx(ctx, &fig8::default_sizes())),
        ExperimentId::Fig9 => v(&fig9::run_ctx(ctx, &fig9::default_sizes())),
        ExperimentId::Fig11 => v(&fig11::run_ctx(ctx)),
        ExperimentId::Fig12 => v(&fig12::run(spec, 200_000)),
        ExperimentId::Fig13 => v(&fig13::run(16, &fig13::default_frames())),
        ExperimentId::SecV => v(&secv::run_ctx(ctx, 512)),
        ExperimentId::FlashDec => v(&flashdec::run_ctx(ctx)),
        ExperimentId::Optimize => v(&optimize::run_ctx(ctx)),
        ExperimentId::Pods => v(&pods::run_ctx(ctx)),
        ExperimentId::Batch => v(&batch::run_ctx(ctx, &batch::default_batches())),
        ExperimentId::Tp => v(&tp::run(spec, &tp::default_widths())),
        ExperimentId::Ablations => v(&ablations::run_ctx(ctx)),
        ExperimentId::ServeSweep => v(&serve_sweep::run_ctx(ctx)),
        ExperimentId::ServeTimeline => v(&serve_timeline::run_ctx(ctx)),
        ExperimentId::ServeAttrib => v(&serve_attrib::run_ctx(ctx)),
        ExperimentId::FleetSweep => v(&fleet_sweep::run_ctx(ctx)),
        ExperimentId::TokenSweep => v(&token_sweep::run_ctx(ctx)),
        ExperimentId::Energy => v(&energy::run_ctx(ctx)),
    }
}

/// Runs one experiment and returns its result as pretty JSON (for
/// machine-readable pipelines; same defaults as [`run_experiment`]).
///
/// # Panics
///
/// Never panics: every experiment result is serializable.
#[must_use]
pub fn run_experiment_json(id: ExperimentId, spec: &DeviceSpec) -> String {
    serde_json::to_string_pretty(&run_experiment_value(id, spec))
        .expect("experiment results always serialize")
}

/// Builds the run manifest for one CLI invocation: the simulated device,
/// the experiments executed, optionally the elapsed wall time, and the
/// final telemetry counter totals from `registry`.
///
/// Pass `elapsed_s: None` for the stdout summary line — everything left
/// is a pure function of the run, so two invocations (any `--jobs`)
/// byte-compare with plain `cmp`. Pass `Some(wall)` for the
/// `--manifest` file, where the wall clock belongs in the run record.
///
/// # Panics
///
/// Never panics: the manifest contains only serializable primitives.
#[must_use]
pub fn run_manifest(
    spec: &DeviceSpec,
    ids: &[ExperimentId],
    elapsed_s: Option<f64>,
    registry: &mmg_telemetry::Registry,
) -> serde_json::Value {
    use serde_json::Value;
    let counters = registry
        .counters_snapshot()
        .values()
        .iter()
        .map(|(name, value)| (name.clone(), Value::from(*value)))
        .collect();
    let mut fields = vec![
        (
            "device".to_string(),
            serde_json::to_value(spec).expect("device specs always serialize"),
        ),
        (
            "experiments".to_string(),
            Value::Array(ids.iter().map(|id| Value::from(id.to_string())).collect()),
        ),
    ];
    if let Some(wall) = elapsed_s {
        fields.push(("elapsed_s".to_string(), Value::from(wall)));
    }
    fields.push(("counters".to_string(), Value::Object(counters)));
    Value::Object(fields)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        for e in ExperimentId::ALL {
            assert_eq!(e.to_string().parse::<ExperimentId>().unwrap(), e);
        }
        assert!("fig99".parse::<ExperimentId>().is_err());
    }

    #[test]
    fn parse_is_case_insensitive() {
        assert_eq!("FIG6".parse::<ExperimentId>().unwrap(), ExperimentId::Fig6);
    }

    #[test]
    fn error_lists_options() {
        let e = "nope".parse::<ExperimentId>().unwrap_err();
        assert!(e.to_string().contains("table2"));
    }

    #[test]
    fn cheap_experiments_render() {
        let spec = DeviceSpec::a100_80gb();
        for id in [ExperimentId::Fig1, ExperimentId::Fig4, ExperimentId::Fig13, ExperimentId::Table3]
        {
            let out = run_experiment(id, &spec);
            assert!(!out.is_empty(), "{id}");
        }
    }

    #[test]
    fn cheap_experiments_emit_valid_json() {
        let spec = DeviceSpec::a100_80gb();
        for id in [ExperimentId::Fig4, ExperimentId::Fig13, ExperimentId::Tp] {
            let out = run_experiment_json(id, &spec);
            let v: serde_json::Value = serde_json::from_str(&out).unwrap();
            assert!(v.is_object() || v.is_array(), "{id}");
        }
    }
}
