//! End-to-end determinism of the `repro` binary: serial runs are
//! repeatable, and a parallel (`--jobs`) run produces byte-identical
//! stdout — the worker pool must not change what the user sees.

use std::process::Command;

/// A cheap-but-representative subset: pure-analytic experiments plus
/// profiled ones that exercise the memo and the worker registries.
const SUBSET: &[&str] = &["fig4", "fig12", "fig13", "tp", "secv", "batch"];

fn repro(extra: &[&str]) -> (String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(SUBSET)
        .args(extra)
        .output()
        .expect("repro binary runs");
    assert!(out.status.success(), "repro exited with {:?}", out.status);
    (
        String::from_utf8(out.stdout).expect("stdout is UTF-8"),
        String::from_utf8(out.stderr).expect("stderr is UTF-8"),
    )
}

#[test]
fn serial_runs_are_repeatable_and_parallel_matches() {
    let (serial_a, _) = repro(&["--jobs", "1"]);
    let (serial_b, _) = repro(&["--jobs", "1"]);
    assert_eq!(serial_a, serial_b, "two serial runs diverge");
    let (parallel, _) = repro(&["--jobs", "4"]);
    assert_eq!(serial_a, parallel, "--jobs 4 changes stdout");
    assert!(serial_a.contains("device:"), "report header present");
}

#[test]
fn json_mode_is_deterministic_across_job_counts() {
    let (serial, _) = repro(&["--json", "--jobs", "1"]);
    let (parallel, _) = repro(&["--json", "--jobs", "3"]);
    assert_eq!(serial, parallel, "--jobs 3 changes JSON stream");
    assert_eq!(
        serial.lines().count(),
        SUBSET.len() + 1,
        "one envelope line per experiment plus the manifest line"
    );
    for line in serial.lines().take(SUBSET.len()) {
        let v: serde_json::Value = serde_json::from_str(line).expect("valid JSON envelope");
        assert!(v.get("experiment").is_some() && v.get("result").is_some());
    }
}

#[test]
fn manifest_on_stdout_is_deterministic_and_wall_clock_stays_on_stderr() {
    // The manifest closes stdout and carries final telemetry counter
    // totals; the in-order merge must make them independent of --jobs.
    // The wall clock is the one nondeterministic datum, so it lives on
    // stderr alone — CI byte-compares stdout with plain `cmp`.
    let (stdout_serial, stderr_serial) = repro(&["--jobs", "1"]);
    let (stdout_parallel, _) = repro(&["--jobs", "4"]);
    let manifest = |s: &str| -> serde_json::Value {
        let line = s.lines().last().expect("manifest line on stdout");
        serde_json::from_str(line).expect("manifest is valid JSON")
    };
    let serial = manifest(&stdout_serial);
    assert_eq!(serial.get("counters"), manifest(&stdout_parallel).get("counters"));
    assert!(serial.get("elapsed_s").is_none(), "wall clock leaked into stdout");
    let wall: serde_json::Value = serde_json::from_str(
        stderr_serial.lines().last().expect("elapsed_s line on stderr"),
    )
    .expect("stderr wall-clock line is JSON");
    assert!(wall.get("elapsed_s").and_then(serde_json::Value::as_f64).is_some());
}
