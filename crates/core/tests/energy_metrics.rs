//! Exposition validity of the energy metric families, end to end: the
//! profiler's integrated per-kernel joules (`gpu_energy_uj_total`,
//! `kernel_energy_uj_total`, `gpu_power_w`), the serving DES energy
//! gauges (`serve_energy_wh`, `serve_gpu_energy_wh`,
//! `serve_mean_power_w`), and the fleet simulator's per-cluster total
//! (`fleet_wh_total`) — all emitted into one registry by the real code
//! paths, then the Prometheus text form is parsed line by line and held
//! to the exposition-format rules.

use std::sync::Arc;

use mmg_attn::AttnImpl;
use mmg_core::ExecContext;
use mmg_gpu::DeviceSpec;
use mmg_models::{suite, ModelId};
use mmg_profiler::CostMemo;
use mmg_serve::{
    run_cluster, simulate, ArrivalProcess, AutoscalerPolicy, ClusterCfg, FleetCfg, RequestMix,
    RouterKind, ScenarioCfg, SchedulerKind, ServiceProfile, SloSpec,
};

/// `(family, expected TYPE kind)` for every energy series the repo
/// exposes. Energy totals integrated on the simulated clock are
/// counters; run-level summaries and instantaneous draw are gauges.
const ENERGY_FAMILIES: [(&str, &str); 7] = [
    ("gpu_energy_uj_total", "counter"),
    ("kernel_energy_uj_total", "counter"),
    ("gpu_power_w", "gauge"),
    ("serve_energy_wh", "gauge"),
    ("serve_gpu_energy_wh", "gauge"),
    ("serve_mean_power_w", "gauge"),
    ("fleet_wh_total", "gauge"),
];

/// Asserts `{k="v",…}` label syntax: non-empty keys, quoted values.
fn assert_labels_well_formed(series: &str) {
    let Some(open) = series.find('{') else { return };
    let body = series
        .strip_suffix('}')
        .unwrap_or_else(|| panic!("unclosed label block in {series}"));
    for pair in body[open + 1..].split(',') {
        let (k, v) = pair
            .split_once('=')
            .unwrap_or_else(|| panic!("label pair without '=' in {series}"));
        assert!(!k.is_empty(), "empty label key in {series}");
        assert!(
            v.len() >= 2 && v.starts_with('"') && v.ends_with('"'),
            "unquoted label value in {series}"
        );
    }
}

#[test]
fn energy_families_render_as_valid_prometheus() {
    let ctx = ExecContext::isolated(DeviceSpec::a100_80gb(), Arc::new(CostMemo::new()));

    // Profiler path: per-kernel joules and the board-draw gauge.
    let profiler = ctx.profiler(AttnImpl::Flash);
    let _ = suite::build(ModelId::StableDiffusion).profile(&profiler);

    // Serving DES path: a sampled profile carries power, so the run
    // sets the serve_* energy gauges (one per GPU plus the totals).
    let models = [ModelId::StableDiffusion, ModelId::Parti];
    let profile = ServiceProfile::from_profiler_sampled(&profiler, &models, &[1, 2, 4], None);
    let mix = RequestMix::parse("sd:8,parti:2").unwrap();
    let rate = 0.8 * 2.0 / profile.mean_base_s(&mix);
    let mut cfg = ScenarioCfg::new(
        2,
        mix,
        ArrivalProcess::poisson(rate),
        SchedulerKind::Dynamic { max_batch: 8 },
        SloSpec::ServiceMultiple(4.0),
        30.0,
        7,
    );
    cfg.full_records = false;
    let sim = simulate(&cfg, &profile, &ctx.registry);
    assert!(sim.total_energy_wh().expect("sampled profile is metered") > 0.0);

    // Fleet path: one metered cluster sets fleet_wh_total{cluster}.
    let fleet = FleetCfg {
        clusters: vec![ClusterCfg {
            name: "us-east".into(),
            sku: "a100".into(),
            gpus: 2,
            price_per_gpu_hr: 2.0,
            weight: 1.0,
            phase_s: 0.0,
        }],
        mix: RequestMix::parse("sd:8,parti:2").unwrap(),
        arrival: ArrivalProcess::poisson(rate),
        scheduler: SchedulerKind::Fifo,
        router: RouterKind::RoundRobin,
        slo: SloSpec::ServiceMultiple(4.0),
        window_s: 30.0,
        windows: 2,
        autoscaler: AutoscalerPolicy::Fixed,
        seed: 42,
    };
    let cluster = run_cluster(&fleet, 0, &profile, &ctx.registry);
    assert!(cluster.energy_wh > 0.0, "metered fleet run lost its energy");

    let text = ctx.registry.render_prometheus();

    // Walk the exposition once: families are announced exactly once,
    // HELP directly before TYPE, samples only after their header.
    let mut kinds: Vec<(String, String)> = Vec::new();
    let mut pending_help: Option<String> = None;
    let mut samples: Vec<(String, String, f64)> = Vec::new();
    for line in text.lines() {
        assert!(!line.trim().is_empty(), "blank line in exposition");
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split_whitespace().next().expect("HELP has a name");
            assert!(pending_help.is_none(), "two HELP lines in a row at {line}");
            assert!(rest.len() > name.len() + 1, "HELP {name} has no text");
            pending_help = Some(name.to_string());
        } else if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().expect("TYPE has a name");
            let kind = parts.next().expect("TYPE has a kind");
            assert_eq!(
                pending_help.take().as_deref(),
                Some(name),
                "TYPE {name} not directly preceded by its HELP"
            );
            assert!(
                !kinds.iter().any(|(n, _)| n == name),
                "family {name} announced twice"
            );
            kinds.push((name.to_string(), kind.to_string()));
        } else {
            assert!(pending_help.is_none(), "sample interleaved between HELP and TYPE");
            let (series, value) = line.rsplit_once(' ').expect("sample line shape");
            let value: f64 = value.parse().unwrap_or_else(|_| panic!("value in {line}"));
            let family = series.split('{').next().unwrap().to_string();
            assert!(
                kinds.iter().any(|(n, _)| *n == family)
                    || family.ends_with("_bucket")
                    || family.ends_with("_sum")
                    || family.ends_with("_count"),
                "sample {series} before its family header"
            );
            assert_labels_well_formed(series);
            samples.push((family, series.to_string(), value));
        }
    }
    assert!(pending_help.is_none(), "dangling HELP at end of exposition");

    // Every energy family is present, has the right TYPE, exactly one
    // header, and only finite non-negative sample values.
    for (family, want_kind) in ENERGY_FAMILIES {
        let kind = &kinds
            .iter()
            .find(|(n, _)| n == family)
            .unwrap_or_else(|| panic!("family {family} missing from exposition"))
            .1;
        assert_eq!(kind, want_kind, "wrong TYPE for {family}");
        assert_eq!(text.matches(&format!("# TYPE {family} ")).count(), 1);
        assert_eq!(text.matches(&format!("# HELP {family} ")).count(), 1);
        let values: Vec<f64> = samples
            .iter()
            .filter(|(f, _, _)| f == family)
            .map(|&(_, _, v)| v)
            .collect();
        assert!(!values.is_empty(), "{family} announced but has no samples");
        for v in &values {
            assert!(v.is_finite() && *v >= 0.0, "{family} sample {v} out of range");
        }
    }

    // Per-instance labels: one serve_gpu_energy_wh series per GPU and a
    // cluster-labeled fleet total.
    for gpu in ["0", "1"] {
        assert!(
            samples
                .iter()
                .any(|(_, s, _)| s == &format!("serve_gpu_energy_wh{{gpu=\"{gpu}\"}}")),
            "missing serve_gpu_energy_wh series for gpu {gpu}"
        );
    }
    assert!(
        samples
            .iter()
            .any(|(_, s, v)| s == "fleet_wh_total{cluster=\"us-east\"}" && *v > 0.0),
        "missing metered fleet_wh_total series"
    );
    // The integrated profiler energy is a positive counter.
    assert!(
        samples
            .iter()
            .any(|(f, _, v)| f == "gpu_energy_uj_total" && *v > 0.0),
        "gpu_energy_uj_total never incremented"
    );
}
