//! End-to-end determinism of the `repro serve` subcommand and the
//! `serve-sweep` experiment: one seed fixes the entire sample path, so
//! stdout must be byte-identical across invocations and `--jobs`
//! counts, and different seeds must produce different sample paths.

use std::process::Command;

fn repro(args: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("repro binary runs");
    assert!(
        out.status.success(),
        "repro {args:?} exited with {:?}: {}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("stdout is UTF-8")
}

const SERVE: &[&str] = &[
    "serve",
    "--gpus",
    "2",
    "--mix",
    "sd:8,parti:2",
    "--scheduler",
    "dynamic",
    "--slo-ms",
    "2000",
    "--duration-s",
    "20",
];

#[test]
fn serve_is_byte_identical_for_one_seed() {
    let a = repro(&[SERVE, &["--seed", "7"]].concat());
    let b = repro(&[SERVE, &["--seed", "7"]].concat());
    assert_eq!(a, b, "same seed, different stdout");
    assert!(a.contains("p99") && a.contains("SLO attain"), "report shape:\n{a}");
    assert!(a.contains("sd") && a.contains("parti"), "per-model rows:\n{a}");
}

#[test]
fn serve_seed_changes_the_sample_path() {
    let a = repro(&[SERVE, &["--seed", "7"]].concat());
    let b = repro(&[SERVE, &["--seed", "8"]].concat());
    assert_ne!(a, b, "different seeds must differ");
}

#[test]
fn serve_sweep_is_identical_across_job_counts() {
    let serial = repro(&["serve-sweep", "--jobs", "1"]);
    let parallel = repro(&["serve-sweep", "--jobs", "4"]);
    assert_eq!(serial, parallel, "--jobs changes serve-sweep stdout");
    assert!(serial.contains("dynamic@0.95"), "sweep grid present:\n{serial}");
}

/// The streaming fast path at scale: a million simulated requests must
/// be byte-identical run to run, and the constant-memory mode must not
/// change any printed aggregate.
#[test]
fn serve_is_byte_identical_at_a_million_requests() {
    let args = &[
        "serve",
        "--mix",
        "sd",
        "--scheduler",
        "fifo",
        "--duration-s",
        "1000000",
        "--requests",
        "1000000",
        "--seed",
        "1",
    ];
    let a = repro(args);
    let b = repro(args);
    assert_eq!(a, b, "same seed, different stdout at 1M requests");
    assert!(a.contains("SLO attain"), "report shape:\n{a}");
}

#[test]
fn replicated_sweep_is_byte_identical_across_job_counts() {
    let serial = repro(&["serve-sweep", "--replications", "2", "--jobs", "1"]);
    let parallel = repro(&["serve-sweep", "--replications", "2", "--jobs", "4"]);
    assert_eq!(serial, parallel, "--jobs changes replicated sweep stdout");
    assert!(serial.contains("2 seeds from 42"), "replication header:\n{serial}");
}

#[test]
fn serve_rejects_bad_flags() {
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["serve", "--scheduler", "nope"])
        .output()
        .expect("repro binary runs");
    assert!(!out.status.success(), "unknown scheduler must fail");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown scheduler"), "stderr: {err}");
}
