//! End-to-end determinism of the `repro serve` subcommand and the
//! `serve-sweep` experiment: one seed fixes the entire sample path, so
//! stdout must be byte-identical across invocations and `--jobs`
//! counts, and different seeds must produce different sample paths.

use std::process::Command;

fn repro(args: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("repro binary runs");
    assert!(
        out.status.success(),
        "repro {args:?} exited with {:?}: {}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("stdout is UTF-8")
}

const SERVE: &[&str] = &[
    "serve",
    "--gpus",
    "2",
    "--mix",
    "sd:8,parti:2",
    "--scheduler",
    "dynamic",
    "--slo-ms",
    "2000",
    "--duration-s",
    "20",
];

#[test]
fn serve_is_byte_identical_for_one_seed() {
    let a = repro(&[SERVE, &["--seed", "7"]].concat());
    let b = repro(&[SERVE, &["--seed", "7"]].concat());
    assert_eq!(a, b, "same seed, different stdout");
    assert!(a.contains("p99") && a.contains("SLO attain"), "report shape:\n{a}");
    assert!(a.contains("sd") && a.contains("parti"), "per-model rows:\n{a}");
}

#[test]
fn serve_seed_changes_the_sample_path() {
    let a = repro(&[SERVE, &["--seed", "7"]].concat());
    let b = repro(&[SERVE, &["--seed", "8"]].concat());
    assert_ne!(a, b, "different seeds must differ");
}

#[test]
fn serve_sweep_is_identical_across_job_counts() {
    let serial = repro(&["serve-sweep", "--jobs", "1"]);
    let parallel = repro(&["serve-sweep", "--jobs", "4"]);
    assert_eq!(serial, parallel, "--jobs changes serve-sweep stdout");
    assert!(serial.contains("dynamic@0.95"), "sweep grid present:\n{serial}");
}

/// The streaming fast path at scale: a million simulated requests must
/// be byte-identical run to run, and the constant-memory mode must not
/// change any printed aggregate.
#[test]
fn serve_is_byte_identical_at_a_million_requests() {
    let args = &[
        "serve",
        "--mix",
        "sd",
        "--scheduler",
        "fifo",
        "--duration-s",
        "1000000",
        "--requests",
        "1000000",
        "--seed",
        "1",
    ];
    let a = repro(args);
    let b = repro(args);
    assert_eq!(a, b, "same seed, different stdout at 1M requests");
    assert!(a.contains("SLO attain"), "report shape:\n{a}");
}

#[test]
fn replicated_sweep_is_byte_identical_across_job_counts() {
    let serial = repro(&["serve-sweep", "--replications", "2", "--jobs", "1"]);
    let parallel = repro(&["serve-sweep", "--replications", "2", "--jobs", "4"]);
    assert_eq!(serial, parallel, "--jobs changes replicated sweep stdout");
    assert!(serial.contains("2 seeds from 42"), "replication header:\n{serial}");
}

/// Attribution and the SLO health engine ride the same deterministic
/// sample path: with `--attrib` on, stdout (report tables, phase
/// shares, alert timeline) is byte-identical per seed and across
/// `--jobs` counts, and the section actually renders.
#[test]
fn serve_attrib_is_byte_identical_across_jobs() {
    let args = [SERVE, &["--seed", "7", "--attrib"]].concat();
    let serial = repro(&[&args[..], &["--jobs", "1"]].concat());
    let parallel = repro(&[&args[..], &["--jobs", "4"]].concat());
    assert_eq!(serial, parallel, "--jobs changes attributed serve stdout");
    let again = repro(&[&args[..], &["--jobs", "1"]].concat());
    assert_eq!(serial, again, "same seed, different attributed stdout");
    assert!(serial.contains("attribution: p99 ="), "attribution headline:\n{serial}");
    assert!(serial.contains("queue") && serial.contains("hold"), "phase table:\n{serial}");
    assert!(serial.contains("slo health"), "health section:\n{serial}");
    // The layer is additive: the plain report is a prefix-equal run of
    // the same sample path, so its tables must appear verbatim.
    let plain = repro(&[SERVE, &["--seed", "7"]].concat());
    assert!(!plain.contains("attribution:"), "attrib leaked into plain run:\n{plain}");
    let report_head = plain.lines().take(8).collect::<Vec<_>>().join("\n");
    assert!(
        serial.contains(&report_head),
        "attributed run changed the base report:\n{serial}\nvs\n{report_head}"
    );
}

/// `--metrics-out` dispatches on extension: `.json` gets the JSON
/// snapshot, anything else the Prometheus exposition — both containing
/// the new health metric families.
#[test]
fn serve_metrics_out_dispatches_on_extension() {
    let dir = std::env::temp_dir().join(format!("mmg-metrics-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let prom = dir.join("metrics.prom");
    let json = dir.join("metrics.json");
    repro(&[
        SERVE,
        &["--seed", "7", "--attrib", "--metrics-out", prom.to_str().unwrap()],
    ]
    .concat());
    repro(&[
        SERVE,
        &["--seed", "7", "--attrib", "--metrics-out", json.to_str().unwrap()],
    ]
    .concat());
    let prom_body = std::fs::read_to_string(&prom).expect("prometheus dump");
    assert!(prom_body.contains("# TYPE serve_latency_s histogram"), "{prom_body}");
    assert!(prom_body.contains("serve_phase_s"), "phase family missing:\n{prom_body}");
    let json_body = std::fs::read_to_string(&json).expect("json dump");
    let v: serde_json::Value = serde_json::from_str(&json_body).expect("valid JSON");
    assert!(v.field("counters").is_some(), "counters key missing:\n{json_body}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_rejects_bad_flags() {
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["serve", "--scheduler", "nope"])
        .output()
        .expect("repro binary runs");
    assert!(!out.status.success(), "unknown scheduler must fail");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown scheduler"), "stderr: {err}");
}
