//! End-to-end checks of the serving flight recorder's CLI surface:
//! `repro serve --trace-out` must emit a Perfetto-loadable trace whose
//! bytes depend only on the scenario seed (never on `--jobs`), and
//! `repro bench-check` must gate on snapshot regressions with the right
//! exit codes.

use std::process::Command;

fn repro(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("repro binary runs")
}

fn trace_to(path: &str, jobs: &str, seed: &str) -> String {
    let out = repro(&[
        "serve",
        "--duration-s",
        "20",
        "--seed",
        seed,
        "--jobs",
        jobs,
        "--trace-out",
        path,
    ]);
    assert!(
        out.status.success(),
        "repro serve --trace-out failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::read_to_string(path).expect("trace file written")
}

#[test]
fn trace_bytes_are_jobs_invariant_and_seed_sensitive() {
    let dir = std::env::temp_dir();
    let a = dir.join("mmg_trace_j1.json");
    let b = dir.join("mmg_trace_j4.json");
    let c = dir.join("mmg_trace_seed9.json");
    let t1 = trace_to(a.to_str().unwrap(), "1", "42");
    let t4 = trace_to(b.to_str().unwrap(), "4", "42");
    assert_eq!(t1, t4, "--jobs changed the flight trace bytes");
    let t9 = trace_to(c.to_str().unwrap(), "1", "9");
    assert_ne!(t1, t9, "different seeds must produce different traces");
}

#[test]
fn trace_has_the_perfetto_surface() {
    let dir = std::env::temp_dir();
    let path = dir.join("mmg_trace_surface.json");
    let body = trace_to(path.to_str().unwrap(), "1", "42");
    let v: serde_json::Value = serde_json::from_str(&body).expect("trace parses as JSON");
    assert_eq!(v.field("displayTimeUnit").and_then(serde_json::Value::as_str), Some("us"));
    let events =
        v.field("traceEvents").and_then(serde_json::Value::as_array).expect("traceEvents");
    let phase = |e: &serde_json::Value| {
        e.field("ph").and_then(serde_json::Value::as_str).map(str::to_string)
    };
    let name = |e: &serde_json::Value| {
        e.field("name").and_then(serde_json::Value::as_str).map(str::to_string)
    };
    assert!(events.iter().any(|e| phase(e).as_deref() == Some("X")), "batch spans");
    assert!(events.iter().any(|e| phase(e).as_deref() == Some("i")), "scheduler instants");
    let counters: std::collections::BTreeSet<String> = events
        .iter()
        .filter(|e| phase(e).as_deref() == Some("C"))
        .filter_map(&name)
        .collect();
    assert!(counters.len() >= 4, "want >= 4 counter tracks, got {counters:?}");
    // Per-GPU lanes: the thread-name metadata declares one lane per GPU.
    let lanes: Vec<String> = events
        .iter()
        .filter(|e| name(e).as_deref() == Some("thread_name"))
        .filter_map(|e| {
            e.field("args")?.field("name")?.as_str().map(str::to_string)
        })
        .collect();
    for want in ["gpu0", "gpu3", "scheduler"] {
        assert!(lanes.iter().any(|l| l == want), "missing lane {want} in {lanes:?}");
    }
}

#[test]
fn bench_check_gates_on_the_serve_figure() {
    let dir = std::env::temp_dir();
    let old = dir.join("mmg_bench_old.json");
    let bad = dir.join("mmg_bench_bad.json");
    std::fs::write(
        &old,
        r#"{"experiments": {"fig6": 0.5}, "serve": {"requests_per_sec": 2000000.0}}"#,
    )
    .unwrap();
    std::fs::write(
        &bad,
        r#"{"experiments": {"fig6": 0.5}, "serve": {"requests_per_sec": 1000000.0}}"#,
    )
    .unwrap();

    let ok = repro(&["bench-check", old.to_str().unwrap(), old.to_str().unwrap()]);
    assert!(ok.status.success(), "self-comparison must pass");
    let stdout = String::from_utf8_lossy(&ok.stdout).to_string();
    assert!(stdout.contains("no regression"), "verdict line: {stdout}");

    let fail = repro(&["bench-check", old.to_str().unwrap(), bad.to_str().unwrap()]);
    assert!(!fail.status.success(), "a 50% throughput drop must exit nonzero");
    let stdout = String::from_utf8_lossy(&fail.stdout).to_string();
    assert!(stdout.contains("REGRESSED"), "regression flagged: {stdout}");
}
