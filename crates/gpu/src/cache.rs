//! Set-associative LRU cache simulation.
//!
//! This is the substitute for Nsight Compute's cache counters: kernels in
//! `mmg-kernels` generate representative (sampled) address streams, and this
//! module reports L1/L2 hit rates for them. The paper's Fig. 12 finding —
//! temporal attention's strided accesses collapse the L1 hit rate by ~10x —
//! falls out of the geometry.

use mmg_telemetry::{Counter, Registry};
use serde::{Deserialize, Serialize};

use crate::DeviceSpec;

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: usize,
    /// Line size in bytes (power of two).
    pub line_bytes: usize,
    /// Associativity (ways per set).
    pub ways: usize,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide evenly or is zero-sized.
    #[must_use]
    pub fn num_sets(&self) -> usize {
        assert!(self.line_bytes > 0 && self.ways > 0, "degenerate cache geometry");
        let lines = self.capacity_bytes / self.line_bytes;
        assert!(lines >= self.ways, "capacity smaller than one set");
        lines / self.ways
    }
}

/// Hit/miss counters for one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Total accesses observed.
    pub accesses: u64,
    /// Accesses that hit.
    pub hits: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`; zero-access caches report 0.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

/// A set-associative cache with true-LRU replacement.
#[derive(Debug, Clone)]
pub struct SetAssociativeCache {
    config: CacheConfig,
    num_sets: usize,
    line_shift: u32,
    /// Per set: tags in LRU order (front = most recent).
    sets: Vec<Vec<u64>>,
    stats: CacheStats,
}

impl SetAssociativeCache {
    /// Builds an empty cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if `line_bytes` is not a power of two or the geometry is
    /// degenerate (see [`CacheConfig::num_sets`]).
    #[must_use]
    pub fn new(config: CacheConfig) -> Self {
        assert!(config.line_bytes.is_power_of_two(), "line size must be a power of two");
        let num_sets = config.num_sets();
        SetAssociativeCache {
            config,
            num_sets,
            line_shift: config.line_bytes.trailing_zeros(),
            sets: vec![Vec::with_capacity(config.ways); num_sets],
            stats: CacheStats::default(),
        }
    }

    /// Accesses a byte address; returns whether it hit.
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        let set_idx = (line % self.num_sets as u64) as usize;
        let set = &mut self.sets[set_idx];
        self.stats.accesses += 1;
        if let Some(pos) = set.iter().position(|&t| t == line) {
            set.remove(pos);
            set.insert(0, line);
            self.stats.hits += 1;
            true
        } else {
            if set.len() == self.config.ways {
                set.pop();
            }
            set.insert(0, line);
            false
        }
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Clears contents and statistics.
    pub fn reset(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
        self.stats = CacheStats::default();
    }

    /// The cache geometry.
    #[must_use]
    pub fn config(&self) -> CacheConfig {
        self.config
    }
}

/// Per-level statistics for a two-level hierarchy run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct HierarchyStats {
    /// L1 counters.
    pub l1: CacheStats,
    /// L2 counters (only misses from L1 reach L2).
    pub l2: CacheStats,
}

impl HierarchyStats {
    /// Fraction of accesses that missed both levels (HBM traffic fraction).
    #[must_use]
    pub fn hbm_fraction(&self) -> f64 {
        if self.l1.accesses == 0 {
            return 0.0;
        }
        let l2_misses = self.l2.accesses - self.l2.hits;
        l2_misses as f64 / self.l1.accesses as f64
    }
}

/// An L1 + L2 hierarchy, as seen by one SM's access stream.
///
/// The L1 is one SM's slice; the L2 is the device-wide cache. For sampled
/// single-SM streams this slightly over-estimates L2 hit rates (no
/// cross-SM interference) which is acceptable for the relative comparisons
/// the paper makes.
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    l1: SetAssociativeCache,
    l2: SetAssociativeCache,
    metrics: CacheMetrics,
}

/// Telemetry counters updated per simulated access (relaxed atomics).
#[derive(Debug, Clone)]
struct CacheMetrics {
    l1_accesses: Counter,
    l1_hits: Counter,
    l2_accesses: Counter,
    l2_hits: Counter,
}

impl CacheMetrics {
    fn for_registry(registry: &Registry) -> Self {
        CacheMetrics {
            l1_accesses: registry.counter("gpu_l1_accesses_total"),
            l1_hits: registry.counter("gpu_l1_hits_total"),
            l2_accesses: registry.counter("gpu_l2_accesses_total"),
            l2_hits: registry.counter("gpu_l2_hits_total"),
        }
    }
}

impl CacheHierarchy {
    /// Builds the hierarchy from a device spec (L1 = one SM's 4-way cache,
    /// L2 = 16-way device cache), recording to the global telemetry
    /// registry.
    #[must_use]
    pub fn for_device(spec: &DeviceSpec) -> Self {
        CacheHierarchy::for_device_with_registry(spec, &mmg_telemetry::global())
    }

    /// Like [`CacheHierarchy::for_device`], recording to a specific
    /// registry.
    #[must_use]
    pub fn for_device_with_registry(spec: &DeviceSpec, registry: &Registry) -> Self {
        let l1 = CacheConfig {
            capacity_bytes: spec.l1_bytes_per_sm,
            line_bytes: spec.cache_line_bytes,
            ways: 4,
        };
        let l2 = CacheConfig {
            capacity_bytes: spec.l2_bytes,
            line_bytes: spec.cache_line_bytes,
            ways: 16,
        };
        CacheHierarchy::with_registry(l1, l2, registry)
    }

    /// Builds from explicit per-level configs, recording to the global
    /// telemetry registry.
    #[must_use]
    pub fn new(l1: CacheConfig, l2: CacheConfig) -> Self {
        CacheHierarchy::with_registry(l1, l2, &mmg_telemetry::global())
    }

    /// Builds from explicit per-level configs and a telemetry registry.
    #[must_use]
    pub fn with_registry(l1: CacheConfig, l2: CacheConfig, registry: &Registry) -> Self {
        CacheHierarchy {
            l1: SetAssociativeCache::new(l1),
            l2: SetAssociativeCache::new(l2),
            metrics: CacheMetrics::for_registry(registry),
        }
    }

    /// Accesses an address: L1 first, then L2 on miss.
    pub fn access(&mut self, addr: u64) {
        self.metrics.l1_accesses.inc();
        if self.l1.access(addr) {
            self.metrics.l1_hits.inc();
        } else {
            self.metrics.l2_accesses.inc();
            if self.l2.access(addr) {
                self.metrics.l2_hits.inc();
            }
        }
    }

    /// Runs a whole address stream.
    pub fn run<I: IntoIterator<Item = u64>>(&mut self, stream: I) {
        for a in stream {
            self.access(a);
        }
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> HierarchyStats {
        HierarchyStats { l1: self.l1.stats(), l2: self.l2.stats() }
    }

    /// Clears contents and statistics.
    pub fn reset(&mut self) {
        self.l1.reset();
        self.l2.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SetAssociativeCache {
        // 4 sets x 2 ways x 64B lines = 512B.
        SetAssociativeCache::new(CacheConfig { capacity_bytes: 512, line_bytes: 64, ways: 2 })
    }

    #[test]
    fn sequential_stream_hits_within_lines() {
        let mut c = tiny();
        // 64 sequential 4-byte words = 4 lines; 1 miss per line.
        for i in 0..64u64 {
            c.access(i * 4);
        }
        let s = c.stats();
        assert_eq!(s.accesses, 64);
        assert_eq!(s.accesses - s.hits, 4, "one miss per 64B line");
        assert!((s.hit_rate() - 60.0 / 64.0).abs() < 1e-9);
    }

    #[test]
    fn repeated_access_hits() {
        let mut c = tiny();
        assert!(!c.access(0));
        assert!(c.access(0));
        assert!(c.access(63)); // same line
        assert!(!c.access(64)); // next line
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = tiny(); // 4 sets; set = (addr/64) % 4
        // Three lines mapping to set 0: lines 0, 4, 8 (addresses 0, 256, 512).
        c.access(0);
        c.access(256);
        c.access(512); // evicts line of addr 0
        assert!(!c.access(0), "LRU line was evicted");
        assert!(c.access(512), "MRU line survives");
    }

    #[test]
    fn strided_stream_thrashes() {
        let mut c = tiny();
        // Stride of 64B over a footprint much larger than capacity: all misses
        // on every pass.
        for _pass in 0..3 {
            for i in 0..64u64 {
                c.access(i * 64 * 4); // 16KB footprint >> 512B capacity
            }
        }
        let s = c.stats();
        assert_eq!(s.hits, 0, "thrashing stride should never hit");
    }

    #[test]
    fn small_working_set_hits_after_warmup() {
        let mut c = tiny();
        // 8 lines = exactly capacity; accessed round-robin LRU-friendly.
        for _pass in 0..4 {
            for i in 0..8u64 {
                c.access(i * 64);
            }
        }
        let s = c.stats();
        // First pass misses (8), subsequent 24 hit.
        assert_eq!(s.accesses - s.hits, 8);
    }

    #[test]
    fn hierarchy_l2_catches_l1_evictions() {
        let l1 = CacheConfig { capacity_bytes: 512, line_bytes: 64, ways: 2 };
        let l2 = CacheConfig { capacity_bytes: 16 * 1024, line_bytes: 64, ways: 8 };
        let mut h = CacheHierarchy::new(l1, l2);
        // Working set of 32 lines (2KB): fits L2, not L1.
        for _pass in 0..4 {
            for i in 0..32u64 {
                h.access(i * 64);
            }
        }
        let s = h.stats();
        assert!(s.l1.hit_rate() < 0.2, "L1 thrashes: {}", s.l1.hit_rate());
        assert!(s.l2.hit_rate() > 0.7, "L2 retains: {}", s.l2.hit_rate());
        assert!(s.hbm_fraction() < 0.3);
    }

    #[test]
    fn hierarchy_records_telemetry_counters() {
        let registry = mmg_telemetry::Registry::new();
        let l1 = CacheConfig { capacity_bytes: 512, line_bytes: 64, ways: 2 };
        let l2 = CacheConfig { capacity_bytes: 16 * 1024, line_bytes: 64, ways: 8 };
        let mut h = CacheHierarchy::with_registry(l1, l2, &registry);
        for _pass in 0..2 {
            for i in 0..4u64 {
                h.access(i * 64);
            }
        }
        let stats = h.stats();
        assert_eq!(registry.counter("gpu_l1_accesses_total").get(), stats.l1.accesses);
        assert_eq!(registry.counter("gpu_l1_hits_total").get(), stats.l1.hits);
        assert_eq!(registry.counter("gpu_l2_accesses_total").get(), stats.l2.accesses);
        assert_eq!(registry.counter("gpu_l2_hits_total").get(), stats.l2.hits);
        assert!(stats.l1.hits > 0, "warm second pass should hit L1");
    }

    #[test]
    fn device_hierarchy_builds() {
        let h = CacheHierarchy::for_device(&DeviceSpec::a100_80gb());
        assert_eq!(h.l1.config().capacity_bytes, 192 * 1024);
        assert_eq!(h.l2.config().capacity_bytes, 40 * 1024 * 1024);
    }

    #[test]
    fn reset_clears_state() {
        let mut c = tiny();
        c.access(0);
        c.reset();
        assert_eq!(c.stats(), CacheStats::default());
        assert!(!c.access(0), "contents cleared too");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_line_panics() {
        let _ = SetAssociativeCache::new(CacheConfig { capacity_bytes: 512, line_bytes: 48, ways: 2 });
    }
}
