//! Set-associative LRU cache simulation.
//!
//! This is the substitute for Nsight Compute's cache counters: kernels in
//! `mmg-kernels` generate representative (sampled) address streams, and this
//! module reports L1/L2 hit rates for them. The paper's Fig. 12 finding —
//! temporal attention's strided accesses collapse the L1 hit rate by ~10x —
//! falls out of the geometry.
//!
//! Because this is the hottest inner loop of the simulator, the cache keeps
//! its tags in one flat array (set-major, MRU-first) and precomputes the
//! set/tag shift-masks; streams can additionally be supplied run-length
//! compressed ([`ProbeRun`]) via [`CacheHierarchy::run_runs`] so regular
//! strided sweeps never materialize a probe vector.

use std::fmt;

use mmg_telemetry::{Counter, Registry};
use serde::{Deserialize, Serialize};

use crate::DeviceSpec;

/// Why a [`CacheConfig`] cannot describe a simulatable cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheGeometryError {
    /// `line_bytes` or `ways` is zero.
    DegenerateGeometry,
    /// `line_bytes` is not a power of two (the simulator derives line
    /// addresses by shifting).
    LineNotPowerOfTwo,
    /// `capacity_bytes` holds fewer lines than one set needs.
    CapacitySmallerThanOneSet,
}

impl fmt::Display for CacheGeometryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheGeometryError::DegenerateGeometry => {
                write!(f, "degenerate cache geometry: line_bytes and ways must be nonzero")
            }
            CacheGeometryError::LineNotPowerOfTwo => {
                write!(f, "line size must be a power of two")
            }
            CacheGeometryError::CapacitySmallerThanOneSet => {
                write!(f, "capacity smaller than one set")
            }
        }
    }
}

impl std::error::Error for CacheGeometryError {}

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: usize,
    /// Line size in bytes (power of two).
    pub line_bytes: usize,
    /// Associativity (ways per set).
    pub ways: usize,
}

impl CacheConfig {
    /// Number of sets implied by the geometry, or a typed error when the
    /// geometry is degenerate (zero-sized, non-power-of-two line, or a
    /// capacity smaller than one set).
    pub fn num_sets(&self) -> Result<usize, CacheGeometryError> {
        if self.line_bytes == 0 || self.ways == 0 {
            return Err(CacheGeometryError::DegenerateGeometry);
        }
        if !self.line_bytes.is_power_of_two() {
            return Err(CacheGeometryError::LineNotPowerOfTwo);
        }
        let lines = self.capacity_bytes / self.line_bytes;
        if lines < self.ways {
            return Err(CacheGeometryError::CapacitySmallerThanOneSet);
        }
        Ok(lines / self.ways)
    }
}

/// Hit/miss counters for one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Total accesses observed.
    pub accesses: u64,
    /// Accesses that hit.
    pub hits: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`; zero-access caches report 0.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

/// A set-associative cache with true-LRU replacement.
///
/// Tags live in one flat `num_sets × ways` array in MRU-first order per
/// set; power-of-two set counts take a mask fast path for the set index.
#[derive(Debug, Clone)]
pub struct SetAssociativeCache {
    config: CacheConfig,
    num_sets: usize,
    line_shift: u32,
    /// `num_sets - 1` when the set count is a power of two; `None` falls
    /// back to a modulo (A100's 384-set L1 is *not* a power of two).
    set_mask: Option<u64>,
    /// Set-major tag storage; within a set the filled prefix is in LRU
    /// order, front = most recent.
    tags: Vec<u64>,
    /// Occupied ways per set.
    filled: Vec<u32>,
    stats: CacheStats,
}

impl SetAssociativeCache {
    /// Builds an empty cache with the given geometry.
    ///
    /// # Errors
    ///
    /// Returns the [`CacheGeometryError`] describing how the geometry is
    /// degenerate.
    pub fn try_new(config: CacheConfig) -> Result<Self, CacheGeometryError> {
        let num_sets = config.num_sets()?;
        Ok(SetAssociativeCache {
            config,
            num_sets,
            line_shift: config.line_bytes.trailing_zeros(),
            set_mask: num_sets.is_power_of_two().then(|| num_sets as u64 - 1),
            tags: vec![0; num_sets * config.ways],
            filled: vec![0; num_sets],
            stats: CacheStats::default(),
        })
    }

    /// Builds an empty cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics on degenerate geometry; sweep drivers that construct
    /// configs programmatically should prefer
    /// [`SetAssociativeCache::try_new`].
    #[must_use]
    pub fn new(config: CacheConfig) -> Self {
        match SetAssociativeCache::try_new(config) {
            Ok(c) => c,
            Err(e) => panic!("{e}"),
        }
    }

    #[inline]
    fn set_index(&self, line: u64) -> usize {
        match self.set_mask {
            Some(mask) => (line & mask) as usize,
            None => (line % self.num_sets as u64) as usize,
        }
    }

    /// Accesses a byte address; returns whether it hit.
    #[inline]
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        let set_idx = self.set_index(line);
        let ways = self.config.ways;
        let n = self.filled[set_idx] as usize;
        let set = &mut self.tags[set_idx * ways..(set_idx + 1) * ways];
        self.stats.accesses += 1;
        if let Some(pos) = set[..n].iter().position(|&t| t == line) {
            // MRU promotion: rotate [0..=pos] right so set[pos] lands at
            // the front and everything before it shifts back one.
            set[..=pos].rotate_right(1);
            self.stats.hits += 1;
            true
        } else {
            if n == ways {
                // Full set: the wrapped-around LRU tag is overwritten.
                set.rotate_right(1);
            } else {
                set[..=n].rotate_right(1);
                self.filled[set_idx] = (n + 1) as u32;
            }
            set[0] = line;
            false
        }
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Clears contents and statistics.
    pub fn reset(&mut self) {
        self.filled.fill(0);
        self.stats = CacheStats::default();
    }

    /// The cache geometry.
    #[must_use]
    pub fn config(&self) -> CacheConfig {
        self.config
    }
}

/// A run-length-compressed segment of a probe stream: `count` addresses
/// starting at `base`, each `stride` bytes after the previous one.
///
/// Strided sweeps (the common case for attention operand walks) compress
/// thousands of probes into one run, so [`CacheHierarchy::run_runs`] can
/// replay them without materializing an address vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProbeRun {
    /// First byte address of the run.
    pub base: u64,
    /// Number of probes in the run (at least 1 for a meaningful run).
    pub count: u64,
    /// Byte distance between consecutive probes; 0 repeats `base`.
    pub stride: u64,
}

impl ProbeRun {
    /// The addresses this run expands to, in order.
    pub fn addrs(&self) -> impl Iterator<Item = u64> + '_ {
        (0..self.count).map(move |i| self.base.wrapping_add(i.wrapping_mul(self.stride)))
    }

    /// Total probes across a slice of runs.
    #[must_use]
    pub fn total(runs: &[ProbeRun]) -> u64 {
        runs.iter().map(|r| r.count).sum()
    }
}

/// Per-level statistics for a two-level hierarchy run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct HierarchyStats {
    /// L1 counters.
    pub l1: CacheStats,
    /// L2 counters (only misses from L1 reach L2).
    pub l2: CacheStats,
}

impl HierarchyStats {
    /// Fraction of accesses that missed both levels (HBM traffic fraction).
    #[must_use]
    pub fn hbm_fraction(&self) -> f64 {
        if self.l1.accesses == 0 {
            return 0.0;
        }
        let l2_misses = self.l2.accesses - self.l2.hits;
        l2_misses as f64 / self.l1.accesses as f64
    }
}

/// An L1 + L2 hierarchy, as seen by one SM's access stream.
///
/// The L1 is one SM's slice; the L2 is the device-wide cache. For sampled
/// single-SM streams this slightly over-estimates L2 hit rates (no
/// cross-SM interference) which is acceptable for the relative comparisons
/// the paper makes.
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    l1: SetAssociativeCache,
    l2: SetAssociativeCache,
    /// L1 line of the immediately preceding access: a repeat is a
    /// guaranteed MRU hit and skips the tag search entirely.
    last_l1_line: Option<u64>,
    metrics: CacheMetrics,
}

/// Telemetry counters updated per simulated access (relaxed atomics).
#[derive(Debug, Clone)]
struct CacheMetrics {
    l1_accesses: Counter,
    l1_hits: Counter,
    l2_accesses: Counter,
    l2_hits: Counter,
}

impl CacheMetrics {
    fn for_registry(registry: &Registry) -> Self {
        CacheMetrics {
            l1_accesses: registry.counter("gpu_l1_accesses_total"),
            l1_hits: registry.counter("gpu_l1_hits_total"),
            l2_accesses: registry.counter("gpu_l2_accesses_total"),
            l2_hits: registry.counter("gpu_l2_hits_total"),
        }
    }
}

impl CacheHierarchy {
    /// Builds the hierarchy from a device spec (L1 = one SM's 4-way cache,
    /// L2 = 16-way device cache), recording to the global telemetry
    /// registry.
    #[must_use]
    pub fn for_device(spec: &DeviceSpec) -> Self {
        CacheHierarchy::for_device_with_registry(spec, &mmg_telemetry::global())
    }

    /// Like [`CacheHierarchy::for_device`], recording to a specific
    /// registry.
    #[must_use]
    pub fn for_device_with_registry(spec: &DeviceSpec, registry: &Registry) -> Self {
        let l1 = CacheConfig {
            capacity_bytes: spec.l1_bytes_per_sm,
            line_bytes: spec.cache_line_bytes,
            ways: 4,
        };
        let l2 = CacheConfig {
            capacity_bytes: spec.l2_bytes,
            line_bytes: spec.cache_line_bytes,
            ways: 16,
        };
        CacheHierarchy::with_registry(l1, l2, registry)
    }

    /// Builds from explicit per-level configs, recording to the global
    /// telemetry registry.
    #[must_use]
    pub fn new(l1: CacheConfig, l2: CacheConfig) -> Self {
        CacheHierarchy::with_registry(l1, l2, &mmg_telemetry::global())
    }

    /// Builds from explicit per-level configs and a telemetry registry.
    #[must_use]
    pub fn with_registry(l1: CacheConfig, l2: CacheConfig, registry: &Registry) -> Self {
        CacheHierarchy {
            l1: SetAssociativeCache::new(l1),
            l2: SetAssociativeCache::new(l2),
            last_l1_line: None,
            metrics: CacheMetrics::for_registry(registry),
        }
    }

    /// L1-then-L2 access updating only the local stats; telemetry is the
    /// caller's problem. Returns `(l1_hit, l2_hit)`; L2 is accessed iff
    /// L1 missed.
    #[inline]
    fn access_raw(&mut self, addr: u64) -> (bool, bool) {
        let line = addr >> self.l1.line_shift;
        if self.last_l1_line == Some(line) {
            // The previous access made this line MRU in its L1 set: a
            // guaranteed hit with no LRU state change.
            self.l1.stats.accesses += 1;
            self.l1.stats.hits += 1;
            return (true, false);
        }
        self.last_l1_line = Some(line);
        if self.l1.access(addr) {
            (true, false)
        } else {
            (false, self.l2.access(addr))
        }
    }

    /// Adds whatever happened since `before` onto the telemetry counters.
    fn flush_metrics(&self, before: HierarchyStats) {
        let after = self.stats();
        self.metrics.l1_accesses.add(after.l1.accesses - before.l1.accesses);
        self.metrics.l1_hits.add(after.l1.hits - before.l1.hits);
        self.metrics.l2_accesses.add(after.l2.accesses - before.l2.accesses);
        self.metrics.l2_hits.add(after.l2.hits - before.l2.hits);
    }

    /// Accesses an address: L1 first, then L2 on miss.
    pub fn access(&mut self, addr: u64) {
        let (l1_hit, l2_hit) = self.access_raw(addr);
        self.metrics.l1_accesses.inc();
        if l1_hit {
            self.metrics.l1_hits.inc();
        } else {
            self.metrics.l2_accesses.inc();
            if l2_hit {
                self.metrics.l2_hits.inc();
            }
        }
    }

    /// Runs a whole address stream. Telemetry counters are updated once
    /// at the end (same totals as per-access updates, without an atomic
    /// op per probe).
    pub fn run<I: IntoIterator<Item = u64>>(&mut self, stream: I) {
        let before = self.stats();
        for a in stream {
            let _ = self.access_raw(a);
        }
        self.flush_metrics(before);
    }

    /// Replays a run-length-compressed probe stream (see [`ProbeRun`])
    /// without materializing the addresses; equivalent to
    /// `self.run(runs.iter().flat_map(ProbeRun::addrs))`.
    pub fn run_runs(&mut self, runs: &[ProbeRun]) {
        let before = self.stats();
        for run in runs {
            let mut addr = run.base;
            for _ in 0..run.count {
                let _ = self.access_raw(addr);
                addr = addr.wrapping_add(run.stride);
            }
        }
        self.flush_metrics(before);
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> HierarchyStats {
        HierarchyStats { l1: self.l1.stats(), l2: self.l2.stats() }
    }

    /// Clears contents and statistics.
    pub fn reset(&mut self) {
        self.l1.reset();
        self.l2.reset();
        self.last_l1_line = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SetAssociativeCache {
        // 4 sets x 2 ways x 64B lines = 512B.
        SetAssociativeCache::new(CacheConfig { capacity_bytes: 512, line_bytes: 64, ways: 2 })
    }

    #[test]
    fn sequential_stream_hits_within_lines() {
        let mut c = tiny();
        // 64 sequential 4-byte words = 4 lines; 1 miss per line.
        for i in 0..64u64 {
            c.access(i * 4);
        }
        let s = c.stats();
        assert_eq!(s.accesses, 64);
        assert_eq!(s.accesses - s.hits, 4, "one miss per 64B line");
        assert!((s.hit_rate() - 60.0 / 64.0).abs() < 1e-9);
    }

    #[test]
    fn repeated_access_hits() {
        let mut c = tiny();
        assert!(!c.access(0));
        assert!(c.access(0));
        assert!(c.access(63)); // same line
        assert!(!c.access(64)); // next line
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = tiny(); // 4 sets; set = (addr/64) % 4
        // Three lines mapping to set 0: lines 0, 4, 8 (addresses 0, 256, 512).
        c.access(0);
        c.access(256);
        c.access(512); // evicts line of addr 0
        assert!(!c.access(0), "LRU line was evicted");
        assert!(c.access(512), "MRU line survives");
    }

    #[test]
    fn strided_stream_thrashes() {
        let mut c = tiny();
        // Stride of 64B over a footprint much larger than capacity: all misses
        // on every pass.
        for _pass in 0..3 {
            for i in 0..64u64 {
                c.access(i * 64 * 4); // 16KB footprint >> 512B capacity
            }
        }
        let s = c.stats();
        assert_eq!(s.hits, 0, "thrashing stride should never hit");
    }

    #[test]
    fn small_working_set_hits_after_warmup() {
        let mut c = tiny();
        // 8 lines = exactly capacity; accessed round-robin LRU-friendly.
        for _pass in 0..4 {
            for i in 0..8u64 {
                c.access(i * 64);
            }
        }
        let s = c.stats();
        // First pass misses (8), subsequent 24 hit.
        assert_eq!(s.accesses - s.hits, 8);
    }

    #[test]
    fn non_pow2_set_count_behaves_like_modulo() {
        // 3 sets x 2 ways: exercises the modulo fallback (no set mask).
        let mut c = SetAssociativeCache::new(CacheConfig {
            capacity_bytes: 6 * 64,
            line_bytes: 64,
            ways: 2,
        });
        assert_eq!(c.config().num_sets(), Ok(3));
        // Lines 0, 3, 6 all map to set 0; third insert evicts line 0.
        c.access(0);
        c.access(3 * 64);
        c.access(6 * 64);
        assert!(!c.access(0), "LRU line evicted in modulo-indexed set");
        assert!(c.access(6 * 64), "surviving line still resident");
        // Line 1 maps to set 1: untouched by the set-0 churn.
        assert!(!c.access(64));
        assert!(c.access(64));
    }

    #[test]
    fn num_sets_reports_typed_errors() {
        let ok = CacheConfig { capacity_bytes: 512, line_bytes: 64, ways: 2 };
        assert_eq!(ok.num_sets(), Ok(4));
        assert_eq!(
            CacheConfig { line_bytes: 0, ..ok }.num_sets(),
            Err(CacheGeometryError::DegenerateGeometry)
        );
        assert_eq!(
            CacheConfig { ways: 0, ..ok }.num_sets(),
            Err(CacheGeometryError::DegenerateGeometry)
        );
        assert_eq!(
            CacheConfig { line_bytes: 48, ..ok }.num_sets(),
            Err(CacheGeometryError::LineNotPowerOfTwo)
        );
        assert_eq!(
            CacheConfig { capacity_bytes: 64, ..ok }.num_sets(),
            Err(CacheGeometryError::CapacitySmallerThanOneSet)
        );
    }

    #[test]
    fn try_new_surfaces_geometry_errors() {
        let bad = CacheConfig { capacity_bytes: 512, line_bytes: 48, ways: 2 };
        assert_eq!(
            SetAssociativeCache::try_new(bad).err(),
            Some(CacheGeometryError::LineNotPowerOfTwo)
        );
        assert!(SetAssociativeCache::try_new(CacheConfig {
            capacity_bytes: 512,
            line_bytes: 64,
            ways: 2,
        })
        .is_ok());
    }

    #[test]
    fn hierarchy_l2_catches_l1_evictions() {
        let l1 = CacheConfig { capacity_bytes: 512, line_bytes: 64, ways: 2 };
        let l2 = CacheConfig { capacity_bytes: 16 * 1024, line_bytes: 64, ways: 8 };
        let mut h = CacheHierarchy::new(l1, l2);
        // Working set of 32 lines (2KB): fits L2, not L1.
        for _pass in 0..4 {
            for i in 0..32u64 {
                h.access(i * 64);
            }
        }
        let s = h.stats();
        assert!(s.l1.hit_rate() < 0.2, "L1 thrashes: {}", s.l1.hit_rate());
        assert!(s.l2.hit_rate() > 0.7, "L2 retains: {}", s.l2.hit_rate());
        assert!(s.hbm_fraction() < 0.3);
    }

    #[test]
    fn hierarchy_records_telemetry_counters() {
        let registry = mmg_telemetry::Registry::new();
        let l1 = CacheConfig { capacity_bytes: 512, line_bytes: 64, ways: 2 };
        let l2 = CacheConfig { capacity_bytes: 16 * 1024, line_bytes: 64, ways: 8 };
        let mut h = CacheHierarchy::with_registry(l1, l2, &registry);
        for _pass in 0..2 {
            for i in 0..4u64 {
                h.access(i * 64);
            }
        }
        let stats = h.stats();
        assert_eq!(registry.counter("gpu_l1_accesses_total").get(), stats.l1.accesses);
        assert_eq!(registry.counter("gpu_l1_hits_total").get(), stats.l1.hits);
        assert_eq!(registry.counter("gpu_l2_accesses_total").get(), stats.l2.accesses);
        assert_eq!(registry.counter("gpu_l2_hits_total").get(), stats.l2.hits);
        assert!(stats.l1.hits > 0, "warm second pass should hit L1");
    }

    #[test]
    fn run_runs_matches_expanded_stream() {
        let l1 = CacheConfig { capacity_bytes: 512, line_bytes: 64, ways: 2 };
        let l2 = CacheConfig { capacity_bytes: 16 * 1024, line_bytes: 64, ways: 8 };
        let runs = [
            ProbeRun { base: 0, count: 64, stride: 32 },
            ProbeRun { base: 1 << 16, count: 100, stride: 4096 },
            ProbeRun { base: 96, count: 1, stride: 0 },
            ProbeRun { base: 0, count: 64, stride: 32 },
        ];
        let ra = mmg_telemetry::Registry::new();
        let mut compressed = CacheHierarchy::with_registry(l1, l2, &ra);
        compressed.run_runs(&runs);
        let rb = mmg_telemetry::Registry::new();
        let mut expanded = CacheHierarchy::with_registry(l1, l2, &rb);
        expanded.run(runs.iter().flat_map(ProbeRun::addrs));
        assert_eq!(compressed.stats(), expanded.stats());
        assert_eq!(ra.counters_snapshot().values(), rb.counters_snapshot().values());
        assert_eq!(compressed.stats().l1.accesses, ProbeRun::total(&runs));
    }

    #[test]
    fn repeated_line_shortcut_keeps_lru_semantics() {
        let l1 = CacheConfig { capacity_bytes: 2 * 64, line_bytes: 64, ways: 2 };
        let l2 = CacheConfig { capacity_bytes: 16 * 1024, line_bytes: 64, ways: 8 };
        let mut h = CacheHierarchy::new(l1, l2);
        // Same line twice (second via the last-line shortcut), then force
        // an eviction pattern that distinguishes MRU from LRU order.
        h.access(0);
        h.access(32); // same line: shortcut hit
        h.access(64); // other way of set 0... (1 set x 2 ways)
        h.access(128); // evicts line 0 (LRU), keeps line 64
        let s = h.stats();
        assert_eq!(s.l1.accesses, 4);
        assert_eq!(s.l1.hits, 1);
        h.access(64);
        assert_eq!(h.stats().l1.hits, 2, "line 64 survived as MRU-1");
    }

    #[test]
    fn device_hierarchy_builds() {
        let h = CacheHierarchy::for_device(&DeviceSpec::a100_80gb());
        assert_eq!(h.l1.config().capacity_bytes, 192 * 1024);
        assert_eq!(h.l2.config().capacity_bytes, 40 * 1024 * 1024);
        // A100 L1: 192KB / 128B / 4 ways = 384 sets; L2: 40MiB / 128B /
        // 16 ways = 20480 sets. Neither is a power of two, so the mask
        // fast path must stay off for both (the modulo fallback is load-
        // bearing on the paper's own platform).
        assert_eq!(h.l1.config.num_sets(), Ok(384));
        assert_eq!(h.l2.config.num_sets(), Ok(20480));
        assert!(h.l1.set_mask.is_none());
        assert!(h.l2.set_mask.is_none());
        // The pow2 path engages for pow2 geometries.
        let pow2 = SetAssociativeCache::new(CacheConfig {
            capacity_bytes: 1 << 16,
            line_bytes: 128,
            ways: 4,
        });
        assert_eq!(pow2.set_mask, Some(127));
    }

    #[test]
    fn reset_clears_state() {
        let mut c = tiny();
        c.access(0);
        c.reset();
        assert_eq!(c.stats(), CacheStats::default());
        assert!(!c.access(0), "contents cleared too");
    }

    #[test]
    fn hierarchy_reset_clears_last_line_shortcut() {
        let l1 = CacheConfig { capacity_bytes: 512, line_bytes: 64, ways: 2 };
        let l2 = CacheConfig { capacity_bytes: 16 * 1024, line_bytes: 64, ways: 8 };
        let mut h = CacheHierarchy::new(l1, l2);
        h.access(0);
        h.reset();
        h.access(0);
        assert_eq!(h.stats().l1.hits, 0, "post-reset access must miss");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_line_panics() {
        let _ = SetAssociativeCache::new(CacheConfig { capacity_bytes: 512, line_bytes: 48, ways: 2 });
    }
}
