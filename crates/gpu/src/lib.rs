//! # mmg-gpu
//!
//! The simulated measurement substrate that replaces the paper's NVIDIA
//! A100 GPUs. It has three parts:
//!
//! * [`DeviceSpec`] — published hardware constants (SM count, peak FLOP/s,
//!   HBM bandwidth, cache geometry, launch overhead) for A100/V100/H100.
//! * A trace-driven, set-associative, LRU [`cache`] model of the L1/L2
//!   hierarchy, used to reproduce the paper's Nsight Compute cache-hit-rate
//!   analysis (Fig. 12).
//! * A roofline-based [`timing`] engine: a kernel's duration is the larger
//!   of its compute time (FLOPs over effective FLOP/s) and its memory time
//!   (HBM bytes over effective bandwidth), floored by a minimum kernel
//!   duration and charged a per-launch overhead. Effective rates are scaled
//!   by shape-dependent efficiency factors supplied by `mmg-kernels`.
//!
//! [`multistream`] adds an event-driven simulation of concurrent kernel
//! streams sharing the compute and memory pipes, used by the Section V
//! pod-scheduling study.
//!
//! The device model is calibrated to public A100 specifications; nothing in
//! it is fitted to the paper's figures.

#![deny(missing_docs)]

pub mod cache;
pub mod memo;
pub mod multistream;
mod roofline;
mod specs;
mod timing;

pub use cache::{
    CacheConfig, CacheGeometryError, CacheHierarchy, CacheStats, HierarchyStats, ProbeRun,
    SetAssociativeCache,
};
pub use memo::ShardedLru;
pub use roofline::{Roofline, RooflinePoint};
pub use specs::DeviceSpec;
pub use timing::{quantize_uj, KernelCost, KernelTime, TimingEngine};
