//! A sharded LRU map for memoizing computed kernel costs.
//!
//! The profiler evaluates the same kernel descriptors thousands of times —
//! a 50-step denoising loop re-costs an identical UNet kernel set every
//! step, and sweeps re-profile near-identical graphs point by point.
//! [`ShardedLru`] gives those callers a concurrent, bounded cache: keys
//! hash to one of a fixed number of shards, each shard is an independently
//! locked `HashMap`, and eviction inside a shard is least-recently-used by
//! a global access tick.
//!
//! Values are handed out as `Arc<V>` so hits never clone the payload, and
//! the map never blocks readers of *other* shards while one shard evicts.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of independently locked shards. A small power of two: enough to
/// keep worker threads from serializing on one lock, small enough that a
/// bounded capacity still divides into useful per-shard budgets.
const SHARDS: usize = 8;

#[derive(Debug)]
struct Slot<V> {
    value: Arc<V>,
    last_used: u64,
}

/// A concurrent, bounded, sharded LRU map.
///
/// # Example
///
/// ```
/// let lru = mmg_gpu::ShardedLru::new(128);
/// assert!(lru.get(&"qk_gemm").is_none());
/// lru.insert("qk_gemm", 42u64);
/// assert_eq!(lru.get(&"qk_gemm").as_deref(), Some(&42));
/// assert_eq!(lru.hits(), 1);
/// assert_eq!(lru.misses(), 1);
/// ```
#[derive(Debug)]
pub struct ShardedLru<K, V> {
    shards: Vec<Mutex<HashMap<K, Slot<V>>>>,
    capacity_per_shard: usize,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<K: Hash + Eq, V> ShardedLru<K, V> {
    /// A map holding at most `capacity` entries (rounded up to a multiple
    /// of the shard count, minimum one entry per shard).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        ShardedLru {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            capacity_per_shard: capacity.div_ceil(SHARDS).max(1),
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, key: &K) -> &Mutex<HashMap<K, Slot<V>>> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % SHARDS]
    }

    /// Looks up `key`, refreshing its recency on a hit. Also counts the
    /// outcome into [`ShardedLru::hits`] / [`ShardedLru::misses`].
    #[must_use]
    pub fn get(&self, key: &K) -> Option<Arc<V>> {
        let mut shard = self.shard_of(key).lock().expect("memo shard poisoned");
        match shard.get_mut(key) {
            Some(slot) => {
                slot.last_used = self.tick.fetch_add(1, Ordering::Relaxed);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&slot.value))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts (or replaces) `key`, evicting the shard's least-recently
    /// used entry if the shard is at capacity. Returns the shared value.
    pub fn insert(&self, key: K, value: V) -> Arc<V>
    where
        K: Clone,
    {
        let value = Arc::new(value);
        let mut shard = self.shard_of(&key).lock().expect("memo shard poisoned");
        if !shard.contains_key(&key) && shard.len() >= self.capacity_per_shard {
            // Keys are small (shapes + enums + hashes); cloning one per
            // eviction beats maintaining a separate recency list.
            if let Some(lru_key) = shard
                .iter()
                .min_by_key(|(_, slot)| slot.last_used)
                .map(|(k, _)| k.clone())
            {
                shard.remove(&lru_key);
            }
        }
        shard.insert(
            key,
            Slot {
                value: Arc::clone(&value),
                last_used: self.tick.fetch_add(1, Ordering::Relaxed),
            },
        );
        value
    }

    /// Entries currently resident across all shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("memo shard poisoned").len())
            .sum()
    }

    /// Whether the map is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups served from the map since construction (or `clear`).
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that found nothing.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// `hits / (hits + misses)`, or 0 before the first lookup.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let h = self.hits();
        let m = self.misses();
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    }

    /// Drops every entry and zeroes the hit/miss statistics.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().expect("memo shard poisoned").clear();
        }
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_insert_round_trip() {
        let lru: ShardedLru<u32, String> = ShardedLru::new(64);
        assert!(lru.get(&7).is_none());
        lru.insert(7, "seven".to_string());
        assert_eq!(lru.get(&7).as_deref().map(String::as_str), Some("seven"));
        assert_eq!(lru.hits(), 1);
        assert_eq!(lru.misses(), 1);
        assert!((lru.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn insert_replaces_existing_key() {
        let lru: ShardedLru<u32, u32> = ShardedLru::new(8);
        lru.insert(1, 10);
        lru.insert(1, 20);
        assert_eq!(lru.len(), 1);
        assert_eq!(lru.get(&1).as_deref(), Some(&20));
    }

    #[test]
    fn capacity_bounds_and_lru_eviction() {
        // One entry per shard: every colliding insert evicts.
        let lru: ShardedLru<u32, u32> = ShardedLru::new(1);
        // Find two keys in the same shard.
        let shard_idx = |k: &u32| {
            let mut h = DefaultHasher::new();
            k.hash(&mut h);
            (h.finish() as usize) % SHARDS
        };
        let a = 0u32;
        let b = (1..1000).find(|k| shard_idx(k) == shard_idx(&a)).unwrap();
        let c = (b + 1..2000).find(|k| shard_idx(k) == shard_idx(&a)).unwrap();
        lru.insert(a, 1);
        lru.insert(b, 2); // evicts a (LRU)
        assert!(lru.get(&a).is_none());
        assert_eq!(lru.get(&b).as_deref(), Some(&2));
        // b was just used; inserting c evicts nothing else but b stays.
        lru.insert(c, 3);
        assert_eq!(lru.get(&c).as_deref(), Some(&3));
    }

    #[test]
    fn recency_is_refreshed_by_get() {
        let lru: ShardedLru<u32, u32> = ShardedLru::new(SHARDS * 2);
        let shard_idx = |k: &u32| {
            let mut h = DefaultHasher::new();
            k.hash(&mut h);
            (h.finish() as usize) % SHARDS
        };
        let a = 0u32;
        let b = (1..1000).find(|k| shard_idx(k) == shard_idx(&a)).unwrap();
        let c = (b + 1..2000).find(|k| shard_idx(k) == shard_idx(&a)).unwrap();
        lru.insert(a, 1);
        lru.insert(b, 2);
        let _ = lru.get(&a); // a becomes MRU; b is now LRU
        lru.insert(c, 3); // shard at capacity 2: evicts b
        assert_eq!(lru.get(&a).as_deref(), Some(&1));
        assert!(lru.get(&b).is_none());
    }

    #[test]
    fn clear_resets_everything() {
        let lru: ShardedLru<u32, u32> = ShardedLru::new(8);
        lru.insert(1, 1);
        let _ = lru.get(&1);
        lru.clear();
        assert!(lru.is_empty());
        assert_eq!(lru.hits(), 0);
        assert_eq!(lru.misses(), 0);
    }

    #[test]
    fn concurrent_access_is_safe() {
        let lru: Arc<ShardedLru<u64, u64>> = Arc::new(ShardedLru::new(256));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let lru = Arc::clone(&lru);
                s.spawn(move || {
                    for i in 0..200u64 {
                        let k = (t * 37 + i) % 64;
                        if lru.get(&k).is_none() {
                            lru.insert(k, k * 2);
                        }
                    }
                });
            }
        });
        for k in 0..64u64 {
            if let Some(v) = lru.get(&k) {
                assert_eq!(*v, k * 2);
            }
        }
    }
}
