//! Event-driven simulation of concurrent kernel streams.
//!
//! A single CUDA stream executes kernels serially, each bounded by the
//! slower of its compute and memory demand. When several independent
//! streams share the device (Section V's staggered denoising "pods"),
//! their kernels contend for two resources — the compute pipe and the
//! memory pipe — and one stream's bandwidth-idle phases can absorb
//! another's bandwidth-hungry phases.
//!
//! The model is processor sharing: at any instant, each pipe serves its
//! active demanders at an equal fractional rate; a kernel departs when it
//! has received both its compute seconds and its memory seconds (kernels
//! overlap the two internally). Per-kernel fixed overhead (launch +
//! minimum-duration floor) serializes on its own stream without consuming
//! shared pipes.

/// Resource demand of one kernel in a stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamKernel {
    /// Compute-pipe service needed, seconds at full rate.
    pub compute_s: f64,
    /// Memory-pipe service needed, seconds at full rate.
    pub memory_s: f64,
    /// Serial per-launch overhead (not pipelined, not shared).
    pub overhead_s: f64,
}

impl StreamKernel {
    /// Serial duration of this kernel on an idle device.
    #[must_use]
    pub fn serial_s(&self) -> f64 {
        self.compute_s.max(self.memory_s) + self.overhead_s
    }
}

#[derive(Debug, Clone, Copy)]
struct Active {
    stream: usize,
    c_rem: f64,
    m_rem: f64,
    /// Remaining overhead before the kernel starts demanding pipes.
    o_rem: f64,
}

const EPS: f64 = 1e-15;

/// Simulates the makespan of `streams` executing concurrently.
///
/// Returns the wall-clock seconds until every stream drains. Streams with
/// no kernels finish immediately.
#[must_use]
pub fn simulate_concurrent(streams: &[Vec<StreamKernel>]) -> f64 {
    let mut next_idx = vec![0usize; streams.len()];
    let mut active: Vec<Active> = Vec::with_capacity(streams.len());
    for (s, stream) in streams.iter().enumerate() {
        if let Some(k) = stream.first() {
            active.push(Active {
                stream: s,
                c_rem: k.compute_s,
                m_rem: k.memory_s,
                o_rem: k.overhead_s,
            });
            next_idx[s] = 1;
        }
    }
    let mut t = 0.0f64;
    while !active.is_empty() {
        // Current sharing rates.
        let n_c = active.iter().filter(|a| a.o_rem <= EPS && a.c_rem > EPS).count().max(1) as f64;
        let n_m = active.iter().filter(|a| a.o_rem <= EPS && a.m_rem > EPS).count().max(1) as f64;
        // Time to the next state change.
        let mut dt = f64::INFINITY;
        for a in &active {
            if a.o_rem > EPS {
                dt = dt.min(a.o_rem);
            } else {
                // The kernel departs when BOTH demands drain; the next
                // event is when either one drains.
                if a.c_rem > EPS {
                    dt = dt.min(a.c_rem * n_c);
                }
                if a.m_rem > EPS {
                    dt = dt.min(a.m_rem * n_m);
                }
            }
        }
        debug_assert!(dt.is_finite() && dt > 0.0, "stuck simulation at t={t}");
        t += dt;
        // Advance all active kernels.
        for a in &mut active {
            if a.o_rem > EPS {
                a.o_rem -= dt;
            } else {
                if a.c_rem > EPS {
                    a.c_rem -= dt / n_c;
                }
                if a.m_rem > EPS {
                    a.m_rem -= dt / n_m;
                }
            }
        }
        // Retire finished kernels, pulling successors in.
        let mut i = 0;
        while i < active.len() {
            let a = active[i];
            if a.o_rem <= EPS && a.c_rem <= EPS && a.m_rem <= EPS {
                let s = a.stream;
                active.swap_remove(i);
                if let Some(k) = streams[s].get(next_idx[s]) {
                    active.push(Active {
                        stream: s,
                        c_rem: k.compute_s,
                        m_rem: k.memory_s,
                        o_rem: k.overhead_s,
                    });
                    next_idx[s] += 1;
                }
            } else {
                i += 1;
            }
        }
    }
    t
}

/// Serial duration of one stream on an idle device.
#[must_use]
pub fn serial_time(stream: &[StreamKernel]) -> f64 {
    stream.iter().map(StreamKernel::serial_s).sum()
}

/// Throughput speedup of running `k` phase-staggered copies of `stream`
/// concurrently versus serially: `k · serial / makespan`.
///
/// Copies are rotated by `i · len/k` kernels so compute-heavy phases of
/// one copy overlap memory-heavy phases of another (the "pod" stagger).
///
/// # Panics
///
/// Panics if `k == 0` or the stream is empty.
#[must_use]
pub fn staggered_speedup(stream: &[StreamKernel], k: usize) -> f64 {
    assert!(k > 0, "need at least one stream");
    assert!(!stream.is_empty(), "empty stream");
    let n = stream.len();
    let streams: Vec<Vec<StreamKernel>> = (0..k)
        .map(|i| {
            let off = i * n / k;
            stream[off..].iter().chain(stream[..off].iter()).copied().collect()
        })
        .collect();
    let makespan = simulate_concurrent(&streams);
    k as f64 * serial_time(stream) / makespan
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compute_kernel(s: f64) -> StreamKernel {
        StreamKernel { compute_s: s, memory_s: s * 0.1, overhead_s: 0.0 }
    }

    fn memory_kernel(s: f64) -> StreamKernel {
        StreamKernel { compute_s: s * 0.1, memory_s: s, overhead_s: 0.0 }
    }

    #[test]
    fn single_stream_matches_serial() {
        let stream = vec![compute_kernel(1.0), memory_kernel(2.0)];
        let makespan = simulate_concurrent(std::slice::from_ref(&stream));
        assert!((makespan - serial_time(&stream)).abs() < 1e-9);
    }

    #[test]
    fn complementary_streams_overlap_perfectly() {
        // One compute-only stream + one memory-only stream: the pipes are
        // disjoint, so the makespan is the longer stream, not the sum.
        let a = vec![StreamKernel { compute_s: 1.0, memory_s: 0.0, overhead_s: 0.0 }];
        let b = vec![StreamKernel { compute_s: 0.0, memory_s: 1.0, overhead_s: 0.0 }];
        let makespan = simulate_concurrent(&[a, b]);
        assert!((makespan - 1.0).abs() < 1e-9, "makespan {makespan}");
    }

    #[test]
    fn identical_compute_streams_do_not_speed_up() {
        // Two compute-bound streams fight over the compute pipe.
        let s = vec![compute_kernel(1.0); 4];
        let speedup = staggered_speedup(&s, 2);
        assert!(speedup < 1.15, "speedup {speedup}");
    }

    #[test]
    fn mixed_stream_gains_from_staggering() {
        // A compute phase followed by a memory phase: the half-stream
        // stagger makes one copy's memory phase overlap the other's
        // compute phase.
        let s = vec![
            compute_kernel(1.0),
            compute_kernel(1.0),
            memory_kernel(1.0),
            memory_kernel(1.0),
        ];
        let speedup = staggered_speedup(&s, 2);
        assert!(speedup > 1.3, "speedup {speedup}");
        assert!(speedup < 2.01);
    }

    #[test]
    fn makespan_respects_resource_lower_bound() {
        let s = vec![
            StreamKernel { compute_s: 0.5, memory_s: 0.3, overhead_s: 0.01 },
            StreamKernel { compute_s: 0.1, memory_s: 0.8, overhead_s: 0.01 },
        ];
        let streams = vec![s.clone(); 3];
        let makespan = simulate_concurrent(&streams);
        let total_c: f64 = 3.0 * s.iter().map(|k| k.compute_s).sum::<f64>();
        let total_m: f64 = 3.0 * s.iter().map(|k| k.memory_s).sum::<f64>();
        assert!(makespan >= total_c.max(total_m) - 1e-9);
        assert!(makespan <= 3.0 * serial_time(&s) + 1e-9);
    }

    #[test]
    fn overhead_serializes_per_stream() {
        let s = vec![StreamKernel { compute_s: 0.0, memory_s: 0.0, overhead_s: 1.0 }; 3];
        // Overhead-only streams run in parallel (overhead is per-stream).
        let makespan = simulate_concurrent(&[s.clone(), s.clone()]);
        assert!((makespan - 3.0).abs() < 1e-9, "makespan {makespan}");
    }

    #[test]
    fn more_streams_never_reduce_throughput() {
        let s = vec![compute_kernel(0.4), memory_kernel(0.6), compute_kernel(0.2)];
        let s2 = staggered_speedup(&s, 2);
        let s4 = staggered_speedup(&s, 4);
        assert!(s2 >= 1.0 - 1e-9);
        // Processor sharing with imperfect offsets can cost a little, but
        // more streams must stay in the same throughput regime.
        assert!(s4 >= s2 - 0.15, "k=4 {s4} vs k=2 {s2}");
    }
}
