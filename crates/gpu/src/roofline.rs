//! Roofline model (Fig. 5).

use serde::{Deserialize, Serialize};

use crate::DeviceSpec;

/// A workload plotted on the roofline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RooflinePoint {
    /// Workload label (model name).
    pub label: String,
    /// Arithmetic intensity in FLOPs per byte.
    pub intensity_flops_per_byte: f64,
    /// Achieved (or attainable) throughput in TFLOP/s.
    pub tflops: f64,
    /// Whether the point sits in the compute-bound region.
    pub compute_bound: bool,
}

/// The roofline of a device: `attainable = min(peak, bw × intensity)`.
#[derive(Debug, Clone)]
pub struct Roofline {
    spec: DeviceSpec,
}

impl Roofline {
    /// Builds the roofline for a device.
    #[must_use]
    pub fn new(spec: DeviceSpec) -> Self {
        Roofline { spec }
    }

    /// Attainable TFLOP/s at a given arithmetic intensity (FP16 peak).
    #[must_use]
    pub fn attainable_tflops(&self, intensity: f64) -> f64 {
        let mem_roof = self.spec.hbm_bytes_per_sec() * intensity / 1e12;
        mem_roof.min(self.spec.peak_fp16_tflops)
    }

    /// The intensity at which the two roofs meet.
    #[must_use]
    pub fn ridge_point(&self) -> f64 {
        self.spec.ridge_flops_per_byte()
    }

    /// Places a workload on the roofline.
    #[must_use]
    pub fn place(&self, label: impl Into<String>, flops: u64, bytes: u64) -> RooflinePoint {
        let intensity = flops as f64 / bytes.max(1) as f64;
        RooflinePoint {
            label: label.into(),
            intensity_flops_per_byte: intensity,
            tflops: self.attainable_tflops(intensity),
            compute_bound: intensity >= self.ridge_point(),
        }
    }

    /// Samples `(intensity, attainable_tflops)` pairs on a log grid for
    /// plotting, spanning `[lo, hi]` FLOPs/byte.
    #[must_use]
    pub fn curve(&self, lo: f64, hi: f64, points: usize) -> Vec<(f64, f64)> {
        assert!(points >= 2 && lo > 0.0 && hi > lo, "invalid curve range");
        let step = (hi / lo).ln() / (points - 1) as f64;
        (0..points)
            .map(|i| {
                let x = lo * (step * i as f64).exp();
                (x, self.attainable_tflops(x))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attainable_saturates_at_peak() {
        let r = Roofline::new(DeviceSpec::a100_80gb());
        assert!(r.attainable_tflops(1e6) == 312.0);
        assert!(r.attainable_tflops(1.0) < 3.0);
    }

    #[test]
    fn ridge_separates_regions() {
        let r = Roofline::new(DeviceSpec::a100_80gb());
        let ridge = r.ridge_point();
        assert!(!r.place("low", (ridge * 0.5) as u64 * 100, 100).compute_bound);
        assert!(r.place("high", (ridge * 2.0) as u64 * 100, 100).compute_bound);
    }

    #[test]
    fn curve_is_monotone_nondecreasing() {
        let r = Roofline::new(DeviceSpec::a100_80gb());
        let c = r.curve(0.1, 10_000.0, 64);
        assert_eq!(c.len(), 64);
        for w in c.windows(2) {
            assert!(w[1].1 >= w[0].1 - 1e-9);
        }
    }

    #[test]
    fn place_computes_intensity() {
        let r = Roofline::new(DeviceSpec::a100_80gb());
        let p = r.place("x", 1000, 10);
        assert!((p.intensity_flops_per_byte - 100.0).abs() < 1e-12);
    }
}
