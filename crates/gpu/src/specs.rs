//! Published device constants for the GPUs the paper references.

use serde::{Deserialize, Serialize};

/// Hardware constants of a simulated GPU.
///
/// Values for the provided constructors come from vendor datasheets, not
/// from fitting the paper's results.
///
/// # Example
///
/// ```
/// let a100 = mmg_gpu::DeviceSpec::a100_80gb();
/// assert_eq!(a100.sm_count, 108);
/// assert!(a100.ridge_flops_per_byte() > 100.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Marketing name, e.g. `"A100-SXM4-80GB"`.
    pub name: String,
    /// Number of streaming multiprocessors.
    pub sm_count: u32,
    /// Peak FP16 tensor-core throughput in TFLOP/s (dense).
    pub peak_fp16_tflops: f64,
    /// Peak FP32 CUDA-core throughput in TFLOP/s.
    pub peak_fp32_tflops: f64,
    /// HBM bandwidth in GB/s.
    pub hbm_bandwidth_gbs: f64,
    /// HBM capacity in GiB.
    pub hbm_capacity_gib: f64,
    /// Unified L2 cache size in bytes.
    pub l2_bytes: usize,
    /// L1/shared-memory size per SM in bytes.
    pub l1_bytes_per_sm: usize,
    /// Cache line (sector granularity is finer on real hardware; we model
    /// the 128-byte line).
    pub cache_line_bytes: usize,
    /// Kernel launch overhead in microseconds (driver + dispatch).
    pub kernel_launch_overhead_us: f64,
    /// Minimum achievable kernel duration in microseconds (a kernel that
    /// does almost nothing still occupies the device briefly).
    pub min_kernel_time_us: f64,
    /// Per-GPU NVLink bandwidth in GB/s (unidirectional, all links).
    pub nvlink_bw_gbs: f64,
    /// NVLink/NCCL per-operation latency in microseconds.
    pub nvlink_latency_us: f64,
    /// Board draw in watts when the device is powered but no kernel is
    /// resident (clocks parked, HBM refreshing).
    pub idle_w: f64,
    /// Sustained draw in watts of a fully memory-bound kernel stream —
    /// HBM at peak bandwidth, tensor cores mostly dark.
    pub hbm_bound_w: f64,
    /// Sustained draw in watts of a fully tensor-core-bound kernel
    /// stream — the highest sustained regime below the TDP cap.
    pub tc_bound_w: f64,
    /// Board TDP in watts; per-kernel modeled draw is clamped here.
    pub tdp_w: f64,
}

impl DeviceSpec {
    /// NVIDIA A100-SXM4-80GB — the paper's evaluation platform.
    #[must_use]
    pub fn a100_80gb() -> Self {
        DeviceSpec {
            name: "A100-SXM4-80GB".to_owned(),
            sm_count: 108,
            peak_fp16_tflops: 312.0,
            peak_fp32_tflops: 19.5,
            hbm_bandwidth_gbs: 2039.0,
            hbm_capacity_gib: 80.0,
            l2_bytes: 40 * 1024 * 1024,
            l1_bytes_per_sm: 192 * 1024,
            cache_line_bytes: 128,
            kernel_launch_overhead_us: 4.0,
            min_kernel_time_us: 2.0,
            nvlink_bw_gbs: 300.0,
            nvlink_latency_us: 2.0,
            idle_w: 55.0,
            hbm_bound_w: 280.0,
            tc_bound_w: 390.0,
            tdp_w: 400.0,
        }
    }

    /// NVIDIA A100-SXM4-40GB (lower-bandwidth HBM2 variant).
    #[must_use]
    pub fn a100_40gb() -> Self {
        DeviceSpec {
            name: "A100-SXM4-40GB".to_owned(),
            hbm_bandwidth_gbs: 1555.0,
            hbm_capacity_gib: 40.0,
            ..Self::a100_80gb()
        }
    }

    /// NVIDIA V100-SXM2-32GB (previous generation, for sensitivity studies).
    #[must_use]
    pub fn v100_32gb() -> Self {
        DeviceSpec {
            name: "V100-SXM2-32GB".to_owned(),
            sm_count: 80,
            peak_fp16_tflops: 125.0,
            peak_fp32_tflops: 15.7,
            hbm_bandwidth_gbs: 900.0,
            hbm_capacity_gib: 32.0,
            l2_bytes: 6 * 1024 * 1024,
            l1_bytes_per_sm: 128 * 1024,
            cache_line_bytes: 128,
            kernel_launch_overhead_us: 4.5,
            min_kernel_time_us: 2.5,
            nvlink_bw_gbs: 150.0,
            nvlink_latency_us: 3.0,
            idle_w: 50.0,
            hbm_bound_w: 220.0,
            tc_bound_w: 295.0,
            tdp_w: 300.0,
        }
    }

    /// NVIDIA H100-SXM5-80GB (next generation, for projection studies).
    #[must_use]
    pub fn h100_80gb() -> Self {
        DeviceSpec {
            name: "H100-SXM5-80GB".to_owned(),
            sm_count: 132,
            peak_fp16_tflops: 989.0,
            peak_fp32_tflops: 67.0,
            hbm_bandwidth_gbs: 3350.0,
            hbm_capacity_gib: 80.0,
            l2_bytes: 50 * 1024 * 1024,
            l1_bytes_per_sm: 256 * 1024,
            cache_line_bytes: 128,
            kernel_launch_overhead_us: 3.5,
            min_kernel_time_us: 1.5,
            nvlink_bw_gbs: 450.0,
            nvlink_latency_us: 1.5,
            idle_w: 75.0,
            hbm_bound_w: 480.0,
            tc_bound_w: 690.0,
            tdp_w: 700.0,
        }
    }

    /// NVIDIA L4-24GB (Ada Lovelace inference SKU). A PCIe part with
    /// GDDR6 rather than HBM and no NVLink: the fleet's cheap capacity
    /// tier for latency-tolerant image work, an order of magnitude less
    /// bandwidth than the H-class training parts.
    #[must_use]
    pub fn l4_24gb() -> Self {
        DeviceSpec {
            name: "L4-24GB".to_owned(),
            sm_count: 58,
            peak_fp16_tflops: 121.0,
            peak_fp32_tflops: 30.3,
            hbm_bandwidth_gbs: 300.0,
            hbm_capacity_gib: 24.0,
            l2_bytes: 48 * 1024 * 1024,
            l1_bytes_per_sm: 128 * 1024,
            cache_line_bytes: 128,
            kernel_launch_overhead_us: 4.0,
            min_kernel_time_us: 2.0,
            // No NVLink: PCIe Gen4 x16 is the only fabric.
            nvlink_bw_gbs: 32.0,
            nvlink_latency_us: 5.0,
            idle_w: 15.0,
            hbm_bound_w: 50.0,
            tc_bound_w: 70.0,
            tdp_w: 72.0,
        }
    }

    /// NVIDIA H200-SXM-141GB — an H100 compute die paired with HBM3e:
    /// same SM count and tensor throughput, 1.4× the bandwidth and 1.76×
    /// the capacity. The fleet's memory-bound-decode tier.
    #[must_use]
    pub fn h200_141gb() -> Self {
        DeviceSpec {
            name: "H200-SXM-141GB".to_owned(),
            hbm_bandwidth_gbs: 4800.0,
            hbm_capacity_gib: 141.0,
            // HBM3e refresh pushes idle and memory-regime draw up a
            // notch inside the same 700 W board envelope.
            idle_w: 80.0,
            hbm_bound_w: 520.0,
            ..Self::h100_80gb()
        }
    }

    /// Peak FP16 throughput in FLOP/s.
    #[must_use]
    pub fn peak_fp16_flops(&self) -> f64 {
        self.peak_fp16_tflops * 1e12
    }

    /// HBM bandwidth in bytes/s.
    #[must_use]
    pub fn hbm_bytes_per_sec(&self) -> f64 {
        self.hbm_bandwidth_gbs * 1e9
    }

    /// HBM capacity in bytes — the hard ceiling model weights and the
    /// KV cache share on this SKU.
    #[must_use]
    pub fn hbm_capacity_bytes(&self) -> u64 {
        (self.hbm_capacity_gib * 1024.0 * 1024.0 * 1024.0) as u64
    }

    /// The roofline ridge point: FLOPs/byte at which a perfectly efficient
    /// FP16 kernel transitions from memory- to compute-bound.
    #[must_use]
    pub fn ridge_flops_per_byte(&self) -> f64 {
        self.peak_fp16_flops() / self.hbm_bytes_per_sec()
    }

    /// Aggregate L1 capacity across SMs.
    #[must_use]
    pub fn total_l1_bytes(&self) -> usize {
        self.l1_bytes_per_sm * self.sm_count as usize
    }

    /// Tensor-core throughput multiplier for FP8 operands relative to
    /// the FP16 peak. Hopper (H100/H200) and Ada (L4) run FP8 matrix
    /// math at twice the FP16 rate; Ampere and Volta have no FP8 tensor
    /// cores, so an FP8 rewrite gains no compute there (the traffic
    /// reduction still applies). A capability *method* rather than a
    /// field: it derives from the architecture the name encodes, so
    /// existing spec literals and [`DeviceSpec::fingerprint`] are
    /// untouched.
    #[must_use]
    pub fn fp8_compute_speedup(&self) -> f64 {
        if self.name.starts_with("H100") || self.name.starts_with("H200") || self.name.starts_with("L4") {
            2.0
        } else {
            1.0
        }
    }

    /// Tensor-core throughput multiplier for INT8 operands relative to
    /// the FP16 peak: 2× on every tensor-core part since Turing; Volta
    /// (V100) predates INT8 tensor cores and falls back to the FP16
    /// rate.
    #[must_use]
    pub fn int8_compute_speedup(&self) -> f64 {
        if self.name.starts_with("V100") {
            1.0
        } else {
            2.0
        }
    }

    /// A stable 64-bit digest of every field of the spec.
    ///
    /// Memoized kernel costs are keyed on this, so two specs that differ
    /// in *any* constant (even a hand-edited bandwidth) never share cache
    /// entries. Stable within a build: uses `DefaultHasher` with its
    /// fixed default keys, not a `RandomState`.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.name.hash(&mut h);
        self.sm_count.hash(&mut h);
        self.peak_fp16_tflops.to_bits().hash(&mut h);
        self.peak_fp32_tflops.to_bits().hash(&mut h);
        self.hbm_bandwidth_gbs.to_bits().hash(&mut h);
        self.hbm_capacity_gib.to_bits().hash(&mut h);
        self.l2_bytes.hash(&mut h);
        self.l1_bytes_per_sm.hash(&mut h);
        self.cache_line_bytes.hash(&mut h);
        self.kernel_launch_overhead_us.to_bits().hash(&mut h);
        self.min_kernel_time_us.to_bits().hash(&mut h);
        self.nvlink_bw_gbs.to_bits().hash(&mut h);
        self.nvlink_latency_us.to_bits().hash(&mut h);
        self.idle_w.to_bits().hash(&mut h);
        self.hbm_bound_w.to_bits().hash(&mut h);
        self.tc_bound_w.to_bits().hash(&mut h);
        self.tdp_w.to_bits().hash(&mut h);
        h.finish()
    }
}

impl Default for DeviceSpec {
    /// Defaults to the paper's platform, the A100-80GB.
    fn default() -> Self {
        Self::a100_80gb()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hbm_capacity_bytes_is_exact() {
        assert_eq!(DeviceSpec::a100_80gb().hbm_capacity_bytes(), 80 << 30);
        assert_eq!(DeviceSpec::l4_24gb().hbm_capacity_bytes(), 24 << 30);
    }

    #[test]
    fn a100_ridge_point_matches_datasheet_math() {
        let a100 = DeviceSpec::a100_80gb();
        // 312e12 / 2039e9 ≈ 153 flops/byte.
        let ridge = a100.ridge_flops_per_byte();
        assert!((ridge - 153.0).abs() < 2.0, "ridge {ridge}");
    }

    #[test]
    fn generational_ordering_holds() {
        let v100 = DeviceSpec::v100_32gb();
        let a100 = DeviceSpec::a100_80gb();
        let h100 = DeviceSpec::h100_80gb();
        assert!(v100.peak_fp16_tflops < a100.peak_fp16_tflops);
        assert!(a100.peak_fp16_tflops < h100.peak_fp16_tflops);
        assert!(v100.hbm_bandwidth_gbs < a100.hbm_bandwidth_gbs);
    }

    #[test]
    fn default_is_a100() {
        assert_eq!(DeviceSpec::default().name, "A100-SXM4-80GB");
    }

    #[test]
    fn serde_roundtrip() {
        let spec = DeviceSpec::a100_80gb();
        let json = serde_json::to_string(&spec).unwrap();
        let back: DeviceSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn interconnect_scales_with_generation() {
        assert!(DeviceSpec::v100_32gb().nvlink_bw_gbs < DeviceSpec::a100_80gb().nvlink_bw_gbs);
        assert!(DeviceSpec::a100_80gb().nvlink_bw_gbs < DeviceSpec::h100_80gb().nvlink_bw_gbs);
    }

    #[test]
    fn l4_is_the_bandwidth_poor_inference_tier() {
        let l4 = DeviceSpec::l4_24gb();
        let a100 = DeviceSpec::a100_80gb();
        // GDDR6 vs HBM2e: the L4 trades ~7x bandwidth for cost.
        assert!(l4.hbm_bandwidth_gbs < a100.hbm_bandwidth_gbs / 5.0);
        assert!(l4.peak_fp16_tflops < a100.peak_fp16_tflops);
        // PCIe-only fabric is far below any NVLink part.
        assert!(l4.nvlink_bw_gbs < DeviceSpec::v100_32gb().nvlink_bw_gbs);
        // Ada's big L2 partially compensates: larger than the A100's.
        assert!(l4.l2_bytes > a100.l2_bytes);
    }

    #[test]
    fn h200_is_h100_compute_with_hbm3e() {
        let h100 = DeviceSpec::h100_80gb();
        let h200 = DeviceSpec::h200_141gb();
        // Same compute die: identical SM count and tensor throughput.
        assert_eq!(h200.sm_count, h100.sm_count);
        assert_eq!(h200.peak_fp16_tflops, h100.peak_fp16_tflops);
        // HBM3e: ~1.4x bandwidth, 141 GiB capacity.
        let bw_ratio = h200.hbm_bandwidth_gbs / h100.hbm_bandwidth_gbs;
        assert!((bw_ratio - 1.43).abs() < 0.02, "bw ratio {bw_ratio}");
        assert_eq!(h200.hbm_capacity_gib, 141.0);
        // More bandwidth at equal compute lowers the ridge point: the
        // H200 keeps memory-bound decode kernels fed longer.
        assert!(h200.ridge_flops_per_byte() < h100.ridge_flops_per_byte());
    }

    #[test]
    fn fingerprint_distinguishes_devices_and_edits() {
        let a = DeviceSpec::a100_80gb();
        assert_eq!(a.fingerprint(), DeviceSpec::a100_80gb().fingerprint());
        assert_ne!(a.fingerprint(), DeviceSpec::a100_40gb().fingerprint());
        assert_ne!(a.fingerprint(), DeviceSpec::v100_32gb().fingerprint());
        assert_ne!(a.fingerprint(), DeviceSpec::h100_80gb().fingerprint());
        assert_ne!(a.fingerprint(), DeviceSpec::l4_24gb().fingerprint());
        assert_ne!(
            DeviceSpec::h100_80gb().fingerprint(),
            DeviceSpec::h200_141gb().fingerprint()
        );
        let edited = DeviceSpec { hbm_bandwidth_gbs: 2040.0, ..a.clone() };
        assert_ne!(a.fingerprint(), edited.fingerprint());
    }

    #[test]
    fn width_speedups_follow_architecture() {
        // FP8 tensor cores: Hopper/Ada only.
        assert_eq!(DeviceSpec::h100_80gb().fp8_compute_speedup(), 2.0);
        assert_eq!(DeviceSpec::h200_141gb().fp8_compute_speedup(), 2.0);
        assert_eq!(DeviceSpec::l4_24gb().fp8_compute_speedup(), 2.0);
        assert_eq!(DeviceSpec::a100_80gb().fp8_compute_speedup(), 1.0);
        assert_eq!(DeviceSpec::v100_32gb().fp8_compute_speedup(), 1.0);
        // INT8 tensor cores: everything after Volta.
        assert_eq!(DeviceSpec::a100_80gb().int8_compute_speedup(), 2.0);
        assert_eq!(DeviceSpec::a100_40gb().int8_compute_speedup(), 2.0);
        assert_eq!(DeviceSpec::v100_32gb().int8_compute_speedup(), 1.0);
    }

    #[test]
    fn power_regimes_are_ordered_per_sku() {
        // Satellite: idle <= HBM-bound <= TC-bound <= TDP on every
        // shipped SKU, so the per-kernel draw interpolation can never
        // leave the [idle, tdp] envelope.
        for spec in [
            DeviceSpec::a100_80gb(),
            DeviceSpec::a100_40gb(),
            DeviceSpec::v100_32gb(),
            DeviceSpec::h100_80gb(),
            DeviceSpec::l4_24gb(),
            DeviceSpec::h200_141gb(),
        ] {
            assert!(spec.idle_w > 0.0, "{}: idle_w unset", spec.name);
            assert!(
                spec.idle_w <= spec.hbm_bound_w,
                "{}: idle {} > hbm {}",
                spec.name,
                spec.idle_w,
                spec.hbm_bound_w
            );
            assert!(
                spec.hbm_bound_w <= spec.tc_bound_w,
                "{}: hbm {} > tc {}",
                spec.name,
                spec.hbm_bound_w,
                spec.tc_bound_w
            );
            assert!(
                spec.tc_bound_w <= spec.tdp_w,
                "{}: tc {} > tdp {}",
                spec.name,
                spec.tc_bound_w,
                spec.tdp_w
            );
        }
    }

    #[test]
    fn l1_aggregate() {
        let a100 = DeviceSpec::a100_80gb();
        assert_eq!(a100.total_l1_bytes(), 108 * 192 * 1024);
    }
}
