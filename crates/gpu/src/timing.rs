//! Roofline-based kernel timing.

use mmg_telemetry::{Counter, Histogram, Registry};
use serde::{Deserialize, Serialize};

use crate::DeviceSpec;

/// Resource requirements and efficiency of one kernel launch.
///
/// Efficiencies are the fraction of the device's peak each resource can
/// actually sustain for this kernel's shape; `mmg-kernels` supplies them
/// from shape-dependent models (tile/wave quantization, small-matrix
/// underutilization, stride penalties).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KernelCost {
    /// Floating-point operations performed.
    pub flops: u64,
    /// Bytes moved to/from HBM (after cache filtering).
    pub hbm_bytes: u64,
    /// Fraction of peak FP16 FLOP/s attainable. Normally in `(0, 1]`;
    /// reduced-precision rewrites (FP8/INT8 element-width passes) may
    /// exceed 1 because their tensor-core peak is a multiple of the FP16
    /// peak the roofline divides by. Bounded by 4 (no architecture runs
    /// narrow math faster than 4× its FP16 rate).
    pub compute_eff: f64,
    /// Fraction of peak HBM bandwidth attainable, in `(0, 1]`.
    pub memory_eff: f64,
}

impl KernelCost {
    /// A pure data-movement kernel (no math counted).
    #[must_use]
    pub fn memory_only(hbm_bytes: u64, memory_eff: f64) -> Self {
        KernelCost { flops: 0, hbm_bytes, compute_eff: 1.0, memory_eff }
    }

    /// Arithmetic intensity in FLOPs per HBM byte.
    #[must_use]
    pub fn arithmetic_intensity(&self) -> f64 {
        self.flops as f64 / self.hbm_bytes.max(1) as f64
    }
}

/// The simulated duration of a kernel, decomposed for analysis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KernelTime {
    /// Time attributable to computation, seconds.
    pub compute_s: f64,
    /// Time attributable to HBM traffic, seconds.
    pub memory_s: f64,
    /// Fixed launch overhead, seconds.
    pub overhead_s: f64,
    /// Total modelled duration, seconds (roofline max + floor + overhead).
    pub total_s: f64,
    /// Modeled board draw while the kernel body is resident, watts.
    /// Interpolated between the device's idle, HBM-bound, and
    /// tensor-core-bound regimes by achieved-vs-peak intensity, clamped
    /// to TDP.
    pub draw_w: f64,
    /// Energy of the launch, joules: the body integrates `draw_w`, the
    /// launch overhead draws only idle power.
    pub energy_j: f64,
}

impl KernelTime {
    /// Whether the kernel is memory-bandwidth bound.
    #[must_use]
    pub fn is_memory_bound(&self) -> bool {
        self.memory_s > self.compute_s
    }
}

/// Quantizes joules to the whole microjoules the `gpu_energy_uj_total`
/// counter accumulates. One function shared by the live timing path and
/// memo replay so the synthetic counter deltas are bitwise identical.
#[must_use]
pub fn quantize_uj(energy_j: f64) -> u64 {
    (energy_j * 1e6).round() as u64
}

/// Telemetry handles the engine updates on every modelled launch,
/// resolved once at construction so the hot path is a few relaxed
/// atomic ops.
#[derive(Debug, Clone)]
struct TimingMetrics {
    launches: Counter,
    flops: Counter,
    hbm_bytes: Counter,
    memory_bound: Counter,
    compute_bound: Counter,
    kernel_time_us: Histogram,
    energy_uj: Counter,
    power_w: mmg_telemetry::Gauge,
}

impl TimingMetrics {
    fn for_registry(registry: &Registry) -> Self {
        registry.describe("gpu_energy_uj_total", "modeled kernel energy, microjoules");
        registry.describe("gpu_power_w", "modeled board draw of the last kernel launch, watts");
        TimingMetrics {
            launches: registry.counter("gpu_kernel_launches_total"),
            flops: registry.counter("gpu_flops_total"),
            hbm_bytes: registry.counter("gpu_hbm_bytes_total"),
            memory_bound: registry.counter("gpu_kernels_memory_bound_total"),
            compute_bound: registry.counter("gpu_kernels_compute_bound_total"),
            kernel_time_us: registry
                .histogram("gpu_kernel_time_us", &mmg_telemetry::time_buckets_us()),
            energy_uj: registry.counter("gpu_energy_uj_total"),
            power_w: registry.gauge("gpu_power_w"),
        }
    }
}

/// Computes kernel durations against a [`DeviceSpec`].
#[derive(Debug, Clone)]
pub struct TimingEngine {
    spec: DeviceSpec,
    metrics: TimingMetrics,
}

impl TimingEngine {
    /// Creates an engine for a device, recording to the global
    /// telemetry registry.
    #[must_use]
    pub fn new(spec: DeviceSpec) -> Self {
        TimingEngine::with_registry(spec, &mmg_telemetry::global())
    }

    /// Creates an engine recording to a specific registry (test or
    /// sweep isolation).
    #[must_use]
    pub fn with_registry(spec: DeviceSpec, registry: &Registry) -> Self {
        TimingEngine { spec, metrics: TimingMetrics::for_registry(registry) }
    }

    /// The device being simulated.
    #[must_use]
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// Models one kernel launch.
    ///
    /// `time = max(flops/(peak·eff_c), bytes/(bw·eff_m), floor) + launch`.
    ///
    /// # Panics
    ///
    /// Debug-asserts memory efficiency lies in `(0, 1]` and compute
    /// efficiency in `(0, 4]` (values above 1 model reduced-precision
    /// tensor-core peaks that exceed the FP16 peak the roofline divides
    /// by — see [`KernelCost::compute_eff`]).
    #[must_use]
    pub fn kernel_time(&self, cost: &KernelCost) -> KernelTime {
        self.kernel_time_with_overhead(cost, self.spec.kernel_launch_overhead_us * 1e-6)
    }

    /// Like [`TimingEngine::kernel_time`], for a launch inside a
    /// captured CUDA graph: the driver replays the whole sequence from
    /// one submission, so the per-kernel launch overhead vanishes. The
    /// device-occupancy floor stays — capture removes CPU dispatch, not
    /// the kernel's residency on the SMs.
    #[must_use]
    pub fn kernel_time_captured(&self, cost: &KernelCost) -> KernelTime {
        self.kernel_time_with_overhead(cost, 0.0)
    }

    fn kernel_time_with_overhead(&self, cost: &KernelCost, overhead_s: f64) -> KernelTime {
        debug_assert!(cost.compute_eff > 0.0 && cost.compute_eff <= 4.0);
        debug_assert!(cost.memory_eff > 0.0 && cost.memory_eff <= 1.0);
        let compute_s = cost.flops as f64 / (self.spec.peak_fp16_flops() * cost.compute_eff);
        let memory_s = cost.hbm_bytes as f64 / (self.spec.hbm_bytes_per_sec() * cost.memory_eff);
        let floor_s = self.spec.min_kernel_time_us * 1e-6;
        let body = compute_s.max(memory_s).max(floor_s);
        // Power: interpolate from idle toward the tensor-core-bound and
        // HBM-bound regimes by the fraction of each peak the kernel
        // actually sustains over its body. `compute_s * eff / body` is
        // achieved / peak FP16 FLOP rate (clamped: reduced-precision
        // effs above 1 can't draw past the TC regime); the memory term
        // is <= 1 by construction. Both contributions stack (a kernel
        // saturating tensor cores *and* HBM runs hottest) under the TDP
        // clamp. Launch overhead burns only idle power.
        let u_c = if cost.flops == 0 { 0.0 } else { (compute_s * cost.compute_eff / body).min(1.0) };
        let u_m = memory_s * cost.memory_eff / body;
        let draw_w = (self.spec.idle_w
            + (self.spec.tc_bound_w - self.spec.idle_w) * u_c
            + (self.spec.hbm_bound_w - self.spec.idle_w) * u_m)
            .min(self.spec.tdp_w);
        let energy_j = body * draw_w + overhead_s * self.spec.idle_w;
        let time = KernelTime {
            compute_s,
            memory_s,
            overhead_s,
            total_s: body + overhead_s,
            draw_w,
            energy_j,
        };
        self.metrics.launches.inc();
        self.metrics.flops.add(cost.flops);
        self.metrics.hbm_bytes.add(cost.hbm_bytes);
        if time.is_memory_bound() {
            self.metrics.memory_bound.inc();
        } else {
            self.metrics.compute_bound.inc();
        }
        self.metrics.kernel_time_us.observe(time.total_s * 1e6);
        self.metrics.energy_uj.add(quantize_uj(energy_j));
        self.metrics.power_w.set(draw_w);
        time
    }

    /// Sums a sequence of kernels (serial dependency, as in one CUDA stream).
    #[must_use]
    pub fn sequence_time(&self, costs: &[KernelCost]) -> f64 {
        costs.iter().map(|c| self.kernel_time(c).total_s).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> TimingEngine {
        TimingEngine::new(DeviceSpec::a100_80gb())
    }

    #[test]
    fn large_gemm_is_compute_bound() {
        // 8k^3 GEMM: ai ≈ 1365 flops/byte >> ridge 153.
        let n = 8192u64;
        let cost = KernelCost {
            flops: 2 * n * n * n,
            hbm_bytes: 3 * n * n * 2,
            compute_eff: 0.9,
            memory_eff: 0.9,
        };
        let t = engine().kernel_time(&cost);
        assert!(!t.is_memory_bound());
        // 2*8192^3 / (312e12*0.9) ≈ 3.9 ms.
        assert!(t.total_s > 3e-3 && t.total_s < 6e-3, "t={}", t.total_s);
    }

    #[test]
    fn elementwise_is_memory_bound() {
        let cost = KernelCost {
            flops: 1_000_000,
            hbm_bytes: 100_000_000,
            compute_eff: 1.0,
            memory_eff: 0.8,
        };
        let t = engine().kernel_time(&cost);
        assert!(t.is_memory_bound());
    }

    #[test]
    fn tiny_kernel_hits_floor_plus_overhead() {
        let cost = KernelCost { flops: 10, hbm_bytes: 10, compute_eff: 1.0, memory_eff: 1.0 };
        let t = engine().kernel_time(&cost);
        let spec = DeviceSpec::a100_80gb();
        let expect = (spec.min_kernel_time_us + spec.kernel_launch_overhead_us) * 1e-6;
        assert!((t.total_s - expect).abs() < 1e-12);
    }

    #[test]
    fn sequence_sums() {
        let c = KernelCost { flops: 10, hbm_bytes: 10, compute_eff: 1.0, memory_eff: 1.0 };
        let e = engine();
        let one = e.kernel_time(&c).total_s;
        assert!((e.sequence_time(&[c, c, c]) - 3.0 * one).abs() < 1e-12);
    }

    #[test]
    fn lower_efficiency_means_longer() {
        let hi = KernelCost { flops: 1 << 40, hbm_bytes: 1, compute_eff: 0.9, memory_eff: 1.0 };
        let lo = KernelCost { compute_eff: 0.3, ..hi };
        let e = engine();
        assert!(e.kernel_time(&lo).total_s > 2.5 * e.kernel_time(&hi).total_s);
    }

    #[test]
    fn kernel_time_records_telemetry() {
        let registry = mmg_telemetry::Registry::new();
        let engine = TimingEngine::with_registry(DeviceSpec::a100_80gb(), &registry);
        let cost =
            KernelCost { flops: 1000, hbm_bytes: 4096, compute_eff: 1.0, memory_eff: 1.0 };
        let _ = engine.kernel_time(&cost);
        let _ = engine.kernel_time(&cost);
        assert_eq!(registry.counter("gpu_kernel_launches_total").get(), 2);
        assert_eq!(registry.counter("gpu_flops_total").get(), 2000);
        assert_eq!(registry.counter("gpu_hbm_bytes_total").get(), 8192);
        let hist = registry.histogram("gpu_kernel_time_us", &mmg_telemetry::time_buckets_us());
        assert_eq!(hist.count(), 2);
        assert!(hist.quantile(0.99) > 0.0);
    }

    #[test]
    fn captured_launch_drops_overhead_but_keeps_floor() {
        let e = engine();
        let spec = DeviceSpec::a100_80gb();
        // A tiny kernel: captured time is exactly the occupancy floor.
        let tiny = KernelCost { flops: 10, hbm_bytes: 10, compute_eff: 1.0, memory_eff: 1.0 };
        let t = e.kernel_time_captured(&tiny);
        assert_eq!(t.overhead_s, 0.0);
        assert!((t.total_s - spec.min_kernel_time_us * 1e-6).abs() < 1e-12);
        // A big kernel: capture removes only the fixed launch overhead.
        let big = KernelCost {
            flops: 1 << 40,
            hbm_bytes: 1 << 30,
            compute_eff: 0.9,
            memory_eff: 0.9,
        };
        let live = e.kernel_time(&big);
        let cap = e.kernel_time_captured(&big);
        let overhead = spec.kernel_launch_overhead_us * 1e-6;
        assert!((live.total_s - cap.total_s - overhead).abs() < 1e-15);
    }

    #[test]
    fn reduced_precision_eff_above_one_is_accepted() {
        // An FP8 GEMM on a 2x-capable part: compute_eff 1.7 halves the
        // roofline compute time relative to 0.85.
        let base = KernelCost { flops: 1 << 40, hbm_bytes: 1, compute_eff: 0.85, memory_eff: 1.0 };
        let fp8 = KernelCost { compute_eff: 1.7, ..base };
        let e = engine();
        let ratio = e.kernel_time(&base).compute_s / e.kernel_time(&fp8).compute_s;
        assert!((ratio - 2.0).abs() < 1e-9, "ratio {ratio}");
    }

    #[test]
    fn draw_stays_inside_the_power_envelope() {
        let e = engine();
        let spec = DeviceSpec::a100_80gb();
        let shapes = [
            // Compute-bound GEMM, memory-bound elementwise, floor-bound
            // micro-kernel, and a kernel saturating both resources.
            KernelCost { flops: 1 << 42, hbm_bytes: 1 << 20, compute_eff: 0.95, memory_eff: 0.9 },
            KernelCost { flops: 1 << 20, hbm_bytes: 1 << 32, compute_eff: 1.0, memory_eff: 0.85 },
            KernelCost { flops: 10, hbm_bytes: 10, compute_eff: 1.0, memory_eff: 1.0 },
            KernelCost { flops: 1 << 40, hbm_bytes: 1 << 33, compute_eff: 1.0, memory_eff: 1.0 },
        ];
        for cost in shapes {
            let t = e.kernel_time(&cost);
            assert!(t.draw_w >= spec.idle_w, "draw {} below idle", t.draw_w);
            assert!(t.draw_w <= spec.tdp_w, "draw {} above TDP", t.draw_w);
            assert!(t.energy_j > 0.0);
        }
    }

    #[test]
    fn regimes_drive_the_draw() {
        let e = engine();
        let spec = DeviceSpec::a100_80gb();
        // A near-perfect GEMM draws close to the TC-bound regime.
        let gemm =
            KernelCost { flops: 1 << 42, hbm_bytes: 1 << 20, compute_eff: 1.0, memory_eff: 0.9 };
        let t = e.kernel_time(&gemm);
        assert!(t.draw_w > spec.tc_bound_w * 0.98, "gemm draw {}", t.draw_w);
        // A pure HBM stream draws near the HBM-bound regime, well below
        // the GEMM.
        let stream = KernelCost::memory_only(1 << 32, 1.0);
        let s = e.kernel_time(&stream);
        assert!((s.draw_w - spec.hbm_bound_w).abs() < 1.0, "stream draw {}", s.draw_w);
        assert!(s.draw_w < t.draw_w);
        // A floor-bound micro-kernel idles most of its residency.
        let tiny = KernelCost { flops: 10, hbm_bytes: 10, compute_eff: 1.0, memory_eff: 1.0 };
        let micro = e.kernel_time(&tiny);
        assert!(micro.draw_w < spec.idle_w + 1.0, "micro draw {}", micro.draw_w);
    }

    #[test]
    fn energy_integrates_body_at_draw_and_overhead_at_idle() {
        let e = engine();
        let spec = DeviceSpec::a100_80gb();
        let cost =
            KernelCost { flops: 1 << 38, hbm_bytes: 1 << 30, compute_eff: 0.9, memory_eff: 0.9 };
        let t = e.kernel_time(&cost);
        let body_s = t.total_s - t.overhead_s;
        let expect = body_s * t.draw_w + t.overhead_s * spec.idle_w;
        assert!((t.energy_j - expect).abs() < 1e-15, "{} vs {expect}", t.energy_j);
        // Captured launches shed the overhead's idle energy exactly.
        let cap = e.kernel_time_captured(&cost);
        assert!((t.energy_j - cap.energy_j - t.overhead_s * spec.idle_w).abs() < 1e-12);
    }

    #[test]
    fn energy_counter_and_power_gauge_record() {
        let registry = mmg_telemetry::Registry::new();
        let engine = TimingEngine::with_registry(DeviceSpec::a100_80gb(), &registry);
        let cost =
            KernelCost { flops: 1 << 38, hbm_bytes: 1 << 30, compute_eff: 0.9, memory_eff: 0.9 };
        let t = engine.kernel_time(&cost);
        let u = engine.kernel_time(&cost);
        assert_eq!(
            registry.counter("gpu_energy_uj_total").get(),
            quantize_uj(t.energy_j) + quantize_uj(u.energy_j)
        );
        assert_eq!(registry.gauge("gpu_power_w").get(), u.draw_w);
    }

    #[test]
    fn launch_overhead_dominates_microkernels() {
        // Many tiny kernels cost ~overhead each — the decode-phase effect.
        let c = KernelCost { flops: 1000, hbm_bytes: 1000, compute_eff: 1.0, memory_eff: 1.0 };
        let e = engine();
        let t1000 = e.sequence_time(&vec![c; 1000]);
        assert!(t1000 > 5e-3, "1000 launches cost at least 6ms of overhead+floor");
    }
}
