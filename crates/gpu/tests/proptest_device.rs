//! Property-based tests for the device model: timing, caches, and the
//! multistream simulator.

use mmg_gpu::multistream::{simulate_concurrent, serial_time, StreamKernel};
use mmg_gpu::{CacheConfig, DeviceSpec, KernelCost, SetAssociativeCache, TimingEngine};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Kernel time is monotone in FLOPs and bytes.
    #[test]
    fn kernel_time_monotone(flops in 1u64..1_000_000_000_000, bytes in 1u64..1_000_000_000) {
        let engine = TimingEngine::new(DeviceSpec::a100_80gb());
        let base = KernelCost { flops, hbm_bytes: bytes, compute_eff: 0.5, memory_eff: 0.5 };
        let t0 = engine.kernel_time(&base).total_s;
        let more_flops = KernelCost { flops: flops * 2, ..base };
        let more_bytes = KernelCost { hbm_bytes: bytes * 2, ..base };
        prop_assert!(engine.kernel_time(&more_flops).total_s >= t0 - 1e-15);
        prop_assert!(engine.kernel_time(&more_bytes).total_s >= t0 - 1e-15);
    }

    /// Kernel time never undercuts the physical lower bounds.
    #[test]
    fn kernel_time_respects_rooflines(
        flops in 1u64..1_000_000_000_000,
        bytes in 1u64..10_000_000_000,
        ce in 0.01f64..1.0,
        me in 0.01f64..1.0,
    ) {
        let spec = DeviceSpec::a100_80gb();
        let engine = TimingEngine::new(spec.clone());
        let t = engine.kernel_time(&KernelCost { flops, hbm_bytes: bytes, compute_eff: ce, memory_eff: me });
        prop_assert!(t.total_s >= flops as f64 / spec.peak_fp16_flops() - 1e-15);
        prop_assert!(t.total_s >= bytes as f64 / spec.hbm_bytes_per_sec() - 1e-15);
        prop_assert!(t.total_s >= (spec.min_kernel_time_us + spec.kernel_launch_overhead_us) * 1e-6 - 1e-15);
    }

    /// Cache accesses are deterministic: the same stream gives the same
    /// statistics.
    #[test]
    fn cache_is_deterministic(addrs in proptest::collection::vec(0u64..65536, 1..300)) {
        let cfg = CacheConfig { capacity_bytes: 4096, line_bytes: 64, ways: 4 };
        let run = || {
            let mut c = SetAssociativeCache::new(cfg);
            for &a in &addrs {
                c.access(a);
            }
            c.stats()
        };
        prop_assert_eq!(run(), run());
    }

    /// A bigger cache never has fewer hits on the same stream (LRU
    /// inclusion property holds for same-geometry capacity scaling).
    #[test]
    fn larger_cache_never_worse(addrs in proptest::collection::vec(0u64..32768, 1..300)) {
        let hits = |ways: usize| {
            let mut c = SetAssociativeCache::new(CacheConfig {
                capacity_bytes: 1024 * ways,
                line_bytes: 64,
                ways,
            });
            for &a in &addrs {
                c.access(a);
            }
            c.stats().hits
        };
        // Same set count, more ways: strictly more associative.
        prop_assert!(hits(8) >= hits(2));
    }

    /// Multistream makespan sits between the resource lower bound and the
    /// fully serial upper bound.
    #[test]
    fn multistream_bounds(
        kernels in proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0, 0.0f64..0.05), 1..12),
        streams in 1usize..4,
    ) {
        let stream: Vec<StreamKernel> = kernels
            .iter()
            .map(|&(c, m, o)| StreamKernel { compute_s: c, memory_s: m, overhead_s: o })
            .collect();
        // Skip degenerate all-zero streams.
        prop_assume!(serial_time(&stream) > 1e-9);
        let copies = vec![stream.clone(); streams];
        let makespan = simulate_concurrent(&copies);
        let total_c: f64 = streams as f64 * stream.iter().map(|k| k.compute_s).sum::<f64>();
        let total_m: f64 = streams as f64 * stream.iter().map(|k| k.memory_s).sum::<f64>();
        let serial_all = streams as f64 * serial_time(&stream);
        prop_assert!(makespan >= total_c.max(total_m) - 1e-9, "below resource bound");
        prop_assert!(makespan >= serial_time(&stream) - 1e-9, "below single-stream bound");
        prop_assert!(makespan <= serial_all + 1e-9, "above serial bound");
    }
}
