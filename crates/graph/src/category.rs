//! Operator categories — the buckets of the paper's Fig. 6 breakdown.

use std::fmt;

/// The operator families the paper's execution-time breakdown
/// distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpCategory {
    /// Self/cross/temporal attention (score computation + softmax + PV).
    Attention,
    /// 2-D convolutions (including super-resolution stacks).
    Conv,
    /// Dense projections and feed-forward layers.
    Linear,
    /// GroupNorm — the paper calls this out at 4–11% of diffusion time.
    GroupNorm,
    /// LayerNorm / RMSNorm.
    LayerNorm,
    /// Pointwise arithmetic and activations.
    Elementwise,
    /// Layout transforms, copies, KV-cache maintenance.
    Memory,
    /// Token / patch embedding gathers.
    Embedding,
    /// Resampling and everything else.
    Other,
}

impl OpCategory {
    /// All categories in display order (largest-first ordering of the
    /// paper's stacked bars).
    pub const ALL: [OpCategory; 9] = [
        OpCategory::Attention,
        OpCategory::Conv,
        OpCategory::Linear,
        OpCategory::GroupNorm,
        OpCategory::LayerNorm,
        OpCategory::Elementwise,
        OpCategory::Memory,
        OpCategory::Embedding,
        OpCategory::Other,
    ];
}

impl fmt::Display for OpCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpCategory::Attention => "Attention",
            OpCategory::Conv => "Conv",
            OpCategory::Linear => "Linear",
            OpCategory::GroupNorm => "GroupNorm",
            OpCategory::LayerNorm => "LayerNorm",
            OpCategory::Elementwise => "Elementwise",
            OpCategory::Memory => "Memory",
            OpCategory::Embedding => "Embedding",
            OpCategory::Other => "Other",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_categories_unique() {
        for (i, a) in OpCategory::ALL.iter().enumerate() {
            for b in &OpCategory::ALL[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn display_matches_paper_vocabulary() {
        assert_eq!(OpCategory::Attention.to_string(), "Attention");
        assert_eq!(OpCategory::Conv.to_string(), "Conv");
        assert_eq!(OpCategory::GroupNorm.to_string(), "GroupNorm");
    }
}
