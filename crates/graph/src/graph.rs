//! Graphs: ordered, annotated operator sequences.

use crate::{Op, OpCategory};

/// One operator plus the module path it came from.
///
/// Module paths mirror the paper's profiling methodology of hooking module
/// `forward` functions — e.g. `"unet.down.1.self_attn"` — so GPU kernels
/// can be attributed back to model components.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// Dotted module path.
    pub path: String,
    /// The operator.
    pub op: Op,
}

/// An ordered operator sequence — the single-stream execution trace of one
/// forward pass (or one pipeline stage).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Graph {
    nodes: Vec<Node>,
}

impl Graph {
    /// Creates an empty graph.
    #[must_use]
    pub fn new() -> Self {
        Graph::default()
    }

    /// Appends an operator under a module path.
    pub fn push(&mut self, path: impl Into<String>, op: Op) {
        self.nodes.push(Node { path: path.into(), op });
    }

    /// Appends all nodes of another graph, prefixing their paths.
    pub fn extend_prefixed(&mut self, prefix: &str, other: &Graph) {
        for n in &other.nodes {
            self.nodes.push(Node { path: format!("{prefix}.{}", n.path), op: n.op.clone() });
        }
    }

    /// The nodes in execution order.
    #[must_use]
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Number of operators.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no operators.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Total FLOPs of one execution.
    #[must_use]
    pub fn total_flops(&self) -> u64 {
        self.nodes.iter().map(|n| n.op.flops()).sum()
    }

    /// Total trainable parameters (sums every node — callers building
    /// weight-shared loops should count parameters on the per-step graph
    /// once, not per iteration).
    #[must_use]
    pub fn param_count(&self) -> u64 {
        self.nodes.iter().map(|n| n.op.param_count()).sum()
    }

    /// FLOPs grouped by operator category.
    #[must_use]
    pub fn flops_by_category(&self) -> Vec<(OpCategory, u64)> {
        let mut acc: Vec<(OpCategory, u64)> =
            OpCategory::ALL.iter().map(|&c| (c, 0u64)).collect();
        for n in &self.nodes {
            let c = n.op.category();
            if let Some(slot) = acc.iter_mut().find(|(cat, _)| *cat == c) {
                slot.1 += n.op.flops();
            }
        }
        acc.retain(|(_, f)| *f > 0);
        acc
    }

    /// Iterator over attention nodes in call order — the Fig. 7 trace.
    pub fn attention_nodes(&self) -> impl Iterator<Item = &Node> {
        self.nodes.iter().filter(|n| matches!(n.op, Op::Attention { .. }))
    }
}

impl FromIterator<Node> for Graph {
    fn from_iter<T: IntoIterator<Item = Node>>(iter: T) -> Self {
        Graph { nodes: iter.into_iter().collect() }
    }
}

impl Extend<Node> for Graph {
    fn extend<T: IntoIterator<Item = Node>>(&mut self, iter: T) {
        self.nodes.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmg_attn::AttentionShape;
    use crate::AttnKind;

    fn sample() -> Graph {
        let mut g = Graph::new();
        g.push("proj", Op::Linear { tokens: 16, in_features: 8, out_features: 8 });
        g.push(
            "attn",
            Op::Attention {
                shape: AttentionShape::self_attn(1, 1, 16, 8),
                kind: AttnKind::SpatialSelf,
            },
        );
        g.push("act", Op::Activation { elems: 128, kind: crate::ActivationKind::Silu });
        g
    }

    #[test]
    fn push_and_len() {
        let g = sample();
        assert_eq!(g.len(), 3);
        assert!(!g.is_empty());
        assert_eq!(g.nodes()[0].path, "proj");
    }

    #[test]
    fn totals_sum_nodes() {
        let g = sample();
        assert_eq!(
            g.total_flops(),
            g.nodes().iter().map(|n| n.op.flops()).sum::<u64>()
        );
        assert_eq!(g.param_count(), 64);
    }

    #[test]
    fn flops_by_category_drops_empty() {
        let g = sample();
        let by = g.flops_by_category();
        assert!(by.iter().any(|(c, _)| *c == OpCategory::Linear));
        assert!(by.iter().all(|(_, f)| *f > 0));
    }

    #[test]
    fn attention_nodes_filtered() {
        let g = sample();
        let attn: Vec<_> = g.attention_nodes().collect();
        assert_eq!(attn.len(), 1);
        assert_eq!(attn[0].path, "attn");
    }

    #[test]
    fn extend_prefixed_rewrites_paths() {
        let mut g = Graph::new();
        g.extend_prefixed("unet.down", &sample());
        assert_eq!(g.nodes()[0].path, "unet.down.proj");
        assert_eq!(g.len(), 3);
    }
}
