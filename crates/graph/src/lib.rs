//! # mmg-graph
//!
//! The operator-level intermediate representation shared by both execution
//! planes:
//!
//! * Each [`Op`] knows its FLOPs, parameter count, output size, and
//!   operator [`OpCategory`] (the buckets of the paper's Fig. 6 breakdown).
//! * [`lower::lower`] turns an operator into the GPU kernels it launches
//!   (`mmg-kernels` descriptors), respecting the configured
//!   [`AttnImpl`](mmg_attn::AttnImpl) — baseline attention becomes
//!   GEMM + softmax + GEMM with the score matrix streamed through HBM,
//!   flash attention becomes one fused kernel with tile-resident scores.
//! * [`numeric`] executes a subset of operators with real `f32` math at
//!   reduced sizes, validating shapes and semantics.
//!
//! A [`Graph`] is an ordered list of annotated operators — the same
//! sequential-stream model PyTorch inference has on a single GPU.

#![deny(missing_docs)]

mod category;
mod graph;
pub mod lower;
pub mod memory;
pub mod numeric;
mod op;
pub mod optimize;

pub use category::OpCategory;
pub use graph::{Graph, Node};
pub use op::{ActivationKind, AttnKind, Op};
pub use optimize::{ElemWidth, OptConfig, OptStats};
