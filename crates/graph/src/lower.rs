//! Lowering operators to simulated GPU kernels.

use mmg_attn::{AttentionShape, AttnImpl};
use mmg_gpu::KernelCost;
use mmg_kernels::conv::{conv_kernel_with_on, ConvAlgorithm, ConvShape};
use mmg_kernels::gemm::{gemm_compute_eff, GemmShape, DEFAULT_SMS};
use mmg_kernels::memory_bound::{
    elementwise_kernel, gather_kernel, memcpy_kernel, norm_kernel, softmax_kernel,
};
use mmg_kernels::{KernelDesc, KernelKind};

use crate::{AttnKind, Op};

/// Lowers one operator to the kernels it launches.
///
/// `attn` selects baseline (GEMM + softmax + GEMM with HBM-resident
/// scores) or flash (single fused kernel) lowering for attention ops;
/// every other operator lowers identically under both. Convolutions use
/// the implicit-GEMM algorithm; see [`lower_with`] to choose Winograd.
#[must_use]
pub fn lower(op: &Op, attn: AttnImpl, elem_bytes: usize) -> Vec<KernelDesc> {
    lower_with(op, attn, elem_bytes, ConvAlgorithm::ImplicitGemm)
}

/// Like [`lower`], with an explicit convolution algorithm
/// (wave-quantizing against [`DEFAULT_SMS`] SMs).
#[must_use]
pub fn lower_with(
    op: &Op,
    attn: AttnImpl,
    elem_bytes: usize,
    conv_algo: ConvAlgorithm,
) -> Vec<KernelDesc> {
    lower_on(op, attn, elem_bytes, conv_algo, DEFAULT_SMS)
}

/// Like [`lower_with`], wave-quantizing GEMM/conv grids against the SM
/// count of the active device (L4's 58 SMs and H200's 132 quantize
/// differently than the A100 default).
#[must_use]
pub fn lower_on(
    op: &Op,
    attn: AttnImpl,
    elem_bytes: usize,
    conv_algo: ConvAlgorithm,
    sms: usize,
) -> Vec<KernelDesc> {
    match op {
        Op::Linear { tokens, in_features, out_features } => {
            vec![mmg_kernels::gemm::gemm_kernel_on(
                GemmShape::new(*tokens, *out_features, *in_features),
                elem_bytes,
                sms,
            )]
        }
        Op::Conv2d { batch, c_in, c_out, h, w, kernel, stride } => {
            vec![conv_kernel_with_on(
                ConvShape {
                    batch: *batch,
                    c_in: *c_in,
                    c_out: *c_out,
                    h: *h,
                    w: *w,
                    kernel: *kernel,
                    stride: *stride,
                },
                elem_bytes,
                conv_algo,
                sms,
            )]
        }
        Op::Attention { shape, kind } => lower_attention(*shape, *kind, attn, elem_bytes, sms),
        Op::GroupNorm { batch, channels, h, w, .. } => {
            vec![norm_kernel("group", (*batch * channels * h * w) as u64, elem_bytes)]
        }
        Op::LayerNorm { rows, cols } => {
            vec![norm_kernel("layer", (*rows * cols) as u64, elem_bytes)]
        }
        Op::Activation { elems, .. } => {
            vec![elementwise_kernel("act", *elems as u64, 1, 4, elem_bytes)]
        }
        Op::Elementwise { elems, inputs } => {
            vec![elementwise_kernel("binary", *elems as u64, *inputs as u64, 1, elem_bytes)]
        }
        Op::Upsample { batch, c, h, w, factor } => {
            let in_elems = (*batch * c * h * w) as u64;
            let out_elems = in_elems * (*factor as u64).pow(2);
            vec![memcpy_kernel("upsample", (in_elems + out_elems) * elem_bytes as u64, 1.0)]
        }
        Op::Downsample { batch, c, h, w, factor } => {
            let in_elems = (*batch * c * h * w) as u64;
            let out_elems = in_elems / (*factor as u64).pow(2);
            vec![memcpy_kernel("downsample", (in_elems + out_elems) * elem_bytes as u64, 1.0)]
        }
        Op::Embedding { tokens, dim, .. } => vec![gather_kernel(*tokens, *dim, elem_bytes)],
        Op::Memcpy { bytes, amplification } => {
            vec![memcpy_kernel("explicit", *bytes, *amplification)]
        }
    }
}

fn lower_attention(
    shape: AttentionShape,
    kind: AttnKind,
    attn: AttnImpl,
    elem_bytes: usize,
    sms: usize,
) -> Vec<KernelDesc> {
    let e = elem_bytes as u64;
    let bh = (shape.batch * shape.heads) as u64;
    let (sq, skv, d) = (shape.seq_q as u64, shape.seq_kv as u64, shape.head_dim as u64);
    // Temporal attention runs thousands of tiny per-pixel matrices whose
    // blocks thrash the L1 (Fig. 12); the misses are served largely by L2,
    // so the cost shows up as degraded *effective bandwidth*, not as a
    // multiplied HBM byte count. (The strided rearrange copies around the
    // attention are separate `Memcpy` ops emitted by the model builders.)
    let io_eff = if kind == AttnKind::Temporal { 0.5 } else { 0.85 };
    let q_bytes = (bh * sq * d * e) as f64;
    let k_bytes = (bh * skv * d * e) as f64;
    let v_bytes = k_bytes;
    let o_bytes = q_bytes;
    let score_bytes = bh * sq * skv * e;

    let qk_shape = GemmShape::batched(shape.batch * shape.heads, shape.seq_q, shape.seq_kv, shape.head_dim);
    let pv_shape = GemmShape::batched(shape.batch * shape.heads, shape.seq_q, shape.head_dim, shape.seq_kv);

    match attn {
        AttnImpl::Baseline => {
            let qk = KernelDesc::new(
                KernelKind::Gemm,
                format!("attn_qk_b{bh}_sq{sq}_skv{skv}_d{d}"),
                KernelCost {
                    flops: qk_shape.flops(),
                    hbm_bytes: (q_bytes + k_bytes) as u64 + score_bytes,
                    compute_eff: gemm_compute_eff(qk_shape, sms),
                    memory_eff: io_eff,
                },
            )
            .with_out_bytes(score_bytes);
            let scale = elementwise_kernel("attn_scale", bh * sq * skv, 1, 1, elem_bytes);
            // Eager causal attention streams an additive mask over the full
            // score matrix before the softmax — another two passes of HBM
            // traffic that the fused flash kernel eliminates.
            let mask = (kind == AttnKind::Causal && sq > 1)
                .then(|| elementwise_kernel("attn_mask", bh * sq * skv, 2, 1, elem_bytes));
            let softmax = softmax_kernel((bh * sq) as usize, shape.seq_kv, elem_bytes);
            let pv = KernelDesc::new(
                KernelKind::Gemm,
                format!("attn_pv_b{bh}_sq{sq}_skv{skv}_d{d}"),
                KernelCost {
                    flops: pv_shape.flops(),
                    hbm_bytes: score_bytes + (v_bytes + o_bytes) as u64,
                    compute_eff: gemm_compute_eff(pv_shape, sms),
                    memory_eff: io_eff,
                },
            )
            .with_out_bytes(o_bytes as u64);
            let mut kernels = vec![qk, scale];
            kernels.extend(mask);
            kernels.push(softmax);
            kernels.push(pv);
            kernels
        }
        AttnImpl::Flash | AttnImpl::FlashDecoding => {
            // One fused kernel: the score matrix lives in SRAM. Compute
            // efficiency follows the dominant QK^T tile shape with a small
            // fusion tax; HBM traffic is the flash analytic model.
            let mut eff = (gemm_compute_eff(qk_shape, sms) * 0.95)
                .max(mmg_kernels::gemm::MIN_GEMM_EFF);
            let mut bytes = (q_bytes + k_bytes + v_bytes + o_bytes) as u64;
            // A fused attention kernel runs one thread block per
            // (batch·head, query-tile): decode shapes launch only
            // `batch·heads` blocks, too few to saturate HBM. Model the
            // bandwidth saturation as blocks/(blocks+8).
            let mut blocks = (shape.batch * shape.heads) as f64
                * shape.seq_q.div_ceil(128) as f64;
            if attn == AttnImpl::FlashDecoding && shape.seq_q <= 8 {
                // Split-KV decode path (Flash-Decoding): the KV cache is
                // split across enough blocks to fill the device, at the
                // price of one extra partial-result stream and a GEMV-style
                // compute path.
                let split = (2.0 * sms as f64 / blocks).ceil().max(1.0);
                blocks *= split;
                eff = eff.max(0.15);
                bytes += o_bytes as u64;
            }
            let saturation = blocks / (blocks + 8.0);
            let io_eff = io_eff * saturation;
            vec![KernelDesc::new(
                KernelKind::FusedAttention,
                format!("{attn}_attn_b{bh}_sq{sq}_skv{skv}_d{d}"),
                KernelCost {
                    flops: shape.total_flops(),
                    hbm_bytes: bytes,
                    compute_eff: eff,
                    memory_eff: io_eff,
                },
            )
            .with_out_bytes(o_bytes as u64)]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmg_gpu::{DeviceSpec, TimingEngine};

    fn time(kernels: &[KernelDesc]) -> f64 {
        let eng = TimingEngine::new(DeviceSpec::a100_80gb());
        kernels.iter().map(|k| eng.kernel_time(&k.cost).total_s).sum()
    }

    fn sd_spatial() -> Op {
        // Stable-Diffusion-like self-attention at the 64×64 latent.
        Op::Attention {
            shape: AttentionShape::self_attn(2, 8, 4096, 40),
            kind: AttnKind::SpatialSelf,
        }
    }

    #[test]
    fn baseline_lowers_to_four_kernels() {
        let ks = lower(&sd_spatial(), AttnImpl::Baseline, 2);
        assert_eq!(ks.len(), 4);
        assert_eq!(ks[0].kind, KernelKind::Gemm);
        assert_eq!(ks[2].kind, KernelKind::Softmax);
    }

    #[test]
    fn flash_lowers_to_one_fused_kernel() {
        let ks = lower(&sd_spatial(), AttnImpl::Flash, 2);
        assert_eq!(ks.len(), 1);
        assert_eq!(ks[0].kind, KernelKind::FusedAttention);
    }

    #[test]
    fn flash_is_much_faster_for_prefill_like_attention() {
        let base = time(&lower(&sd_spatial(), AttnImpl::Baseline, 2));
        let flash = time(&lower(&sd_spatial(), AttnImpl::Flash, 2));
        assert!(base / flash > 2.0, "prefill speedup {}", base / flash);
    }

    #[test]
    fn flash_barely_helps_decode() {
        let op = Op::Attention {
            shape: AttentionShape::decode_step(1, 32, 2048, 128),
            kind: AttnKind::Causal,
        };
        let base = time(&lower(&op, AttnImpl::Baseline, 2));
        let flash = time(&lower(&op, AttnImpl::Flash, 2));
        let speedup = base / flash;
        assert!(speedup < 2.0, "decode speedup {speedup}");
    }

    #[test]
    fn prefill_speedup_exceeds_decode_speedup() {
        // Section IV-B: flash gains are 1.1–2.5x larger for diffusion
        // (prefill-like) than for autoregressive decode at equal sizes.
        let prefill = sd_spatial();
        let decode = Op::Attention {
            shape: AttentionShape::decode_step(1, 8, 4096, 40),
            kind: AttnKind::Causal,
        };
        let s = |op: &Op| {
            time(&lower(op, AttnImpl::Baseline, 2)) / time(&lower(op, AttnImpl::Flash, 2))
        };
        assert!(s(&prefill) > 1.1 * s(&decode));
    }

    #[test]
    fn temporal_attention_memory_efficiency_degraded() {
        // Temporal kernels run at reduced effective bandwidth (L1 thrash
        // served by L2).
        let shape = AttentionShape::self_attn(4096, 8, 16, 40);
        let temporal = Op::Attention { shape, kind: AttnKind::Temporal };
        let spatial = Op::Attention { shape, kind: AttnKind::SpatialSelf };
        let eff = |op: &Op| lower(op, AttnImpl::Flash, 2)[0].cost.memory_eff;
        assert!(eff(&temporal) < eff(&spatial));
    }

    #[test]
    fn temporal_time_per_flop_far_exceeds_large_spatial() {
        // Fig. 11's mechanism: tiny per-pixel matrices run at a tiny
        // fraction of peak, so temporal attention is slower *per FLOP*.
        let spatial = sd_spatial();
        let temporal = Op::Attention {
            shape: AttentionShape::self_attn(4096, 8, 16, 40),
            kind: AttnKind::Temporal,
        };
        let per_flop = |op: &Op| time(&lower(op, AttnImpl::Flash, 2)) / op.flops() as f64;
        assert!(per_flop(&temporal) > 5.0 * per_flop(&spatial));
    }

    #[test]
    fn linear_lowers_to_gemm() {
        let ks = lower(
            &Op::Linear { tokens: 256, in_features: 1024, out_features: 4096 },
            AttnImpl::Flash,
            2,
        );
        assert_eq!(ks.len(), 1);
        assert_eq!(ks[0].kind, KernelKind::Gemm);
        assert_eq!(ks[0].cost.flops, 2 * 256 * 1024 * 4096);
    }

    #[test]
    fn winograd_lowering_is_cheaper_for_3x3() {
        let op = Op::Conv2d { batch: 1, c_in: 320, c_out: 320, h: 64, w: 64, kernel: 3, stride: 1 };
        let gemm_t = time(&lower_with(&op, AttnImpl::Flash, 2, ConvAlgorithm::ImplicitGemm));
        let wino_t = time(&lower_with(&op, AttnImpl::Flash, 2, ConvAlgorithm::Winograd));
        assert!(wino_t < gemm_t, "winograd {wino_t} vs gemm {gemm_t}");
    }

    #[test]
    fn every_op_lowers_nonempty() {
        let ops = [
            Op::Linear { tokens: 2, in_features: 2, out_features: 2 },
            Op::Conv2d { batch: 1, c_in: 2, c_out: 2, h: 4, w: 4, kernel: 3, stride: 1 },
            sd_spatial(),
            Op::GroupNorm { batch: 1, channels: 4, h: 2, w: 2, groups: 2 },
            Op::LayerNorm { rows: 2, cols: 8 },
            Op::Activation { elems: 16, kind: crate::ActivationKind::Silu },
            Op::Elementwise { elems: 16, inputs: 2 },
            Op::Upsample { batch: 1, c: 2, h: 2, w: 2, factor: 2 },
            Op::Downsample { batch: 1, c: 2, h: 4, w: 4, factor: 2 },
            Op::Embedding { vocab: 100, tokens: 4, dim: 8 },
            Op::Memcpy { bytes: 64, amplification: 1.0 },
        ];
        for op in &ops {
            for attn in [AttnImpl::Baseline, AttnImpl::Flash] {
                assert!(!lower(op, attn, 2).is_empty(), "{op:?}");
            }
        }
    }

    #[test]
    fn lowering_threads_device_sm_count() {
        // The same op wave-quantizes differently on a 58-SM L4 than on
        // the 108-SM A100 default, for GEMM, conv, and attention paths.
        let ops = [
            Op::Linear { tokens: 108 * 128, in_features: 512, out_features: 128 },
            Op::Conv2d { batch: 1, c_in: 320, c_out: 320, h: 64, w: 64, kernel: 3, stride: 1 },
            sd_spatial(),
        ];
        for op in &ops {
            let a100 = lower_on(op, AttnImpl::Baseline, 2, ConvAlgorithm::ImplicitGemm, 108);
            let l4 = lower_on(op, AttnImpl::Baseline, 2, ConvAlgorithm::ImplicitGemm, 58);
            assert!(
                a100.iter().zip(&l4).any(|(a, b)| a.cost.compute_eff != b.cost.compute_eff),
                "{op:?} ignored SM count"
            );
            // Legacy entry point still means "A100 default".
            assert_eq!(lower_with(op, AttnImpl::Baseline, 2, ConvAlgorithm::ImplicitGemm), a100);
        }
    }

    #[test]
    fn attention_kernels_carry_output_footprints() {
        let ks = lower(&sd_spatial(), AttnImpl::Baseline, 2);
        // qk writes the score matrix; pv writes the output tensor.
        assert!(ks[0].out_bytes > 0);
        assert!(ks[ks.len() - 1].out_bytes > 0);
        let flash = lower(&sd_spatial(), AttnImpl::Flash, 2);
        assert!(flash[0].out_bytes > 0);
    }

    #[test]
    fn flops_preserved_by_attention_lowering() {
        // Sum of lowered kernel FLOPs ≈ op FLOPs for both paths.
        let op = sd_spatial();
        let opf = op.flops() as f64;
        for attn in [AttnImpl::Baseline, AttnImpl::Flash] {
            let kf: u64 = lower(&op, attn, 2).iter().map(|k| k.cost.flops).sum();
            let ratio = kf as f64 / opf;
            assert!((0.9..=1.3).contains(&ratio), "{attn:?}: ratio {ratio}");
        }
    }
}
