//! Inference memory accounting.
//!
//! Table I classifies the suite along a *Memory* axis (Parti: High,
//! SD/Muse: Low, Imagen: Medium). This module derives those footprints
//! from the graphs: resident weights, peak transient activations, and the
//! KV cache autoregressive models must hold.

use crate::{AttnKind, Graph, Op};

/// Bytes of one operator's output activation.
#[must_use]
pub fn output_bytes(op: &Op, elem_bytes: usize) -> u64 {
    op.output_elems() * elem_bytes as u64
}

/// KV-cache bytes an attention call implies: K and V of `seq_kv` tokens,
/// held for the whole generation (causal attention only — bidirectional
/// attention recomputes K/V each forward).
#[must_use]
pub fn kv_cache_bytes(op: &Op, elem_bytes: usize) -> u64 {
    match op {
        Op::Attention { shape, kind: AttnKind::Causal } => {
            2 * (shape.batch * shape.heads * shape.seq_kv * shape.head_dim) as u64
                * elem_bytes as u64
        }
        _ => 0,
    }
}

/// Memory footprint of one graph execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoryFootprint {
    /// Resident weight bytes.
    pub weight_bytes: u64,
    /// Peak transient activation bytes (input + output of the widest
    /// operator — a serial executor frees everything else).
    pub peak_activation_bytes: u64,
    /// KV-cache bytes held across the generation.
    pub kv_cache_bytes: u64,
}

impl MemoryFootprint {
    /// Total resident bytes at the peak operator.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.weight_bytes + self.peak_activation_bytes + self.kv_cache_bytes
    }

    /// Merges footprints of graphs resident at the same time (weights of
    /// all pipeline stages stay loaded; transient peaks don't overlap).
    #[must_use]
    pub fn merge_resident(&self, other: &MemoryFootprint) -> MemoryFootprint {
        MemoryFootprint {
            weight_bytes: self.weight_bytes + other.weight_bytes,
            peak_activation_bytes: self.peak_activation_bytes.max(other.peak_activation_bytes),
            kv_cache_bytes: self.kv_cache_bytes.max(other.kv_cache_bytes),
        }
    }
}

/// Computes the footprint of one graph at `elem_bytes` precision.
///
/// The activation peak takes consecutive operator pairs (producer output
/// feeds consumer input) as the live set, which matches a serial executor
/// with immediate frees.
#[must_use]
pub fn graph_footprint(graph: &Graph, elem_bytes: usize) -> MemoryFootprint {
    let weight_bytes = 2 * graph.param_count();
    let mut peak = 0u64;
    let mut prev_out = 0u64;
    let mut kv = 0u64;
    for node in graph.nodes() {
        let out = output_bytes(&node.op, elem_bytes);
        peak = peak.max(prev_out + out);
        if out > 0 {
            prev_out = out;
        }
        kv = kv.max(kv_cache_bytes(&node.op, elem_bytes));
    }
    // Every causal layer holds its own cache; sum across attention nodes.
    let kv_total: u64 =
        graph.nodes().iter().map(|n| kv_cache_bytes(&n.op, elem_bytes)).sum();
    MemoryFootprint { weight_bytes, peak_activation_bytes: peak, kv_cache_bytes: kv_total }
}

/// Total activation bytes a *training* step must keep for the backward
/// pass (the sum of every operator's output, before checkpointing) — the
/// quantity that makes spatial models memory-hungry per sample.
#[must_use]
pub fn stored_activation_bytes(graph: &Graph, elem_bytes: usize) -> u64 {
    graph.nodes().iter().map(|n| output_bytes(&n.op, elem_bytes)).sum()
}

/// Coarse High/Medium/Low classification against GiB thresholds, matching
/// Table I's qualitative axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum MemoryClass {
    /// < 8 GiB resident.
    Low,
    /// 8–24 GiB resident.
    Medium,
    /// > 24 GiB resident.
    High,
}

impl MemoryClass {
    /// Classifies a byte count.
    #[must_use]
    pub fn of(bytes: u64) -> MemoryClass {
        const GIB: u64 = 1 << 30;
        if bytes > 24 * GIB {
            MemoryClass::High
        } else if bytes > 8 * GIB {
            MemoryClass::Medium
        } else {
            MemoryClass::Low
        }
    }
}

impl std::fmt::Display for MemoryClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            MemoryClass::Low => "Low",
            MemoryClass::Medium => "Medium",
            MemoryClass::High => "High",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmg_attn::AttentionShape;

    #[test]
    fn kv_cache_only_for_causal() {
        let shape = AttentionShape::decode_step(1, 32, 4096, 128);
        let causal = Op::Attention { shape, kind: AttnKind::Causal };
        let cross = Op::Attention { shape, kind: AttnKind::Cross };
        assert_eq!(kv_cache_bytes(&causal, 2), 2 * 32 * 4096 * 128 * 2);
        assert_eq!(kv_cache_bytes(&cross, 2), 0);
    }

    #[test]
    fn footprint_tracks_widest_pair() {
        let mut g = Graph::new();
        g.push("small", Op::Linear { tokens: 2, in_features: 4, out_features: 4 });
        g.push("big", Op::Linear { tokens: 1024, in_features: 4, out_features: 1024 });
        g.push("small2", Op::Linear { tokens: 2, in_features: 4, out_features: 4 });
        let f = graph_footprint(&g, 2);
        // Peak = small's output (2*4) + big's output (1024*1024), in bytes.
        assert_eq!(f.peak_activation_bytes, (8 + 1024 * 1024) * 2);
        assert_eq!(f.weight_bytes, 2 * g.param_count());
    }

    #[test]
    fn merge_adds_weights_maxes_activations() {
        let a = MemoryFootprint { weight_bytes: 10, peak_activation_bytes: 5, kv_cache_bytes: 1 };
        let b = MemoryFootprint { weight_bytes: 20, peak_activation_bytes: 3, kv_cache_bytes: 7 };
        let m = a.merge_resident(&b);
        assert_eq!(m.weight_bytes, 30);
        assert_eq!(m.peak_activation_bytes, 5);
        assert_eq!(m.kv_cache_bytes, 7);
        assert_eq!(m.total_bytes(), 42);
    }

    #[test]
    fn classes_split_at_thresholds() {
        const GIB: u64 = 1 << 30;
        assert_eq!(MemoryClass::of(GIB), MemoryClass::Low);
        assert_eq!(MemoryClass::of(10 * GIB), MemoryClass::Medium);
        assert_eq!(MemoryClass::of(40 * GIB), MemoryClass::High);
        assert!(MemoryClass::Low < MemoryClass::High);
    }

    #[test]
    fn stored_activations_exceed_peak() {
        let mut g = Graph::new();
        for i in 0..4 {
            g.push(format!("l{i}"), Op::Linear { tokens: 8, in_features: 8, out_features: 8 });
        }
        let f = graph_footprint(&g, 2);
        assert!(stored_activation_bytes(&g, 2) > f.peak_activation_bytes);
        assert_eq!(stored_activation_bytes(&g, 2), 4 * 64 * 2);
    }

    #[test]
    fn memcpy_does_not_reset_live_set() {
        let mut g = Graph::new();
        g.push("big", Op::Linear { tokens: 100, in_features: 4, out_features: 100 });
        g.push("move", Op::Memcpy { bytes: 64, amplification: 1.0 });
        g.push("next", Op::Linear { tokens: 100, in_features: 100, out_features: 100 });
        let f = graph_footprint(&g, 2);
        assert_eq!(f.peak_activation_bytes, (100 * 100 + 100 * 100) * 2);
    }
}
