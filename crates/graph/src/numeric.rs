//! Numeric execution of operators at reduced sizes.
//!
//! Weights do not exist in the performance plane, so numeric execution
//! synthesizes them deterministically from the operator's parameters. This
//! is enough to validate shape agreement, operator semantics, and the
//! baseline/flash equivalence end-to-end on small chains.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use mmg_attn::{baseline_attention, flash_attention, AttnImpl};
use mmg_tensor::{ops, Result, Tensor, TensorError};

use crate::{ActivationKind, Graph, Op};

fn op_seed(tag: &str, salt: u64) -> u64 {
    let mut h = DefaultHasher::new();
    tag.hash(&mut h);
    salt.hash(&mut h);
    h.finish()
}

fn check_input(op: &Op, input: &Tensor, expected: usize) -> Result<()> {
    if input.numel() != expected {
        return Err(TensorError::InvalidShape {
            op: "numeric_execute",
            reason: format!("{op:?} expects {expected} input elements, got {}", input.numel()),
        });
    }
    Ok(())
}

/// Executes one operator on `input` with synthesized weights.
///
/// Expected input layouts (row-major):
///
/// * `Linear`: `[tokens, in_features]`
/// * `Conv2d`: `[batch, c_in, h, w]`
/// * `Attention` (self/causal/temporal): `[batch·heads, seq_q, head_dim]`
///   (cross-attention synthesizes its key/value context)
/// * `GroupNorm`: `[batch, channels, h, w]`
/// * others: any tensor with the right element count
///
/// # Errors
///
/// Returns [`TensorError::InvalidShape`] when the input element count does
/// not match, and [`TensorError::InvalidParameter`] for ops with no numeric
/// semantics (`Memcpy`).
pub fn execute_op(op: &Op, input: &Tensor, attn: AttnImpl) -> Result<Tensor> {
    match op {
        Op::Linear { tokens, in_features, out_features } => {
            check_input(op, input, tokens * in_features)?;
            let x = input.reshape(&[*tokens, *in_features])?;
            let w = ops::scale(
                &Tensor::randn(&[*in_features, *out_features], op_seed("linear", (*in_features * 31 + *out_features) as u64)),
                1.0 / (*in_features as f32).sqrt(),
            );
            ops::matmul(&x, &w)
        }
        Op::Conv2d { batch, c_in, c_out, h, w, kernel, stride } => {
            check_input(op, input, batch * c_in * h * w)?;
            let x = input.reshape(&[*batch, *c_in, *h, *w])?;
            let wt = ops::scale(
                &Tensor::randn(
                    &[*c_out, *c_in, *kernel, *kernel],
                    op_seed("conv", (*c_in * 131 + *c_out) as u64),
                ),
                1.0 / ((*c_in * kernel * kernel) as f32).sqrt(),
            );
            ops::conv2d(
                &x,
                &wt,
                None,
                ops::Conv2dParams { stride: *stride, padding: kernel / 2 },
            )
        }
        Op::Attention { shape, .. } => {
            let bh = shape.batch * shape.heads;
            check_input(op, input, bh * shape.seq_q * shape.head_dim)?;
            let q = input.reshape(&[bh, shape.seq_q, shape.head_dim])?;
            let (k, v) = if shape.seq_kv == shape.seq_q {
                (q.clone(), q.clone())
            } else {
                let seed = op_seed("attn_ctx", shape.seq_kv as u64);
                (
                    Tensor::randn(&[bh, shape.seq_kv, shape.head_dim], seed),
                    Tensor::randn(&[bh, shape.seq_kv, shape.head_dim], seed + 1),
                )
            };
            match attn {
                AttnImpl::Baseline => baseline_attention(&q, &k, &v),
                // Flash-Decoding is numerically the same tiled recurrence.
                AttnImpl::Flash | AttnImpl::FlashDecoding => flash_attention(&q, &k, &v, 64),
            }
        }
        Op::GroupNorm { batch, channels, h, w, groups } => {
            check_input(op, input, batch * channels * h * w)?;
            let x = input.reshape(&[*batch, *channels, *h, *w])?;
            ops::group_norm(&x, *groups, 1e-5)
        }
        Op::LayerNorm { rows, cols } => {
            check_input(op, input, rows * cols)?;
            let x = input.reshape(&[*rows, *cols])?;
            ops::layer_norm(&x, 1e-5)
        }
        Op::Activation { elems, kind } => {
            check_input(op, input, *elems)?;
            Ok(match kind {
                ActivationKind::Silu => ops::silu(input),
                ActivationKind::Gelu => ops::gelu(input),
                ActivationKind::Relu => ops::relu(input),
            })
        }
        Op::Elementwise { elems, .. } => {
            check_input(op, input, *elems)?;
            // Binary ops in a linear chain act on the input and a
            // synthesized second operand.
            let other = Tensor::randn(input.shape().dims(), op_seed("ew", *elems as u64));
            ops::add(input, &other)
        }
        Op::Upsample { batch, c, h, w, factor } => {
            check_input(op, input, batch * c * h * w)?;
            let x = input.reshape(&[*batch, *c, *h, *w])?;
            ops::upsample_nearest2d(&x, *factor)
        }
        Op::Downsample { batch, c, h, w, factor } => {
            check_input(op, input, batch * c * h * w)?;
            let x = input.reshape(&[*batch, *c, *h, *w])?;
            ops::avg_pool2d(&x, *factor)
        }
        Op::Embedding { tokens, dim, .. } => {
            // Token ids are irrelevant numerically; emit a deterministic
            // embedding block.
            Ok(Tensor::randn(&[*tokens, *dim], op_seed("embed", (*tokens * 7 + *dim) as u64)))
        }
        Op::Memcpy { .. } => Err(TensorError::InvalidParameter {
            op: "numeric_execute",
            reason: "memcpy has no numeric semantics".into(),
        }),
    }
}

/// Executes a chain of operators, feeding each output to the next.
/// `Memcpy` nodes are skipped (pure layout bookkeeping).
///
/// # Errors
///
/// Propagates the first operator error.
pub fn execute_chain(graph: &Graph, input: Tensor, attn: AttnImpl) -> Result<Tensor> {
    let mut x = input;
    for node in graph.nodes() {
        if matches!(node.op, Op::Memcpy { .. }) {
            continue;
        }
        x = execute_op(&node.op, &x, attn)?;
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AttnKind;
    use mmg_attn::AttentionShape;

    #[test]
    fn linear_output_shape() {
        let op = Op::Linear { tokens: 4, in_features: 8, out_features: 16 };
        let x = Tensor::randn(&[4, 8], 1);
        let y = execute_op(&op, &x, AttnImpl::Flash).unwrap();
        assert_eq!(y.shape().dims(), &[4, 16]);
        assert_eq!(y.numel() as u64, op.output_elems());
    }

    #[test]
    fn weights_are_deterministic() {
        let op = Op::Linear { tokens: 4, in_features: 8, out_features: 16 };
        let x = Tensor::randn(&[4, 8], 1);
        let a = execute_op(&op, &x, AttnImpl::Flash).unwrap();
        let b = execute_op(&op, &x, AttnImpl::Flash).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn attention_flash_matches_baseline_in_chain() {
        let mut g = Graph::new();
        g.push("ln", Op::LayerNorm { rows: 8, cols: 16 });
        g.push(
            "attn",
            Op::Attention {
                shape: AttentionShape::self_attn(1, 1, 8, 16),
                kind: AttnKind::SpatialSelf,
            },
        );
        g.push("act", Op::Activation { elems: 128, kind: ActivationKind::Gelu });
        let x = Tensor::randn(&[8, 16], 5);
        let a = execute_chain(&g, x.clone(), AttnImpl::Baseline).unwrap();
        let b = execute_chain(&g, x, AttnImpl::Flash).unwrap();
        assert!(a.max_abs_diff(&b).unwrap() < 1e-4);
    }

    #[test]
    fn conv_chain_shapes_propagate() {
        let mut g = Graph::new();
        g.push("c1", Op::Conv2d { batch: 1, c_in: 3, c_out: 8, h: 8, w: 8, kernel: 3, stride: 1 });
        g.push("gn", Op::GroupNorm { batch: 1, channels: 8, h: 8, w: 8, groups: 4 });
        g.push("act", Op::Activation { elems: 512, kind: ActivationKind::Silu });
        g.push("down", Op::Downsample { batch: 1, c: 8, h: 8, w: 8, factor: 2 });
        let x = Tensor::randn(&[1, 3, 8, 8], 6);
        let y = execute_chain(&g, x, AttnImpl::Flash).unwrap();
        assert_eq!(y.shape().dims(), &[1, 8, 4, 4]);
    }

    #[test]
    fn output_elems_agree_with_numeric_output() {
        // The perf plane's output_elems must match real execution.
        let cases = vec![
            Op::Conv2d { batch: 2, c_in: 3, c_out: 5, h: 8, w: 8, kernel: 3, stride: 2 },
            Op::Upsample { batch: 1, c: 3, h: 4, w: 4, factor: 2 },
            Op::Downsample { batch: 1, c: 4, h: 8, w: 8, factor: 2 },
            Op::LayerNorm { rows: 3, cols: 7 },
        ];
        for op in cases {
            let n_in = match &op {
                Op::Conv2d { batch, c_in, h, w, .. } => batch * c_in * h * w,
                Op::Upsample { batch, c, h, w, .. } | Op::Downsample { batch, c, h, w, .. } => {
                    batch * c * h * w
                }
                Op::LayerNorm { rows, cols } => rows * cols,
                _ => unreachable!(),
            };
            let x = Tensor::randn(&[n_in], 7);
            let y = execute_op(&op, &x, AttnImpl::Flash).unwrap();
            assert_eq!(y.numel() as u64, op.output_elems(), "{op:?}");
        }
    }

    #[test]
    fn wrong_input_size_rejected() {
        let op = Op::Linear { tokens: 4, in_features: 8, out_features: 16 };
        let x = Tensor::randn(&[5, 8], 1);
        assert!(execute_op(&op, &x, AttnImpl::Flash).is_err());
    }

    #[test]
    fn memcpy_has_no_numeric_semantics() {
        let op = Op::Memcpy { bytes: 10, amplification: 1.0 };
        assert!(execute_op(&op, &Tensor::zeros(&[1]), AttnImpl::Flash).is_err());
    }
}
