//! The operator set.

use std::fmt;

use mmg_attn::AttentionShape;

use crate::OpCategory;

/// Which attention role an [`Op::Attention`] plays — needed by the
/// sequence-length tracer (Fig. 7) and the spatial/temporal split
/// (Fig. 11).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttnKind {
    /// Self-attention across an image/latent's pixels.
    SpatialSelf,
    /// Cross-attention to the encoded text prompt.
    Cross,
    /// Temporal attention across video frames (strided-view operands).
    Temporal,
    /// Causal self-attention in a text/token transformer.
    Causal,
}

impl fmt::Display for AttnKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AttnKind::SpatialSelf => "spatial_self",
            AttnKind::Cross => "cross",
            AttnKind::Temporal => "temporal",
            AttnKind::Causal => "causal",
        };
        f.write_str(s)
    }
}

/// Pointwise activation flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ActivationKind {
    /// SiLU/swish (diffusion UNets).
    Silu,
    /// GELU (transformer FFNs).
    Gelu,
    /// ReLU.
    Relu,
}

/// One operator with fully-resolved sizes.
///
/// Sizes are resolved when model builders construct the graph, so every
/// cost query is O(1); there is no symbolic shape propagation to run at
/// profile time.
///
/// `Op` is `Eq + Hash` so it can key memoized kernel costs; the one
/// float field ([`Op::Memcpy`]'s amplification) compares and hashes by
/// its bit pattern, which is exactly the identity a memo cache wants.
#[derive(Debug, Clone)]
pub enum Op {
    /// Dense projection: `[tokens, in] → [tokens, out]`.
    Linear {
        /// Number of row vectors (batch × sequence).
        tokens: usize,
        /// Input features.
        in_features: usize,
        /// Output features.
        out_features: usize,
    },
    /// Square 2-D convolution with "same" padding.
    Conv2d {
        /// Batch size (frames for video models).
        batch: usize,
        /// Input channels.
        c_in: usize,
        /// Output channels.
        c_out: usize,
        /// Input height.
        h: usize,
        /// Input width.
        w: usize,
        /// Square kernel edge.
        kernel: usize,
        /// Stride (2 = downsampling conv).
        stride: usize,
    },
    /// Scaled-dot-product attention (QKV projections are separate
    /// `Linear` ops).
    Attention {
        /// Logical shape of the call.
        shape: AttentionShape,
        /// Role of the call.
        kind: AttnKind,
    },
    /// GroupNorm over `[batch, channels, h, w]`.
    GroupNorm {
        /// Batch size.
        batch: usize,
        /// Channels.
        channels: usize,
        /// Height.
        h: usize,
        /// Width.
        w: usize,
        /// Group count.
        groups: usize,
    },
    /// LayerNorm (or RMSNorm) over rows.
    LayerNorm {
        /// Row count (batch × sequence).
        rows: usize,
        /// Row width.
        cols: usize,
    },
    /// Pointwise activation.
    Activation {
        /// Elements.
        elems: usize,
        /// Flavour.
        kind: ActivationKind,
    },
    /// Pointwise binary op (residual add, scale, modulation).
    Elementwise {
        /// Elements.
        elems: usize,
        /// Input operand count.
        inputs: usize,
    },
    /// Nearest-neighbour upsampling of `[batch, c, h, w]`.
    Upsample {
        /// Batch size.
        batch: usize,
        /// Channels.
        c: usize,
        /// Input height.
        h: usize,
        /// Input width.
        w: usize,
        /// Integer factor.
        factor: usize,
    },
    /// Average-pool downsampling of `[batch, c, h, w]`.
    Downsample {
        /// Batch size.
        batch: usize,
        /// Channels.
        c: usize,
        /// Input height.
        h: usize,
        /// Input width.
        w: usize,
        /// Integer factor.
        factor: usize,
    },
    /// Embedding gather.
    Embedding {
        /// Vocabulary rows in the table.
        vocab: usize,
        /// Tokens gathered.
        tokens: usize,
        /// Embedding width.
        dim: usize,
    },
    /// Explicit data movement (layout transform, KV-cache append).
    Memcpy {
        /// Logical bytes moved.
        bytes: u64,
        /// Traffic amplification for strided transforms (≥ 1).
        amplification: f64,
    },
}

impl PartialEq for Op {
    fn eq(&self, other: &Self) -> bool {
        use Op::*;
        match (self, other) {
            (
                Linear { tokens: a0, in_features: a1, out_features: a2 },
                Linear { tokens: b0, in_features: b1, out_features: b2 },
            ) => (a0, a1, a2) == (b0, b1, b2),
            (
                Conv2d { batch: a0, c_in: a1, c_out: a2, h: a3, w: a4, kernel: a5, stride: a6 },
                Conv2d { batch: b0, c_in: b1, c_out: b2, h: b3, w: b4, kernel: b5, stride: b6 },
            ) => (a0, a1, a2, a3, a4, a5, a6) == (b0, b1, b2, b3, b4, b5, b6),
            (Attention { shape: a0, kind: a1 }, Attention { shape: b0, kind: b1 }) => {
                (a0, a1) == (b0, b1)
            }
            (
                GroupNorm { batch: a0, channels: a1, h: a2, w: a3, groups: a4 },
                GroupNorm { batch: b0, channels: b1, h: b2, w: b3, groups: b4 },
            ) => (a0, a1, a2, a3, a4) == (b0, b1, b2, b3, b4),
            (LayerNorm { rows: a0, cols: a1 }, LayerNorm { rows: b0, cols: b1 }) => {
                (a0, a1) == (b0, b1)
            }
            (Activation { elems: a0, kind: a1 }, Activation { elems: b0, kind: b1 }) => {
                (a0, a1) == (b0, b1)
            }
            (Elementwise { elems: a0, inputs: a1 }, Elementwise { elems: b0, inputs: b1 }) => {
                (a0, a1) == (b0, b1)
            }
            (
                Upsample { batch: a0, c: a1, h: a2, w: a3, factor: a4 },
                Upsample { batch: b0, c: b1, h: b2, w: b3, factor: b4 },
            )
            | (
                Downsample { batch: a0, c: a1, h: a2, w: a3, factor: a4 },
                Downsample { batch: b0, c: b1, h: b2, w: b3, factor: b4 },
            ) => (a0, a1, a2, a3, a4) == (b0, b1, b2, b3, b4),
            (
                Embedding { vocab: a0, tokens: a1, dim: a2 },
                Embedding { vocab: b0, tokens: b1, dim: b2 },
            ) => (a0, a1, a2) == (b0, b1, b2),
            (
                Memcpy { bytes: a0, amplification: a1 },
                Memcpy { bytes: b0, amplification: b1 },
            ) => a0 == b0 && a1.to_bits() == b1.to_bits(),
            _ => false,
        }
    }
}

impl Eq for Op {}

impl std::hash::Hash for Op {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        use Op::*;
        std::mem::discriminant(self).hash(state);
        match self {
            Linear { tokens, in_features, out_features } => {
                (tokens, in_features, out_features).hash(state);
            }
            Conv2d { batch, c_in, c_out, h, w, kernel, stride } => {
                (batch, c_in, c_out, h, w, kernel, stride).hash(state);
            }
            Attention { shape, kind } => (shape, kind).hash(state),
            GroupNorm { batch, channels, h, w, groups } => {
                (batch, channels, h, w, groups).hash(state);
            }
            LayerNorm { rows, cols } => (rows, cols).hash(state),
            Activation { elems, kind } => (elems, kind).hash(state),
            Elementwise { elems, inputs } => (elems, inputs).hash(state),
            Upsample { batch, c, h, w, factor } | Downsample { batch, c, h, w, factor } => {
                (batch, c, h, w, factor).hash(state);
            }
            Embedding { vocab, tokens, dim } => (vocab, tokens, dim).hash(state),
            Memcpy { bytes, amplification } => (bytes, amplification.to_bits()).hash(state),
        }
    }
}

impl Op {
    /// The Fig. 6 bucket this operator is accounted under.
    #[must_use]
    pub fn category(&self) -> OpCategory {
        match self {
            Op::Linear { .. } => OpCategory::Linear,
            Op::Conv2d { .. } => OpCategory::Conv,
            Op::Attention { .. } => OpCategory::Attention,
            Op::GroupNorm { .. } => OpCategory::GroupNorm,
            Op::LayerNorm { .. } => OpCategory::LayerNorm,
            Op::Activation { .. } | Op::Elementwise { .. } => OpCategory::Elementwise,
            Op::Memcpy { .. } => OpCategory::Memory,
            Op::Embedding { .. } => OpCategory::Embedding,
            Op::Upsample { .. } | Op::Downsample { .. } => OpCategory::Other,
        }
    }

    /// Trainable parameters this operator owns.
    #[must_use]
    pub fn param_count(&self) -> u64 {
        match self {
            Op::Linear { in_features, out_features, .. } => (in_features * out_features) as u64,
            Op::Conv2d { c_in, c_out, kernel, .. } => (c_out * c_in * kernel * kernel) as u64,
            Op::GroupNorm { channels, .. } => 2 * *channels as u64,
            Op::LayerNorm { cols, .. } => 2 * *cols as u64,
            Op::Embedding { vocab, dim, .. } => (vocab * dim) as u64,
            _ => 0,
        }
    }

    /// Floating-point operations for one execution.
    #[must_use]
    pub fn flops(&self) -> u64 {
        match self {
            Op::Linear { tokens, in_features, out_features } => {
                2 * *tokens as u64 * *in_features as u64 * *out_features as u64
            }
            Op::Conv2d { batch, c_in, c_out, h, w, kernel, stride } => {
                let (oh, ow) = (h.div_ceil(*stride), w.div_ceil(*stride));
                2 * (*batch * oh * ow) as u64
                    * *c_out as u64
                    * (*c_in * kernel * kernel) as u64
            }
            Op::Attention { shape, .. } => shape.total_flops(),
            Op::GroupNorm { batch, channels, h, w, .. } => {
                8 * (*batch * channels * h * w) as u64
            }
            Op::LayerNorm { rows, cols } => 8 * (*rows * cols) as u64,
            Op::Activation { elems, .. } => 4 * *elems as u64,
            Op::Elementwise { elems, .. } => *elems as u64,
            Op::Upsample { .. } | Op::Downsample { .. } | Op::Memcpy { .. } => 0,
            Op::Embedding { .. } => 0,
        }
    }

    /// Elements produced by one execution (0 for pure-movement ops where
    /// it is not meaningful).
    #[must_use]
    pub fn output_elems(&self) -> u64 {
        match self {
            Op::Linear { tokens, out_features, .. } => (*tokens * *out_features) as u64,
            Op::Conv2d { batch, c_out, h, w, stride, .. } => {
                (*batch * *c_out * h.div_ceil(*stride) * w.div_ceil(*stride)) as u64
            }
            Op::Attention { shape, .. } => {
                (shape.batch * shape.heads * shape.seq_q * shape.head_dim) as u64
            }
            Op::GroupNorm { batch, channels, h, w, .. } => (*batch * channels * h * w) as u64,
            Op::LayerNorm { rows, cols } => (*rows * cols) as u64,
            Op::Activation { elems, .. } | Op::Elementwise { elems, .. } => *elems as u64,
            Op::Upsample { batch, c, h, w, factor } => {
                (*batch * c * h * factor * w * factor) as u64
            }
            Op::Downsample { batch, c, h, w, factor } => ((*batch * c * h * w) / (factor * factor)) as u64,
            Op::Embedding { tokens, dim, .. } => (*tokens * *dim) as u64,
            Op::Memcpy { .. } => 0,
        }
    }

    /// For attention ops, the logical shape; `None` otherwise.
    #[must_use]
    pub fn attention_shape(&self) -> Option<(AttentionShape, AttnKind)> {
        match self {
            Op::Attention { shape, kind } => Some((*shape, *kind)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categories_match() {
        assert_eq!(
            Op::Linear { tokens: 1, in_features: 2, out_features: 3 }.category(),
            OpCategory::Linear
        );
        assert_eq!(
            Op::Conv2d { batch: 1, c_in: 1, c_out: 1, h: 2, w: 2, kernel: 3, stride: 1 }
                .category(),
            OpCategory::Conv
        );
        assert_eq!(
            Op::Attention {
                shape: AttentionShape::self_attn(1, 1, 4, 4),
                kind: AttnKind::SpatialSelf
            }
            .category(),
            OpCategory::Attention
        );
    }

    #[test]
    fn linear_flops_and_params() {
        let op = Op::Linear { tokens: 10, in_features: 4, out_features: 8 };
        assert_eq!(op.flops(), 2 * 10 * 4 * 8);
        assert_eq!(op.param_count(), 32);
        assert_eq!(op.output_elems(), 80);
    }

    #[test]
    fn conv_flops_account_stride() {
        let op = Op::Conv2d { batch: 1, c_in: 4, c_out: 8, h: 8, w: 8, kernel: 3, stride: 2 };
        assert_eq!(op.flops(), 2 * 16 * 8 * 36);
        assert_eq!(op.output_elems(), 8 * 16);
    }

    #[test]
    fn attention_exposes_shape() {
        let s = AttentionShape::cross_attn(2, 8, 1024, 77, 64);
        let op = Op::Attention { shape: s, kind: AttnKind::Cross };
        let (shape, kind) = op.attention_shape().unwrap();
        assert_eq!(shape.seq_kv, 77);
        assert_eq!(kind, AttnKind::Cross);
        assert!(Op::Elementwise { elems: 1, inputs: 2 }.attention_shape().is_none());
    }

    #[test]
    fn memcpy_has_no_flops_or_params() {
        let op = Op::Memcpy { bytes: 100, amplification: 1.0 };
        assert_eq!(op.flops(), 0);
        assert_eq!(op.param_count(), 0);
    }

    #[test]
    fn op_hashes_and_compares_for_memo_keys() {
        use std::collections::HashSet;
        let a = Op::Memcpy { bytes: 100, amplification: 16.0 };
        let b = Op::Memcpy { bytes: 100, amplification: 16.0 };
        let c = Op::Memcpy { bytes: 100, amplification: 1.0 };
        assert_eq!(a, b);
        assert_ne!(a, c);
        let mut set = HashSet::new();
        set.insert(a.clone());
        assert!(set.contains(&b));
        assert!(!set.contains(&c));
        // Upsample and Downsample share a field layout but must differ.
        let up = Op::Upsample { batch: 1, c: 2, h: 4, w: 4, factor: 2 };
        let down = Op::Downsample { batch: 1, c: 2, h: 4, w: 4, factor: 2 };
        assert_ne!(up, down);
        set.insert(up.clone());
        assert!(!set.contains(&down));
    }

    #[test]
    fn upsample_output_grows_quadratically() {
        let op = Op::Upsample { batch: 1, c: 2, h: 4, w: 4, factor: 2 };
        assert_eq!(op.output_elems(), 2 * 64);
    }
}
