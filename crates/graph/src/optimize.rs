//! Kernel-graph optimization passes.
//!
//! Each pass is a pure rewrite of a lowered [`KernelDesc`] stream — the
//! accelerations the follow-on paper ("Characterizing and Efficiently
//! Accelerating Multimodal Generation Model Inference") measures on real
//! hardware, priced here by the same roofline + wave-quantization models
//! the eager stream uses:
//!
//! * **Epilogue fusion** ([`OptConfig::fuse`]): bandwidth-bound followers
//!   (bias/activation, norm, softmax) fold into the preceding GEMM or
//!   implicit-GEMM conv via [`mmg_kernels::fuse_epilogue`], deleting the
//!   intermediate tensor's HBM round-trip and the follower's launch.
//! * **Element width** ([`OptConfig::width`]): fp16→fp8/int8 halves every
//!   kernel's HBM traffic and raises tensor-core throughput where the
//!   device supports the narrow format
//!   ([`DeviceSpec::fp8_compute_speedup`] /
//!   [`DeviceSpec::int8_compute_speedup`]).
//! * **Graph capture** ([`OptConfig::graph_capture`]): CUDA-graph-style
//!   capture replays the whole stream from one submission, zeroing the
//!   per-kernel dispatch overhead (the occupancy floor stays).
//!
//! Passes compose in that order. Because each rewrite is deterministic
//! and local to the descriptor stream, an [`OptConfig`] embeds cleanly in
//! the profiler's memo key and byte-identical replay keeps working.

use mmg_gpu::DeviceSpec;
use mmg_kernels::{fuse_epilogue, KernelDesc, KernelKind};

/// Element width the kernel stream is rewritten to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ElemWidth {
    /// Keep fp16 operands (no rewrite).
    #[default]
    Fp16,
    /// 8-bit floating point (Hopper/Ada tensor cores).
    Fp8,
    /// 8-bit integer (supported one generation further back).
    Int8,
}

impl ElemWidth {
    /// Multiplier on HBM bytes relative to fp16.
    #[must_use]
    pub fn byte_scale(self) -> f64 {
        match self {
            ElemWidth::Fp16 => 1.0,
            ElemWidth::Fp8 | ElemWidth::Int8 => 0.5,
        }
    }

    /// Tensor-core throughput multiplier on `spec` relative to fp16.
    #[must_use]
    pub fn compute_speedup(self, spec: &DeviceSpec) -> f64 {
        match self {
            ElemWidth::Fp16 => 1.0,
            ElemWidth::Fp8 => spec.fp8_compute_speedup(),
            ElemWidth::Int8 => spec.int8_compute_speedup(),
        }
    }
}

impl std::fmt::Display for ElemWidth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ElemWidth::Fp16 => "fp16",
            ElemWidth::Fp8 => "fp8",
            ElemWidth::Int8 => "int8",
        })
    }
}

/// Which optimization passes rewrite the lowered kernel stream.
///
/// Participates in the profiler's memo key, so it must stay `Copy + Eq +
/// Hash` and default to the identity rewrite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct OptConfig {
    /// Fold bandwidth-bound epilogues into their producing GEMM/conv.
    pub fuse: bool,
    /// Rewrite operand element width (fp16 is the identity).
    pub width: ElemWidth,
    /// Capture the stream as a CUDA graph, eliding launch overheads.
    pub graph_capture: bool,
}

impl OptConfig {
    /// The identity configuration (no pass enabled).
    #[must_use]
    pub fn none() -> Self {
        OptConfig::default()
    }

    /// Every pass enabled, at the widest-reach width (int8).
    #[must_use]
    pub fn all() -> Self {
        OptConfig { fuse: true, width: ElemWidth::Int8, graph_capture: true }
    }

    /// Whether this config rewrites anything at all.
    #[must_use]
    pub fn is_identity(&self) -> bool {
        *self == OptConfig::default()
    }
}

/// What the passes did to one op's kernel stream — fed to telemetry
/// (`kernel_fused_total`, `kernel_launches_elided_total`,
/// `kernel_opt_hbm_bytes_saved_total`) and stored in the memo so replay
/// reproduces the counters byte-for-byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OptStats {
    /// Epilogue kernels folded into a producer (launches deleted).
    pub kernels_fused: u64,
    /// Launch overheads elided by graph capture.
    pub launches_elided: u64,
    /// HBM bytes removed by fusion and width rewrites combined.
    pub hbm_bytes_saved: u64,
}

impl OptStats {
    /// Accumulates another op's stats.
    pub fn absorb(&mut self, other: OptStats) {
        self.kernels_fused += other.kernels_fused;
        self.launches_elided += other.launches_elided;
        self.hbm_bytes_saved += other.hbm_bytes_saved;
    }
}

/// Rewrites `kernels` in place under `cfg`, returning what changed.
///
/// Pass order: fusion (stream shortens), then width (bytes/throughput
/// scale), then capture (overheads elide) — the order the follow-on paper
/// stacks them in, and the one where each pass's bookkeeping stays
/// independent of the ones after it.
pub fn apply(kernels: &mut Vec<KernelDesc>, cfg: &OptConfig, spec: &DeviceSpec) -> OptStats {
    let mut stats = OptStats::default();
    if cfg.is_identity() {
        return stats;
    }
    if cfg.fuse {
        fuse_pass(kernels, &mut stats);
    }
    if cfg.width != ElemWidth::Fp16 {
        width_pass(kernels, cfg.width, spec, &mut stats);
    }
    if cfg.graph_capture {
        for k in kernels.iter_mut() {
            k.captured = true;
        }
        stats.launches_elided += kernels.len() as u64;
    }
    stats
}

/// Greedy forward scan: each kernel tries to fold into the current fusion
/// head; any non-fusible kernel (a `MemCopy`, a `Gather`, another GEMM)
/// becomes the next head, so data-movement boundaries block the pass
/// exactly like a stream dependency would.
fn fuse_pass(kernels: &mut Vec<KernelDesc>, stats: &mut OptStats) {
    let mut out: Vec<KernelDesc> = Vec::with_capacity(kernels.len());
    for k in kernels.drain(..) {
        if let Some(head) = out.last_mut() {
            if let Some(fused) = fuse_epilogue(head, &k) {
                stats.kernels_fused += 1;
                stats.hbm_bytes_saved +=
                    head.cost.hbm_bytes + k.cost.hbm_bytes - fused.cost.hbm_bytes;
                *head = fused;
                continue;
            }
        }
        out.push(k);
    }
    *kernels = out;
}

/// Tensor-core kernel families whose math rate scales with element width.
fn is_tensor_core(kind: KernelKind) -> bool {
    matches!(
        kind,
        KernelKind::Gemm
            | KernelKind::ConvImplicitGemm
            | KernelKind::FusedAttention
            | KernelKind::GemmEpilogue
            | KernelKind::ConvEpilogue
    )
}

fn width_pass(
    kernels: &mut [KernelDesc],
    width: ElemWidth,
    spec: &DeviceSpec,
    stats: &mut OptStats,
) {
    let byte_scale = width.byte_scale();
    let speedup = width.compute_speedup(spec);
    for k in kernels.iter_mut() {
        let new_bytes = (k.cost.hbm_bytes as f64 * byte_scale) as u64;
        stats.hbm_bytes_saved += k.cost.hbm_bytes - new_bytes;
        k.cost.hbm_bytes = new_bytes;
        k.out_bytes = (k.out_bytes as f64 * byte_scale) as u64;
        if is_tensor_core(k.kind) {
            k.cost.compute_eff *= speedup;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;
    use crate::{AttnKind, Op};
    use mmg_attn::{AttentionShape, AttnImpl};
    use mmg_gpu::KernelCost;
    use mmg_kernels::memory_bound::memcpy_kernel;

    fn sd_attention_stream() -> Vec<KernelDesc> {
        // Baseline attention lowers to gemm → scale → softmax → gemm, the
        // canonical fusion chain.
        lower(
            &Op::Attention {
                shape: AttentionShape::self_attn(2, 8, 4096, 40),
                kind: AttnKind::SpatialSelf,
            },
            AttnImpl::Baseline,
            2,
        )
    }

    #[test]
    fn identity_config_is_a_no_op() {
        let mut ks = sd_attention_stream();
        let before = ks.clone();
        let stats = apply(&mut ks, &OptConfig::none(), &DeviceSpec::a100_80gb());
        assert_eq!(ks, before);
        assert_eq!(stats, OptStats::default());
    }

    #[test]
    fn fusion_collapses_attention_chain_and_preserves_flops() {
        let mut ks = sd_attention_stream();
        let flops_before: u64 = ks.iter().map(|k| k.cost.flops).sum();
        let bytes_before: u64 = ks.iter().map(|k| k.cost.hbm_bytes).sum();
        let cfg = OptConfig { fuse: true, ..OptConfig::default() };
        let stats = apply(&mut ks, &cfg, &DeviceSpec::a100_80gb());
        // qk absorbs scale+softmax; pv stays (a GEMM is not an epilogue).
        assert_eq!(ks.len(), 2);
        assert_eq!(ks[0].kind, KernelKind::GemmEpilogue);
        assert_eq!(stats.kernels_fused, 2);
        let flops_after: u64 = ks.iter().map(|k| k.cost.flops).sum();
        let bytes_after: u64 = ks.iter().map(|k| k.cost.hbm_bytes).sum();
        assert_eq!(flops_after, flops_before, "fusion must not change math");
        assert!(bytes_after < bytes_before, "fusion must cut HBM traffic");
        assert_eq!(stats.hbm_bytes_saved, bytes_before - bytes_after);
    }

    #[test]
    fn memcpy_boundary_blocks_fusion() {
        let mut ks = sd_attention_stream();
        // Inject a layout transform between the qk GEMM and its scale
        // epilogue: the chain must not fuse across it.
        ks.insert(1, memcpy_kernel("boundary", 1 << 20, 1.0));
        let n = ks.len();
        let cfg = OptConfig { fuse: true, ..OptConfig::default() };
        let stats = apply(&mut ks, &cfg, &DeviceSpec::a100_80gb());
        // The scale after the memcpy has no producer; softmax then chains
        // onto nothing either (elementwise can't host). Nothing fuses.
        assert_eq!(stats.kernels_fused, 0, "memcpy must block the pass");
        assert_eq!(ks.len(), n);
    }

    #[test]
    fn width_pass_halves_bytes_and_scales_tensor_cores() {
        let spec = DeviceSpec::h100_80gb();
        let mut ks = sd_attention_stream();
        let before = ks.clone();
        let cfg = OptConfig { width: ElemWidth::Fp8, ..OptConfig::default() };
        let stats = apply(&mut ks, &cfg, &spec);
        for (a, b) in before.iter().zip(&ks) {
            assert_eq!(b.cost.hbm_bytes, a.cost.hbm_bytes / 2);
            if a.kind == KernelKind::Gemm {
                assert!((b.cost.compute_eff / a.cost.compute_eff - 2.0).abs() < 1e-12);
            } else {
                assert_eq!(b.cost.compute_eff, a.cost.compute_eff);
            }
        }
        assert!(stats.hbm_bytes_saved > 0);
    }

    #[test]
    fn fp8_gains_nothing_on_ampere_int8_does() {
        let spec = DeviceSpec::a100_80gb();
        let gemm_eff = |width| {
            let mut ks = sd_attention_stream();
            apply(&mut ks, &OptConfig { width, ..OptConfig::default() }, &spec);
            ks[0].cost.compute_eff
        };
        assert_eq!(gemm_eff(ElemWidth::Fp8), gemm_eff(ElemWidth::Fp16));
        assert!(gemm_eff(ElemWidth::Int8) > gemm_eff(ElemWidth::Fp16));
    }

    #[test]
    fn capture_marks_every_kernel_and_counts_elisions() {
        let mut ks = sd_attention_stream();
        let cfg = OptConfig { graph_capture: true, ..OptConfig::default() };
        let stats = apply(&mut ks, &cfg, &DeviceSpec::a100_80gb());
        assert!(ks.iter().all(|k| k.captured));
        assert_eq!(stats.launches_elided, ks.len() as u64);
    }

    #[test]
    fn all_passes_compose() {
        let mut ks = sd_attention_stream();
        let stats = apply(&mut ks, &OptConfig::all(), &DeviceSpec::a100_80gb());
        assert_eq!(ks.len(), 2);
        assert!(ks.iter().all(|k| k.captured));
        assert_eq!(stats.kernels_fused, 2);
        assert_eq!(stats.launches_elided, 2);
        assert!(stats.hbm_bytes_saved > 0);
    }

    #[test]
    fn undersized_epilogue_never_fuses_backwards() {
        // A big GEMM followed by an unrelated tiny elementwise (e.g. a
        // timestep-embedding add): traffic too small to be this GEMM's
        // consumer, so the pass must leave it alone.
        let gemm = KernelDesc::new(
            KernelKind::Gemm,
            "gemm_big",
            KernelCost { flops: 1 << 30, hbm_bytes: 1 << 24, compute_eff: 0.8, memory_eff: 0.85 },
        )
        .with_out_bytes(1 << 22);
        let tiny = mmg_kernels::memory_bound::elementwise_kernel("emb_add", 128, 2, 1, 2);
        let mut ks = vec![gemm, tiny];
        let cfg = OptConfig { fuse: true, ..OptConfig::default() };
        let stats = apply(&mut ks, &cfg, &DeviceSpec::a100_80gb());
        assert_eq!(ks.len(), 2);
        assert_eq!(stats.kernels_fused, 0);
    }
}
