//! Sampled memory access streams for cache simulation (Fig. 12).
//!
//! The paper uses Nsight Compute to read L1/L2 hit rates for the GEMM,
//! softmax and elementwise kernels inside spatial vs. temporal attention.
//! We reproduce the *mechanism*: kernels are modelled as address streams at
//! 32-byte **sector** granularity (the coalescing unit of an NVIDIA memory
//! request — a warp touching 32 consecutive FP16 values issues two sector
//! requests, not 32 element requests), and the streams are replayed through
//! the `mmg-gpu` set-associative hierarchy.
//!
//! The crucial layout fact (see `mmg_attn::video`): temporal attention
//! reads Q/K/V through permuted views of the `[frames, channels, H, W]`
//! activation, so consecutive *sequence* elements sit a whole frame apart
//! and consecutive *channel* elements sit `H·W` elements apart — every
//! access opens a new cache line, and the strided line addresses conflict
//! in the set index. Spatial attention reads rows that are contiguous after
//! the QKV projection. The ~10x L1 hit-rate gap in Fig. 12 follows from
//! this geometry.

use mmg_gpu::{CacheHierarchy, DeviceSpec, HierarchyStats, ProbeRun};

/// NVIDIA memory-request sector size in bytes.
pub const SECTOR_BYTES: u64 = 32;

/// Number of SMs a round-robin row schedule is spread over.
pub const SCHEDULE_SMS: usize = 108;

/// A logical 2-D operand access: `rows × cols` elements with arbitrary
/// element strides, walked row-major by one SM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StridedMatrixAccess {
    /// Base byte address of the operand.
    pub base: u64,
    /// Logical rows to walk.
    pub rows: usize,
    /// Logical columns per row.
    pub cols: usize,
    /// Elements between consecutive rows.
    pub row_stride_elems: usize,
    /// Elements between consecutive columns.
    pub col_stride_elems: usize,
    /// Bytes per element.
    pub elem_bytes: usize,
    /// Row step (e.g. [`SCHEDULE_SMS`] for a round-robin row schedule where
    /// we observe a single SM).
    pub row_step: usize,
}

impl StridedMatrixAccess {
    /// Contiguous row-major matrix.
    #[must_use]
    pub fn contiguous(base: u64, rows: usize, cols: usize, elem_bytes: usize) -> Self {
        StridedMatrixAccess {
            base,
            rows,
            cols,
            row_stride_elems: cols,
            col_stride_elems: 1,
            elem_bytes,
            row_step: 1,
        }
    }

    /// Appends this access pattern's sector probes to `out`, stopping at
    /// `max` total probes. Consecutive probes to the same sector are
    /// deduplicated (one request per sector per sweep).
    pub fn extend_probes(&self, out: &mut Vec<u64>, max: usize) {
        let mut last_sector = u64::MAX;
        let mut r = 0usize;
        while r < self.rows && out.len() < max {
            let row_base =
                self.base + (r * self.row_stride_elems * self.elem_bytes) as u64;
            for c in 0..self.cols {
                if out.len() >= max {
                    break;
                }
                let addr = row_base + (c * self.col_stride_elems * self.elem_bytes) as u64;
                let sector = addr / SECTOR_BYTES;
                if sector != last_sector {
                    out.push(sector * SECTOR_BYTES);
                    last_sector = sector;
                }
            }
            r += self.row_step.max(1);
        }
    }

    /// Run-length-compressed form of [`StridedMatrixAccess::extend_probes`]:
    /// appends [`ProbeRun`]s whose expansion is exactly the probe sequence
    /// `extend_probes` would emit, with `max` bounding the *total* probe
    /// count across `out` (i.e. `ProbeRun::total(out)` plays the role of
    /// `out.len()`).
    ///
    /// Most rows compress analytically — a column step below the sector
    /// size walks consecutive sectors, a sector-multiple step emits one
    /// probe per element at a uniform stride — so regular sweeps become a
    /// handful of runs instead of hundreds of thousands of addresses.
    pub fn extend_probe_runs(&self, out: &mut Vec<ProbeRun>, max: usize) {
        let mut total = ProbeRun::total(out) as usize;
        let mut last_sector = u64::MAX;
        let step = (self.col_stride_elems * self.elem_bytes) as u64;
        let mut r = 0usize;
        while r < self.rows && total < max {
            let row_base = self.base + (r * self.row_stride_elems * self.elem_bytes) as u64;
            if self.cols > 0 {
                let s0 = row_base / SECTOR_BYTES;
                if step == 0 {
                    // Every element repeats one sector: a single probe.
                    if s0 != last_sector {
                        push_run(out, s0 * SECTOR_BYTES, 1, 0, &mut total, max);
                        last_sector = s0;
                    }
                } else if step < SECTOR_BYTES {
                    // Sector indices are non-decreasing and never skip, so
                    // the deduped sequence is the consecutive sector range.
                    let s1 = (row_base + (self.cols as u64 - 1) * step) / SECTOR_BYTES;
                    let first = if s0 == last_sector { s0 + 1 } else { s0 };
                    if first <= s1 {
                        push_run(
                            out,
                            first * SECTOR_BYTES,
                            s1 - first + 1,
                            SECTOR_BYTES,
                            &mut total,
                            max,
                        );
                    }
                    last_sector = s1;
                } else if step.is_multiple_of(SECTOR_BYTES) {
                    // One distinct sector per element, uniformly strided.
                    let (mut base, mut count) = (s0 * SECTOR_BYTES, self.cols as u64);
                    if s0 == last_sector {
                        base += step;
                        count -= 1;
                    }
                    if count > 0 {
                        push_run(out, base, count, step, &mut total, max);
                    }
                    last_sector = s0 + (self.cols as u64 - 1) * (step / SECTOR_BYTES);
                } else {
                    // Irregular sector deltas (step ≥ sector but not a
                    // multiple): walk elements and let `push_run` coalesce.
                    for c in 0..self.cols {
                        if total >= max {
                            break;
                        }
                        let sector = (row_base + c as u64 * step) / SECTOR_BYTES;
                        if sector != last_sector {
                            push_run(out, sector * SECTOR_BYTES, 1, 0, &mut total, max);
                            last_sector = sector;
                        }
                    }
                }
            }
            r += self.row_step.max(1);
        }
    }
}

/// Appends `count` probes from `base` at `stride` onto `out`, clipping to
/// the `max` total-probe budget and coalescing with the previous run when
/// the sequence continues uniformly.
fn push_run(out: &mut Vec<ProbeRun>, base: u64, count: u64, stride: u64, total: &mut usize, max: usize) {
    let budget = (max - *total) as u64;
    let count = count.min(budget);
    if count == 0 {
        return;
    }
    *total += count as usize;
    if let Some(last) = out.last_mut() {
        let next = last.base + last.count * last.stride;
        if next == base && (last.stride == stride || last.count == 1) {
            // Continues the previous run at the same stride (a run of one
            // adopts whatever stride the continuation uses).
            if last.count == 1 {
                last.stride = stride;
            }
            last.count += count;
            return;
        }
        if last.count == 1 && count == 1 && base > last.base {
            // Two singletons become a run; later singletons at the same
            // spacing keep extending it through the arm above.
            last.stride = base - last.base;
            last.count = 2;
            return;
        }
    }
    out.push(ProbeRun { base, count, stride });
}

/// The attention-internal kernel whose stream is being generated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttentionKernel {
    /// The `Q·Kᵀ` / `P·V` batched GEMMs.
    Gemm,
    /// The row softmax over scores.
    Softmax,
    /// Pointwise scale / mask / dropout-style kernels.
    Elementwise,
}

/// Layout parameters of a video attention call, enough to derive strides.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VideoAttentionAccess {
    /// Frames in the clip.
    pub frames: usize,
    /// Channels of the activation (full, pre-head-split).
    pub channels: usize,
    /// Spatial positions (`H·W`).
    pub hw: usize,
    /// Bytes per element (2 for FP16).
    pub elem_bytes: usize,
}

impl VideoAttentionAccess {
    /// Make-A-Video-like default at the UNet base resolution: 16 frames,
    /// 320 channels, 64×64 latent.
    #[must_use]
    pub fn make_a_video_base() -> Self {
        VideoAttentionAccess { frames: 16, channels: 320, hw: 64 * 64, elem_bytes: 2 }
    }

    /// Generates the sector-probe stream one SM observes for `kernel`
    /// under the given attention direction. At most `max` probes.
    ///
    /// This is the expansion of [`VideoAttentionAccess::runs`]; cache
    /// replay should prefer the compressed form directly.
    #[must_use]
    pub fn stream(&self, kernel: AttentionKernel, temporal: bool, max: usize) -> Vec<u64> {
        let runs = self.runs(kernel, temporal, max);
        let mut out = Vec::with_capacity(ProbeRun::total(&runs) as usize);
        out.extend(runs.iter().flat_map(ProbeRun::addrs));
        out
    }

    /// The run-length-compressed sector-probe stream one SM observes for
    /// `kernel` under the given attention direction. At most `max` total
    /// probes across the expansion.
    #[must_use]
    pub fn runs(&self, kernel: AttentionKernel, temporal: bool, max: usize) -> Vec<ProbeRun> {
        let mut out = Vec::new();
        let e = self.elem_bytes;
        match (kernel, temporal) {
            (AttentionKernel::Gemm, false) => {
                // Spatial: Q/K are [frames, hw, channels] contiguous (post-
                // projection). One SM walks a 128-row Q tile, then streams K.
                let q_tile = StridedMatrixAccess::contiguous(0, 128.min(self.hw), self.channels, e);
                let k_base = (self.hw * self.channels * e) as u64;
                let k = StridedMatrixAccess::contiguous(k_base, self.hw, self.channels, e);
                // Two tile passes: Q tile re-read is cheap, K streams twice.
                for _ in 0..2 {
                    q_tile.extend_probe_runs(&mut out, max);
                    k.extend_probe_runs(&mut out, max);
                }
            }
            (AttentionKernel::Gemm, true) => {
                // Temporal: Q/K are permuted views of [frames, channels, hw]:
                // element (pixel p, frame f, channel c) lives at
                // ((f·C + c)·HW + p)·e. One SM covers a contiguous pixel
                // chunk; every (f, c) access is its own line and the line
                // addresses are HW·e apart — a conflict-prone power-of-two
                // stride.
                let pixel_chunk = 64.min(self.hw);
                for p in 0..pixel_chunk {
                    if ProbeRun::total(&out) as usize >= max {
                        break;
                    }
                    let q = StridedMatrixAccess {
                        base: (p * e) as u64,
                        rows: self.frames,
                        cols: self.channels,
                        row_stride_elems: self.channels * self.hw,
                        col_stride_elems: self.hw,
                        elem_bytes: e,
                        row_step: 1,
                    };
                    q.extend_probe_runs(&mut out, max);
                    let k = StridedMatrixAccess {
                        base: (self.frames * self.channels * self.hw * e + p * e) as u64,
                        ..q
                    };
                    k.extend_probe_runs(&mut out, max);
                }
            }
            (AttentionKernel::Softmax, false) => {
                // Spatial scores: rows of length hw, contiguous; one SM takes
                // every SCHEDULE_SMS-th row.
                let rows = self.frames * self.hw;
                let acc = StridedMatrixAccess {
                    base: 0,
                    rows,
                    cols: self.hw,
                    row_stride_elems: self.hw,
                    col_stride_elems: 1,
                    elem_bytes: e,
                    row_step: SCHEDULE_SMS,
                };
                acc.extend_probe_runs(&mut out, max);
            }
            (AttentionKernel::Softmax, true) => {
                // Temporal scores: rows of length `frames` (often a fraction
                // of a line); round-robin rows mean one SM never sees two
                // rows of the same line.
                let rows = self.hw * self.frames;
                let acc = StridedMatrixAccess {
                    base: 0,
                    rows,
                    cols: self.frames,
                    row_stride_elems: self.frames,
                    col_stride_elems: 1,
                    elem_bytes: e,
                    row_step: SCHEDULE_SMS,
                };
                acc.extend_probe_runs(&mut out, max);
            }
            (AttentionKernel::Elementwise, _) => {
                // Pointwise kernels stream contiguously regardless of the
                // attention direction — which is why Fig. 12 shows their hit
                // rates unchanged.
                let elems = self.frames * self.channels * self.hw;
                let acc = StridedMatrixAccess::contiguous(0, 1, elems.min(8 * max), e);
                acc.extend_probe_runs(&mut out, max);
            }
        }
        out
    }

    /// Replays the stream for `kernel` through a fresh device hierarchy and
    /// returns the hit statistics. Cache counters land in the global
    /// telemetry registry.
    #[must_use]
    pub fn simulate(
        &self,
        kernel: AttentionKernel,
        temporal: bool,
        spec: &DeviceSpec,
        max_probes: usize,
    ) -> HierarchyStats {
        self.simulate_with_registry(kernel, temporal, spec, max_probes, &mmg_telemetry::global())
    }

    /// Like [`VideoAttentionAccess::simulate`], recording cache counters
    /// to a specific telemetry registry.
    #[must_use]
    pub fn simulate_with_registry(
        &self,
        kernel: AttentionKernel,
        temporal: bool,
        spec: &DeviceSpec,
        max_probes: usize,
        registry: &mmg_telemetry::Registry,
    ) -> HierarchyStats {
        let mut h = CacheHierarchy::for_device_with_registry(spec, registry);
        h.run_runs(&self.runs(kernel, temporal, max_probes));
        h.stats()
    }
}

/// HBM traffic amplification for an operand read through a fully-strided
/// view: each sector delivers `elem_bytes` useful bytes.
#[must_use]
pub fn strided_amplification(elem_bytes: usize) -> f64 {
    SECTOR_BYTES as f64 / elem_bytes as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> DeviceSpec {
        DeviceSpec::a100_80gb()
    }

    #[test]
    fn contiguous_probe_dedupes_sectors() {
        let acc = StridedMatrixAccess::contiguous(0, 1, 64, 2); // 128 bytes
        let mut out = Vec::new();
        acc.extend_probes(&mut out, 1000);
        assert_eq!(out.len(), 4, "64 fp16 elems = 4 sectors");
    }

    #[test]
    fn strided_probe_touches_every_element() {
        let acc = StridedMatrixAccess {
            base: 0,
            rows: 1,
            cols: 64,
            row_stride_elems: 0,
            col_stride_elems: 4096,
            elem_bytes: 2,
            row_step: 1,
        };
        let mut out = Vec::new();
        acc.extend_probes(&mut out, 1000);
        assert_eq!(out.len(), 64, "each strided element is its own sector");
    }

    #[test]
    fn temporal_gemm_l1_much_worse_than_spatial() {
        let v = VideoAttentionAccess::make_a_video_base();
        let sp = v.simulate(AttentionKernel::Gemm, false, &spec(), 300_000);
        let tp = v.simulate(AttentionKernel::Gemm, true, &spec(), 300_000);
        assert!(sp.l1.hit_rate() > 0.5, "spatial L1 {}", sp.l1.hit_rate());
        assert!(
            tp.l1.hit_rate() < sp.l1.hit_rate() / 5.0,
            "temporal {} vs spatial {}",
            tp.l1.hit_rate(),
            sp.l1.hit_rate()
        );
    }

    #[test]
    fn temporal_softmax_l1_much_worse_than_spatial() {
        let v = VideoAttentionAccess::make_a_video_base();
        let sp = v.simulate(AttentionKernel::Softmax, false, &spec(), 200_000);
        let tp = v.simulate(AttentionKernel::Softmax, true, &spec(), 200_000);
        assert!(sp.l1.hit_rate() > 0.5);
        assert!(tp.l1.hit_rate() < sp.l1.hit_rate() / 5.0);
    }

    #[test]
    fn elementwise_unaffected_by_direction() {
        let v = VideoAttentionAccess::make_a_video_base();
        let sp = v.simulate(AttentionKernel::Elementwise, false, &spec(), 100_000);
        let tp = v.simulate(AttentionKernel::Elementwise, true, &spec(), 100_000);
        assert!((sp.l1.hit_rate() - tp.l1.hit_rate()).abs() < 0.05);
    }

    #[test]
    fn max_probes_respected() {
        let v = VideoAttentionAccess::make_a_video_base();
        assert!(v.stream(AttentionKernel::Gemm, true, 1000).len() <= 1000);
    }

    #[test]
    fn amplification_for_fp16_is_16x() {
        assert!((strided_amplification(2) - 16.0).abs() < 1e-12);
    }

    fn expand(runs: &[ProbeRun]) -> Vec<u64> {
        runs.iter().flat_map(ProbeRun::addrs).collect()
    }

    #[test]
    fn probe_runs_expand_to_exactly_the_probe_stream() {
        // Every analytic case plus the irregular fallback, at several
        // truncation points, against the element-wise reference.
        let patterns = [
            // step == 0 (broadcast column)
            StridedMatrixAccess {
                base: 40,
                rows: 7,
                cols: 5,
                row_stride_elems: 100,
                col_stride_elems: 0,
                elem_bytes: 2,
                row_step: 1,
            },
            // step < sector, dividing it (fp16 contiguous)
            StridedMatrixAccess::contiguous(0, 9, 37, 2),
            // step < sector, NOT dividing it (3-byte elements)
            StridedMatrixAccess {
                base: 5,
                rows: 4,
                cols: 50,
                row_stride_elems: 61,
                col_stride_elems: 1,
                elem_bytes: 3,
                row_step: 1,
            },
            // step a multiple of the sector (temporal channel walk)
            StridedMatrixAccess {
                base: 64,
                rows: 16,
                cols: 320,
                row_stride_elems: 320 * 4096,
                col_stride_elems: 4096,
                elem_bytes: 2,
                row_step: 1,
            },
            // step >= sector, not a multiple (irregular deltas: 48B)
            StridedMatrixAccess {
                base: 0,
                rows: 3,
                cols: 40,
                row_stride_elems: 7,
                col_stride_elems: 24,
                elem_bytes: 2,
                row_step: 1,
            },
            // round-robin row schedule with rows sharing sectors
            StridedMatrixAccess {
                base: 0,
                rows: 1000,
                cols: 16,
                row_stride_elems: 16,
                col_stride_elems: 1,
                elem_bytes: 2,
                row_step: SCHEDULE_SMS,
            },
            // adjacent rows whose boundary sectors coincide (dedup across
            // rows in the middle of the pattern)
            StridedMatrixAccess {
                base: 8,
                rows: 6,
                cols: 3,
                row_stride_elems: 3,
                col_stride_elems: 1,
                elem_bytes: 2,
                row_step: 1,
            },
        ];
        for (i, acc) in patterns.iter().enumerate() {
            let mut reference = Vec::new();
            acc.extend_probes(&mut reference, usize::MAX);
            for max in [0, 1, 2, 7, reference.len().saturating_sub(1), reference.len(), usize::MAX] {
                let mut probes = Vec::new();
                acc.extend_probes(&mut probes, max);
                let mut runs = Vec::new();
                acc.extend_probe_runs(&mut runs, max);
                assert_eq!(
                    expand(&runs),
                    probes,
                    "pattern {i} diverges at max={max}"
                );
            }
        }
    }

    #[test]
    fn probe_runs_respect_preexisting_totals() {
        // `max` counts probes already in `out`, matching extend_probes'
        // treatment of out.len().
        let acc = StridedMatrixAccess::contiguous(0, 4, 64, 2);
        let mut runs = vec![ProbeRun { base: 1 << 20, count: 10, stride: 32 }];
        acc.extend_probe_runs(&mut runs, 14);
        assert_eq!(ProbeRun::total(&runs), 14);
    }

    #[test]
    fn video_streams_match_runs_for_all_kernels() {
        let v = VideoAttentionAccess { frames: 4, channels: 32, hw: 256, elem_bytes: 2 };
        for kernel in [AttentionKernel::Gemm, AttentionKernel::Softmax, AttentionKernel::Elementwise] {
            for temporal in [false, true] {
                for max in [100, 5000] {
                    let stream = v.stream(kernel, temporal, max);
                    let runs = v.runs(kernel, temporal, max);
                    assert_eq!(expand(&runs), stream, "{kernel:?} temporal={temporal} max={max}");
                    assert!(
                        runs.len() < stream.len().max(1),
                        "compression should shrink {kernel:?}: {} runs for {} probes",
                        runs.len(),
                        stream.len()
                    );
                }
            }
        }
    }

    #[test]
    fn temporal_stream_compresses_dramatically() {
        let v = VideoAttentionAccess::make_a_video_base();
        let max = 300_000;
        let stream_len = v.stream(AttentionKernel::Gemm, true, max).len();
        let runs = v.runs(AttentionKernel::Gemm, true, max);
        assert!(stream_len >= max / 2, "stream should be large: {stream_len}");
        assert!(
            runs.len() * 100 < stream_len,
            "expected >100x compression: {} runs for {stream_len} probes",
            runs.len()
        );
    }
}
