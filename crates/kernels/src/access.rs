//! Sampled memory access streams for cache simulation (Fig. 12).
//!
//! The paper uses Nsight Compute to read L1/L2 hit rates for the GEMM,
//! softmax and elementwise kernels inside spatial vs. temporal attention.
//! We reproduce the *mechanism*: kernels are modelled as address streams at
//! 32-byte **sector** granularity (the coalescing unit of an NVIDIA memory
//! request — a warp touching 32 consecutive FP16 values issues two sector
//! requests, not 32 element requests), and the streams are replayed through
//! the `mmg-gpu` set-associative hierarchy.
//!
//! The crucial layout fact (see `mmg_attn::video`): temporal attention
//! reads Q/K/V through permuted views of the `[frames, channels, H, W]`
//! activation, so consecutive *sequence* elements sit a whole frame apart
//! and consecutive *channel* elements sit `H·W` elements apart — every
//! access opens a new cache line, and the strided line addresses conflict
//! in the set index. Spatial attention reads rows that are contiguous after
//! the QKV projection. The ~10x L1 hit-rate gap in Fig. 12 follows from
//! this geometry.

use mmg_gpu::{CacheHierarchy, DeviceSpec, HierarchyStats};

/// NVIDIA memory-request sector size in bytes.
pub const SECTOR_BYTES: u64 = 32;

/// Number of SMs a round-robin row schedule is spread over.
pub const SCHEDULE_SMS: usize = 108;

/// A logical 2-D operand access: `rows × cols` elements with arbitrary
/// element strides, walked row-major by one SM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StridedMatrixAccess {
    /// Base byte address of the operand.
    pub base: u64,
    /// Logical rows to walk.
    pub rows: usize,
    /// Logical columns per row.
    pub cols: usize,
    /// Elements between consecutive rows.
    pub row_stride_elems: usize,
    /// Elements between consecutive columns.
    pub col_stride_elems: usize,
    /// Bytes per element.
    pub elem_bytes: usize,
    /// Row step (e.g. [`SCHEDULE_SMS`] for a round-robin row schedule where
    /// we observe a single SM).
    pub row_step: usize,
}

impl StridedMatrixAccess {
    /// Contiguous row-major matrix.
    #[must_use]
    pub fn contiguous(base: u64, rows: usize, cols: usize, elem_bytes: usize) -> Self {
        StridedMatrixAccess {
            base,
            rows,
            cols,
            row_stride_elems: cols,
            col_stride_elems: 1,
            elem_bytes,
            row_step: 1,
        }
    }

    /// Appends this access pattern's sector probes to `out`, stopping at
    /// `max` total probes. Consecutive probes to the same sector are
    /// deduplicated (one request per sector per sweep).
    pub fn extend_probes(&self, out: &mut Vec<u64>, max: usize) {
        let mut last_sector = u64::MAX;
        let mut r = 0usize;
        while r < self.rows && out.len() < max {
            let row_base =
                self.base + (r * self.row_stride_elems * self.elem_bytes) as u64;
            for c in 0..self.cols {
                if out.len() >= max {
                    break;
                }
                let addr = row_base + (c * self.col_stride_elems * self.elem_bytes) as u64;
                let sector = addr / SECTOR_BYTES;
                if sector != last_sector {
                    out.push(sector * SECTOR_BYTES);
                    last_sector = sector;
                }
            }
            r += self.row_step.max(1);
        }
    }
}

/// The attention-internal kernel whose stream is being generated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttentionKernel {
    /// The `Q·Kᵀ` / `P·V` batched GEMMs.
    Gemm,
    /// The row softmax over scores.
    Softmax,
    /// Pointwise scale / mask / dropout-style kernels.
    Elementwise,
}

/// Layout parameters of a video attention call, enough to derive strides.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VideoAttentionAccess {
    /// Frames in the clip.
    pub frames: usize,
    /// Channels of the activation (full, pre-head-split).
    pub channels: usize,
    /// Spatial positions (`H·W`).
    pub hw: usize,
    /// Bytes per element (2 for FP16).
    pub elem_bytes: usize,
}

impl VideoAttentionAccess {
    /// Make-A-Video-like default at the UNet base resolution: 16 frames,
    /// 320 channels, 64×64 latent.
    #[must_use]
    pub fn make_a_video_base() -> Self {
        VideoAttentionAccess { frames: 16, channels: 320, hw: 64 * 64, elem_bytes: 2 }
    }

    /// Generates the sector-probe stream one SM observes for `kernel`
    /// under the given attention direction. At most `max` probes.
    #[must_use]
    pub fn stream(&self, kernel: AttentionKernel, temporal: bool, max: usize) -> Vec<u64> {
        let mut out = Vec::with_capacity(max.min(1 << 20));
        let e = self.elem_bytes;
        match (kernel, temporal) {
            (AttentionKernel::Gemm, false) => {
                // Spatial: Q/K are [frames, hw, channels] contiguous (post-
                // projection). One SM walks a 128-row Q tile, then streams K.
                let q_tile = StridedMatrixAccess::contiguous(0, 128.min(self.hw), self.channels, e);
                let k_base = (self.hw * self.channels * e) as u64;
                let k = StridedMatrixAccess::contiguous(k_base, self.hw, self.channels, e);
                // Two tile passes: Q tile re-read is cheap, K streams twice.
                for _ in 0..2 {
                    q_tile.extend_probes(&mut out, max);
                    k.extend_probes(&mut out, max);
                }
            }
            (AttentionKernel::Gemm, true) => {
                // Temporal: Q/K are permuted views of [frames, channels, hw]:
                // element (pixel p, frame f, channel c) lives at
                // ((f·C + c)·HW + p)·e. One SM covers a contiguous pixel
                // chunk; every (f, c) access is its own line and the line
                // addresses are HW·e apart — a conflict-prone power-of-two
                // stride.
                let pixel_chunk = 64.min(self.hw);
                for p in 0..pixel_chunk {
                    if out.len() >= max {
                        break;
                    }
                    let q = StridedMatrixAccess {
                        base: (p * e) as u64,
                        rows: self.frames,
                        cols: self.channels,
                        row_stride_elems: self.channels * self.hw,
                        col_stride_elems: self.hw,
                        elem_bytes: e,
                        row_step: 1,
                    };
                    q.extend_probes(&mut out, max);
                    let k = StridedMatrixAccess {
                        base: (self.frames * self.channels * self.hw * e + p * e) as u64,
                        ..q
                    };
                    k.extend_probes(&mut out, max);
                }
            }
            (AttentionKernel::Softmax, false) => {
                // Spatial scores: rows of length hw, contiguous; one SM takes
                // every SCHEDULE_SMS-th row.
                let rows = self.frames * self.hw;
                let acc = StridedMatrixAccess {
                    base: 0,
                    rows,
                    cols: self.hw,
                    row_stride_elems: self.hw,
                    col_stride_elems: 1,
                    elem_bytes: e,
                    row_step: SCHEDULE_SMS,
                };
                acc.extend_probes(&mut out, max);
            }
            (AttentionKernel::Softmax, true) => {
                // Temporal scores: rows of length `frames` (often a fraction
                // of a line); round-robin rows mean one SM never sees two
                // rows of the same line.
                let rows = self.hw * self.frames;
                let acc = StridedMatrixAccess {
                    base: 0,
                    rows,
                    cols: self.frames,
                    row_stride_elems: self.frames,
                    col_stride_elems: 1,
                    elem_bytes: e,
                    row_step: SCHEDULE_SMS,
                };
                acc.extend_probes(&mut out, max);
            }
            (AttentionKernel::Elementwise, _) => {
                // Pointwise kernels stream contiguously regardless of the
                // attention direction — which is why Fig. 12 shows their hit
                // rates unchanged.
                let elems = self.frames * self.channels * self.hw;
                let acc = StridedMatrixAccess::contiguous(0, 1, elems.min(8 * max), e);
                acc.extend_probes(&mut out, max);
            }
        }
        out
    }

    /// Replays the stream for `kernel` through a fresh device hierarchy and
    /// returns the hit statistics. Cache counters land in the global
    /// telemetry registry.
    #[must_use]
    pub fn simulate(
        &self,
        kernel: AttentionKernel,
        temporal: bool,
        spec: &DeviceSpec,
        max_probes: usize,
    ) -> HierarchyStats {
        self.simulate_with_registry(kernel, temporal, spec, max_probes, &mmg_telemetry::global())
    }

    /// Like [`VideoAttentionAccess::simulate`], recording cache counters
    /// to a specific telemetry registry.
    #[must_use]
    pub fn simulate_with_registry(
        &self,
        kernel: AttentionKernel,
        temporal: bool,
        spec: &DeviceSpec,
        max_probes: usize,
        registry: &mmg_telemetry::Registry,
    ) -> HierarchyStats {
        let mut h = CacheHierarchy::for_device_with_registry(spec, registry);
        h.run(self.stream(kernel, temporal, max_probes));
        h.stats()
    }
}

/// HBM traffic amplification for an operand read through a fully-strided
/// view: each sector delivers `elem_bytes` useful bytes.
#[must_use]
pub fn strided_amplification(elem_bytes: usize) -> f64 {
    SECTOR_BYTES as f64 / elem_bytes as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> DeviceSpec {
        DeviceSpec::a100_80gb()
    }

    #[test]
    fn contiguous_probe_dedupes_sectors() {
        let acc = StridedMatrixAccess::contiguous(0, 1, 64, 2); // 128 bytes
        let mut out = Vec::new();
        acc.extend_probes(&mut out, 1000);
        assert_eq!(out.len(), 4, "64 fp16 elems = 4 sectors");
    }

    #[test]
    fn strided_probe_touches_every_element() {
        let acc = StridedMatrixAccess {
            base: 0,
            rows: 1,
            cols: 64,
            row_stride_elems: 0,
            col_stride_elems: 4096,
            elem_bytes: 2,
            row_step: 1,
        };
        let mut out = Vec::new();
        acc.extend_probes(&mut out, 1000);
        assert_eq!(out.len(), 64, "each strided element is its own sector");
    }

    #[test]
    fn temporal_gemm_l1_much_worse_than_spatial() {
        let v = VideoAttentionAccess::make_a_video_base();
        let sp = v.simulate(AttentionKernel::Gemm, false, &spec(), 300_000);
        let tp = v.simulate(AttentionKernel::Gemm, true, &spec(), 300_000);
        assert!(sp.l1.hit_rate() > 0.5, "spatial L1 {}", sp.l1.hit_rate());
        assert!(
            tp.l1.hit_rate() < sp.l1.hit_rate() / 5.0,
            "temporal {} vs spatial {}",
            tp.l1.hit_rate(),
            sp.l1.hit_rate()
        );
    }

    #[test]
    fn temporal_softmax_l1_much_worse_than_spatial() {
        let v = VideoAttentionAccess::make_a_video_base();
        let sp = v.simulate(AttentionKernel::Softmax, false, &spec(), 200_000);
        let tp = v.simulate(AttentionKernel::Softmax, true, &spec(), 200_000);
        assert!(sp.l1.hit_rate() > 0.5);
        assert!(tp.l1.hit_rate() < sp.l1.hit_rate() / 5.0);
    }

    #[test]
    fn elementwise_unaffected_by_direction() {
        let v = VideoAttentionAccess::make_a_video_base();
        let sp = v.simulate(AttentionKernel::Elementwise, false, &spec(), 100_000);
        let tp = v.simulate(AttentionKernel::Elementwise, true, &spec(), 100_000);
        assert!((sp.l1.hit_rate() - tp.l1.hit_rate()).abs() < 0.05);
    }

    #[test]
    fn max_probes_respected() {
        let v = VideoAttentionAccess::make_a_video_base();
        assert!(v.stream(AttentionKernel::Gemm, true, 1000).len() <= 1000);
    }

    #[test]
    fn amplification_for_fp16_is_16x() {
        assert!((strided_amplification(2) - 16.0).abs() < 1e-12);
    }
}
