//! Convolution cost model (implicit GEMM).

use mmg_gpu::KernelCost;

use crate::gemm::{gemm_compute_eff, GemmShape, DEFAULT_SMS};
use crate::{KernelDesc, KernelKind};

/// Implicit-GEMM convolutions pay a gather/transform tax relative to a
/// dense GEMM of the same shape (cuDNN heuristics, filter transforms,
/// unaligned spatial reads).
pub const CONV_OVERHEAD_FACTOR: f64 = 0.85;

/// Shape of a 2-D convolution at the kernel level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConvShape {
    /// Batch size.
    pub batch: usize,
    /// Input channels.
    pub c_in: usize,
    /// Output channels.
    pub c_out: usize,
    /// Input spatial extent (square images; extent after padding rules).
    pub h: usize,
    /// Input width.
    pub w: usize,
    /// Square kernel edge.
    pub kernel: usize,
    /// Stride.
    pub stride: usize,
}

impl ConvShape {
    /// Output height under "same" padding then striding.
    #[must_use]
    pub fn out_h(&self) -> usize {
        self.h.div_ceil(self.stride)
    }

    /// Output width under "same" padding then striding.
    #[must_use]
    pub fn out_w(&self) -> usize {
        self.w.div_ceil(self.stride)
    }

    /// The implicit-GEMM view: `m = N·OH·OW`, `n = C_out`,
    /// `k = C_in·KH·KW`.
    #[must_use]
    pub fn as_gemm(&self) -> GemmShape {
        GemmShape::new(
            self.batch * self.out_h() * self.out_w(),
            self.c_out,
            self.c_in * self.kernel * self.kernel,
        )
    }

    /// Multiply-accumulate FLOPs.
    #[must_use]
    pub fn flops(&self) -> u64 {
        self.as_gemm().flops()
    }

    /// Compulsory HBM traffic: input + weights + output, streamed once.
    /// (The implicit-GEMM "A matrix" is never materialized; the input is
    /// read roughly once thanks to tile-level reuse of overlapping
    /// windows.)
    #[must_use]
    pub fn min_bytes(&self, elem_bytes: usize) -> u64 {
        let input = self.batch * self.c_in * self.h * self.w;
        let weights = self.c_out * self.c_in * self.kernel * self.kernel;
        let output = self.batch * self.c_out * self.out_h() * self.out_w();
        ((input + weights + output) * elem_bytes) as u64
    }
}

/// Convolution kernel algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ConvAlgorithm {
    /// Lower to an implicit GEMM (cuDNN's general path).
    #[default]
    ImplicitGemm,
    /// Winograd F(4×4, 3×3): ~2.25x fewer multiplies for 3×3 stride-1
    /// convolutions, at the price of tile transforms (extra traffic and a
    /// lower sustained efficiency). Falls back to implicit GEMM for other
    /// shapes, exactly like cuDNN's heuristics.
    Winograd,
}

/// Multiply reduction of Winograd F(4×4, 3×3).
pub const WINOGRAD_FLOP_REDUCTION: f64 = 2.25;

/// Builds the kernel descriptor for a convolution at `elem_bytes`
/// precision with the default (implicit GEMM) algorithm.
#[must_use]
pub fn conv_kernel(shape: ConvShape, elem_bytes: usize) -> KernelDesc {
    conv_kernel_with(shape, elem_bytes, ConvAlgorithm::ImplicitGemm)
}

/// Builds the kernel descriptor for a convolution with an explicit
/// algorithm choice, assuming [`DEFAULT_SMS`] SMs.
#[must_use]
pub fn conv_kernel_with(shape: ConvShape, elem_bytes: usize, algo: ConvAlgorithm) -> KernelDesc {
    conv_kernel_with_on(shape, elem_bytes, algo, DEFAULT_SMS)
}

/// [`conv_kernel_with`] with the SM count of the active device, so the
/// implicit-GEMM wave quantization matches the part being simulated.
#[must_use]
pub fn conv_kernel_with_on(
    shape: ConvShape,
    elem_bytes: usize,
    algo: ConvAlgorithm,
    sms: usize,
) -> KernelDesc {
    let gemm = shape.as_gemm();
    let winograd_applicable =
        algo == ConvAlgorithm::Winograd && shape.kernel == 3 && shape.stride == 1;
    let (flops, eff, bytes, tag) = if winograd_applicable {
        (
            (shape.flops() as f64 / WINOGRAD_FLOP_REDUCTION) as u64,
            // Transform stages keep Winograd below dense-GEMM efficiency.
            gemm_compute_eff(gemm, sms) * CONV_OVERHEAD_FACTOR * 0.85,
            // Transformed input/output tiles inflate traffic ~30%.
            (shape.min_bytes(elem_bytes) as f64 * 1.3) as u64,
            "winograd",
        )
    } else {
        (
            shape.flops(),
            gemm_compute_eff(gemm, sms) * CONV_OVERHEAD_FACTOR,
            shape.min_bytes(elem_bytes),
            "implicit_gemm",
        )
    };
    let out_bytes =
        (shape.batch * shape.c_out * shape.out_h() * shape.out_w() * elem_bytes) as u64;
    KernelDesc::new(
        KernelKind::ConvImplicitGemm,
        format!(
            "conv_{tag}_b{}_c{}x{}_hw{}x{}_k{}_s{}",
            shape.batch, shape.c_in, shape.c_out, shape.h, shape.w, shape.kernel, shape.stride
        ),
        KernelCost {
            flops,
            hbm_bytes: bytes,
            compute_eff: eff.clamp(0.01, 1.0),
            memory_eff: 0.8,
        },
    )
    .with_out_bytes(out_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sd_conv() -> ConvShape {
        // A mid-UNet Stable Diffusion conv: 640ch, 32x32 latent, 3x3.
        ConvShape { batch: 1, c_in: 640, c_out: 640, h: 32, w: 32, kernel: 3, stride: 1 }
    }

    #[test]
    fn implicit_gemm_dimensions() {
        let g = sd_conv().as_gemm();
        assert_eq!(g.m, 1024);
        assert_eq!(g.n, 640);
        assert_eq!(g.k, 640 * 9);
    }

    #[test]
    fn flops_formula() {
        let s = sd_conv();
        assert_eq!(s.flops(), 2 * 1024 * 640 * (640 * 9));
    }

    #[test]
    fn stride_halves_output() {
        let s = ConvShape { stride: 2, ..sd_conv() };
        assert_eq!(s.out_h(), 16);
        assert_eq!(s.as_gemm().m, 256);
    }

    #[test]
    fn deep_conv_is_compute_efficient() {
        let d = conv_kernel(sd_conv(), 2);
        assert!(d.cost.compute_eff > 0.4, "eff={}", d.cost.compute_eff);
        // High arithmetic intensity: compute-bound on A100.
        assert!(d.cost.arithmetic_intensity() > 153.0);
    }

    #[test]
    fn shallow_1x1_conv_is_less_efficient() {
        let s = ConvShape { kernel: 1, c_in: 4, c_out: 320, ..sd_conv() };
        let d = conv_kernel(s, 2);
        assert!(d.cost.compute_eff < 0.2);
    }

    #[test]
    fn winograd_cuts_flops_for_3x3_stride1() {
        let d_gemm = conv_kernel_with(sd_conv(), 2, ConvAlgorithm::ImplicitGemm);
        let d_wino = conv_kernel_with(sd_conv(), 2, ConvAlgorithm::Winograd);
        let ratio = d_gemm.cost.flops as f64 / d_wino.cost.flops as f64;
        assert!((ratio - WINOGRAD_FLOP_REDUCTION).abs() < 0.02);
        assert!(d_wino.cost.hbm_bytes > d_gemm.cost.hbm_bytes);
        assert!(d_wino.label.contains("winograd"));
    }

    #[test]
    fn winograd_falls_back_for_other_shapes() {
        for s in [
            ConvShape { kernel: 1, ..sd_conv() },
            ConvShape { stride: 2, ..sd_conv() },
        ] {
            let d = conv_kernel_with(s, 2, ConvAlgorithm::Winograd);
            assert_eq!(d.cost.flops, s.flops(), "{s:?} must fall back");
            assert!(d.label.contains("implicit_gemm"));
        }
    }

    #[test]
    fn conv_honors_device_sm_count() {
        // A single-image conv's small tile grid quantizes differently on
        // a 58-SM L4 than on the 108-SM default.
        let s = sd_conv();
        let a100 = conv_kernel_with_on(s, 2, ConvAlgorithm::ImplicitGemm, 108);
        let l4 = conv_kernel_with_on(s, 2, ConvAlgorithm::ImplicitGemm, 58);
        assert_ne!(a100.cost.compute_eff, l4.cost.compute_eff);
        assert_eq!(conv_kernel(s, 2), a100);
    }

    #[test]
    fn conv_reports_output_footprint() {
        let s = sd_conv();
        let d = conv_kernel(s, 2);
        assert_eq!(d.out_bytes, (s.batch * s.c_out * s.out_h() * s.out_w() * 2) as u64);
    }

    #[test]
    fn bytes_count_io_once() {
        let s = ConvShape { batch: 1, c_in: 2, c_out: 3, h: 4, w: 4, kernel: 3, stride: 1 };
        let expect = (2 * 16 + 3 * 2 * 9 + 3 * 16) * 2;
        assert_eq!(s.min_bytes(2), expect as u64);
    }
}
