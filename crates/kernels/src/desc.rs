//! Kernel descriptors.

use std::fmt;

use mmg_gpu::{KernelCost, KernelTime};
use mmg_telemetry::Registry;

/// The kernel families the profiler distinguishes, mirroring the kernel
/// names the paper reads out of Nsight Compute (`gemm`, `softmax`,
/// `elementwise`, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelKind {
    /// Dense (possibly batched) matrix multiply.
    Gemm,
    /// Convolution lowered to implicit GEMM.
    ConvImplicitGemm,
    /// Row-wise softmax.
    Softmax,
    /// Pointwise arithmetic (activations, residual adds, scaling).
    Elementwise,
    /// Normalization reductions (GroupNorm / LayerNorm / RMSNorm).
    Norm,
    /// Data movement only (layout transforms, KV-cache appends).
    MemCopy,
    /// Embedding table gather.
    Gather,
    /// Fused tiled attention (FlashAttention-style single kernel).
    FusedAttention,
    /// GEMM with bandwidth-bound epilogues (bias/activation/softmax)
    /// folded into its tile loop by the fusion pass — the
    /// `gemm+bias_act`-style kernels Nsight shows for fused CUTLASS
    /// launches. The label carries the exact composition.
    GemmEpilogue,
    /// Implicit-GEMM convolution with fused epilogues.
    ConvEpilogue,
}

impl fmt::Display for KernelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            KernelKind::Gemm => "gemm",
            KernelKind::ConvImplicitGemm => "conv_implicit_gemm",
            KernelKind::Softmax => "softmax",
            KernelKind::Elementwise => "elementwise",
            KernelKind::Norm => "norm",
            KernelKind::MemCopy => "memcpy",
            KernelKind::Gather => "gather",
            KernelKind::FusedAttention => "fused_attention",
            KernelKind::GemmEpilogue => "gemm+epilogue",
            KernelKind::ConvEpilogue => "conv_implicit_gemm+epilogue",
        };
        f.write_str(s)
    }
}

/// One simulated kernel launch: a kind, a label, and its modelled cost.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelDesc {
    /// Kernel family.
    pub kind: KernelKind,
    /// Human-readable label, e.g. `"gemm_b16_m4096_n64_k64"`.
    pub label: String,
    /// Cost fed to [`mmg_gpu::TimingEngine`].
    pub cost: KernelCost,
    /// Idle SM-tile slots in the launch's final ragged wave (GEMM wave
    /// quantization). Recorded to telemetry by [`record_kernel`], not at
    /// descriptor-construction time, so lowering stays a pure function.
    pub wave_quant_idle_slots: u64,
    /// Bytes of the kernel's primary output tensor, counted inside
    /// `cost.hbm_bytes`. The fusion pass uses this to know how much HBM
    /// round-trip an epilogue fold eliminates; 0 means "unknown — not a
    /// fusion producer".
    pub out_bytes: u64,
    /// Whether the launch sits inside a captured CUDA graph, so the
    /// timing engine should drop its per-launch dispatch overhead.
    pub captured: bool,
}

impl KernelDesc {
    /// Creates a descriptor.
    #[must_use]
    pub fn new(kind: KernelKind, label: impl Into<String>, cost: KernelCost) -> Self {
        KernelDesc {
            kind,
            label: label.into(),
            cost,
            wave_quant_idle_slots: 0,
            out_bytes: 0,
            captured: false,
        }
    }

    /// Annotates the descriptor with wave-quantization idle slots.
    #[must_use]
    pub fn with_idle_slots(mut self, slots: u64) -> Self {
        self.wave_quant_idle_slots = slots;
        self
    }

    /// Annotates the descriptor with its output-tensor footprint
    /// (enables epilogue fusion into this kernel).
    #[must_use]
    pub fn with_out_bytes(mut self, bytes: u64) -> Self {
        self.out_bytes = bytes;
        self
    }
}

/// Records one simulated launch of `desc` to per-kind telemetry
/// counters: launches, FLOPs, HBM bytes, and the roofline regime the
/// launch landed in (`memory` vs `compute`).
pub fn record_kernel(registry: &Registry, desc: &KernelDesc, time: &KernelTime) {
    if desc.wave_quant_idle_slots > 0 {
        registry.counter("gpu_wave_quant_idle_slots_total").add(desc.wave_quant_idle_slots);
    }
    let kind = desc.kind.to_string();
    let labels = [("kind", kind.as_str())];
    registry.counter_with("kernel_launches_total", &labels).inc();
    registry.counter_with("kernel_flops_total", &labels).add(desc.cost.flops);
    registry.counter_with("kernel_hbm_bytes_total", &labels).add(desc.cost.hbm_bytes);
    registry
        .counter_with("kernel_energy_uj_total", &labels)
        .add(mmg_gpu::quantize_uj(time.energy_j));
    let regime = if time.is_memory_bound() { "memory" } else { "compute" };
    registry
        .counter_with("kernel_regime_total", &[("kind", kind.as_str()), ("regime", regime)])
        .inc();
}

/// Replay form of [`record_kernel`]: bumps the identical counters from a
/// stored `(kind name, flops, bytes, regime)` tuple instead of live
/// [`KernelDesc`]/[`KernelTime`] values. Memoized profiling uses this so
/// a cache hit leaves exactly the telemetry a recomputation would have.
#[allow(clippy::too_many_arguments)] // mirrors record_kernel field-for-field
pub fn record_kernel_named(
    registry: &Registry,
    kind: &str,
    flops: u64,
    hbm_bytes: u64,
    energy_uj: u64,
    memory_bound: bool,
    wave_quant_idle_slots: u64,
) {
    if wave_quant_idle_slots > 0 {
        registry.counter("gpu_wave_quant_idle_slots_total").add(wave_quant_idle_slots);
    }
    let labels = [("kind", kind)];
    registry.counter_with("kernel_launches_total", &labels).inc();
    registry.counter_with("kernel_flops_total", &labels).add(flops);
    registry.counter_with("kernel_hbm_bytes_total", &labels).add(hbm_bytes);
    registry.counter_with("kernel_energy_uj_total", &labels).add(energy_uj);
    let regime = if memory_bound { "memory" } else { "compute" };
    registry.counter_with("kernel_regime_total", &[("kind", kind), ("regime", regime)]).inc();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_kernel_named_matches_record_kernel() {
        let live = Registry::new();
        let replay = Registry::new();
        let desc = KernelDesc::new(
            KernelKind::Gemm,
            "gemm_b1",
            KernelCost { flops: 640, hbm_bytes: 128, compute_eff: 0.9, memory_eff: 0.9 },
        );
        let time = KernelTime {
            compute_s: 3e-6,
            memory_s: 1e-6,
            overhead_s: 4e-6,
            total_s: 7e-6,
            draw_w: 350.0,
            energy_j: 3e-6 * 350.0 + 4e-6 * 55.0,
        };
        record_kernel(&live, &desc, &time);
        record_kernel_named(
            &replay,
            &desc.kind.to_string(),
            desc.cost.flops,
            desc.cost.hbm_bytes,
            mmg_gpu::quantize_uj(time.energy_j),
            time.is_memory_bound(),
            desc.wave_quant_idle_slots,
        );
        assert_eq!(live.counters_snapshot().values(), replay.counters_snapshot().values());
    }

    #[test]
    fn record_kernel_tracks_kind_and_regime() {
        let registry = Registry::new();
        let desc = KernelDesc::new(
            KernelKind::Softmax,
            "softmax_r64",
            KernelCost { flops: 100, hbm_bytes: 4000, compute_eff: 1.0, memory_eff: 0.8 },
        );
        let time = KernelTime {
            compute_s: 1e-7,
            memory_s: 2e-6,
            overhead_s: 2e-6,
            total_s: 4e-6,
            draw_w: 250.0,
            energy_j: 2e-6 * 250.0 + 2e-6 * 55.0,
        };
        record_kernel(&registry, &desc, &time);
        record_kernel(&registry, &desc, &time);
        let labels = [("kind", "softmax")];
        assert_eq!(registry.counter_with("kernel_launches_total", &labels).get(), 2);
        assert_eq!(registry.counter_with("kernel_flops_total", &labels).get(), 200);
        assert_eq!(registry.counter_with("kernel_hbm_bytes_total", &labels).get(), 8000);
        assert_eq!(
            registry
                .counter_with("kernel_regime_total", &[("kind", "softmax"), ("regime", "memory")])
                .get(),
            2
        );
    }

    #[test]
    fn display_names_match_nsight_vocabulary() {
        assert_eq!(KernelKind::Gemm.to_string(), "gemm");
        assert_eq!(KernelKind::Softmax.to_string(), "softmax");
        assert_eq!(KernelKind::Elementwise.to_string(), "elementwise");
        // Fused kernels use the Nsight-style `base+epilogue` spelling.
        assert_eq!(KernelKind::GemmEpilogue.to_string(), "gemm+epilogue");
        assert_eq!(KernelKind::ConvEpilogue.to_string(), "conv_implicit_gemm+epilogue");
    }

    #[test]
    fn desc_construction() {
        let d = KernelDesc::new(
            KernelKind::Gemm,
            "gemm_test",
            KernelCost { flops: 1, hbm_bytes: 2, compute_eff: 0.5, memory_eff: 0.5 },
        );
        assert_eq!(d.kind, KernelKind::Gemm);
        assert_eq!(d.label, "gemm_test");
    }
}
