//! Fused-kernel cost composition.
//!
//! Epilogue fusion folds a bandwidth-bound follower (bias/activation,
//! normalization, softmax) into the tile loop of the GEMM or implicit-GEMM
//! convolution that produced its input. The follower's math rides along on
//! registers that already hold the producer's output tile, so the
//! intermediate tensor never round-trips through HBM: the fused kernel
//! performs the sum of both kernels' FLOPs but skips one store (producer
//! writes its output) and one load (epilogue reads it back).

use crate::desc::{KernelDesc, KernelKind};

/// Whether `kind` can host fused epilogues (it owns a tile loop whose
/// accumulators the epilogue math can reuse).
#[must_use]
pub fn can_host_epilogue(kind: KernelKind) -> bool {
    matches!(
        kind,
        KernelKind::Gemm
            | KernelKind::ConvImplicitGemm
            | KernelKind::GemmEpilogue
            | KernelKind::ConvEpilogue
    )
}

/// Whether `kind` is a bandwidth-bound epilogue that can be folded into a
/// preceding tile-loop kernel.
#[must_use]
pub fn is_fusible_epilogue(kind: KernelKind) -> bool {
    matches!(kind, KernelKind::Elementwise | KernelKind::Norm | KernelKind::Softmax)
}

/// Folds `epilogue` into `producer`, returning the fused descriptor, or
/// `None` when the pair is not legally fusible:
///
/// - the producer must be a (possibly already-fused) GEMM or implicit-GEMM
///   conv with a known output footprint (`out_bytes > 0`),
/// - the epilogue must be an [`Elementwise`](KernelKind::Elementwise),
///   [`Norm`](KernelKind::Norm), or [`Softmax`](KernelKind::Softmax)
///   kernel whose traffic actually covers re-reading the producer's
///   output (`hbm_bytes >= 2 * producer.out_bytes` — one load of the
///   intermediate plus at least one store of its own result). Epilogues
///   dominated by *other* operands (e.g. a residual add streaming a
///   second large tensor) still fuse; only kernels too small to have
///   round-tripped the intermediate are rejected as mis-paired.
///
/// The fused cost is the producer's roofline efficiencies (the tile loop
/// still sets the pace), the summed FLOPs, and the combined HBM traffic
/// minus the eliminated store+load of the intermediate. Wave-quantization
/// idle slots carry over from the producer; the epilogue adds none of its
/// own launch.
#[must_use]
pub fn fuse_epilogue(producer: &KernelDesc, epilogue: &KernelDesc) -> Option<KernelDesc> {
    if !can_host_epilogue(producer.kind) || producer.out_bytes == 0 {
        return None;
    }
    if !is_fusible_epilogue(epilogue.kind) {
        return None;
    }
    let round_trip = 2 * producer.out_bytes;
    if epilogue.cost.hbm_bytes < round_trip {
        return None;
    }
    let kind = match producer.kind {
        KernelKind::Gemm | KernelKind::GemmEpilogue => KernelKind::GemmEpilogue,
        _ => KernelKind::ConvEpilogue,
    };
    let mut fused = producer.clone();
    fused.kind = kind;
    fused.label = format!("{}+{}", producer.label, epilogue.label);
    fused.cost.flops = producer.cost.flops + epilogue.cost.flops;
    fused.cost.hbm_bytes = producer.cost.hbm_bytes + epilogue.cost.hbm_bytes - round_trip;
    fused.out_bytes = epilogue.out_bytes;
    Some(fused)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmg_gpu::KernelCost;

    fn gemm(out_bytes: u64) -> KernelDesc {
        KernelDesc::new(
            KernelKind::Gemm,
            "gemm_b1_m128_n128_k128",
            KernelCost { flops: 4_194_304, hbm_bytes: 98_304, compute_eff: 0.85, memory_eff: 0.85 },
        )
        .with_idle_slots(7)
        .with_out_bytes(out_bytes)
    }

    fn bias_act(elems: u64) -> KernelDesc {
        KernelDesc::new(
            KernelKind::Elementwise,
            "bias_act",
            KernelCost {
                flops: 4 * elems,
                hbm_bytes: 2 * elems * 2,
                compute_eff: 1.0,
                memory_eff: 0.8,
            },
        )
        .with_out_bytes(elems * 2)
    }

    #[test]
    fn fused_flops_equal_sum_of_parts() {
        let p = gemm(32_768);
        let e = bias_act(16_384);
        let f = fuse_epilogue(&p, &e).unwrap();
        assert_eq!(f.cost.flops, p.cost.flops + e.cost.flops);
    }

    #[test]
    fn fused_hbm_bytes_strictly_decrease() {
        let p = gemm(32_768);
        let e = bias_act(16_384);
        let f = fuse_epilogue(&p, &e).unwrap();
        assert!(f.cost.hbm_bytes < p.cost.hbm_bytes + e.cost.hbm_bytes);
        assert_eq!(f.cost.hbm_bytes, p.cost.hbm_bytes + e.cost.hbm_bytes - 2 * p.out_bytes);
    }

    #[test]
    fn fused_keeps_producer_efficiencies_and_idle_slots() {
        let p = gemm(32_768);
        let e = bias_act(16_384);
        let f = fuse_epilogue(&p, &e).unwrap();
        assert_eq!(f.kind, KernelKind::GemmEpilogue);
        assert_eq!(f.cost.compute_eff, p.cost.compute_eff);
        assert_eq!(f.cost.memory_eff, p.cost.memory_eff);
        assert_eq!(f.wave_quant_idle_slots, p.wave_quant_idle_slots);
        assert_eq!(f.out_bytes, e.out_bytes);
        assert_eq!(f.label, "gemm_b1_m128_n128_k128+bias_act");
    }

    #[test]
    fn memcpy_is_not_a_fusible_epilogue() {
        let p = gemm(32_768);
        let copy = KernelDesc::new(
            KernelKind::MemCopy,
            "layout_transform",
            KernelCost::memory_only(1 << 20, 0.8),
        );
        assert!(fuse_epilogue(&p, &copy).is_none());
    }

    #[test]
    fn producer_without_out_bytes_does_not_fuse() {
        let p = gemm(0);
        let e = bias_act(16_384);
        assert!(fuse_epilogue(&p, &e).is_none());
    }

    #[test]
    fn undersized_epilogue_is_rejected() {
        // An epilogue too small to have round-tripped the intermediate
        // is a mis-pairing, not a legal fold.
        let p = gemm(1 << 20);
        let tiny = bias_act(16);
        assert!(fuse_epilogue(&p, &tiny).is_none());
    }

    #[test]
    fn fused_kernel_accepts_further_epilogues() {
        let p = gemm(32_768);
        let bias = bias_act(16_384);
        let once = fuse_epilogue(&p, &bias).unwrap();
        let norm = KernelDesc::new(
            KernelKind::Norm,
            "layer_norm",
            KernelCost {
                flops: 8 * 16_384,
                hbm_bytes: 3 * 16_384 * 2,
                compute_eff: 1.0,
                memory_eff: 0.8,
            },
        )
        .with_out_bytes(16_384 * 2);
        let twice = fuse_epilogue(&once, &norm).unwrap();
        assert_eq!(twice.kind, KernelKind::GemmEpilogue);
        assert_eq!(twice.cost.flops, p.cost.flops + bias.cost.flops + norm.cost.flops);
    }
}
