//! GEMM cost model.

use mmg_gpu::KernelCost;

use crate::{KernelDesc, KernelKind};

/// Output tile edge used by tensor-core GEMM kernels (CUTLASS default-ish).
pub const TILE_M: usize = 128;
/// Output tile edge in the `n` dimension.
pub const TILE_N: usize = 128;
/// Peak fraction a well-shaped FP16 tensor-core GEMM sustains in practice.
pub const BASE_GEMM_EFF: f64 = 0.85;
/// Floor on compute efficiency — even pathological shapes make *some*
/// progress per cycle.
pub const MIN_GEMM_EFF: f64 = 0.015;
/// Number of SMs used for wave-quantization (A100).
pub const DEFAULT_SMS: usize = 108;

/// Shape of a (batched) GEMM: `batch × [m, k] · [k, n]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GemmShape {
    /// Batch count (1 for plain GEMM).
    pub batch: usize,
    /// Output rows.
    pub m: usize,
    /// Output columns.
    pub n: usize,
    /// Reduction depth.
    pub k: usize,
}

impl GemmShape {
    /// Plain (non-batched) GEMM.
    #[must_use]
    pub fn new(m: usize, n: usize, k: usize) -> Self {
        GemmShape { batch: 1, m, n, k }
    }

    /// Batched GEMM.
    #[must_use]
    pub fn batched(batch: usize, m: usize, n: usize, k: usize) -> Self {
        GemmShape { batch, m, n, k }
    }

    /// Multiply-accumulate FLOPs (2 per MAC).
    #[must_use]
    pub fn flops(&self) -> u64 {
        2 * self.batch as u64 * self.m as u64 * self.n as u64 * self.k as u64
    }

    /// Compulsory HBM bytes: read A and B, write C, assuming operands are
    /// streamed once (cache keeps tiles resident).
    #[must_use]
    pub fn min_bytes(&self, elem_bytes: usize) -> u64 {
        let b = self.batch as u64;
        let (m, n, k) = (self.m as u64, self.n as u64, self.k as u64);
        b * (m * k + k * n + m * n) * elem_bytes as u64
    }
}

/// Fraction of peak FLOP/s a GEMM of this shape sustains.
///
/// Three multiplicative terms:
///
/// * **tile quantization** — a `m×n` output smaller than the 128×128 tile
///   wastes the tile's idle lanes;
/// * **wave quantization** — the grid of output tiles (× batch) is executed
///   in waves of `sms` thread blocks; a ragged final wave idles SMs;
/// * **reduction depth** — short `k` cannot fill the MMA pipeline
///   (`k / (k + 32)`).
///
/// When the output grid alone cannot fill the device, kernels split the
/// reduction across blocks (split-k, up to 8 ways for deep reductions),
/// which restores occupancy for shapes like single-image convolutions.
#[must_use]
pub fn gemm_compute_eff(shape: GemmShape, sms: usize) -> f64 {
    let tiles_m = shape.m.div_ceil(TILE_M);
    let tiles_n = shape.n.div_ceil(TILE_N);
    let tile_eff =
        (shape.m * shape.n) as f64 / ((tiles_m * TILE_M) * (tiles_n * TILE_N)) as f64;
    let mut total_tiles = shape.batch * tiles_m * tiles_n;
    if total_tiles < sms {
        let split_k = (shape.k / 256).clamp(1, 8);
        total_tiles *= split_k;
    }
    let waves = total_tiles.div_ceil(sms.max(1));
    let wave_eff = total_tiles as f64 / (waves * sms.max(1)) as f64;
    let k_eff = shape.k as f64 / (shape.k as f64 + 32.0);
    (BASE_GEMM_EFF * tile_eff * wave_eff * k_eff).clamp(MIN_GEMM_EFF, 1.0)
}

/// Idle SM-tile slots in the final (ragged) wave of a GEMM launch —
/// the waste term behind the wave-quantization factor of
/// [`gemm_compute_eff`]. Zero when the grid divides the device evenly.
#[must_use]
pub fn wave_quant_idle_slots(shape: GemmShape, sms: usize) -> u64 {
    let tiles_m = shape.m.div_ceil(TILE_M);
    let tiles_n = shape.n.div_ceil(TILE_N);
    let mut total_tiles = shape.batch * tiles_m * tiles_n;
    if total_tiles < sms {
        let split_k = (shape.k / 256).clamp(1, 8);
        total_tiles *= split_k;
    }
    let waves = total_tiles.div_ceil(sms.max(1));
    (waves * sms.max(1) - total_tiles) as u64
}

/// Builds the kernel descriptor for a batched GEMM over contiguous
/// operands at `elem_bytes` precision, assuming [`DEFAULT_SMS`] SMs.
#[must_use]
pub fn gemm_kernel(shape: GemmShape, elem_bytes: usize) -> KernelDesc {
    gemm_kernel_amplified_on(shape, elem_bytes, 1.0, DEFAULT_SMS)
}

/// [`gemm_kernel`] with the SM count of the active device, so wave
/// quantization matches the part being simulated (L4 has 58 SMs, H200
/// has 132 — a grid that fills an A100 evenly leaves either ragged).
#[must_use]
pub fn gemm_kernel_on(shape: GemmShape, elem_bytes: usize, sms: usize) -> KernelDesc {
    gemm_kernel_amplified_on(shape, elem_bytes, 1.0, sms)
}

/// Like [`gemm_kernel`], but with the HBM traffic multiplied by an
/// `amplification` factor (≥ 1) modelling strided/permuted operand views
/// where each cache line yields only a fraction of useful bytes — the
/// temporal-attention situation of Fig. 12.
///
/// Amplified traffic also caps memory efficiency at 0.5: scattered sector
/// traffic cannot saturate HBM channels.
#[must_use]
pub fn gemm_kernel_amplified(shape: GemmShape, elem_bytes: usize, amplification: f64) -> KernelDesc {
    gemm_kernel_amplified_on(shape, elem_bytes, amplification, DEFAULT_SMS)
}

/// [`gemm_kernel_amplified`] with an explicit SM count.
#[must_use]
pub fn gemm_kernel_amplified_on(
    shape: GemmShape,
    elem_bytes: usize,
    amplification: f64,
    sms: usize,
) -> KernelDesc {
    assert!(amplification >= 1.0, "amplification must be >= 1");
    let bytes = (shape.min_bytes(elem_bytes) as f64 * amplification) as u64;
    let mem_eff = if amplification > 1.0 { 0.5 } else { 0.85 };
    let out_bytes = shape.batch as u64 * shape.m as u64 * shape.n as u64 * elem_bytes as u64;
    KernelDesc::new(
        KernelKind::Gemm,
        format!("gemm_b{}_m{}_n{}_k{}", shape.batch, shape.m, shape.n, shape.k),
        KernelCost {
            flops: shape.flops(),
            hbm_bytes: bytes,
            compute_eff: gemm_compute_eff(shape, sms),
            memory_eff: mem_eff,
        },
    )
    .with_idle_slots(wave_quant_idle_slots(shape, sms))
    .with_out_bytes(out_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn large_square_gemm_is_efficient() {
        let e = gemm_compute_eff(GemmShape::new(4096, 4096, 4096), DEFAULT_SMS);
        assert!(e > 0.75, "e={e}");
    }

    #[test]
    fn decode_gemv_is_inefficient() {
        // 1×N decode-style "GEMM" (m=1).
        let e = gemm_compute_eff(GemmShape::new(1, 4096, 4096), DEFAULT_SMS);
        assert!(e < 0.05, "e={e}");
    }

    #[test]
    fn tiny_batched_gemm_is_inefficient() {
        // Temporal attention: 4096 batches of 16x16x64.
        let e = gemm_compute_eff(GemmShape::batched(4096, 16, 16, 64), DEFAULT_SMS);
        assert!(e < 0.02, "e={e}");
    }

    #[test]
    fn efficiency_monotone_in_m_up_to_tile() {
        let mut last = 0.0;
        for m in [1, 8, 32, 64, 128] {
            let e = gemm_compute_eff(GemmShape::batched(256, m, 128, 128), DEFAULT_SMS);
            assert!(e >= last, "m={m}: {e} < {last}");
            last = e;
        }
    }

    #[test]
    fn shallow_k_penalized() {
        let deep = gemm_compute_eff(GemmShape::new(4096, 4096, 1024), DEFAULT_SMS);
        let shallow = gemm_compute_eff(GemmShape::new(4096, 4096, 8), DEFAULT_SMS);
        assert!(deep > 3.0 * shallow);
    }

    #[test]
    fn flops_and_bytes() {
        let s = GemmShape::batched(2, 4, 5, 6);
        assert_eq!(s.flops(), 2 * 2 * 4 * 5 * 6);
        assert_eq!(s.min_bytes(2), 2 * (4 * 6 + 6 * 5 + 4 * 5) * 2);
    }

    #[test]
    fn wave_quant_idle_slots_shape() {
        // Exactly one full wave: no waste.
        assert_eq!(
            wave_quant_idle_slots(GemmShape::batched(DEFAULT_SMS, 128, 128, 4096), DEFAULT_SMS),
            0
        );
        // One tile over a full wave: a nearly idle second wave.
        let slots =
            wave_quant_idle_slots(GemmShape::batched(DEFAULT_SMS + 1, 128, 128, 4096), DEFAULT_SMS);
        assert_eq!(slots, DEFAULT_SMS as u64 - 1);
    }

    #[test]
    fn sm_count_changes_wave_quantization() {
        // A grid of exactly 108 tiles fills an A100 in one wave but
        // leaves an L4 (58 SMs) and an H200 (132 SMs) ragged. The kernel
        // constructor must honor the SM count it is given, not assume
        // the A100 default.
        // k < 256 so split-k never rescales the grid on any device.
        let shape = GemmShape::batched(108, 128, 128, 128);
        let a100 = gemm_kernel_on(shape, 2, 108);
        let l4 = gemm_kernel_on(shape, 2, 58);
        let h200 = gemm_kernel_on(shape, 2, 132);
        assert_eq!(a100.wave_quant_idle_slots, 0);
        assert_eq!(l4.wave_quant_idle_slots, 2 * 58 - 108);
        assert_eq!(h200.wave_quant_idle_slots, 132 - 108);
        assert!(l4.cost.compute_eff < a100.cost.compute_eff);
        assert!(h200.cost.compute_eff < a100.cost.compute_eff);
        // The legacy constructor is the A100 default.
        assert_eq!(gemm_kernel(shape, 2), a100);
    }

    #[test]
    fn gemm_kernel_reports_output_footprint() {
        let s = GemmShape::batched(2, 64, 32, 128);
        assert_eq!(gemm_kernel(s, 2).out_bytes, 2 * 64 * 32 * 2);
    }

    #[test]
    fn amplification_scales_bytes() {
        let s = GemmShape::new(64, 64, 64);
        let base = gemm_kernel(s, 2);
        let amp = gemm_kernel_amplified(s, 2, 16.0);
        assert_eq!(amp.cost.hbm_bytes, base.cost.hbm_bytes * 16);
        assert!(amp.cost.memory_eff < base.cost.memory_eff);
    }

    #[test]
    fn efficiency_clamped_to_valid_range() {
        for shape in [
            GemmShape::new(1, 1, 1),
            GemmShape::new(100_000, 100_000, 4096),
            GemmShape::batched(1_000_000, 2, 2, 2),
        ] {
            let e = gemm_compute_eff(shape, DEFAULT_SMS);
            assert!((MIN_GEMM_EFF..=1.0).contains(&e), "{shape:?} -> {e}");
        }
    }
}
