//! # mmg-kernels
//!
//! Kernel-level cost models: the layer between operators (`mmg-graph`) and
//! the device timing engine (`mmg-gpu`).
//!
//! Every operator lowers to one or more [`KernelDesc`]s. A descriptor
//! carries the kernel's FLOPs, its HBM traffic, and two *efficiency*
//! factors — the fraction of peak compute / bandwidth the kernel's shape
//! can sustain. Efficiencies come from simple, documented models:
//!
//! * **GEMM** ([`gemm`]): 128×128 output-tile quantization, wave
//!   quantization across SMs, and reduction-depth (`k`) pipeline
//!   efficiency. Small matrices — the decode phase of autoregressive
//!   models, or tiny per-pixel temporal attention — land at a few percent
//!   of peak, exactly the asymmetry Section IV-B of the paper builds on.
//! * **Convolution** ([`conv`]): implicit-GEMM mapping
//!   (`m = N·OH·OW`, `n = C_out`, `k = C_in·KH·KW`) with a small
//!   im2col overhead factor.
//! * **Memory-bound kernels** ([`memory_bound`]): softmax, elementwise,
//!   normalization and copy kernels run at a fixed fraction of peak
//!   bandwidth, degraded when rows are shorter than a cache line or when
//!   the access pattern is strided.
//! * **Access streams** ([`access`]): sampled address traces fed to the
//!   `mmg-gpu` cache simulator to reproduce the paper's Fig. 12 cache
//!   hit-rate comparison between spatial and temporal attention.
//! * **Fused kernels** ([`fuse`]): epilogue-fusion cost composition —
//!   folding a bandwidth-bound follower into its producing GEMM/conv
//!   eliminates the intermediate tensor's HBM round-trip and one launch.

#![deny(missing_docs)]

pub mod access;
pub mod conv;
pub mod fuse;
pub mod gemm;
pub mod memory_bound;

mod desc;

pub use desc::{record_kernel, record_kernel_named, KernelDesc, KernelKind};
pub use fuse::fuse_epilogue;
