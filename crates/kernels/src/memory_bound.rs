//! Bandwidth-bound kernels: softmax, elementwise, norms, copies, gathers.

use mmg_gpu::KernelCost;

use crate::{KernelDesc, KernelKind};

/// Fraction of peak HBM bandwidth a well-formed streaming kernel sustains.
pub const STREAM_EFF: f64 = 0.8;

/// Bandwidth efficiency for a row-oriented kernel whose rows are shorter
/// than a cache line: the tail of each 128-byte line is wasted, so the
/// *useful* bandwidth drops proportionally.
#[must_use]
pub fn short_row_eff(row_bytes: usize, line_bytes: usize) -> f64 {
    if row_bytes == 0 {
        return STREAM_EFF;
    }
    if row_bytes >= line_bytes {
        STREAM_EFF
    } else {
        STREAM_EFF * row_bytes as f64 / line_bytes as f64
    }
}

/// Softmax over `rows` rows of `cols` elements.
///
/// Reads the input once, writes the output once; ~5 FLOPs per element
/// (max-subtract, exp, sum, divide). Rows shorter than a cache line —
/// temporal attention's frame-length rows — waste line bandwidth.
#[must_use]
pub fn softmax_kernel(rows: usize, cols: usize, elem_bytes: usize) -> KernelDesc {
    let elems = (rows * cols) as u64;
    let row_bytes = cols * elem_bytes;
    KernelDesc::new(
        KernelKind::Softmax,
        format!("softmax_r{rows}_c{cols}"),
        KernelCost {
            flops: 5 * elems,
            hbm_bytes: 2 * elems * elem_bytes as u64,
            compute_eff: 1.0,
            memory_eff: short_row_eff(row_bytes, 128),
        },
    )
    .with_out_bytes(elems * elem_bytes as u64)
}

/// Pointwise kernel over `elems` elements with `inputs` operands
/// (e.g. residual add = 2 inputs) and `flops_per_elem` arithmetic.
#[must_use]
pub fn elementwise_kernel(
    label: &str,
    elems: u64,
    inputs: u64,
    flops_per_elem: u64,
    elem_bytes: usize,
) -> KernelDesc {
    KernelDesc::new(
        KernelKind::Elementwise,
        format!("elementwise_{label}_{elems}"),
        KernelCost {
            flops: flops_per_elem * elems,
            hbm_bytes: (inputs + 1) * elems * elem_bytes as u64,
            compute_eff: 1.0,
            memory_eff: STREAM_EFF,
        },
    )
    .with_out_bytes(elems * elem_bytes as u64)
}

/// Normalization kernel (GroupNorm / LayerNorm / RMSNorm): two passes over
/// the data (statistics, then normalize) at ~8 FLOPs per element.
#[must_use]
pub fn norm_kernel(label: &str, elems: u64, elem_bytes: usize) -> KernelDesc {
    KernelDesc::new(
        KernelKind::Norm,
        format!("norm_{label}_{elems}"),
        KernelCost {
            flops: 8 * elems,
            hbm_bytes: 3 * elems * elem_bytes as u64,
            compute_eff: 1.0,
            memory_eff: STREAM_EFF,
        },
    )
    .with_out_bytes(elems * elem_bytes as u64)
}

/// Pure copy / layout transform. `amplification ≥ 1` models strided
/// (permuted-view) transforms where lines are partially used.
#[must_use]
pub fn memcpy_kernel(label: &str, bytes: u64, amplification: f64) -> KernelDesc {
    assert!(amplification >= 1.0, "amplification must be >= 1");
    let eff = if amplification > 1.0 { 0.5 } else { STREAM_EFF };
    KernelDesc::new(
        KernelKind::MemCopy,
        format!("memcpy_{label}_{bytes}"),
        KernelCost::memory_only((bytes as f64 * amplification) as u64, eff),
    )
}

/// Embedding gather of `tokens` rows of `dim` elements: random row reads
/// get roughly half the streaming bandwidth.
#[must_use]
pub fn gather_kernel(tokens: usize, dim: usize, elem_bytes: usize) -> KernelDesc {
    let bytes = (2 * tokens * dim * elem_bytes) as u64;
    KernelDesc::new(
        KernelKind::Gather,
        format!("gather_t{tokens}_d{dim}"),
        KernelCost { flops: 0, hbm_bytes: bytes, compute_eff: 1.0, memory_eff: 0.4 },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn long_row_softmax_full_bandwidth() {
        let d = softmax_kernel(4096, 4096, 2);
        assert!((d.cost.memory_eff - STREAM_EFF).abs() < 1e-12);
        assert_eq!(d.cost.hbm_bytes, 2 * 4096 * 4096 * 2);
    }

    #[test]
    fn short_row_softmax_penalized() {
        // 16-frame temporal rows: 32 bytes of a 128-byte line used.
        let d = softmax_kernel(4096 * 4096 / 16, 16, 2);
        assert!((d.cost.memory_eff - STREAM_EFF * 0.25).abs() < 1e-12);
    }

    #[test]
    fn short_row_eff_is_monotone() {
        let mut last = 0.0;
        for cols in [1usize, 4, 16, 32, 64, 128] {
            let e = short_row_eff(cols * 2, 128);
            assert!(e >= last);
            last = e;
        }
        assert!((short_row_eff(256, 128) - STREAM_EFF).abs() < 1e-12);
    }

    #[test]
    fn elementwise_counts_inputs_plus_output() {
        let d = elementwise_kernel("add", 1000, 2, 1, 2);
        assert_eq!(d.cost.hbm_bytes, 3 * 1000 * 2);
        assert_eq!(d.cost.flops, 1000);
    }

    #[test]
    fn memcpy_amplification() {
        let d = memcpy_kernel("permute", 1000, 4.0);
        assert_eq!(d.cost.hbm_bytes, 4000);
        assert_eq!(d.cost.flops, 0);
    }

    #[test]
    fn gather_bandwidth_is_degraded() {
        let d = gather_kernel(77, 768, 2);
        assert!(d.cost.memory_eff < STREAM_EFF);
    }

    #[test]
    fn norm_three_streams() {
        let d = norm_kernel("groupnorm", 500, 2);
        assert_eq!(d.cost.hbm_bytes, 3 * 500 * 2);
    }
}
