//! Property-based tests for kernel cost models and access streams.

use mmg_kernels::access::{StridedMatrixAccess, SECTOR_BYTES};
use mmg_kernels::conv::ConvShape;
use mmg_kernels::gemm::{gemm_compute_eff, gemm_kernel, GemmShape};
use mmg_kernels::memory_bound::{short_row_eff, softmax_kernel, STREAM_EFF};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Conv FLOPs via the implicit-GEMM view match the direct formula.
    #[test]
    fn conv_flops_match_direct_formula(
        batch in 1usize..4,
        c_in in 1usize..64,
        c_out in 1usize..64,
        hw in 1usize..64,
        kernel in 1usize..5,
        stride in 1usize..3,
    ) {
        let s = ConvShape { batch, c_in, c_out, h: hw, w: hw, kernel, stride };
        let direct = 2
            * (batch * hw.div_ceil(stride) * hw.div_ceil(stride)) as u64
            * c_out as u64
            * (c_in * kernel * kernel) as u64;
        prop_assert_eq!(s.flops(), direct);
    }

    /// GEMM efficiency never leaves (0, 1], and kernel costs are positive.
    #[test]
    fn gemm_cost_sane(b in 1usize..128, m in 1usize..1024, n in 1usize..1024, k in 1usize..1024) {
        let shape = GemmShape::batched(b, m, n, k);
        let e = gemm_compute_eff(shape, 108);
        prop_assert!(e > 0.0 && e <= 1.0);
        let kd = gemm_kernel(shape, 2);
        prop_assert!(kd.cost.flops > 0);
        prop_assert!(kd.cost.hbm_bytes > 0);
    }

    /// GEMM bytes grow monotonically with every dimension.
    #[test]
    fn gemm_bytes_monotone(m in 1usize..256, n in 1usize..256, k in 1usize..256) {
        let base = GemmShape::new(m, n, k).min_bytes(2);
        prop_assert!(GemmShape::new(m + 1, n, k).min_bytes(2) >= base);
        prop_assert!(GemmShape::new(m, n + 1, k).min_bytes(2) >= base);
        prop_assert!(GemmShape::new(m, n, k + 1).min_bytes(2) >= base);
    }

    /// Short-row efficiency is bounded by the streaming efficiency and
    /// monotone in row length.
    #[test]
    fn short_row_eff_bounded(row in 0usize..512) {
        let e = short_row_eff(row, 128);
        prop_assert!(e > 0.0 && e <= STREAM_EFF + 1e-12);
        prop_assert!(short_row_eff(row + 1, 128) >= e - 1e-12);
    }

    /// Softmax kernel traffic is exactly two passes over the data.
    #[test]
    fn softmax_traffic_two_passes(rows in 1usize..512, cols in 1usize..512) {
        let k = softmax_kernel(rows, cols, 2);
        prop_assert_eq!(k.cost.hbm_bytes, 2 * (rows * cols) as u64 * 2);
    }

    /// Probe streams are sector-aligned and never repeat consecutively.
    #[test]
    fn probes_sector_aligned_and_deduped(
        rows in 1usize..16,
        cols in 1usize..64,
        col_stride in 1usize..256,
    ) {
        let acc = StridedMatrixAccess {
            base: 0,
            rows,
            cols,
            row_stride_elems: cols * col_stride,
            col_stride_elems: col_stride,
            elem_bytes: 2,
            row_step: 1,
        };
        let mut out = Vec::new();
        acc.extend_probes(&mut out, 10_000);
        prop_assert!(!out.is_empty());
        for w in out.windows(2) {
            prop_assert_ne!(w[0], w[1], "consecutive duplicate sector");
        }
        for &a in &out {
            prop_assert_eq!(a % SECTOR_BYTES, 0);
        }
    }

    /// The probe cap is respected exactly.
    #[test]
    fn probe_cap_respected(rows in 1usize..64, cols in 1usize..64, cap in 1usize..128) {
        let acc = StridedMatrixAccess {
            base: 0,
            rows,
            cols,
            row_stride_elems: cols * 100,
            col_stride_elems: 100,
            elem_bytes: 2,
            row_step: 1,
        };
        let mut out = Vec::new();
        acc.extend_probes(&mut out, cap);
        prop_assert!(out.len() <= cap);
    }
}
