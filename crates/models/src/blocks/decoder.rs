//! Convolutional decoders: the VAE/GAN decoder of latent models and the
//! "efficient UNet" configuration used by super-resolution stages.

use mmg_graph::{ActivationKind, Graph, Op};

use crate::UNetConfig;

/// Configuration of a VAE/VQGAN-style convolutional decoder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VaeDecoderConfig {
    /// Latent channels (4 for SD).
    pub latent_channels: usize,
    /// Channels at the latent resolution.
    pub base_channels: usize,
    /// Channel divisors per upsampling level, latent-res first
    /// (e.g. `[1, 1, 2, 4]` = 512, 512, 256, 128 with base 512).
    pub channel_div: Vec<usize>,
    /// Residual blocks per level.
    pub blocks_per_level: usize,
    /// Output image channels.
    pub out_channels: usize,
}

impl VaeDecoderConfig {
    /// The Stable Diffusion VAE decoder (≈50M params, 64 → 512 pixels).
    #[must_use]
    pub fn stable_diffusion() -> Self {
        VaeDecoderConfig {
            latent_channels: 4,
            base_channels: 512,
            channel_div: vec![1, 1, 2, 4],
            blocks_per_level: 3,
            out_channels: 3,
        }
    }
}

fn conv_block(g: &mut Graph, path: &str, c_in: usize, c_out: usize, res: usize) {
    g.push(
        format!("{path}.norm"),
        Op::GroupNorm { batch: 1, channels: c_in, h: res, w: res, groups: 32.min(c_in) },
    );
    g.push(
        format!("{path}.act"),
        Op::Activation { elems: c_in * res * res, kind: ActivationKind::Silu },
    );
    g.push(
        format!("{path}.conv"),
        Op::Conv2d { batch: 1, c_in, c_out, h: res, w: res, kernel: 3, stride: 1 },
    );
    g.push(format!("{path}.residual"), Op::Elementwise { elems: c_out * res * res, inputs: 2 });
}

/// Builds the decoder graph from `latent_res` to
/// `latent_res × 2^(levels-1)` pixels.
///
/// # Panics
///
/// Panics if `channel_div` is empty.
#[must_use]
pub fn vae_decoder_graph(cfg: &VaeDecoderConfig, latent_res: usize) -> Graph {
    assert!(!cfg.channel_div.is_empty(), "decoder needs at least one level");
    let mut g = Graph::new();
    let mut res = latent_res;
    let mut c_prev = cfg.base_channels;
    g.push(
        "conv_in",
        Op::Conv2d {
            batch: 1,
            c_in: cfg.latent_channels,
            c_out: c_prev,
            h: res,
            w: res,
            kernel: 3,
            stride: 1,
        },
    );
    for (level, div) in cfg.channel_div.iter().enumerate() {
        let c = cfg.base_channels / div;
        for b in 0..cfg.blocks_per_level {
            conv_block(&mut g, &format!("up.{level}.block{b}"), c_prev, c, res);
            c_prev = c;
        }
        if level + 1 < cfg.channel_div.len() {
            g.push(
                format!("up.{level}.upsample"),
                Op::Upsample { batch: 1, c, h: res, w: res, factor: 2 },
            );
            res *= 2;
            g.push(
                format!("up.{level}.upsample_conv"),
                Op::Conv2d { batch: 1, c_in: c, c_out: c, h: res, w: res, kernel: 3, stride: 1 },
            );
        }
    }
    g.push(
        "out.norm",
        Op::GroupNorm { batch: 1, channels: c_prev, h: res, w: res, groups: 32.min(c_prev) },
    );
    g.push("out.act", Op::Activation { elems: c_prev * res * res, kind: ActivationKind::Silu });
    g.push(
        "out.conv",
        Op::Conv2d { batch: 1, c_in: c_prev, c_out: cfg.out_channels, h: res, w: res, kernel: 3, stride: 1 },
    );
    g
}

/// The "efficient UNet" configuration Imagen-style super-resolution stages
/// use: convolution-heavy, **no self-attention at high resolution** (the
/// paper: SR networks "often swap attention layers for convolution due to
/// prohibitive memory requirements"), cross-attention only at the deepest
/// levels.
#[must_use]
pub fn sr_unet_config(text_len: usize, text_dim: usize) -> UNetConfig {
    UNetConfig {
        base_channels: 128,
        channel_mult: vec![1, 2, 4, 8],
        num_res_blocks: 2,
        attn_resolutions: vec![],
        cross_attn_resolutions: vec![32],
        temporal_attn_resolutions: vec![],
        heads: 8,
        text_len,
        text_dim,
        in_channels: 3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocks::unet_step_graph;
    use mmg_graph::OpCategory;

    #[test]
    fn sd_vae_outputs_512_from_64() {
        let g = vae_decoder_graph(&VaeDecoderConfig::stable_diffusion(), 64);
        // The final conv runs at 512x512.
        let last_conv = g
            .nodes()
            .iter()
            .rev()
            .find_map(|n| match &n.op {
                Op::Conv2d { h, c_out, .. } => Some((*h, *c_out)),
                _ => None,
            })
            .unwrap();
        assert_eq!(last_conv, (512, 3));
    }

    #[test]
    fn vae_params_in_reference_range() {
        let g = vae_decoder_graph(&VaeDecoderConfig::stable_diffusion(), 64);
        let p = g.param_count() as f64 / 1e6;
        assert!((20.0..120.0).contains(&p), "params {p}M");
    }

    #[test]
    fn vae_is_pure_conv_no_attention() {
        let g = vae_decoder_graph(&VaeDecoderConfig::stable_diffusion(), 64);
        assert_eq!(g.attention_nodes().count(), 0);
        let by = g.flops_by_category();
        let conv = by.iter().find(|(c, _)| *c == OpCategory::Conv).unwrap().1;
        assert!(conv as f64 / g.total_flops() as f64 > 0.9);
    }

    #[test]
    fn sr_unet_has_no_self_attention() {
        let cfg = sr_unet_config(128, 4096);
        let g = unet_step_graph(&cfg, 256, 1);
        // Only cross-attention at 32 plus the mid-block layers.
        for n in g.attention_nodes() {
            let (s, _) = n.op.attention_shape().unwrap();
            assert!(s.seq_q <= 32 * 32 * 2, "high-res attention leaked: {}", s.seq_q);
        }
    }

    #[test]
    fn sr_unet_is_conv_dominated() {
        let cfg = sr_unet_config(128, 4096);
        let g = unet_step_graph(&cfg, 256, 1);
        let by = g.flops_by_category();
        let conv = by.iter().find(|(c, _)| *c == OpCategory::Conv).unwrap().1;
        assert!(conv as f64 / g.total_flops() as f64 > 0.7);
    }
}
