//! Graph builders for the architectural building blocks shared across the
//! suite: transformer stacks, diffusion UNets, and convolutional decoders.

mod decoder;
mod transformer;
mod unet;

pub use decoder::{sr_unet_config, vae_decoder_graph, VaeDecoderConfig};
pub use transformer::{
    batched_decode_step_graph, decode_step_graph, encoder_graph, prefill_graph,
    windowed_encoder_graph,
};
pub use unet::unet_step_graph;
