//! Transformer stack builders.
//!
//! Three variants cover every transformer in the suite:
//!
//! * [`encoder_graph`] — bidirectional encoder over a fixed sequence
//!   (CLIP/T5 text encoders, Parti's encoder, Muse's full-sequence passes).
//! * [`prefill_graph`] — causal pass over a whole prompt (LLM prefill).
//! * [`decode_step_graph`] — one KV-cached autoregressive step
//!   (LLM decode, Parti's image-token decode).

use mmg_attn::AttentionShape;
use mmg_graph::{ActivationKind, AttnKind, Graph, Op};

use crate::TransformerConfig;

#[allow(clippy::too_many_arguments)] // graph builders thread explicit shape state
fn attn_block(
    g: &mut Graph,
    path: &str,
    cfg: &TransformerConfig,
    shape: AttentionShape,
    kind: AttnKind,
    q_tokens: usize,
    kv_tokens: usize,
    kv_in_dim: usize,
) {
    let d = cfg.d_model;
    g.push(format!("{path}.norm"), Op::LayerNorm { rows: q_tokens, cols: d });
    g.push(format!("{path}.q_proj"), Op::Linear { tokens: q_tokens, in_features: d, out_features: d });
    g.push(format!("{path}.k_proj"), Op::Linear { tokens: kv_tokens, in_features: kv_in_dim, out_features: d });
    g.push(format!("{path}.v_proj"), Op::Linear { tokens: kv_tokens, in_features: kv_in_dim, out_features: d });
    g.push(format!("{path}.attention"), Op::Attention { shape, kind });
    g.push(format!("{path}.out_proj"), Op::Linear { tokens: q_tokens, in_features: d, out_features: d });
    g.push(format!("{path}.residual"), Op::Elementwise { elems: q_tokens * d, inputs: 2 });
}

fn ffn_block(g: &mut Graph, path: &str, cfg: &TransformerConfig, tokens: usize) {
    let d = cfg.d_model;
    g.push(format!("{path}.norm"), Op::LayerNorm { rows: tokens, cols: d });
    g.push(format!("{path}.fc1"), Op::Linear { tokens, in_features: d, out_features: cfg.d_ff });
    g.push(
        format!("{path}.act"),
        Op::Activation { elems: tokens * cfg.d_ff, kind: ActivationKind::Gelu },
    );
    if cfg.gated_ffn {
        g.push(
            format!("{path}.gate"),
            Op::Linear { tokens, in_features: d, out_features: cfg.d_ff },
        );
        g.push(format!("{path}.gate_mul"), Op::Elementwise { elems: tokens * cfg.d_ff, inputs: 2 });
    }
    g.push(format!("{path}.fc2"), Op::Linear { tokens, in_features: cfg.d_ff, out_features: d });
    g.push(format!("{path}.residual"), Op::Elementwise { elems: tokens * d, inputs: 2 });
}

fn layer(
    g: &mut Graph,
    idx: usize,
    cfg: &TransformerConfig,
    self_shape: AttentionShape,
    self_kind: AttnKind,
    tokens: usize,
) {
    let path = format!("layer{idx}.self_attn");
    attn_block(g, &path, cfg, self_shape, self_kind, tokens, tokens, cfg.d_model);
    if cfg.cross_attention {
        // Cross-attention always spans the full token set (windowing only
        // applies to self-attention).
        let cross =
            AttentionShape::cross_attn(1, cfg.heads, tokens, cfg.context_len, cfg.head_dim());
        let path = format!("layer{idx}.cross_attn");
        attn_block(g, &path, cfg, cross, AttnKind::Cross, tokens, cfg.context_len, cfg.context_dim);
    }
    ffn_block(g, &format!("layer{idx}.ffn"), cfg, tokens);
}

/// Bidirectional encoder forward over `seq` tokens.
#[must_use]
pub fn encoder_graph(cfg: &TransformerConfig, seq: usize) -> Graph {
    let mut g = Graph::new();
    g.push("embed", Op::Embedding { vocab: cfg.vocab, tokens: seq, dim: cfg.d_model });
    let shape = AttentionShape::self_attn(1, cfg.heads, seq, cfg.head_dim());
    for i in 0..cfg.layers {
        layer(&mut g, i, cfg, shape, AttnKind::SpatialSelf, seq);
    }
    g.push("final_norm", Op::LayerNorm { rows: seq, cols: cfg.d_model });
    g
}

/// Bidirectional encoder whose self-attention is *windowed*: tokens attend
/// within non-overlapping windows of `window` tokens (the standard trick
/// high-resolution token transformers use to keep attention affordable —
/// e.g. Muse's super-resolution stage). Linear/FFN work is unchanged; only
/// the attention shape folds `tokens/window` into the batch.
///
/// # Panics
///
/// Panics if `window` is zero or does not divide `seq`.
#[must_use]
pub fn windowed_encoder_graph(cfg: &TransformerConfig, seq: usize, window: usize) -> Graph {
    assert!(window > 0 && seq.is_multiple_of(window), "window {window} must divide seq {seq}");
    let mut g = Graph::new();
    g.push("embed", Op::Embedding { vocab: cfg.vocab, tokens: seq, dim: cfg.d_model });
    let shape = AttentionShape::self_attn(seq / window, cfg.heads, window, cfg.head_dim());
    for i in 0..cfg.layers {
        layer(&mut g, i, cfg, shape, AttnKind::SpatialSelf, seq);
    }
    g.push("final_norm", Op::LayerNorm { rows: seq, cols: cfg.d_model });
    g
}

/// Causal prefill over a `seq`-token prompt (LLM first-token phase).
#[must_use]
pub fn prefill_graph(cfg: &TransformerConfig, seq: usize) -> Graph {
    let mut g = Graph::new();
    g.push("embed", Op::Embedding { vocab: cfg.vocab, tokens: seq, dim: cfg.d_model });
    let shape = AttentionShape::self_attn(1, cfg.heads, seq, cfg.head_dim());
    for i in 0..cfg.layers {
        layer(&mut g, i, cfg, shape, AttnKind::Causal, seq);
    }
    g.push("final_norm", Op::LayerNorm { rows: seq, cols: cfg.d_model });
    g.push("lm_head", Op::Linear { tokens: 1, in_features: cfg.d_model, out_features: cfg.vocab });
    g
}

/// One autoregressive decode step with `kv_len` cached tokens: a single
/// query token attends to the cache (`1×N` similarity — the paper's
/// decode-phase shape that Flash Attention barely helps).
#[must_use]
pub fn decode_step_graph(cfg: &TransformerConfig, kv_len: usize) -> Graph {
    batched_decode_step_graph(cfg, kv_len, 1)
}

/// One decode step serving `batch` concurrent sequences, each with its own
/// `kv_len`-token cache. Batching amortizes the weight reads that make
/// low-batch decode memory-bandwidth bound (Fig. 5's "low batch size"
/// qualifier).
///
/// # Panics
///
/// Panics if `batch` is zero.
#[must_use]
pub fn batched_decode_step_graph(cfg: &TransformerConfig, kv_len: usize, batch: usize) -> Graph {
    assert!(batch > 0, "batch must be positive");
    let mut g = Graph::new();
    g.push("embed", Op::Embedding { vocab: cfg.vocab, tokens: batch, dim: cfg.d_model });
    let shape = AttentionShape::decode_step(batch, cfg.heads, kv_len, cfg.head_dim());
    for i in 0..cfg.layers {
        // KV-cache append for each sequence's new token.
        g.push(
            format!("layer{i}.kv_cache"),
            Op::Memcpy { bytes: (batch * 2 * cfg.d_model * 2) as u64, amplification: 1.0 },
        );
        layer(&mut g, i, cfg, shape, AttnKind::Causal, batch);
    }
    g.push("final_norm", Op::LayerNorm { rows: batch, cols: cfg.d_model });
    g.push(
        "lm_head",
        Op::Linear { tokens: batch, in_features: cfg.d_model, out_features: cfg.vocab },
    );
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmg_graph::OpCategory;

    fn llama() -> TransformerConfig {
        TransformerConfig {
            layers: 32,
            d_model: 4096,
            heads: 32,
            d_ff: 11008,
            gated_ffn: true,
            vocab: 32000,
            cross_attention: false,
            context_len: 0,
            context_dim: 0,
        }
    }

    #[test]
    fn encoder_has_layer_count_attention_calls() {
        let cfg = llama();
        let g = encoder_graph(&cfg, 512);
        assert_eq!(g.attention_nodes().count(), 32);
    }

    #[test]
    fn cross_attention_doubles_attention_calls() {
        let cfg = TransformerConfig {
            cross_attention: true,
            context_len: 128,
            context_dim: 4096,
            ..llama()
        };
        let g = encoder_graph(&cfg, 256);
        assert_eq!(g.attention_nodes().count(), 64);
    }

    #[test]
    fn prefill_flops_dominated_by_linear() {
        let g = prefill_graph(&llama(), 512);
        let by = g.flops_by_category();
        let linear = by.iter().find(|(c, _)| *c == OpCategory::Linear).unwrap().1;
        assert!(linear as f64 / g.total_flops() as f64 > 0.6);
    }

    #[test]
    fn decode_step_attention_is_one_by_n() {
        let g = decode_step_graph(&llama(), 2048);
        for n in g.attention_nodes() {
            let (s, _) = n.op.attention_shape().unwrap();
            assert_eq!(s.seq_q, 1);
            assert_eq!(s.seq_kv, 2048);
        }
    }

    #[test]
    fn prefill_flops_scale_with_seq() {
        let cfg = llama();
        let f1 = prefill_graph(&cfg, 128).total_flops();
        let f2 = prefill_graph(&cfg, 256).total_flops();
        let ratio = f2 as f64 / f1 as f64;
        assert!(ratio > 1.9 && ratio < 2.3, "ratio {ratio}");
    }

    #[test]
    fn llama_7b_prefill_flops_sane() {
        // ~2 * params * tokens heuristic: 2 * 6.7e9 * 512 ≈ 6.9e12.
        let f = prefill_graph(&llama(), 512).total_flops() as f64;
        assert!((3e12..12e12).contains(&f), "flops {f}");
    }
}
