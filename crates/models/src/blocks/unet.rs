//! Diffusion UNet builder (Fig. 3's Resnet + Self-Attention +
//! Cross-Attention structure, with optional temporal layers for TTV).

use mmg_attn::AttentionShape;
use mmg_graph::{ActivationKind, AttnKind, Graph, Op};

use crate::UNetConfig;

const ELEM_BYTES: u64 = 2;

fn resnet_block(
    g: &mut Graph,
    path: &str,
    batch: usize,
    c_in: usize,
    c_out: usize,
    res: usize,
    time_dim: usize,
) {
    let groups = 32.min(c_in);
    g.push(format!("{path}.norm1"), Op::GroupNorm { batch, channels: c_in, h: res, w: res, groups });
    g.push(
        format!("{path}.act1"),
        Op::Activation { elems: batch * c_in * res * res, kind: ActivationKind::Silu },
    );
    g.push(
        format!("{path}.conv1"),
        Op::Conv2d { batch, c_in, c_out, h: res, w: res, kernel: 3, stride: 1 },
    );
    // Timestep-embedding modulation.
    g.push(
        format!("{path}.time_proj"),
        Op::Linear { tokens: batch, in_features: time_dim, out_features: c_out },
    );
    g.push(
        format!("{path}.time_add"),
        Op::Elementwise { elems: batch * c_out * res * res, inputs: 2 },
    );
    let groups2 = 32.min(c_out);
    g.push(
        format!("{path}.norm2"),
        Op::GroupNorm { batch, channels: c_out, h: res, w: res, groups: groups2 },
    );
    g.push(
        format!("{path}.act2"),
        Op::Activation { elems: batch * c_out * res * res, kind: ActivationKind::Silu },
    );
    g.push(
        format!("{path}.conv2"),
        Op::Conv2d { batch, c_in: c_out, c_out, h: res, w: res, kernel: 3, stride: 1 },
    );
    if c_in != c_out {
        g.push(
            format!("{path}.skip_conv"),
            Op::Conv2d { batch, c_in, c_out, h: res, w: res, kernel: 1, stride: 1 },
        );
    }
    g.push(
        format!("{path}.residual"),
        Op::Elementwise { elems: batch * c_out * res * res, inputs: 2 },
    );
}

fn spatial_attn_block(g: &mut Graph, path: &str, batch: usize, c: usize, res: usize, heads: usize) {
    let tokens = batch * res * res;
    let head_dim = c / heads;
    let groups = 32.min(c);
    g.push(format!("{path}.norm"), Op::GroupNorm { batch, channels: c, h: res, w: res, groups });
    g.push(
        format!("{path}.to_seq"),
        Op::Memcpy { bytes: (tokens * c) as u64 * ELEM_BYTES, amplification: 1.0 },
    );
    for proj in ["q_proj", "k_proj", "v_proj"] {
        g.push(format!("{path}.{proj}"), Op::Linear { tokens, in_features: c, out_features: c });
    }
    g.push(
        format!("{path}.attention"),
        Op::Attention {
            shape: AttentionShape::self_attn(batch, heads, res * res, head_dim),
            kind: AttnKind::SpatialSelf,
        },
    );
    g.push(format!("{path}.out_proj"), Op::Linear { tokens, in_features: c, out_features: c });
    g.push(format!("{path}.residual"), Op::Elementwise { elems: tokens * c, inputs: 2 });
}

#[allow(clippy::too_many_arguments)] // graph builders thread explicit shape state
fn cross_attn_block(
    g: &mut Graph,
    path: &str,
    batch: usize,
    c: usize,
    res: usize,
    heads: usize,
    text_len: usize,
    text_dim: usize,
) {
    let tokens = batch * res * res;
    let head_dim = c / heads;
    g.push(format!("{path}.norm"), Op::LayerNorm { rows: tokens, cols: c });
    g.push(format!("{path}.q_proj"), Op::Linear { tokens, in_features: c, out_features: c });
    g.push(
        format!("{path}.k_proj"),
        Op::Linear { tokens: text_len, in_features: text_dim, out_features: c },
    );
    g.push(
        format!("{path}.v_proj"),
        Op::Linear { tokens: text_len, in_features: text_dim, out_features: c },
    );
    g.push(
        format!("{path}.attention"),
        Op::Attention {
            shape: AttentionShape::cross_attn(batch, heads, res * res, text_len, head_dim),
            kind: AttnKind::Cross,
        },
    );
    g.push(format!("{path}.out_proj"), Op::Linear { tokens, in_features: c, out_features: c });
    g.push(format!("{path}.residual"), Op::Elementwise { elems: tokens * c, inputs: 2 });
}

fn temporal_attn_block(
    g: &mut Graph,
    path: &str,
    frames: usize,
    c: usize,
    res: usize,
    heads: usize,
) {
    let tokens = frames * res * res;
    let head_dim = c / heads;
    g.push(format!("{path}.norm"), Op::LayerNorm { rows: tokens, cols: c });
    for proj in ["q_proj", "k_proj", "v_proj"] {
        g.push(format!("{path}.{proj}"), Op::Linear { tokens, in_features: c, out_features: c });
    }
    // Rearrange `(f, hw, c) → (hw, f, c)` (Fig. 10): a strided transpose
    // whose partially-used cache lines cost ~2x the logical traffic.
    g.push(
        format!("{path}.to_temporal"),
        Op::Memcpy { bytes: (2 * tokens * c) as u64 * ELEM_BYTES, amplification: 2.0 },
    );
    // The attended axis is frames; pixels fold into batch (Fig. 10).
    g.push(
        format!("{path}.attention"),
        Op::Attention {
            shape: AttentionShape::self_attn(res * res, heads, frames, head_dim),
            kind: AttnKind::Temporal,
        },
    );
    g.push(
        format!("{path}.from_temporal"),
        Op::Memcpy { bytes: (2 * tokens * c) as u64 * ELEM_BYTES, amplification: 2.0 },
    );
    g.push(format!("{path}.out_proj"), Op::Linear { tokens, in_features: c, out_features: c });
    g.push(format!("{path}.residual"), Op::Elementwise { elems: tokens * c, inputs: 2 });
}

fn temporal_conv_block(g: &mut Graph, path: &str, frames: usize, c: usize, res: usize) {
    // Pseudo-3D temporal convolution: a k=3 1-D conv along the frame axis
    // at each pixel. Modelled as a conv over [frames, 1] patches (padding
    // positions are multiplied like real kernels do).
    g.push(
        format!("{path}.conv"),
        Op::Conv2d { batch: res * res, c_in: c, c_out: c, h: frames, w: 1, kernel: 3, stride: 1 },
    );
    g.push(
        format!("{path}.residual"),
        Op::Elementwise { elems: frames * c * res * res, inputs: 2 },
    );
}

fn attention_stack(g: &mut Graph, path: &str, cfg: &UNetConfig, frames: usize, c: usize, res: usize) {
    if cfg.self_attn_at(res) {
        spatial_attn_block(g, &format!("{path}.self_attn"), frames, c, res, cfg.heads);
    }
    if cfg.cross_attn_at(res) {
        cross_attn_block(
            g,
            &format!("{path}.cross_attn"),
            frames,
            c,
            res,
            cfg.heads,
            cfg.text_len,
            cfg.text_dim,
        );
    }
    if frames > 1 && cfg.temporal_attn_at(res) {
        temporal_attn_block(g, &format!("{path}.temporal_attn"), frames, c, res, cfg.heads);
        temporal_conv_block(g, &format!("{path}.temporal_conv"), frames, c, res);
    }
}

/// Builds one denoising step of a UNet at `latent_res` × `latent_res`,
/// over `frames` frames (1 for image models).
///
/// The graph is the minimum repeating unit of diffusion inference — the
/// "fundamental period" Fig. 7 plots.
///
/// # Panics
///
/// Panics if the configuration is degenerate (no levels, resolution not
/// divisible by `2^(levels-1)`).
#[must_use]
pub fn unet_step_graph(cfg: &UNetConfig, latent_res: usize, frames: usize) -> Graph {
    assert!(!cfg.channel_mult.is_empty(), "UNet needs at least one level");
    assert!(
        latent_res.is_multiple_of(1 << (cfg.levels() - 1)),
        "resolution {latent_res} not divisible across {} levels",
        cfg.levels()
    );
    let mut g = Graph::new();
    let base = cfg.base_channels;
    let time_dim = base * 4;

    // Timestep embedding MLP.
    g.push("time_embed.fc1", Op::Linear { tokens: frames, in_features: base, out_features: time_dim });
    g.push(
        "time_embed.act",
        Op::Activation { elems: frames * time_dim, kind: ActivationKind::Silu },
    );
    g.push("time_embed.fc2", Op::Linear { tokens: frames, in_features: time_dim, out_features: time_dim });

    g.push(
        "conv_in",
        Op::Conv2d {
            batch: frames,
            c_in: cfg.in_channels,
            c_out: base,
            h: latent_res,
            w: latent_res,
            kernel: 3,
            stride: 1,
        },
    );

    // Down path.
    let mut res = latent_res;
    let mut c_prev = base;
    for level in 0..cfg.levels() {
        let c = cfg.channels_at(level);
        for b in 0..cfg.num_res_blocks {
            let path = format!("down.{level}.block{b}");
            resnet_block(&mut g, &format!("{path}.resnet"), frames, c_prev, c, res, time_dim);
            c_prev = c;
            attention_stack(&mut g, &path, cfg, frames, c, res);
        }
        if level + 1 < cfg.levels() {
            g.push(
                format!("down.{level}.downsample"),
                Op::Conv2d { batch: frames, c_in: c, c_out: c, h: res, w: res, kernel: 3, stride: 2 },
            );
            res /= 2;
        }
    }

    // Middle.
    let c_mid = cfg.channels_at(cfg.levels() - 1);
    resnet_block(&mut g, "mid.resnet1", frames, c_mid, c_mid, res, time_dim);
    spatial_attn_block(&mut g, "mid.self_attn", frames, c_mid, res, cfg.heads);
    if !cfg.cross_attn_resolutions.is_empty() {
        cross_attn_block(
            &mut g,
            "mid.cross_attn",
            frames,
            c_mid,
            res,
            cfg.heads,
            cfg.text_len,
            cfg.text_dim,
        );
    }
    if frames > 1 && !cfg.temporal_attn_resolutions.is_empty() {
        temporal_attn_block(&mut g, "mid.temporal_attn", frames, c_mid, res, cfg.heads);
    }
    resnet_block(&mut g, "mid.resnet2", frames, c_mid, c_mid, res, time_dim);

    // Up path (mirrored, with skip concatenation).
    let mut c_cur = c_mid;
    for level in (0..cfg.levels()).rev() {
        let c = cfg.channels_at(level);
        for b in 0..=cfg.num_res_blocks {
            let path = format!("up.{level}.block{b}");
            // Skip connection concat from the down path.
            g.push(
                format!("{path}.skip_concat"),
                Op::Memcpy {
                    bytes: (frames * c * res * res) as u64 * ELEM_BYTES,
                    amplification: 1.0,
                },
            );
            resnet_block(&mut g, &format!("{path}.resnet"), frames, c_cur + c, c, res, time_dim);
            c_cur = c;
            attention_stack(&mut g, &path, cfg, frames, c, res);
        }
        if level > 0 {
            g.push(
                format!("up.{level}.upsample"),
                Op::Upsample { batch: frames, c, h: res, w: res, factor: 2 },
            );
            res *= 2;
            g.push(
                format!("up.{level}.upsample_conv"),
                Op::Conv2d { batch: frames, c_in: c, c_out: c, h: res, w: res, kernel: 3, stride: 1 },
            );
        }
    }

    // Output head.
    g.push(
        "out.norm",
        Op::GroupNorm { batch: frames, channels: base, h: latent_res, w: latent_res, groups: 32.min(base) },
    );
    g.push(
        "out.act",
        Op::Activation { elems: frames * base * latent_res * latent_res, kind: ActivationKind::Silu },
    );
    g.push(
        "out.conv",
        Op::Conv2d {
            batch: frames,
            c_in: base,
            c_out: cfg.in_channels,
            h: latent_res,
            w: latent_res,
            kernel: 3,
            stride: 1,
        },
    );
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmg_graph::OpCategory;

    fn sd_cfg() -> UNetConfig {
        UNetConfig {
            base_channels: 320,
            channel_mult: vec![1, 2, 4, 4],
            num_res_blocks: 2,
            attn_resolutions: vec![64, 32, 16],
            cross_attn_resolutions: vec![64, 32, 16],
            temporal_attn_resolutions: vec![],
            heads: 8,
            text_len: 77,
            text_dim: 768,
            in_channels: 4,
        }
    }

    #[test]
    fn sd_unet_param_count_near_reference() {
        // SD v1 UNet is ~860M parameters.
        let g = unet_step_graph(&sd_cfg(), 64, 1);
        let p = g.param_count() as f64 / 1e6;
        assert!((500.0..1400.0).contains(&p), "params {p}M");
    }

    #[test]
    fn seq_len_trace_is_u_shaped() {
        // Down path: 4096, 1024, 256 …; up path mirrors (Fig. 7).
        let g = unet_step_graph(&sd_cfg(), 64, 1);
        let seqs: Vec<usize> = g
            .attention_nodes()
            .filter_map(|n| n.op.attention_shape())
            .map(|(s, _)| s.seq_q)
            .collect();
        let max = *seqs.iter().max().unwrap();
        let min = *seqs.iter().min().unwrap();
        assert_eq!(max, 4096);
        assert!(min < max);
        // First and last attention calls run at the highest resolution.
        assert_eq!(seqs.first(), seqs.last());
        // The minimum occurs strictly inside the trace (U shape).
        let min_pos = seqs.iter().position(|&s| s == min).unwrap();
        assert!(min_pos > 0 && min_pos < seqs.len() - 1);
    }

    #[test]
    fn conv_flops_are_substantial() {
        let g = unet_step_graph(&sd_cfg(), 64, 1);
        let by = g.flops_by_category();
        let conv = by.iter().find(|(c, _)| *c == OpCategory::Conv).unwrap().1;
        assert!(conv as f64 / g.total_flops() as f64 > 0.3);
    }

    #[test]
    fn no_attention_outside_configured_resolutions() {
        let mut cfg = sd_cfg();
        cfg.attn_resolutions = vec![16];
        cfg.cross_attn_resolutions = vec![];
        let g = unet_step_graph(&cfg, 64, 1);
        for n in g.attention_nodes() {
            let (s, _) = n.op.attention_shape().unwrap();
            // Only 16x16 self-attention plus the mid-block at 8x8.
            assert!(s.seq_q == 256 || s.seq_q == 64, "unexpected seq {}", s.seq_q);
        }
    }

    #[test]
    fn temporal_layers_only_for_video() {
        let mut cfg = sd_cfg();
        cfg.temporal_attn_resolutions = vec![64, 32, 16, 8];
        let image = unet_step_graph(&cfg, 64, 1);
        let video = unet_step_graph(&cfg, 64, 8);
        let count_temporal = |g: &Graph| {
            g.attention_nodes()
                .filter(|n| matches!(n.op.attention_shape(), Some((_, AttnKind::Temporal))))
                .count()
        };
        assert_eq!(count_temporal(&image), 0);
        assert!(count_temporal(&video) > 0);
    }

    #[test]
    fn temporal_seq_is_frames() {
        let mut cfg = sd_cfg();
        cfg.temporal_attn_resolutions = vec![64, 32, 16, 8];
        let g = unet_step_graph(&cfg, 64, 16);
        let t = g
            .attention_nodes()
            .filter_map(|n| n.op.attention_shape())
            .find(|(_, k)| *k == AttnKind::Temporal)
            .unwrap();
        assert_eq!(t.0.seq_q, 16);
        assert_eq!(t.0.batch, 4096);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn indivisible_resolution_panics() {
        let _ = unet_step_graph(&sd_cfg(), 60, 1);
    }

    #[test]
    fn larger_latent_means_more_flops() {
        let cfg = sd_cfg();
        let f64_ = unet_step_graph(&cfg, 64, 1).total_flops();
        let f128 = unet_step_graph(&cfg, 128, 1).total_flops();
        assert!(f128 > 3 * f64_);
    }
}
