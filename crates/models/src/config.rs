//! Reusable architecture configurations.

/// Configuration of a diffusion UNet (Table I vocabulary: channel
/// multipliers, attention resolutions, residual blocks per level).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UNetConfig {
    /// Channels at the highest resolution level.
    pub base_channels: usize,
    /// Per-level channel multipliers, highest resolution first
    /// (Table I "Channel Mult", e.g. `[1, 2, 4, 4]`).
    pub channel_mult: Vec<usize>,
    /// Residual blocks per level (Table I "Num Res Blocks").
    pub num_res_blocks: usize,
    /// Latent/pixel edge lengths at which *self*-attention runs.
    pub attn_resolutions: Vec<usize>,
    /// Edge lengths at which *cross*-attention to the text runs
    /// (empty = no text conditioning inside the UNet).
    pub cross_attn_resolutions: Vec<usize>,
    /// Edge lengths at which *temporal* attention runs (TTV models only).
    pub temporal_attn_resolutions: Vec<usize>,
    /// Attention head count.
    pub heads: usize,
    /// Encoded-text sequence length for cross-attention.
    pub text_len: usize,
    /// Encoded-text embedding width.
    pub text_dim: usize,
    /// Input channels (4 for SD latents, 3 for pixel models).
    pub in_channels: usize,
}

impl UNetConfig {
    /// Channels at level `i` (0 = highest resolution).
    #[must_use]
    pub fn channels_at(&self, level: usize) -> usize {
        self.base_channels * self.channel_mult[level.min(self.channel_mult.len() - 1)]
    }

    /// Number of resolution levels.
    #[must_use]
    pub fn levels(&self) -> usize {
        self.channel_mult.len()
    }

    /// Whether self-attention runs at edge length `res`.
    #[must_use]
    pub fn self_attn_at(&self, res: usize) -> bool {
        self.attn_resolutions.contains(&res)
    }

    /// Whether cross-attention runs at edge length `res`.
    #[must_use]
    pub fn cross_attn_at(&self, res: usize) -> bool {
        self.cross_attn_resolutions.contains(&res)
    }

    /// Whether temporal attention runs at edge length `res`.
    #[must_use]
    pub fn temporal_attn_at(&self, res: usize) -> bool {
        self.temporal_attn_resolutions.contains(&res)
    }
}

/// Configuration of a transformer stack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransformerConfig {
    /// Layer count.
    pub layers: usize,
    /// Model width (Table I "Model Dim").
    pub d_model: usize,
    /// Attention heads.
    pub heads: usize,
    /// Feed-forward inner width.
    pub d_ff: usize,
    /// Whether the FFN is gated (SwiGLU: three matrices, as in LLaMA).
    pub gated_ffn: bool,
    /// Vocabulary size (text or image-token codebook).
    pub vocab: usize,
    /// Whether blocks include cross-attention to an encoder output.
    pub cross_attention: bool,
    /// Encoder output length for cross-attention (ignored otherwise).
    pub context_len: usize,
    /// Encoder output width for cross-attention (ignored otherwise).
    pub context_dim: usize,
}

impl TransformerConfig {
    /// Per-head width.
    ///
    /// # Panics
    ///
    /// Panics if `d_model` is not divisible by `heads`.
    #[must_use]
    pub fn head_dim(&self) -> usize {
        assert!(
            self.heads > 0 && self.d_model.is_multiple_of(self.heads),
            "d_model {} not divisible by heads {}",
            self.d_model,
            self.heads
        );
        self.d_model / self.heads
    }

    /// Approximate parameter count of the stack (QKVO projections + FFN +
    /// norms + embedding), for roofline capacity estimates.
    #[must_use]
    pub fn approx_params(&self) -> u64 {
        let d = self.d_model as u64;
        let ffn_mats = if self.gated_ffn { 3 } else { 2 };
        let per_layer = 4 * d * d
            + ffn_mats * d * self.d_ff as u64
            + if self.cross_attention { 2 * d * self.context_dim as u64 + 2 * d * d } else { 0 }
            + 4 * d;
        self.layers as u64 * per_layer + self.vocab as u64 * d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sd_unet() -> UNetConfig {
        UNetConfig {
            base_channels: 320,
            channel_mult: vec![1, 2, 4, 4],
            num_res_blocks: 2,
            attn_resolutions: vec![64, 32, 16],
            cross_attn_resolutions: vec![64, 32, 16],
            temporal_attn_resolutions: vec![],
            heads: 8,
            text_len: 77,
            text_dim: 768,
            in_channels: 4,
        }
    }

    #[test]
    fn channels_follow_multipliers() {
        let c = sd_unet();
        assert_eq!(c.channels_at(0), 320);
        assert_eq!(c.channels_at(2), 1280);
        assert_eq!(c.channels_at(9), 1280, "clamps to last level");
        assert_eq!(c.levels(), 4);
    }

    #[test]
    fn attention_resolution_predicates() {
        let c = sd_unet();
        assert!(c.self_attn_at(64));
        assert!(!c.self_attn_at(8));
        assert!(c.cross_attn_at(16));
        assert!(!c.temporal_attn_at(64));
    }

    #[test]
    fn head_dim_checks_divisibility() {
        let t = TransformerConfig {
            layers: 2,
            d_model: 64,
            heads: 8,
            d_ff: 256,
            gated_ffn: false,
            vocab: 100,
            cross_attention: false,
            context_len: 0,
            context_dim: 0,
        };
        assert_eq!(t.head_dim(), 8);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn bad_head_split_panics() {
        let t = TransformerConfig {
            layers: 1,
            d_model: 65,
            heads: 8,
            d_ff: 1,
            gated_ffn: false,
            vocab: 1,
            cross_attention: false,
            context_len: 0,
            context_dim: 0,
        };
        let _ = t.head_dim();
    }

    #[test]
    fn llama_7b_params_in_range() {
        let t = TransformerConfig {
            layers: 32,
            d_model: 4096,
            heads: 32,
            d_ff: 11008,
            gated_ffn: true,
            vocab: 32000,
            cross_attention: false,
            context_len: 0,
            context_dim: 0,
        };
        let p = t.approx_params();
        assert!((6_000_000_000..8_000_000_000).contains(&p), "params {p}");
    }
}
