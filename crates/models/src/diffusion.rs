//! Denoising schedules — the numerical core of the diffusion loop.
//!
//! The performance plane only needs the *number* of denoising steps, but a
//! usable diffusion system also needs the schedule itself: the β/ᾱ tables
//! of DDPM training and the step-skipping DDIM sampler that makes "tens or
//! hundreds of UNet traversals" (Section II-A) a tunable quality/latency
//! knob. The quickstart-scale examples drive real tensors through it.

use mmg_tensor::{ops, Result, Tensor, TensorError};

/// A discrete DDPM noise schedule with `T` training steps.
#[derive(Debug, Clone, PartialEq)]
pub struct NoiseSchedule {
    betas: Vec<f64>,
    alphas_cum: Vec<f64>,
}

impl NoiseSchedule {
    /// The linear β schedule of DDPM / Stable Diffusion
    /// (β: 8.5e-4 → 1.2e-2 over `steps`, scaled-linear variant).
    ///
    /// # Panics
    ///
    /// Panics if `steps == 0`.
    #[must_use]
    pub fn scaled_linear(steps: usize) -> Self {
        assert!(steps > 0, "schedule needs at least one step");
        let (b0, b1) = (0.00085f64.sqrt(), 0.012f64.sqrt());
        let betas: Vec<f64> = (0..steps)
            .map(|i| {
                let f = if steps == 1 { 0.0 } else { i as f64 / (steps - 1) as f64 };
                let b = b0 + f * (b1 - b0);
                b * b
            })
            .collect();
        let mut alphas_cum = Vec::with_capacity(steps);
        let mut acc = 1.0f64;
        for &b in &betas {
            acc *= 1.0 - b;
            alphas_cum.push(acc);
        }
        NoiseSchedule { betas, alphas_cum }
    }

    /// Number of training steps `T`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.betas.len()
    }

    /// Whether the schedule is empty (never true for constructed values).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.betas.is_empty()
    }

    /// `β_t`.
    ///
    /// # Panics
    ///
    /// Panics if `t >= len()`.
    #[must_use]
    pub fn beta(&self, t: usize) -> f64 {
        self.betas[t]
    }

    /// `ᾱ_t` (cumulative product of `1 - β`).
    ///
    /// # Panics
    ///
    /// Panics if `t >= len()`.
    #[must_use]
    pub fn alpha_cum(&self, t: usize) -> f64 {
        self.alphas_cum[t]
    }

    /// Signal-to-noise ratio at step `t`: `ᾱ / (1 - ᾱ)`.
    ///
    /// # Panics
    ///
    /// Panics if `t >= len()`.
    #[must_use]
    pub fn snr(&self, t: usize) -> f64 {
        let a = self.alphas_cum[t];
        a / (1.0 - a)
    }

    /// The forward (noising) process: `x_t = √ᾱ·x₀ + √(1-ᾱ)·ε`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `x0` and `noise` differ.
    ///
    /// # Panics
    ///
    /// Panics if `t >= len()`.
    pub fn add_noise(&self, x0: &Tensor, noise: &Tensor, t: usize) -> Result<Tensor> {
        let a = self.alphas_cum[t];
        ops::add(
            &ops::scale(x0, a.sqrt() as f32),
            &ops::scale(noise, (1.0 - a).sqrt() as f32),
        )
    }

    /// Evenly spaced inference timesteps for a `steps`-step DDIM sampler,
    /// descending (the generation order).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidParameter`] if `steps` is zero or
    /// exceeds the training schedule.
    pub fn ddim_timesteps(&self, steps: usize) -> Result<Vec<usize>> {
        if steps == 0 || steps > self.len() {
            return Err(TensorError::InvalidParameter {
                op: "ddim_timesteps",
                reason: format!("steps {steps} outside 1..={}", self.len()),
            });
        }
        let stride = self.len() / steps;
        let mut ts: Vec<usize> = (0..steps).map(|i| i * stride).collect();
        ts.reverse();
        Ok(ts)
    }

    /// One deterministic DDIM update from `t` to `t_prev` given the
    /// predicted noise `eps`:
    /// `x₀̂ = (x_t − √(1−ᾱ_t)·ε) / √ᾱ_t`, then re-noise to `t_prev`.
    ///
    /// # Errors
    ///
    /// Returns shape errors if `x_t` and `eps` differ.
    ///
    /// # Panics
    ///
    /// Panics if `t` or `t_prev` are out of range.
    pub fn ddim_step(
        &self,
        x_t: &Tensor,
        eps: &Tensor,
        t: usize,
        t_prev: Option<usize>,
    ) -> Result<Tensor> {
        let a_t = self.alphas_cum[t];
        let x0 = ops::scale(
            &ops::add(x_t, &ops::scale(eps, -((1.0 - a_t).sqrt() as f32)))?,
            (1.0 / a_t.sqrt()) as f32,
        );
        match t_prev {
            None => Ok(x0),
            Some(tp) => {
                let a_p = self.alphas_cum[tp];
                ops::add(
                    &ops::scale(&x0, a_p.sqrt() as f32),
                    &ops::scale(eps, (1.0 - a_p).sqrt() as f32),
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched() -> NoiseSchedule {
        NoiseSchedule::scaled_linear(1000)
    }

    #[test]
    fn alphas_decrease_monotonically() {
        let s = sched();
        for t in 1..s.len() {
            assert!(s.alpha_cum(t) < s.alpha_cum(t - 1));
        }
        assert!(s.alpha_cum(0) > 0.99);
        assert!(s.alpha_cum(999) < 0.05, "end of schedule is nearly pure noise");
    }

    #[test]
    fn snr_decreases_over_time() {
        let s = sched();
        for t in 1..s.len() {
            assert!(s.snr(t) < s.snr(t - 1));
        }
    }

    #[test]
    fn ddim_timesteps_descend_evenly() {
        let s = sched();
        let ts = s.ddim_timesteps(50).unwrap();
        assert_eq!(ts.len(), 50);
        assert_eq!(ts[0], 980);
        assert_eq!(*ts.last().unwrap(), 0);
        for w in ts.windows(2) {
            assert_eq!(w[0] - w[1], 20);
        }
        assert!(s.ddim_timesteps(0).is_err());
        assert!(s.ddim_timesteps(1001).is_err());
    }

    #[test]
    fn noising_preserves_variance_roughly() {
        // x_t = √ᾱ x0 + √(1-ᾱ) ε with unit-variance inputs stays ~unit.
        let s = sched();
        let x0 = Tensor::randn(&[4096], 1);
        let eps = Tensor::randn(&[4096], 2);
        for t in [0, 500, 999] {
            let xt = s.add_noise(&x0, &eps, t).unwrap();
            let var: f32 = xt.data().iter().map(|v| v * v).sum::<f32>() / 4096.0;
            assert!((var - 1.0).abs() < 0.15, "t={t}: var {var}");
        }
    }

    #[test]
    fn ddim_with_true_noise_recovers_x0() {
        // If the model predicts the exact noise, one DDIM step to t=None
        // recovers x0.
        let s = sched();
        let x0 = Tensor::randn(&[256], 3);
        let eps = Tensor::randn(&[256], 4);
        let xt = s.add_noise(&x0, &eps, 700).unwrap();
        let rec = s.ddim_step(&xt, &eps, 700, None).unwrap();
        assert!(rec.max_abs_diff(&x0).unwrap() < 1e-3);
    }

    #[test]
    fn ddim_step_chain_is_consistent() {
        // Stepping 700 → 300 with exact noise equals noising x0 at 300.
        let s = sched();
        let x0 = Tensor::randn(&[256], 5);
        let eps = Tensor::randn(&[256], 6);
        let xt = s.add_noise(&x0, &eps, 700).unwrap();
        let stepped = s.ddim_step(&xt, &eps, 700, Some(300)).unwrap();
        let direct = s.add_noise(&x0, &eps, 300).unwrap();
        assert!(stepped.max_abs_diff(&direct).unwrap() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "at least one step")]
    fn zero_steps_panics() {
        let _ = NoiseSchedule::scaled_linear(0);
    }
}
