//! # mmg-models
//!
//! The paper's model suite (Section III) as operator-graph builders:
//!
//! | Workload | Class | Built from |
//! |---|---|---|
//! | LLaMA2-7B | text LLM | transformer decoder, prefill + KV-cached decode |
//! | Imagen | pixel diffusion | T5 encoder + base UNet + two SR UNets |
//! | Stable Diffusion | latent diffusion | CLIP encoder + UNet + VAE decoder |
//! | Muse | transformer TTI | decoder transformer with parallel decoding |
//! | Parti | transformer TTI | encoder–decoder with autoregressive decode |
//! | Prod Image | latent diffusion | production-style conv-heavy latent UNet |
//! | Make-A-Video | diffusion TTV | UNet + temporal attention/conv layers |
//! | Phenaki | transformer TTV | C-ViViT tokens + MaskGit transformer |
//!
//! Architecture hyperparameters follow the paper's Table I where given and
//! the cited model papers otherwise; every config is a plain struct you can
//! modify for sweeps (image size, frame count, step count).
//!
//! Builders produce [`Pipeline`]s: named stages (text encoder, UNet step,
//! decoder, …) with repeat counts (denoising steps, decode steps), which
//! the profiler turns into operator timelines.

#![deny(missing_docs)]

pub mod blocks;
mod config;
pub mod diffusion;
mod pipeline;
mod registry;
pub mod suite;

pub use config::{TransformerConfig, UNetConfig};
pub use pipeline::{Pipeline, PipelineProfile, Stage, StageProfile};
pub use registry::{ArchClass, ModelId, ModelRecord, registry};
