//! Inference pipelines: staged graphs with repeat counts.
//!
//! TTI/TTV models "consist of several different model components that are
//! trained separately and then stitched together at inference time"
//! (Section II) — a pipeline captures that: text encoder once, UNet step ×
//! denoising steps, decoder once; or prefill once, decode step × tokens.

use mmg_graph::memory::{graph_footprint, MemoryFootprint};
use mmg_graph::{AttnKind, Graph};
use mmg_profiler::{CategoryBreakdown, Profiler, Timeline};

use crate::ModelId;

/// One pipeline stage: a graph executed `repeats` times back-to-back.
#[derive(Debug, Clone, PartialEq)]
pub struct Stage {
    /// Stage label (`"clip_encoder"`, `"unet_step"`, …).
    pub name: String,
    /// Consecutive executions (denoising steps, decode steps).
    pub repeats: usize,
    /// The operator graph of one execution.
    pub graph: Graph,
    /// Weight-sharing group: stages with the same group run the same
    /// weights (an LLM's prefill and decode stages, or the sampled steps
    /// of an autoregressive decode). Defaults to the stage name up to a
    /// `_t<step>` suffix.
    pub weight_group: String,
    /// Whether `repeats` counts *denoising sampler* iterations (a
    /// DDIM/DDPM step loop). Only these stages respond to
    /// [`Pipeline::with_sampler_steps`]; autoregressive decode and
    /// MaskGIT refinement loops are structural and never resampled.
    pub denoise: bool,
}

impl Stage {
    /// Creates a stage. The weight group defaults to the name with any
    /// `_t<step>` suffix removed, so sampled decode stages
    /// (`decode_t0`, `decode_t32`, …) share one group.
    #[must_use]
    pub fn new(name: impl Into<String>, repeats: usize, graph: Graph) -> Self {
        let name = name.into();
        let weight_group =
            name.split("_t").next().unwrap_or(name.as_str()).to_owned();
        Stage { name, repeats, graph, weight_group, denoise: false }
    }

    /// A stage executed once.
    #[must_use]
    pub fn once(name: impl Into<String>, graph: Graph) -> Self {
        Stage::new(name, 1, graph)
    }

    /// Overrides the weight-sharing group.
    #[must_use]
    pub fn with_weight_group(mut self, group: impl Into<String>) -> Self {
        self.weight_group = group.into();
        self
    }

    /// Marks this stage's repeats as denoising sampler iterations, making
    /// it eligible for [`Pipeline::with_sampler_steps`].
    #[must_use]
    pub fn denoising(mut self) -> Self {
        self.denoise = true;
        self
    }
}

/// A complete model inference pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct Pipeline {
    /// Workload name.
    pub name: String,
    /// Suite identity, if this pipeline is a suite member.
    pub model: Option<ModelId>,
    /// Ordered stages.
    pub stages: Vec<Stage>,
}

impl Pipeline {
    /// Creates a pipeline.
    #[must_use]
    pub fn new(name: impl Into<String>, model: Option<ModelId>, stages: Vec<Stage>) -> Self {
        Pipeline { name: name.into(), model, stages }
    }

    /// Total FLOPs of one end-to-end inference.
    #[must_use]
    pub fn total_flops(&self) -> u64 {
        self.stages.iter().map(|s| s.repeats as u64 * s.graph.total_flops()).sum()
    }

    /// Rewrites the pipeline to a reduced-step (distilled) sampler: every
    /// [denoising](Stage::denoising) stage's repeat count is capped at
    /// `steps` (LCM/turbo-style distillation runs the same UNet for 4–8
    /// steps instead of 50). Encoders, decoders, autoregressive decode
    /// loops and MaskGIT refinement stages are untouched — they are
    /// structural, not sampler schedules.
    #[must_use]
    pub fn with_sampler_steps(mut self, steps: usize) -> Self {
        for s in &mut self.stages {
            if s.denoise {
                s.repeats = s.repeats.min(steps.max(1));
            }
        }
        self
    }

    /// Whether any stage responds to [`Pipeline::with_sampler_steps`].
    #[must_use]
    pub fn has_denoising_stages(&self) -> bool {
        self.stages.iter().any(|s| s.denoise)
    }

    /// Total trainable parameters: each *weight group* counted once
    /// (repeats and weight-sharing stages reuse the same weights — the
    /// parameter re-use that gives diffusion models their high arithmetic
    /// intensity). Within a group the largest stage is counted, since a
    /// decode-step graph may expose fewer of the shared weights than the
    /// prefill graph.
    #[must_use]
    pub fn param_count(&self) -> u64 {
        let mut groups: Vec<(&str, u64)> = Vec::new();
        for s in &self.stages {
            let params = s.graph.param_count();
            if let Some(slot) = groups.iter_mut().find(|(g, _)| *g == s.weight_group) {
                slot.1 = slot.1.max(params);
            } else {
                groups.push((&s.weight_group, params));
            }
        }
        groups.iter().map(|(_, p)| p).sum()
    }

    /// Total FP16 weight bytes *read* over one inference: every sequential
    /// forward call must re-fetch its stage's weights, so repeats multiply.
    #[must_use]
    pub fn weight_bytes_read(&self) -> u64 {
        self.stages.iter().map(|s| 2 * s.repeats as u64 * s.graph.param_count()).sum()
    }

    /// Arithmetic intensity for the Fig. 5 roofline: FLOPs per byte of
    /// weight traffic. Diffusion models process a whole image per weight
    /// fetch (high intensity); autoregressive decode processes one token
    /// per fetch (intensity ≈ 1, memory-bandwidth bound at low batch).
    #[must_use]
    pub fn arithmetic_intensity(&self) -> f64 {
        self.total_flops() as f64 / self.weight_bytes_read().max(1) as f64
    }

    /// Inference memory footprint at FP16: all stages' weights resident,
    /// the widest stage's activation peak, the largest KV cache. Weight
    /// groups are deduplicated like [`Pipeline::param_count`].
    #[must_use]
    pub fn memory_footprint(&self) -> MemoryFootprint {
        let mut groups: Vec<(&str, MemoryFootprint)> = Vec::new();
        for s in &self.stages {
            let f = graph_footprint(&s.graph, 2);
            if let Some(slot) = groups.iter_mut().find(|(g, _)| *g == s.weight_group) {
                slot.1.weight_bytes = slot.1.weight_bytes.max(f.weight_bytes);
                slot.1.peak_activation_bytes =
                    slot.1.peak_activation_bytes.max(f.peak_activation_bytes);
                slot.1.kv_cache_bytes = slot.1.kv_cache_bytes.max(f.kv_cache_bytes);
            } else {
                groups.push((&s.weight_group, f));
            }
        }
        groups
            .iter()
            .fold(MemoryFootprint::default(), |acc, (_, f)| acc.merge_resident(f))
    }

    /// Profiles every stage once and assembles the weighted profile.
    ///
    /// CUDA-graph capture (when the profiler enables it) only holds for
    /// the static-shape denoising stages — a denoising step replays the
    /// identical kernel sequence every iteration, while autoregressive
    /// decode and MaskGIT resampling change shape each step and cannot
    /// stay captured — so non-denoising stages are profiled through
    /// [`Profiler::without_graph_capture`].
    #[must_use]
    pub fn profile(&self, profiler: &Profiler) -> PipelineProfile {
        let uncaptured = profiler.without_graph_capture();
        let stages = self
            .stages
            .iter()
            .map(|s| StageProfile {
                name: s.name.clone(),
                repeats: s.repeats,
                timeline: if s.denoise { profiler } else { &uncaptured }.profile(&s.graph),
            })
            .collect();
        PipelineProfile { pipeline: self.name.clone(), stages }
    }
}

/// One profiled stage.
#[derive(Debug, Clone)]
pub struct StageProfile {
    /// Stage label.
    pub name: String,
    /// Repeat count the stage contributes with.
    pub repeats: usize,
    /// Timeline of a single execution.
    pub timeline: Timeline,
}

/// The weighted profile of a whole pipeline.
#[derive(Debug, Clone)]
pub struct PipelineProfile {
    /// Pipeline name.
    pub pipeline: String,
    /// Per-stage profiles.
    pub stages: Vec<StageProfile>,
}

impl PipelineProfile {
    /// End-to-end simulated seconds.
    #[must_use]
    pub fn total_time_s(&self) -> f64 {
        self.stages.iter().map(|s| s.repeats as f64 * s.timeline.total_time_s()).sum()
    }

    /// End-to-end FLOPs.
    #[must_use]
    pub fn total_flops(&self) -> u64 {
        self.stages.iter().map(|s| s.repeats as u64 * s.timeline.total_flops()).sum()
    }

    /// End-to-end modeled energy in joules, weighted by repeats like
    /// [`PipelineProfile::total_time_s`].
    #[must_use]
    pub fn total_energy_j(&self) -> f64 {
        self.stages.iter().map(|s| s.repeats as f64 * s.timeline.total_energy_j()).sum()
    }

    /// Mean board draw over the whole pipeline, watts (0 when empty).
    #[must_use]
    pub fn mean_power_w(&self) -> f64 {
        let t = self.total_time_s();
        if t == 0.0 {
            0.0
        } else {
            self.total_energy_j() / t
        }
    }

    /// Operator breakdown across all stages, weighted by repeats (Fig. 6).
    #[must_use]
    pub fn breakdown(&self) -> CategoryBreakdown {
        let mut acc = CategoryBreakdown::empty();
        for s in &self.stages {
            acc.merge(&s.timeline.breakdown().scaled(s.repeats as f64));
        }
        acc
    }

    /// Seconds in attention calls of one kind, weighted (Fig. 11).
    #[must_use]
    pub fn attention_time_by_kind(&self, kind: AttnKind) -> f64 {
        self.stages
            .iter()
            .map(|s| s.repeats as f64 * s.timeline.attention_time_by_kind(kind))
            .sum()
    }

    /// FLOPs in attention calls of one kind, weighted.
    #[must_use]
    pub fn attention_flops_by_kind(&self, kind: AttnKind) -> u64 {
        self.stages
            .iter()
            .map(|s| s.repeats as u64 * s.timeline.attention_flops_by_kind(kind))
            .sum()
    }

    /// One *fundamental period* of the attention-call trace: each stage's
    /// single-execution timeline concatenated once (Fig. 7 truncates to the
    /// minimum repeating pattern the same way).
    #[must_use]
    pub fn fundamental_period(&self) -> Timeline {
        let mut t = Timeline::default();
        for s in &self.stages {
            t.extend(&s.timeline);
        }
        t
    }

    /// The profile of a named stage.
    #[must_use]
    pub fn stage(&self, name: &str) -> Option<&StageProfile> {
        self.stages.iter().find(|s| s.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmg_attn::AttnImpl;
    use mmg_gpu::DeviceSpec;
    use mmg_graph::Op;

    fn stage_graph(tokens: usize) -> Graph {
        let mut g = Graph::new();
        g.push("fc", Op::Linear { tokens, in_features: 64, out_features: 64 });
        g
    }

    fn pipeline() -> Pipeline {
        Pipeline::new(
            "test",
            None,
            vec![
                Stage::once("encode", stage_graph(16)),
                Stage::new("step", 50, stage_graph(32)),
            ],
        )
    }

    #[test]
    fn flops_weighted_by_repeats() {
        let p = pipeline();
        let f_enc = 2 * 16 * 64 * 64u64;
        let f_step = 2 * 32 * 64 * 64u64;
        assert_eq!(p.total_flops(), f_enc + 50 * f_step);
    }

    #[test]
    fn params_counted_once_per_stage() {
        let p = pipeline();
        assert_eq!(p.param_count(), 2 * 64 * 64);
    }

    #[test]
    fn arithmetic_intensity_is_per_weight_read() {
        // Repeats re-read the weights, so intensity is invariant to them…
        let once = Pipeline::new("a", None, vec![Stage::once("s", stage_graph(32))]);
        let many = Pipeline::new("b", None, vec![Stage::new("s", 50, stage_graph(32))]);
        assert!((once.arithmetic_intensity() - many.arithmetic_intensity()).abs() < 1e-9);
        // …while more tokens per call raise it.
        let wide = Pipeline::new("c", None, vec![Stage::once("s", stage_graph(64))]);
        assert!(wide.arithmetic_intensity() > 1.9 * once.arithmetic_intensity());
        assert_eq!(many.weight_bytes_read(), 50 * once.weight_bytes_read());
    }

    #[test]
    fn sampler_steps_cap_only_denoising_stages() {
        let p = Pipeline::new(
            "test",
            None,
            vec![
                Stage::once("encode", stage_graph(16)),
                Stage::new("unet_step", 50, stage_graph(32)).denoising(),
                Stage::new("decode_t0", 64, stage_graph(8)),
            ],
        );
        assert!(p.has_denoising_stages());
        let repeats = |p: &Pipeline, name: &str| {
            p.stages.iter().find(|s| s.name == name).unwrap().repeats
        };
        let distilled = p.clone().with_sampler_steps(4);
        assert_eq!(repeats(&distilled, "unet_step"), 4);
        assert_eq!(repeats(&distilled, "decode_t0"), 64, "AR decode untouched");
        assert_eq!(repeats(&distilled, "encode"), 1);
        // A cap above the schedule is a no-op, and 0 clamps to 1 step.
        assert_eq!(repeats(&p.clone().with_sampler_steps(100), "unet_step"), 50);
        assert_eq!(repeats(&p.clone().with_sampler_steps(0), "unet_step"), 1);
    }

    #[test]
    fn profile_weights_time() {
        let p = pipeline();
        let prof = p.profile(&Profiler::new(DeviceSpec::a100_80gb(), AttnImpl::Flash));
        let enc = prof.stage("encode").unwrap().timeline.total_time_s();
        let step = prof.stage("step").unwrap().timeline.total_time_s();
        assert!((prof.total_time_s() - (enc + 50.0 * step)).abs() < 1e-12);
    }

    #[test]
    fn fundamental_period_concatenates_once() {
        let p = pipeline();
        let prof = p.profile(&Profiler::new(DeviceSpec::a100_80gb(), AttnImpl::Flash));
        assert_eq!(prof.fundamental_period().events().len(), 2);
    }

    #[test]
    fn breakdown_total_matches_time() {
        let p = pipeline();
        let prof = p.profile(&Profiler::new(DeviceSpec::a100_80gb(), AttnImpl::Flash));
        assert!((prof.breakdown().total_s() - prof.total_time_s()).abs() < 1e-12);
    }
}
