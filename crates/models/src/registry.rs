//! The model registry: suite identities plus the published
//! (FID, parameter-count) points behind Fig. 4.

use std::fmt;

/// The eight profiled workloads plus the LLaMA2 baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ModelId {
    /// LLaMA2-7B text generation (the comparison LLM).
    Llama2,
    /// Imagen — pixel-space diffusion with two SR stages.
    Imagen,
    /// Stable Diffusion — latent diffusion.
    StableDiffusion,
    /// Muse — transformer TTI with parallel decoding.
    Muse,
    /// Parti — autoregressive encoder–decoder transformer TTI.
    Parti,
    /// The production latent-diffusion image model.
    ProdImage,
    /// Make-A-Video — diffusion TTV.
    MakeAVideo,
    /// Phenaki — transformer TTV.
    Phenaki,
}

impl ModelId {
    /// All suite members in the paper's presentation order.
    pub const ALL: [ModelId; 8] = [
        ModelId::Llama2,
        ModelId::Imagen,
        ModelId::StableDiffusion,
        ModelId::Muse,
        ModelId::Parti,
        ModelId::ProdImage,
        ModelId::MakeAVideo,
        ModelId::Phenaki,
    ];

    /// The TTI/TTV members (everything but the LLM baseline).
    pub const GENERATIVE: [ModelId; 7] = [
        ModelId::Imagen,
        ModelId::StableDiffusion,
        ModelId::Muse,
        ModelId::Parti,
        ModelId::ProdImage,
        ModelId::MakeAVideo,
        ModelId::Phenaki,
    ];

    /// Architecture class of the model.
    #[must_use]
    pub fn arch(self) -> ArchClass {
        match self {
            ModelId::Llama2 => ArchClass::Llm,
            ModelId::Imagen => ArchClass::DiffusionPixel,
            ModelId::StableDiffusion | ModelId::ProdImage => ArchClass::DiffusionLatent,
            ModelId::Muse | ModelId::Parti => ArchClass::TransformerTti,
            ModelId::MakeAVideo => ArchClass::DiffusionVideo,
            ModelId::Phenaki => ArchClass::TransformerVideo,
        }
    }

    /// Whether the workload is diffusion-based (UNet denoising loop).
    #[must_use]
    pub fn is_diffusion(self) -> bool {
        matches!(
            self.arch(),
            ArchClass::DiffusionPixel | ArchClass::DiffusionLatent | ArchClass::DiffusionVideo
        )
    }

    /// Whether the workload generates video.
    #[must_use]
    pub fn is_video(self) -> bool {
        matches!(self.arch(), ArchClass::DiffusionVideo | ArchClass::TransformerVideo)
    }
}

impl fmt::Display for ModelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ModelId::Llama2 => "LLaMA2",
            ModelId::Imagen => "Imagen",
            ModelId::StableDiffusion => "StableDiffusion",
            ModelId::Muse => "Muse",
            ModelId::Parti => "Parti",
            ModelId::ProdImage => "ProdImage",
            ModelId::MakeAVideo => "MakeAVideo",
            ModelId::Phenaki => "Phenaki",
        };
        f.write_str(s)
    }
}

/// Architecture taxonomy of Section II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArchClass {
    /// Text-only decoder transformer.
    Llm,
    /// Pixel-space diffusion (with SR networks).
    DiffusionPixel,
    /// Latent-space diffusion (with VAE/GAN decoder).
    DiffusionLatent,
    /// Transformer-based text-to-image.
    TransformerTti,
    /// Diffusion-based text-to-video.
    DiffusionVideo,
    /// Transformer-based text-to-video.
    TransformerVideo,
}

impl fmt::Display for ArchClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ArchClass::Llm => "LLM",
            ArchClass::DiffusionPixel => "Diffusion (Pixel)",
            ArchClass::DiffusionLatent => "Diffusion (Latent)",
            ArchClass::TransformerTti => "Transformer",
            ArchClass::DiffusionVideo => "Diffusion TTV",
            ArchClass::TransformerVideo => "Transformer TTV",
        };
        f.write_str(s)
    }
}

/// A published model point for the Fig. 4 quality/size landscape.
///
/// FID values are the previously-reported COCO zero-shot numbers the paper
/// plots; parameter counts are the cited totals. (Fig. 4 plots published
/// values — these are inputs, not measurements.)
#[derive(Debug, Clone, PartialEq)]
pub struct ModelRecord {
    /// Model name as plotted.
    pub name: &'static str,
    /// Architecture class.
    pub arch: ArchClass,
    /// Total parameters (all components), in billions.
    pub params_b: f64,
    /// Reported COCO FID (lower is better).
    pub fid: f64,
    /// Whether an open implementation exists (closed models are plotted
    /// but excluded from the profiled suite).
    pub open_source: bool,
}

/// The Fig. 4 scatter: published (FID, params) points for TTI models.
#[must_use]
pub fn registry() -> Vec<ModelRecord> {
    use ArchClass::*;
    vec![
        ModelRecord { name: "Imagen", arch: DiffusionPixel, params_b: 3.0, fid: 7.27, open_source: true },
        ModelRecord { name: "StableDiffusion", arch: DiffusionLatent, params_b: 1.45, fid: 12.63, open_source: true },
        ModelRecord { name: "Muse", arch: TransformerTti, params_b: 3.0, fid: 7.88, open_source: true },
        ModelRecord { name: "Parti", arch: TransformerTti, params_b: 20.0, fid: 7.23, open_source: true },
        ModelRecord { name: "DALL-E", arch: TransformerTti, params_b: 12.0, fid: 27.5, open_source: false },
        ModelRecord { name: "GLIDE", arch: DiffusionPixel, params_b: 5.0, fid: 12.24, open_source: false },
        ModelRecord { name: "DALL-E 2", arch: DiffusionPixel, params_b: 5.5, fid: 10.39, open_source: false },
        ModelRecord { name: "Make-A-Scene", arch: TransformerTti, params_b: 4.0, fid: 11.84, open_source: true },
        ModelRecord { name: "CogView", arch: TransformerTti, params_b: 4.0, fid: 27.1, open_source: true },
        ModelRecord { name: "CogView2", arch: TransformerTti, params_b: 6.0, fid: 24.0, open_source: true },
        ModelRecord { name: "VQ-Diffusion", arch: DiffusionLatent, params_b: 0.37, fid: 19.75, open_source: true },
        ModelRecord { name: "ERNIE-ViLG 2.0", arch: DiffusionPixel, params_b: 24.0, fid: 6.75, open_source: false },
        ModelRecord { name: "LDM", arch: DiffusionLatent, params_b: 1.45, fid: 12.63, open_source: true },
        ModelRecord { name: "RA-CM3", arch: TransformerTti, params_b: 2.7, fid: 15.7, open_source: true },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_eight_plus_llm() {
        assert_eq!(ModelId::ALL.len(), 8);
        assert_eq!(ModelId::GENERATIVE.len(), 7);
        assert!(!ModelId::GENERATIVE.contains(&ModelId::Llama2));
    }

    #[test]
    fn arch_classification() {
        assert!(ModelId::StableDiffusion.is_diffusion());
        assert!(!ModelId::Parti.is_diffusion());
        assert!(ModelId::MakeAVideo.is_video());
        assert!(ModelId::Phenaki.is_video());
        assert!(!ModelId::Muse.is_video());
        assert_eq!(ModelId::Imagen.arch(), ArchClass::DiffusionPixel);
    }

    #[test]
    fn registry_covers_pareto_models() {
        let r = registry();
        for name in ["Imagen", "StableDiffusion", "Muse", "Parti"] {
            assert!(r.iter().any(|m| m.name == name), "{name} missing");
        }
        assert!(r.len() >= 12);
    }

    #[test]
    fn registry_values_sane() {
        for m in registry() {
            assert!(m.params_b > 0.0 && m.params_b < 100.0, "{}", m.name);
            assert!(m.fid > 0.0 && m.fid < 50.0, "{}", m.name);
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(ModelId::StableDiffusion.to_string(), "StableDiffusion");
        assert_eq!(ArchClass::DiffusionLatent.to_string(), "Diffusion (Latent)");
    }
}
