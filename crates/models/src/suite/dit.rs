//! DiT — a latent *diffusion transformer* (extension model).
//!
//! The paper's taxonomy bifurcates TTI into UNet-based diffusion and
//! autoregressive transformers. Diffusion transformers (DiT-class models)
//! merge the two: the denoising network is a plain transformer over
//! patchified latent tokens. Profiling one through the same harness shows
//! where the paper's conclusions carry over — the denoising loop keeps the
//! prefill-like attention shapes and high weight reuse of diffusion, while
//! the operator mix becomes Linear-dominated like a transformer, and the
//! convolution bottleneck disappears entirely.

use mmg_attn::AttentionShape;
use mmg_graph::{ActivationKind, AttnKind, Graph, Op};

use crate::blocks::{encoder_graph, vae_decoder_graph, VaeDecoderConfig};
use crate::suite::clip_text_config;
use crate::{Pipeline, Stage, TransformerConfig};

/// DiT inference configuration (DiT-XL/2-flavoured defaults).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DitConfig {
    /// Output image edge.
    pub image_size: usize,
    /// VAE downsampling factor.
    pub vae_factor: usize,
    /// Patch edge over the latent (2 → 4 latent pixels per token… edge/2).
    pub patch: usize,
    /// Transformer stack.
    pub transformer: TransformerConfig,
    /// Denoising steps.
    pub steps: usize,
}

impl Default for DitConfig {
    fn default() -> Self {
        DitConfig {
            image_size: 512,
            vae_factor: 8,
            patch: 2,
            transformer: TransformerConfig {
                layers: 28,
                d_model: 1152,
                heads: 16,
                d_ff: 4608,
                gated_ffn: false,
                vocab: 1,
                cross_attention: false,
                context_len: 0,
                context_dim: 0,
            },
            steps: 50,
        }
    }
}

impl DitConfig {
    /// Latent edge.
    #[must_use]
    pub fn latent_res(&self) -> usize {
        self.image_size / self.vae_factor
    }

    /// Token count: `(latent / patch)²` — constant across the whole
    /// denoising loop, unlike the UNet's cyclical sequence lengths.
    #[must_use]
    pub fn tokens(&self) -> usize {
        let edge = self.latent_res() / self.patch;
        edge * edge
    }
}

/// One DiT denoising step: patchify, `layers` adaLN transformer blocks
/// over the full token grid, unpatchify.
#[must_use]
pub fn dit_step_graph(cfg: &DitConfig) -> Graph {
    let t = &cfg.transformer;
    let tokens = cfg.tokens();
    let d = t.d_model;
    let patch_in = 4 * cfg.patch * cfg.patch; // 4 latent channels per patch
    let mut g = Graph::new();
    g.push("patchify", Op::Linear { tokens, in_features: patch_in, out_features: d });
    let shape = AttentionShape::self_attn(1, t.heads, tokens, t.head_dim());
    for i in 0..t.layers {
        // adaLN-Zero conditioning: timestep/class embedding modulates the
        // normalized activations (scale & shift) — pure elementwise work.
        g.push(format!("layer{i}.adaln.norm"), Op::LayerNorm { rows: tokens, cols: d });
        g.push(
            format!("layer{i}.adaln.modulate"),
            Op::Elementwise { elems: tokens * d, inputs: 2 },
        );
        for proj in ["q_proj", "k_proj", "v_proj"] {
            g.push(
                format!("layer{i}.attn.{proj}"),
                Op::Linear { tokens, in_features: d, out_features: d },
            );
        }
        g.push(
            format!("layer{i}.attn.attention"),
            Op::Attention { shape, kind: AttnKind::SpatialSelf },
        );
        g.push(
            format!("layer{i}.attn.out_proj"),
            Op::Linear { tokens, in_features: d, out_features: d },
        );
        g.push(format!("layer{i}.attn.residual"), Op::Elementwise { elems: tokens * d, inputs: 2 });
        g.push(format!("layer{i}.ffn.norm"), Op::LayerNorm { rows: tokens, cols: d });
        g.push(
            format!("layer{i}.ffn.modulate"),
            Op::Elementwise { elems: tokens * d, inputs: 2 },
        );
        g.push(format!("layer{i}.ffn.fc1"), Op::Linear { tokens, in_features: d, out_features: t.d_ff });
        g.push(
            format!("layer{i}.ffn.act"),
            Op::Activation { elems: tokens * t.d_ff, kind: ActivationKind::Gelu },
        );
        g.push(format!("layer{i}.ffn.fc2"), Op::Linear { tokens, in_features: t.d_ff, out_features: d });
        g.push(format!("layer{i}.ffn.residual"), Op::Elementwise { elems: tokens * d, inputs: 2 });
    }
    g.push("final_norm", Op::LayerNorm { rows: tokens, cols: d });
    g.push("unpatchify", Op::Linear { tokens, in_features: d, out_features: patch_in });
    g
}

/// Builds the DiT pipeline: CLIP encode, DiT denoising loop, VAE decode.
#[must_use]
pub fn pipeline(cfg: &DitConfig) -> Pipeline {
    let clip = clip_text_config();
    let stages = vec![
        Stage::once("clip_encoder", encoder_graph(&clip, 77)),
        Stage::new("dit_step", cfg.steps, dit_step_graph(cfg)).denoising(),
        Stage::once(
            "vae_decoder",
            vae_decoder_graph(&VaeDecoderConfig::stable_diffusion(), cfg.latent_res()),
        ),
    ];
    Pipeline::new("DiT", None, stages)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmg_graph::OpCategory;

    #[test]
    fn dit_xl_params_near_reference() {
        // DiT-XL/2 is ~675M parameters.
        let g = dit_step_graph(&DitConfig::default());
        let p = g.param_count() as f64 / 1e6;
        assert!((400.0..900.0).contains(&p), "params {p}M");
    }

    #[test]
    fn tokens_scale_with_image_size() {
        let small = DitConfig { image_size: 256, ..Default::default() };
        let big = DitConfig::default();
        assert_eq!(small.tokens(), 256);
        assert_eq!(big.tokens(), 1024);
    }

    #[test]
    fn sequence_length_is_constant_across_the_step() {
        // Unlike the UNet's U-shape, the DiT trace is flat.
        let g = dit_step_graph(&DitConfig::default());
        let seqs: Vec<usize> = g
            .attention_nodes()
            .filter_map(|n| n.op.attention_shape())
            .map(|(s, _)| s.seq_q)
            .collect();
        assert_eq!(seqs.len(), 28);
        assert!(seqs.iter().all(|&s| s == 1024));
    }

    #[test]
    fn operator_mix_is_transformer_like_but_no_conv() {
        let g = dit_step_graph(&DitConfig::default());
        let by = g.flops_by_category();
        let get = |c| by.iter().find(|(cat, _)| *cat == c).map_or(0, |(_, f)| *f);
        assert_eq!(get(OpCategory::Conv), 0, "no convolution anywhere");
        assert!(
            get(OpCategory::Linear) as f64 / g.total_flops() as f64 > 0.6,
            "linear-dominated like a transformer"
        );
    }

    #[test]
    fn keeps_diffusion_arithmetic_intensity() {
        // The denoising loop re-reads the same weights 50x: DiT keeps
        // diffusion's high FLOPs-per-weight-byte despite the transformer
        // operator mix.
        let p = pipeline(&DitConfig::default());
        assert!(p.arithmetic_intensity() > 153.0, "ai {}", p.arithmetic_intensity());
    }
}
