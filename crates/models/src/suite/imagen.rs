//! Imagen — the pixel-diffusion representative: T5-XXL text encoder, a
//! 64×64 base UNet, and two super-resolution diffusion stages
//! (64→256→1024), per Section III.

use crate::blocks::{encoder_graph, sr_unet_config, unet_step_graph};
use crate::suite::t5_xxl_config;
use crate::{ModelId, Pipeline, Stage, UNetConfig};

/// Imagen inference configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImagenConfig {
    /// Text sequence length fed to T5.
    pub text_len: usize,
    /// Base (64×64) denoising steps.
    pub base_steps: usize,
    /// SR stage 1 (256×256) steps.
    pub sr1_steps: usize,
    /// SR stage 2 (1024×1024) steps.
    pub sr2_steps: usize,
}

impl Default for ImagenConfig {
    fn default() -> Self {
        ImagenConfig { text_len: 128, base_steps: 64, sr1_steps: 32, sr2_steps: 32 }
    }
}

impl ImagenConfig {
    /// The base 64×64 UNet, following Table I: channel mult `[1,2,4,4]`,
    /// 3 res blocks, self- and text-cross-attention at resolutions
    /// `[32,16,8]`, embed dim 512.
    #[must_use]
    pub fn base_unet(&self) -> UNetConfig {
        UNetConfig {
            base_channels: 512,
            channel_mult: vec![1, 2, 4, 4],
            num_res_blocks: 3,
            attn_resolutions: vec![32, 16, 8],
            cross_attn_resolutions: vec![32, 16, 8],
            temporal_attn_resolutions: vec![],
            heads: 8,
            text_len: self.text_len,
            text_dim: 4096,
            in_channels: 3,
        }
    }

    /// SR stage 1: efficient UNet at 256×256 (cross-attention only at the
    /// deepest level; no high-res self-attention).
    #[must_use]
    pub fn sr1_unet(&self) -> UNetConfig {
        sr_unet_config(self.text_len, 4096)
    }

    /// SR stage 2: 1024×1024, convolution-only (its levels never reach the
    /// 32-pixel cross-attention resolution).
    #[must_use]
    pub fn sr2_unet(&self) -> UNetConfig {
        UNetConfig { base_channels: 64, ..sr_unet_config(self.text_len, 4096) }
    }
}

/// Builds the Imagen pipeline.
#[must_use]
pub fn pipeline(cfg: &ImagenConfig) -> Pipeline {
    let t5 = t5_xxl_config();
    let stages = vec![
        Stage::once("t5_encoder", encoder_graph(&t5, cfg.text_len)),
        Stage::new("base_unet_step", cfg.base_steps, unet_step_graph(&cfg.base_unet(), 64, 1))
            .denoising(),
        Stage::new("sr1_unet_step", cfg.sr1_steps, unet_step_graph(&cfg.sr1_unet(), 256, 1))
            .denoising(),
        Stage::new("sr2_unet_step", cfg.sr2_steps, unet_step_graph(&cfg.sr2_unet(), 1024, 1))
            .denoising(),
    ];
    Pipeline::new("Imagen", Some(ModelId::Imagen), stages)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmg_graph::OpCategory;

    #[test]
    fn pipeline_has_three_diffusion_stages() {
        let p = pipeline(&ImagenConfig::default());
        assert_eq!(p.stages.len(), 4);
        assert!(p.stages.iter().filter(|s| s.name.contains("unet")).count() == 3);
    }

    #[test]
    fn sr2_is_pure_convolution() {
        let cfg = ImagenConfig::default();
        let g = unet_step_graph(&cfg.sr2_unet(), 1024, 1);
        // Mid-block self-attention exists but at 128 res it is the only one;
        // ensure no attention above the mid block leaked in.
        let attn_flops: u64 = g
            .attention_nodes()
            .map(|n| n.op.flops())
            .sum();
        assert!((attn_flops as f64) / (g.total_flops() as f64) < 0.35, "SR2 should be conv-dominated");
    }

    #[test]
    fn pixel_model_spends_more_conv_flops_than_latent_sd() {
        // Section IV-A: pixel-based models spend ~15% more time on
        // convolution than latent-based ones. Check the FLOP mix ordering.
        use crate::suite::stable_diffusion;
        let conv_frac = |p: &Pipeline| {
            let mut conv = 0u64;
            let mut total = 0u64;
            for s in &p.stages {
                let by = s.graph.flops_by_category();
                let c = by.iter().find(|(c, _)| *c == OpCategory::Conv).map_or(0, |(_, f)| *f);
                conv += s.repeats as u64 * c;
                total += s.repeats as u64 * s.graph.total_flops();
            }
            conv as f64 / total as f64
        };
        let imagen = pipeline(&ImagenConfig::default());
        let sd = stable_diffusion::pipeline(&stable_diffusion::StableDiffusionConfig::default());
        assert!(conv_frac(&imagen) > conv_frac(&sd));
    }

    #[test]
    fn params_within_taxonomy_range() {
        // Table I lists 3B for Imagen's diffusion stack (T5-XXL is frozen
        // and usually quoted separately); allow the combined total.
        let p = pipeline(&ImagenConfig::default());
        let params = p.param_count() as f64 / 1e9;
        assert!((2.0..10.0).contains(&params), "params {params}B");
    }
}
