//! Imagen-Video-style cascade (extension model, paper ref \[24]).
//!
//! Not one of the eight profiled workloads, but the paper leans on its
//! design twice: TTV systems "substitute Attention calls for Convolutional
//! layers to keep computational/memory costs down, especially in models
//! with higher resolution", and future TTV needs both more frames and more
//! resolution. This builder composes the existing blocks into the
//! characteristic three-stage cascade: a spatiotemporal base model, a
//! temporal super-resolution stage (more frames), and a spatial
//! super-resolution stage (more pixels, convolution-only).

use crate::blocks::{encoder_graph, sr_unet_config, unet_step_graph};
use crate::suite::t5_xxl_config;
use crate::{ModelId, Pipeline, Stage, UNetConfig};

/// Imagen-Video-style configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImagenVideoConfig {
    /// Base frames.
    pub base_frames: usize,
    /// Base spatial edge.
    pub base_res: usize,
    /// Base denoising steps.
    pub base_steps: usize,
    /// Frames after temporal super-resolution.
    pub tsr_frames: usize,
    /// Temporal-SR denoising steps.
    pub tsr_steps: usize,
    /// Spatial-SR output edge.
    pub ssr_res: usize,
    /// Spatial-SR denoising steps.
    pub ssr_steps: usize,
    /// Text length.
    pub text_len: usize,
}

impl Default for ImagenVideoConfig {
    fn default() -> Self {
        ImagenVideoConfig {
            base_frames: 16,
            base_res: 64,
            base_steps: 50,
            tsr_frames: 32,
            tsr_steps: 24,
            ssr_res: 256,
            ssr_steps: 24,
            text_len: 128,
        }
    }
}

impl ImagenVideoConfig {
    /// Base spatiotemporal UNet: spatial + temporal attention at the deep
    /// levels.
    #[must_use]
    pub fn base_unet(&self) -> UNetConfig {
        UNetConfig {
            base_channels: 320,
            channel_mult: vec![1, 2, 4, 4],
            num_res_blocks: 2,
            attn_resolutions: vec![32, 16, 8],
            cross_attn_resolutions: vec![32, 16, 8],
            temporal_attn_resolutions: vec![64, 32, 16, 8],
            heads: 8,
            text_len: self.text_len,
            text_dim: 4096,
            in_channels: 3,
        }
    }

    /// Temporal-SR UNet: interpolates to more frames; temporal layers at
    /// every level, *no* spatial attention (the resolution is unchanged,
    /// the frame axis is the work).
    #[must_use]
    pub fn tsr_unet(&self) -> UNetConfig {
        UNetConfig {
            base_channels: 256,
            channel_mult: vec![1, 2, 4],
            num_res_blocks: 2,
            attn_resolutions: vec![],
            cross_attn_resolutions: vec![16],
            temporal_attn_resolutions: vec![64, 32, 16],
            heads: 8,
            text_len: self.text_len,
            text_dim: 4096,
            in_channels: 3,
        }
    }

    /// Spatial-SR UNet: the high-resolution stage drops attention entirely
    /// — the ref \[24] design choice the paper highlights — and keeps only
    /// temporal *convolution* at its deepest level.
    #[must_use]
    pub fn ssr_unet(&self) -> UNetConfig {
        UNetConfig {
            temporal_attn_resolutions: vec![32],
            cross_attn_resolutions: vec![],
            ..sr_unet_config(self.text_len, 4096)
        }
    }
}

/// Builds the cascade pipeline. The stages carry no [`ModelId`]: this is
/// an extension beyond the paper's profiled suite.
#[must_use]
pub fn pipeline(cfg: &ImagenVideoConfig) -> Pipeline {
    let t5 = t5_xxl_config();
    let stages = vec![
        Stage::once("t5_encoder", encoder_graph(&t5, cfg.text_len)),
        Stage::new(
            "base_unet_step",
            cfg.base_steps,
            unet_step_graph(&cfg.base_unet(), cfg.base_res, cfg.base_frames),
        )
        .denoising(),
        Stage::new(
            "tsr_unet_step",
            cfg.tsr_steps,
            unet_step_graph(&cfg.tsr_unet(), cfg.base_res, cfg.tsr_frames),
        )
        .denoising(),
        Stage::new(
            "ssr_unet_step",
            cfg.ssr_steps,
            unet_step_graph(&cfg.ssr_unet(), cfg.ssr_res, cfg.tsr_frames),
        )
        .denoising(),
    ];
    let _: Option<ModelId> = None;
    Pipeline::new("ImagenVideo", None, stages)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmg_graph::{AttnKind, OpCategory};

    #[test]
    fn cascade_has_three_diffusion_stages() {
        let p = pipeline(&ImagenVideoConfig::default());
        assert_eq!(p.stages.iter().filter(|s| s.name.contains("unet")).count(), 3);
        assert!(p.total_flops() > 0);
    }

    #[test]
    fn ssr_stage_has_no_attention_above_mid_block() {
        let cfg = ImagenVideoConfig::default();
        let g = unet_step_graph(&cfg.ssr_unet(), cfg.ssr_res, cfg.tsr_frames);
        for n in g.attention_nodes() {
            let (s, kind) = n.op.attention_shape().unwrap();
            // Only the mid-block spatial attention (32*32 at the deepest
            // level of a 256-res, 4-level UNet) and temporal layers remain.
            if kind != AttnKind::Temporal {
                assert!(s.seq_q <= 32 * 32, "high-res spatial attention leaked: {}", s.seq_q);
            }
        }
    }

    #[test]
    fn ssr_stage_is_convolution_dominated() {
        let cfg = ImagenVideoConfig::default();
        let g = unet_step_graph(&cfg.ssr_unet(), cfg.ssr_res, cfg.tsr_frames);
        let by = g.flops_by_category();
        let conv = by.iter().find(|(c, _)| *c == OpCategory::Conv).unwrap().1;
        assert!(conv as f64 / g.total_flops() as f64 > 0.7);
    }

    #[test]
    fn tsr_temporal_sequence_is_interpolated_frame_count() {
        let cfg = ImagenVideoConfig::default();
        let g = unet_step_graph(&cfg.tsr_unet(), cfg.base_res, cfg.tsr_frames);
        let t = g
            .attention_nodes()
            .filter_map(|n| n.op.attention_shape())
            .find(|(_, k)| *k == AttnKind::Temporal)
            .unwrap();
        assert_eq!(t.0.seq_q, 32);
    }

    #[test]
    fn video_cascade_outweighs_image_cascade() {
        // Same architecture family, but the temporal axis multiplies work.
        let video = pipeline(&ImagenVideoConfig::default());
        let image = crate::suite::imagen::pipeline(&crate::suite::imagen::ImagenConfig::default());
        assert!(video.total_flops() > image.total_flops());
    }
}
