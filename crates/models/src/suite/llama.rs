//! LLaMA2-7B — the text-generation comparison point.

use crate::blocks::{decode_step_graph, prefill_graph};
use crate::{ModelId, Pipeline, Stage, TransformerConfig};

/// LLaMA2-7B inference configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Llama2Config {
    /// Transformer stack.
    pub transformer: TransformerConfig,
    /// Prompt length processed in the prefill phase.
    pub prompt_len: usize,
    /// Tokens generated autoregressively.
    pub gen_tokens: usize,
    /// Decode steps are sampled at this stride (each sampled step stands
    /// for `stride` real steps); the KV length grows linearly, so the
    /// sampled sum converges to the true sum.
    pub decode_sample_stride: usize,
}

impl Default for Llama2Config {
    fn default() -> Self {
        Llama2Config {
            transformer: TransformerConfig {
                layers: 32,
                d_model: 4096,
                heads: 32,
                d_ff: 11008,
            gated_ffn: true,
                vocab: 32000,
                cross_attention: false,
                context_len: 0,
                context_dim: 0,
            },
            prompt_len: 4096,
            gen_tokens: 32,
            decode_sample_stride: 8,
        }
    }
}

/// Builds the LLaMA2 inference pipeline: one prefill stage plus sampled
/// KV-cached decode stages.
#[must_use]
pub fn pipeline(cfg: &Llama2Config) -> Pipeline {
    let mut stages =
        vec![Stage::once("prefill", prefill_graph(&cfg.transformer, cfg.prompt_len))
            .with_weight_group("transformer")];
    let stride = cfg.decode_sample_stride.max(1);
    let mut t = 0;
    while t < cfg.gen_tokens {
        let reps = stride.min(cfg.gen_tokens - t);
        // Sample the middle of the window so the linear KV growth averages
        // out exactly.
        let kv = cfg.prompt_len + t + reps / 2;
        stages.push(
            Stage::new(format!("decode_t{t}"), reps, decode_step_graph(&cfg.transformer, kv))
                .with_weight_group("transformer"),
        );
        t += reps;
    }
    Pipeline::new("LLaMA2", Some(ModelId::Llama2), stages)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmg_graph::OpCategory;

    #[test]
    fn decode_steps_cover_generation() {
        let cfg = Llama2Config::default();
        let p = pipeline(&cfg);
        let decode_reps: usize =
            p.stages.iter().filter(|s| s.name.starts_with("decode")).map(|s| s.repeats).sum();
        assert_eq!(decode_reps, cfg.gen_tokens);
    }

    #[test]
    fn params_are_about_7b() {
        let p = pipeline(&Llama2Config::default());
        // Stage params over-count because each sampled decode stage holds
        // the same weights; the prefill stage alone carries the true count.
        let prefill = &p.stages[0];
        let params = prefill.graph.param_count() as f64 / 1e9;
        assert!((5.5..8.0).contains(&params), "params {params}B");
    }

    #[test]
    fn attention_and_linear_dominate_flops() {
        let p = pipeline(&Llama2Config::default());
        let g = &p.stages[0].graph;
        let by = g.flops_by_category();
        let get = |c| by.iter().find(|(cat, _)| *cat == c).map_or(0, |(_, f)| *f);
        let dominant = get(OpCategory::Linear) + get(OpCategory::Attention);
        assert!(dominant as f64 / g.total_flops() as f64 > 0.95);
    }

    #[test]
    fn sampled_kv_lengths_increase() {
        let p = pipeline(&Llama2Config::default());
        let kvs: Vec<usize> = p.stages[1..]
            .iter()
            .map(|s| {
                s.graph
                    .attention_nodes()
                    .next()
                    .and_then(|n| n.op.attention_shape())
                    .unwrap()
                    .0
                    .seq_kv
            })
            .collect();
        assert!(kvs.windows(2).all(|w| w[1] > w[0]), "{kvs:?}");
    }
}
