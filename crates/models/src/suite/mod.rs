//! The profiled model suite (Section III).
//!
//! Each submodule builds one workload's inference [`Pipeline`] from its
//! published architecture hyperparameters. Builders take a config struct
//! (with a faithful `Default`) so experiments can sweep image size, frame
//! count, or step count.

pub mod dit;
pub mod imagen;
pub mod imagen_video;
pub mod llama;
pub mod make_a_video;
pub mod muse;
pub mod parti;
pub mod phenaki;
pub mod prod_image;
pub mod stable_diffusion;

use crate::{ModelId, Pipeline, TransformerConfig};

/// CLIP ViT-L/14 text encoder (Stable Diffusion's conditioner).
#[must_use]
pub fn clip_text_config() -> TransformerConfig {
    TransformerConfig {
        layers: 12,
        d_model: 768,
        heads: 12,
        d_ff: 3072,
            gated_ffn: false,
        vocab: 49408,
        cross_attention: false,
        context_len: 0,
        context_dim: 0,
    }
}

/// T5-XXL encoder (Imagen's conditioner).
#[must_use]
pub fn t5_xxl_config() -> TransformerConfig {
    TransformerConfig {
        layers: 24,
        d_model: 4096,
        heads: 64,
        d_ff: 10240,
            gated_ffn: false,
        vocab: 32128,
        cross_attention: false,
        context_len: 0,
        context_dim: 0,
    }
}

/// Builds the default pipeline for a suite member.
#[must_use]
pub fn build(id: ModelId) -> Pipeline {
    match id {
        ModelId::Llama2 => llama::pipeline(&llama::Llama2Config::default()),
        ModelId::Imagen => imagen::pipeline(&imagen::ImagenConfig::default()),
        ModelId::StableDiffusion => {
            stable_diffusion::pipeline(&stable_diffusion::StableDiffusionConfig::default())
        }
        ModelId::Muse => muse::pipeline(&muse::MuseConfig::default()),
        ModelId::Parti => parti::pipeline(&parti::PartiConfig::default()),
        ModelId::ProdImage => prod_image::pipeline(&prod_image::ProdImageConfig::default()),
        ModelId::MakeAVideo => make_a_video::pipeline(&make_a_video::MakeAVideoConfig::default()),
        ModelId::Phenaki => phenaki::pipeline(&phenaki::PhenakiConfig::default()),
    }
}

/// Builds the whole suite in presentation order.
#[must_use]
pub fn full_suite() -> Vec<Pipeline> {
    ModelId::ALL.iter().map(|&id| build(id)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_models_build() {
        let suite = full_suite();
        assert_eq!(suite.len(), 8);
        for p in &suite {
            assert!(!p.stages.is_empty(), "{} has no stages", p.name);
            assert!(p.total_flops() > 0, "{} has no work", p.name);
            assert!(p.param_count() > 0, "{} has no params", p.name);
        }
    }

    #[test]
    fn diffusion_models_have_higher_arithmetic_intensity_than_transformer_tti() {
        // The Fig. 5 ordering: parameter re-use across denoising steps.
        let sd = build(ModelId::StableDiffusion).arithmetic_intensity();
        let parti = build(ModelId::Parti).arithmetic_intensity();
        let muse = build(ModelId::Muse).arithmetic_intensity();
        assert!(sd > 5.0 * parti, "sd {sd} vs parti {parti}");
        assert!(sd > muse, "sd {sd} vs muse {muse}");
    }

    #[test]
    fn model_ids_attached() {
        for p in full_suite() {
            assert!(p.model.is_some(), "{}", p.name);
        }
    }
}
