//! Muse — transformer TTI with parallel decoding (Table I: 48 layers,
//! model dim 2048).

use crate::blocks::{encoder_graph, windowed_encoder_graph};
use crate::{ModelId, Pipeline, Stage, TransformerConfig};

/// Muse inference configuration.
///
/// Muse predicts all image tokens each step and re-masks, so every
/// "decode" step is a full-sequence forward pass — which is why its Fig. 7
/// sequence length is constant. A base transformer works on 16×16 = 256
/// tokens; a super-resolution transformer refines 64×64 = 4096 tokens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MuseConfig {
    /// Base transformer stack (48 layers, d=2048 per Table I).
    pub base: TransformerConfig,
    /// Base image-token grid edge (16 → 256 tokens).
    pub base_grid: usize,
    /// Parallel-decoding steps of the base model.
    pub base_steps: usize,
    /// Super-resolution transformer stack.
    pub sr: TransformerConfig,
    /// SR token grid edge (64 → 4096 tokens).
    pub sr_grid: usize,
    /// Parallel-decoding steps of the SR model.
    pub sr_steps: usize,
    /// Self-attention window of the SR transformer (high-resolution token
    /// grids use windowed attention to stay affordable).
    pub sr_window: usize,
}

impl Default for MuseConfig {
    fn default() -> Self {
        let base = TransformerConfig {
            layers: 48,
            d_model: 2048,
            heads: 16,
            d_ff: 8192,
            gated_ffn: false,
            vocab: 8192,
            cross_attention: true,
            context_len: 77,
            context_dim: 4096,
        };
        let sr = TransformerConfig {
            layers: 16,
            d_model: 1024,
            heads: 16,
            d_ff: 4096,
            gated_ffn: false,
            vocab: 8192,
            cross_attention: true,
            context_len: 77,
            context_dim: 4096,
        };
        MuseConfig { base, base_grid: 16, base_steps: 24, sr, sr_grid: 64, sr_steps: 8, sr_window: 256 }
    }
}

/// Builds the Muse pipeline: every step is a full-sequence (bidirectional)
/// forward pass over the token grid.
#[must_use]
pub fn pipeline(cfg: &MuseConfig) -> Pipeline {
    let base_tokens = cfg.base_grid * cfg.base_grid;
    let sr_tokens = cfg.sr_grid * cfg.sr_grid;
    let stages = vec![
        Stage::new("base_step", cfg.base_steps, encoder_graph(&cfg.base, base_tokens)),
        Stage::new("sr_step", cfg.sr_steps, windowed_encoder_graph(&cfg.sr, sr_tokens, cfg.sr_window)),
    ];
    Pipeline::new("Muse", Some(ModelId::Muse), stages)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequence_length_constant_within_stage() {
        // Fig. 7: Muse's parallel decoding keeps sequence length constant.
        let p = pipeline(&MuseConfig::default());
        for s in &p.stages {
            let seqs: Vec<usize> = s
                .graph
                .attention_nodes()
                .filter_map(|n| n.op.attention_shape())
                .filter(|(_, k)| *k == mmg_graph::AttnKind::SpatialSelf)
                .map(|(sh, _)| sh.seq_q)
                .collect();
            assert!(seqs.windows(2).all(|w| w[0] == w[1]), "{}: {seqs:?}", s.name);
        }
    }

    #[test]
    fn params_near_3b() {
        let p = pipeline(&MuseConfig::default());
        let params = p.param_count() as f64 / 1e9;
        assert!((2.0..4.5).contains(&params), "params {params}B");
    }

    #[test]
    fn base_tokens_256_sr_tokens_4096() {
        let cfg = MuseConfig::default();
        let p = pipeline(&cfg);
        let max_seq = |name: &str| {
            p.stages
                .iter()
                .find(|s| s.name == name)
                .unwrap()
                .graph
                .attention_nodes()
                .filter_map(|n| n.op.attention_shape())
                .filter(|(_, k)| *k == mmg_graph::AttnKind::SpatialSelf)
                .map(|(s, _)| s.seq_q)
                .max()
                .unwrap()
        };
        assert_eq!(max_seq("base_step"), 256);
        assert_eq!(max_seq("sr_step"), 256, "windowed SR attention");
    }
}
