//! Parti — the autoregressive encoder–decoder transformer TTI
//! (Table I: 20B parameters, 80 layers, model dim 4096).

use crate::blocks::{decode_step_graph, encoder_graph};
use crate::{ModelId, Pipeline, Stage, TransformerConfig};

/// Parti inference configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartiConfig {
    /// Text encoder stack (40 of the 80 layers).
    pub encoder: TransformerConfig,
    /// Image-token decoder stack (the other 40 layers, with
    /// cross-attention to the encoder output).
    pub decoder: TransformerConfig,
    /// Text prompt length.
    pub text_len: usize,
    /// Image-token grid edge (32 → 1024 tokens, ViT-VQGAN).
    pub image_grid: usize,
    /// Decode steps are sampled at this stride.
    pub decode_sample_stride: usize,
}

impl Default for PartiConfig {
    fn default() -> Self {
        let encoder = TransformerConfig {
            layers: 40,
            d_model: 4096,
            heads: 32,
            d_ff: 16384,
            gated_ffn: false,
            vocab: 32000,
            cross_attention: false,
            context_len: 0,
            context_dim: 0,
        };
        let decoder = TransformerConfig {
            layers: 40,
            d_model: 4096,
            heads: 32,
            d_ff: 16384,
            gated_ffn: false,
            vocab: 8192,
            cross_attention: true,
            context_len: 128,
            context_dim: 4096,
        };
        PartiConfig { encoder, decoder, text_len: 128, image_grid: 32, decode_sample_stride: 32 }
    }
}

/// Builds the Parti pipeline: encode the prompt once, then generate
/// `image_grid²` tokens autoregressively. Each sampled decode stage stands
/// for `stride` real steps at the window-middle KV length, so the linear
/// sequence-length growth (Fig. 7) integrates exactly.
#[must_use]
pub fn pipeline(cfg: &PartiConfig) -> Pipeline {
    let mut stages = vec![Stage::once("text_encoder", encoder_graph(&cfg.encoder, cfg.text_len))];
    let total = cfg.image_grid * cfg.image_grid;
    let stride = cfg.decode_sample_stride.max(1);
    let mut t = 0;
    while t < total {
        let reps = stride.min(total - t);
        let kv = (t + reps / 2).max(1);
        stages.push(Stage::new(
            format!("decode_t{t}"),
            reps,
            decode_step_graph(&cfg.decoder, kv),
        ));
        t += reps;
    }
    Pipeline::new("Parti", Some(ModelId::Parti), stages)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_near_20b() {
        let p = pipeline(&PartiConfig::default());
        // Encoder + one decode stage carry the unique weights.
        let enc = p.stages[0].graph.param_count();
        let dec = p.stages[1].graph.param_count();
        let params = (enc + dec) as f64 / 1e9;
        assert!((14.0..26.0).contains(&params), "params {params}B");
    }

    #[test]
    fn sequence_grows_linearly_over_decode() {
        // Fig. 7: Parti's sequence length increases linearly.
        let p = pipeline(&PartiConfig::default());
        let kvs: Vec<usize> = p.stages[1..]
            .iter()
            .map(|s| {
                s.graph
                    .attention_nodes()
                    .find_map(|n| {
                        n.op.attention_shape().filter(|(_, k)| *k == mmg_graph::AttnKind::Causal)
                    })
                    .unwrap()
                    .0
                    .seq_kv
            })
            .collect();
        let diffs: Vec<isize> =
            kvs.windows(2).map(|w| w[1] as isize - w[0] as isize).collect();
        assert!(diffs.iter().all(|&d| d == diffs[0]), "non-linear growth: {kvs:?}");
    }

    #[test]
    fn generates_1024_tokens() {
        let p = pipeline(&PartiConfig::default());
        let reps: usize =
            p.stages.iter().filter(|s| s.name.starts_with("decode")).map(|s| s.repeats).sum();
        assert_eq!(reps, 1024);
    }

    #[test]
    fn decode_queries_are_single_token() {
        let p = pipeline(&PartiConfig::default());
        for s in p.stages.iter().filter(|s| s.name.starts_with("decode")) {
            for n in s.graph.attention_nodes() {
                let (shape, kind) = n.op.attention_shape().unwrap();
                if kind == mmg_graph::AttnKind::Causal {
                    assert_eq!(shape.seq_q, 1);
                }
            }
        }
    }
}
