//! Phenaki — the transformer TTV representative: C-ViViT video tokens
//! refined by a masked bidirectional transformer (MaskGit-style parallel
//! decoding), then decoded to pixels frame by frame.

use crate::blocks::{encoder_graph, vae_decoder_graph, VaeDecoderConfig};
use crate::{ModelId, Pipeline, Stage, TransformerConfig};

/// Phenaki inference configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhenakiConfig {
    /// MaskGit transformer stack.
    pub maskgit: TransformerConfig,
    /// Video frames generated.
    pub frames: usize,
    /// Token-grid edge per frame (16 → 256 tokens/frame at 128×128).
    pub tokens_per_frame_edge: usize,
    /// Temporal compression of the C-ViViT tokenizer (frames per token
    /// step after the first frame).
    pub temporal_compression: usize,
    /// MaskGit refinement steps (each is a full-sequence forward).
    pub maskgit_steps: usize,
}

impl Default for PhenakiConfig {
    fn default() -> Self {
        let maskgit = TransformerConfig {
            layers: 24,
            d_model: 2048,
            heads: 16,
            d_ff: 8192,
            gated_ffn: false,
            vocab: 8192,
            cross_attention: true,
            context_len: 77,
            context_dim: 768,
        };
        PhenakiConfig {
            maskgit,
            frames: 11,
            tokens_per_frame_edge: 16,
            temporal_compression: 2,
            maskgit_steps: 16,
        }
    }
}

impl PhenakiConfig {
    /// Total video tokens: the first frame plus temporally-compressed
    /// subsequent frames.
    #[must_use]
    pub fn video_tokens(&self) -> usize {
        let per_frame = self.tokens_per_frame_edge * self.tokens_per_frame_edge;
        let later = (self.frames - 1).div_ceil(self.temporal_compression);
        (1 + later) * per_frame
    }
}

/// Builds the Phenaki pipeline.
#[must_use]
pub fn pipeline(cfg: &PhenakiConfig) -> Pipeline {
    let tokens = cfg.video_tokens();
    let decoder = VaeDecoderConfig {
        latent_channels: 32,
        base_channels: 512,
        channel_div: vec![1, 2, 4],
        blocks_per_level: 2,
        out_channels: 3,
    };
    let stages = vec![
        Stage::new("maskgit_step", cfg.maskgit_steps, encoder_graph(&cfg.maskgit, tokens)),
        Stage::new(
            "cvivit_decoder",
            cfg.frames,
            vae_decoder_graph(&decoder, cfg.tokens_per_frame_edge * 2),
        ),
    ];
    Pipeline::new("Phenaki", Some(ModelId::Phenaki), stages)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn video_tokens_account_temporal_compression() {
        let cfg = PhenakiConfig::default();
        // 1 + ceil(10/2) = 6 token-frames of 256 tokens.
        assert_eq!(cfg.video_tokens(), 6 * 256);
    }

    #[test]
    fn maskgit_sequence_constant() {
        let p = pipeline(&PhenakiConfig::default());
        let s = &p.stages[0];
        let seqs: Vec<usize> = s
            .graph
            .attention_nodes()
            .filter_map(|n| n.op.attention_shape())
            .filter(|(_, k)| *k == mmg_graph::AttnKind::SpatialSelf)
            .map(|(sh, _)| sh.seq_q)
            .collect();
        assert!(!seqs.is_empty());
        assert!(seqs.windows(2).all(|w| w[0] == w[1]));
        assert_eq!(seqs[0], 1536);
    }

    #[test]
    fn params_in_published_range() {
        // Phenaki reports ~1.8B for the video model.
        let p = pipeline(&PhenakiConfig::default());
        let params = p.param_count() as f64 / 1e9;
        assert!((1.0..4.0).contains(&params), "params {params}B");
    }

    #[test]
    fn decoder_runs_per_frame() {
        let p = pipeline(&PhenakiConfig::default());
        assert_eq!(p.stages[1].repeats, 11);
    }
}
