//! The production text-to-image model (Section III includes one
//! industry-deployed latent-diffusion model "retrained on licensed data").
//!
//! The production model is convolution-heavy: a wide latent UNet at a
//! larger 96×96 latent with attention kept only at the two deepest levels
//! (high-resolution attention being too expensive to deploy), plus a
//! high-resolution decoder. This mirrors the Table II observation that the
//! production model sees the smallest Flash Attention gain (1.04x) —
//! attention is simply a small slice of its runtime.

use crate::blocks::{encoder_graph, unet_step_graph, vae_decoder_graph, VaeDecoderConfig};
use crate::suite::clip_text_config;
use crate::{ModelId, Pipeline, Stage, UNetConfig};

/// Production image model configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProdImageConfig {
    /// Output image edge (768).
    pub image_size: usize,
    /// VAE downsampling factor.
    pub vae_factor: usize,
    /// Denoising steps.
    pub steps: usize,
    /// UNet base channels.
    pub base_channels: usize,
}

impl Default for ProdImageConfig {
    fn default() -> Self {
        ProdImageConfig { image_size: 768, vae_factor: 8, steps: 40, base_channels: 384 }
    }
}

impl ProdImageConfig {
    /// Latent edge length.
    #[must_use]
    pub fn latent_res(&self) -> usize {
        self.image_size / self.vae_factor
    }

    /// The UNet: 3 res blocks per level, attention only at the two deepest
    /// resolutions.
    #[must_use]
    pub fn unet(&self) -> UNetConfig {
        let l = self.latent_res();
        UNetConfig {
            base_channels: self.base_channels,
            channel_mult: vec![1, 2, 4, 4],
            num_res_blocks: 3,
            attn_resolutions: vec![l / 4, l / 8],
            cross_attn_resolutions: vec![l / 4, l / 8],
            temporal_attn_resolutions: vec![],
            heads: 8,
            text_len: 77,
            text_dim: 768,
            in_channels: 4,
        }
    }
}

/// Builds the production-model pipeline.
#[must_use]
pub fn pipeline(cfg: &ProdImageConfig) -> Pipeline {
    let clip = clip_text_config();
    let vae = VaeDecoderConfig { base_channels: 512, ..VaeDecoderConfig::stable_diffusion() };
    let stages = vec![
        Stage::once("clip_encoder", encoder_graph(&clip, 77)),
        Stage::new("unet_step", cfg.steps, unet_step_graph(&cfg.unet(), cfg.latent_res(), 1))
            .denoising(),
        Stage::once("vae_decoder", vae_decoder_graph(&vae, cfg.latent_res())),
    ];
    Pipeline::new("ProdImage", Some(ModelId::ProdImage), stages)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmg_graph::OpCategory;

    #[test]
    fn latent_is_96() {
        assert_eq!(ProdImageConfig::default().latent_res(), 96);
    }

    #[test]
    fn attention_flops_fraction_is_small() {
        let cfg = ProdImageConfig::default();
        let g = unet_step_graph(&cfg.unet(), cfg.latent_res(), 1);
        let by = g.flops_by_category();
        let attn = by.iter().find(|(c, _)| *c == OpCategory::Attention).map_or(0, |(_, f)| *f);
        let frac = attn as f64 / g.total_flops() as f64;
        assert!(frac < 0.15, "attention fraction {frac}");
    }

    #[test]
    fn conv_dominates() {
        let cfg = ProdImageConfig::default();
        let g = unet_step_graph(&cfg.unet(), cfg.latent_res(), 1);
        let by = g.flops_by_category();
        let conv = by.iter().find(|(c, _)| *c == OpCategory::Conv).unwrap().1;
        assert!(conv as f64 / g.total_flops() as f64 > 0.5);
    }
}
