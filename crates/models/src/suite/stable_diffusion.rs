//! Stable Diffusion — the latent-diffusion representative.

use crate::blocks::{encoder_graph, unet_step_graph, vae_decoder_graph, VaeDecoderConfig};
use crate::suite::clip_text_config;
use crate::{ModelId, Pipeline, Stage, UNetConfig};

/// Stable Diffusion inference configuration (v1-style: 512×512 output,
/// 8× VAE downsampling, 50 denoising steps).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StableDiffusionConfig {
    /// Output image edge length.
    pub image_size: usize,
    /// VAE spatial downsampling factor.
    pub vae_factor: usize,
    /// Denoising steps.
    pub steps: usize,
    /// UNet base channels.
    pub base_channels: usize,
    /// Per-level channel multipliers.
    pub channel_mult: Vec<usize>,
    /// Residual blocks per level (Table I: 2).
    pub num_res_blocks: usize,
    /// Attention heads.
    pub heads: usize,
    /// Text conditioning length (CLIP: 77).
    pub text_len: usize,
}

impl Default for StableDiffusionConfig {
    fn default() -> Self {
        StableDiffusionConfig {
            image_size: 512,
            vae_factor: 8,
            steps: 50,
            base_channels: 320,
            channel_mult: vec![1, 2, 4, 4],
            num_res_blocks: 2,
            heads: 8,
            text_len: 77,
        }
    }
}

impl StableDiffusionConfig {
    /// Latent edge length for the configured image size.
    #[must_use]
    pub fn latent_res(&self) -> usize {
        self.image_size / self.vae_factor
    }

    /// The UNet configuration at the configured image size. Attention runs
    /// at the three highest-resolution levels (SD's CrossAttn blocks), so
    /// the attention resolutions track the latent size — this is what makes
    /// sequence length scale as `(image size)²` (Section V).
    #[must_use]
    pub fn unet(&self) -> UNetConfig {
        let l = self.latent_res();
        UNetConfig {
            base_channels: self.base_channels,
            channel_mult: self.channel_mult.clone(),
            num_res_blocks: self.num_res_blocks,
            attn_resolutions: vec![l, l / 2, l / 4],
            cross_attn_resolutions: vec![l, l / 2, l / 4],
            temporal_attn_resolutions: vec![],
            heads: self.heads,
            text_len: self.text_len,
            text_dim: 768,
            in_channels: 4,
        }
    }
}

/// Builds the Stable Diffusion pipeline: CLIP encode → UNet denoising loop
/// → VAE decode.
#[must_use]
pub fn pipeline(cfg: &StableDiffusionConfig) -> Pipeline {
    let clip = clip_text_config();
    let stages = vec![
        Stage::once("clip_encoder", encoder_graph(&clip, cfg.text_len)),
        Stage::new("unet_step", cfg.steps, unet_step_graph(&cfg.unet(), cfg.latent_res(), 1))
            .denoising(),
        Stage::once(
            "vae_decoder",
            vae_decoder_graph(&VaeDecoderConfig::stable_diffusion(), cfg.latent_res()),
        ),
    ];
    Pipeline::new("StableDiffusion", Some(ModelId::StableDiffusion), stages)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_latent_is_64() {
        assert_eq!(StableDiffusionConfig::default().latent_res(), 64);
    }

    #[test]
    fn total_params_near_1_45b() {
        // Table I: 1.45B for the full SD stack.
        let p = pipeline(&StableDiffusionConfig::default());
        let params = p.param_count() as f64 / 1e9;
        assert!((0.8..1.8).contains(&params), "params {params}B");
    }

    #[test]
    fn max_sequence_length_is_4096_at_512() {
        // Fig. 7: "sequence length of Stable Diffusion actually goes up to
        // 4096".
        let cfg = StableDiffusionConfig::default();
        let g = unet_step_graph(&cfg.unet(), cfg.latent_res(), 1);
        let max_seq = g
            .attention_nodes()
            .filter_map(|n| n.op.attention_shape())
            .map(|(s, _)| s.seq_q)
            .max()
            .unwrap();
        assert_eq!(max_seq, 4096);
    }

    #[test]
    fn sequence_scales_quadratically_with_image_size() {
        let seq_at = |img: usize| {
            let cfg = StableDiffusionConfig { image_size: img, ..Default::default() };
            let g = unet_step_graph(&cfg.unet(), cfg.latent_res(), 1);
            g.attention_nodes()
                .filter_map(|n| n.op.attention_shape())
                .map(|(s, _)| s.seq_q)
                .max()
                .unwrap()
        };
        assert_eq!(seq_at(512) / seq_at(256), 4);
        assert_eq!(seq_at(1024) / seq_at(512), 4);
    }

    #[test]
    fn unet_dominates_end_to_end_flops() {
        let p = pipeline(&StableDiffusionConfig::default());
        let unet = p.stages.iter().find(|s| s.name == "unet_step").unwrap();
        let unet_flops = unet.repeats as u64 * unet.graph.total_flops();
        assert!(unet_flops as f64 / p.total_flops() as f64 > 0.8);
    }
}
