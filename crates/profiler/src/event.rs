//! Profile events.

use std::sync::Arc;

use mmg_graph::{AttnKind, OpCategory};

/// One simulated kernel launch inside an operator.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelRecord {
    /// Kernel family name (`gemm`, `softmax`, …).
    pub kind: String,
    /// Full kernel label with shape.
    pub label: String,
    /// Modelled duration in seconds.
    pub time_s: f64,
    /// Compute component of the roofline time, seconds.
    pub compute_s: f64,
    /// Memory component of the roofline time, seconds.
    pub memory_s: f64,
    /// FLOPs executed.
    pub flops: u64,
    /// HBM bytes moved.
    pub hbm_bytes: u64,
    /// Wave-quantization idle SM-tile slots charged by this launch.
    pub wave_quant_idle_slots: u64,
    /// Modeled board draw while the kernel body ran, watts.
    pub draw_w: f64,
    /// Modeled energy of the launch, joules.
    pub energy_j: f64,
}

/// Attention-specific annotation on an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttnCallInfo {
    /// Role of the call.
    pub kind: AttnKind,
    /// Query sequence length.
    pub seq_q: usize,
    /// Key/value sequence length.
    pub seq_kv: usize,
    /// Effective batch.
    pub batch: usize,
    /// Head count.
    pub heads: usize,
}

/// One operator execution on the timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct OpEvent {
    /// Position in execution order.
    pub index: usize,
    /// Module path that launched the operator.
    pub path: String,
    /// Fig. 6 category.
    pub category: OpCategory,
    /// Total duration in seconds (sum of kernels).
    pub time_s: f64,
    /// FLOPs.
    pub flops: u64,
    /// HBM bytes.
    pub hbm_bytes: u64,
    /// Modeled energy in joules (sum of kernels, launch overhead at
    /// idle draw).
    pub energy_j: f64,
    /// Constituent kernels. Shared (`Arc`) with the operator-cost memo
    /// on replayed ops, so repeated structure (e.g. every step of a
    /// denoising loop) does not deep-clone the records per event.
    pub kernels: Arc<Vec<KernelRecord>>,
    /// Present when the operator is an attention call.
    pub attention: Option<AttnCallInfo>,
    /// Telemetry counter increments attributed to this operator (full
    /// metric name → delta), captured by the executor around the op.
    /// Shared with the memo entry's visible delta list on replay.
    pub counters: Arc<Vec<(String, u64)>>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_construction() {
        let ev = OpEvent {
            index: 0,
            path: "unet.attn".into(),
            category: OpCategory::Attention,
            time_s: 1e-3,
            flops: 100,
            hbm_bytes: 200,
            energy_j: 0.3,
            kernels: Arc::new(vec![]),
            counters: Arc::new(vec![]),
            attention: Some(AttnCallInfo {
                kind: AttnKind::SpatialSelf,
                seq_q: 64,
                seq_kv: 64,
                batch: 1,
                heads: 8,
            }),
        };
        assert_eq!(ev.attention.unwrap().seq_q, 64);
    }
}
