//! The performance-plane executor.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use mmg_attn::AttnImpl;
use mmg_gpu::{DeviceSpec, HierarchyStats, TimingEngine};
use mmg_graph::optimize::{self, OptConfig, OptStats};
use mmg_graph::{lower::lower_on, AttnKind, Graph};
use mmg_kernels::access::{AttentionKernel, VideoAttentionAccess};
use mmg_kernels::conv::ConvAlgorithm;
use mmg_telemetry::{Counter, Registry, SpanRecord};

use crate::memo::{synthetic_op_deltas, CostMemo, MemoKey, OpCostEntry};
use crate::{AttnCallInfo, KernelRecord, ModuleHook, OpEvent, Timeline};

/// Cached counter handles for one replayed memo entry, keyed by the
/// entry's `Arc` address (the held `Arc` keeps the address alive).
type ReplayHandles = HashMap<usize, (Arc<OpCostEntry>, Vec<Counter>)>;

/// Walks graphs and produces timelines.
///
/// # Example
///
/// ```
/// use mmg_attn::AttnImpl;
/// use mmg_gpu::DeviceSpec;
/// use mmg_graph::{Graph, Op};
/// use mmg_profiler::Profiler;
///
/// let mut g = Graph::new();
/// g.push("ffn", Op::Linear { tokens: 256, in_features: 1024, out_features: 4096 });
/// let profiler = Profiler::new(DeviceSpec::a100_80gb(), AttnImpl::Flash);
/// let timeline = profiler.profile(&g);
/// assert!(timeline.total_time_s() > 0.0);
/// ```
#[derive(Debug)]
pub struct Profiler {
    engine: TimingEngine,
    attn: AttnImpl,
    elem_bytes: usize,
    conv_algo: ConvAlgorithm,
    /// Optimization passes applied to every op's lowered kernel stream.
    opt: OptConfig,
    registry: Registry,
    /// Max sector probes per attention op fed to the cache simulator;
    /// 0 disables per-op cache simulation.
    cache_probes: usize,
    /// Shared operator-cost memo; `None` profiles every op from scratch.
    memo: Option<Arc<CostMemo>>,
    /// Hash of the device spec, precomputed for memo keys.
    device_fingerprint: u64,
    /// Handle to the engine's `gpu_kernel_time_us` histogram, so memo
    /// replay can observe stored kernel times without the engine.
    kernel_time_us: mmg_telemetry::Histogram,
    /// Handle to the engine's `gpu_power_w` gauge; replay restores the
    /// last-launch draw a cold execution would have left.
    power_w: mmg_telemetry::Gauge,
    /// Per-entry counter handles for memo replay, keyed by the entry's
    /// `Arc` address (the cached `Arc` keeps the address alive). Lets a
    /// hit bump its counters lock-free instead of re-parsing metric
    /// names under the registry lock on every replay. Bounded by the
    /// number of distinct entries this profiler replays.
    replay_handles: Mutex<ReplayHandles>,
}

impl Profiler {
    /// Creates a profiler for a device using the given attention
    /// implementation and FP16 activations, recording telemetry to the
    /// global registry.
    #[must_use]
    pub fn new(spec: DeviceSpec, attn: AttnImpl) -> Self {
        Profiler::with_registry(spec, attn, &mmg_telemetry::global())
    }

    /// Like [`Profiler::new`], recording telemetry to a specific
    /// registry.
    #[must_use]
    pub fn with_registry(spec: DeviceSpec, attn: AttnImpl, registry: &Registry) -> Self {
        let device_fingerprint = spec.fingerprint();
        Profiler {
            engine: TimingEngine::with_registry(spec, registry),
            attn,
            elem_bytes: 2,
            conv_algo: ConvAlgorithm::ImplicitGemm,
            opt: OptConfig::default(),
            registry: registry.clone(),
            cache_probes: 0,
            memo: None,
            device_fingerprint,
            kernel_time_us: registry
                .histogram("gpu_kernel_time_us", &mmg_telemetry::time_buckets_us()),
            power_w: registry.gauge("gpu_power_w"),
            replay_handles: Mutex::new(HashMap::new()),
        }
    }

    /// Overrides the element width (e.g. 4 for FP32 studies).
    #[must_use]
    pub fn with_elem_bytes(mut self, bytes: usize) -> Self {
        self.elem_bytes = bytes;
        self
    }

    /// Selects the convolution kernel algorithm (default implicit GEMM).
    #[must_use]
    pub fn with_conv_algorithm(mut self, algo: ConvAlgorithm) -> Self {
        self.conv_algo = algo;
        self
    }

    /// Enables optimization passes ([`mmg_graph::optimize`]) over every
    /// op's lowered kernel stream: epilogue fusion, element-width
    /// rewrites, and CUDA-graph launch elision. The config participates
    /// in the memo key, so optimized and eager profilers sharing a memo
    /// never replay each other's entries.
    #[must_use]
    pub fn with_opt_config(mut self, opt: OptConfig) -> Self {
        self.opt = opt;
        self
    }

    /// Enables per-op cache simulation for attention operators: each
    /// attention op replays up to `max_probes` sampled sector probes of
    /// its GEMM and softmax streams through a fresh L1/L2 hierarchy, so
    /// `gpu_l1_*`/`gpu_l2_*` counters (and per-op counter deltas)
    /// reflect the op's locality. Off by default — it adds simulation
    /// time proportional to `max_probes` per attention op.
    #[must_use]
    pub fn with_cache_sim(mut self, max_probes: usize) -> Self {
        self.cache_probes = max_probes;
        self
    }

    /// Attaches a shared operator-cost memo. Ops whose canonical
    /// [`MemoKey`] has been profiled before — by this profiler or any
    /// other sharing the memo — replay their stored cost and telemetry
    /// instead of re-running lowering, roofline timing, and cache
    /// simulation. Replay leaves the registry (counters, histogram, and
    /// span attribution) identical to a cold computation, so memoized
    /// and unmemoized runs produce byte-identical artifacts.
    #[must_use]
    pub fn with_memo(mut self, memo: Arc<CostMemo>) -> Self {
        self.memo = Some(memo);
        self
    }

    /// The attention implementation in use.
    #[must_use]
    pub fn attn_impl(&self) -> AttnImpl {
        self.attn
    }

    /// The device spec this profiler simulates.
    #[must_use]
    pub fn spec(&self) -> &DeviceSpec {
        self.engine.spec()
    }

    /// Whether the CUDA-graph launch-elision pass is enabled.
    #[must_use]
    pub fn captures_graphs(&self) -> bool {
        self.opt.graph_capture
    }

    /// A copy of this profiler with the CUDA-graph capture pass
    /// disabled, sharing the same registry, memo, and device. Capture
    /// only holds for static-shape kernel sequences (a denoising step
    /// replays identical kernels every iteration); autoregressive
    /// decode and MaskGIT resampling change shape every step, so
    /// pipeline-level callers profile those stages through this copy.
    /// The weakened [`OptConfig`] participates in memo keys, so the two
    /// profilers never replay each other's entries.
    #[must_use]
    pub fn without_graph_capture(&self) -> Profiler {
        Profiler {
            engine: self.engine.clone(),
            attn: self.attn,
            elem_bytes: self.elem_bytes,
            conv_algo: self.conv_algo,
            opt: OptConfig { graph_capture: false, ..self.opt },
            registry: self.registry.clone(),
            cache_probes: self.cache_probes,
            memo: self.memo.clone(),
            device_fingerprint: self.device_fingerprint,
            kernel_time_us: self.kernel_time_us.clone(),
            power_w: self.power_w.clone(),
            replay_handles: Mutex::new(HashMap::new()),
        }
    }

    /// Profiles a graph into a timeline.
    #[must_use]
    pub fn profile(&self, graph: &Graph) -> Timeline {
        self.profile_with_hooks(graph, &mut [])
    }

    /// Profiles a graph, delivering each event to the hooks as it is
    /// produced — the analogue of the paper's forward-function hooks.
    #[must_use]
    pub fn profile_with_hooks(
        &self,
        graph: &Graph,
        hooks: &mut [&mut dyn ModuleHook],
    ) -> Timeline {
        let mut events = Vec::with_capacity(graph.len());
        for (index, node) in graph.nodes().iter().enumerate() {
            let attn_shape = node.op.attention_shape();
            let attention = attn_shape.as_ref().map(|(shape, kind)| AttnCallInfo {
                kind: *kind,
                seq_q: shape.seq_q,
                seq_kv: shape.seq_kv,
                batch: shape.batch,
                heads: shape.heads,
            });
            let key = self.memo.as_ref().map(|_| {
                MemoKey::for_op(
                    &node.op,
                    self.attn,
                    self.elem_bytes,
                    self.conv_algo,
                    self.cache_probes,
                    self.opt,
                    self.device_fingerprint,
                )
            });
            if let (Some(memo), Some(key)) = (self.memo.as_deref(), key.as_ref()) {
                if let Some(entry) = memo.lookup(key) {
                    let event = self.replay_op(index, &node.path, &node.op, &entry, attention);
                    for h in hooks.iter_mut() {
                        h.on_op(&event);
                    }
                    events.push(event);
                    continue;
                }
            }
            let snap = self.registry.counters_snapshot();
            let span = self.registry.span(&node.path);
            let mut kernels = lower_on(
                &node.op,
                self.attn,
                self.elem_bytes,
                self.conv_algo,
                self.engine.spec().sm_count as usize,
            );
            let opt_stats =
                optimize::apply(&mut kernels, &self.opt, self.engine.spec());
            self.record_opt_stats(opt_stats);
            let mut records = Vec::with_capacity(kernels.len());
            let mut time_s = 0.0;
            let mut energy_j = 0.0;
            let mut flops = 0u64;
            let mut hbm = 0u64;
            for k in &kernels {
                let kt = if k.captured {
                    self.engine.kernel_time_captured(&k.cost)
                } else {
                    self.engine.kernel_time(&k.cost)
                };
                mmg_kernels::record_kernel(&self.registry, k, &kt);
                time_s += kt.total_s;
                energy_j += kt.energy_j;
                flops += k.cost.flops;
                hbm += k.cost.hbm_bytes;
                records.push(KernelRecord {
                    kind: k.kind.to_string(),
                    label: k.label.clone(),
                    time_s: kt.total_s,
                    compute_s: kt.compute_s,
                    memory_s: kt.memory_s,
                    flops: k.cost.flops,
                    hbm_bytes: k.cost.hbm_bytes,
                    wave_quant_idle_slots: k.wave_quant_idle_slots,
                    draw_w: kt.draw_w,
                    energy_j: kt.energy_j,
                });
            }
            let mut cache_stats = None;
            if self.cache_probes > 0 {
                if let Some((shape, kind)) = &attn_shape {
                    cache_stats = Some(self.simulate_attention_caches(shape, *kind));
                }
            }
            let records = Arc::new(records);
            if let (Some(memo), Some(key)) = (self.memo.as_deref(), key) {
                memo.store(
                    key,
                    OpCostEntry::new(
                        time_s,
                        energy_j,
                        flops,
                        hbm,
                        Arc::clone(&records),
                        synthetic_op_deltas(&records, cache_stats, opt_stats),
                    ),
                );
            }
            drop(span);
            let event = OpEvent {
                index,
                path: node.path.clone(),
                category: node.op.category(),
                time_s,
                flops,
                hbm_bytes: hbm,
                energy_j,
                kernels: records,
                attention,
                counters: Arc::new(snap.delta_since(&self.registry)),
            };
            for h in hooks.iter_mut() {
                h.on_op(&event);
            }
            events.push(event);
        }
        Timeline::new(events)
    }

    /// Records one op's optimization-pass telemetry. Counters are
    /// created only on a non-zero charge (mirrored by
    /// `synthetic_op_deltas`, so memo replay stays byte-identical).
    fn record_opt_stats(&self, stats: OptStats) {
        if stats.kernels_fused > 0 {
            self.registry.counter("kernel_fused_total").add(stats.kernels_fused);
        }
        if stats.launches_elided > 0 {
            self.registry.counter("kernel_launches_elided_total").add(stats.launches_elided);
        }
        if stats.hbm_bytes_saved > 0 {
            self.registry
                .counter("kernel_opt_hbm_bytes_saved_total")
                .add(stats.hbm_bytes_saved);
        }
    }

    /// Memo-hit fast path: reproduces every externally observable effect
    /// of executing `op` — counters, the kernel-time histogram, a span
    /// record with the op's counter attribution, and the [`OpEvent`] —
    /// from the stored entry, without lowering, roofline evaluation, or
    /// cache simulation.
    fn replay_op(
        &self,
        index: usize,
        path: &str,
        op: &mmg_graph::Op,
        entry: &Arc<OpCostEntry>,
        attention: Option<AttnCallInfo>,
    ) -> OpEvent {
        let wall = Instant::now();
        let start_us = self.registry.epoch_us();
        self.apply_replay_deltas(entry);
        for k in entry.records.iter() {
            self.kernel_time_us.observe(k.time_s * 1e6);
        }
        if let Some(last) = entry.records.last() {
            self.power_w.set(last.draw_w);
        }
        self.registry.record_span(SpanRecord {
            path: mmg_telemetry::nested_span_path(path),
            start_us,
            dur_us: wall.elapsed().as_secs_f64() * 1e6,
            counter_deltas: Arc::clone(&entry.visible),
        });
        OpEvent {
            index,
            path: path.to_string(),
            category: op.category(),
            time_s: entry.time_s,
            flops: entry.flops,
            hbm_bytes: entry.hbm_bytes,
            energy_j: entry.energy_j,
            kernels: Arc::clone(&entry.records),
            attention,
            counters: Arc::clone(&entry.visible),
        }
    }

    /// Bumps the registry counters for one replayed entry. The first
    /// replay of an entry resolves every counter name — including zero
    /// deltas, so counters the live path registers at zero get created —
    /// to an atomic handle; subsequent replays add through the cached
    /// handles without touching the registry lock or parsing names.
    fn apply_replay_deltas(&self, entry: &Arc<OpCostEntry>) {
        let mut cache = self.replay_handles.lock().expect("replay handle cache poisoned");
        let (_, handles) = cache
            .entry(Arc::as_ptr(entry) as usize)
            .or_insert_with(|| {
                let handles = entry
                    .counter_deltas
                    .iter()
                    .map(|(full, _)| self.registry.counter_handle(full))
                    .collect();
                (Arc::clone(entry), handles)
            });
        for (c, (_, delta)) in handles.iter().zip(&entry.counter_deltas) {
            if *delta > 0 {
                c.add(*delta);
            }
        }
    }

    /// Replays sampled GEMM and softmax sector streams for one attention
    /// call through a fresh L1/L2 hierarchy wired to this profiler's
    /// registry. The call's sequence geometry is mapped back onto the
    /// video activation layout: temporal attention attends across frames
    /// per pixel (`seq = frames`, `batch = H·W`), spatial attention
    /// attends across pixels per frame (`seq = H·W`, `batch = frames`).
    fn simulate_attention_caches(
        &self,
        shape: &mmg_attn::AttentionShape,
        kind: AttnKind,
    ) -> HierarchyStats {
        let temporal = kind == AttnKind::Temporal;
        let channels = (shape.heads * shape.head_dim).max(1);
        let access = if temporal {
            VideoAttentionAccess {
                frames: shape.seq_q.max(1),
                channels,
                hw: shape.batch.max(1),
                elem_bytes: self.elem_bytes,
            }
        } else {
            VideoAttentionAccess {
                frames: shape.batch.max(1),
                channels,
                hw: shape.seq_q.max(1),
                elem_bytes: self.elem_bytes,
            }
        };
        let spec = self.engine.spec();
        let mut total = HierarchyStats::default();
        for kernel in [AttentionKernel::Gemm, AttentionKernel::Softmax] {
            let stats = access.simulate_with_registry(
                kernel,
                temporal,
                spec,
                self.cache_probes,
                &self.registry,
            );
            total.l1.accesses += stats.l1.accesses;
            total.l1.hits += stats.l1.hits;
            total.l2.accesses += stats.l2.accesses;
            total.l2.hits += stats.l2.hits;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmg_attn::AttentionShape;
    use mmg_graph::{AttnKind, Op, OpCategory};

    fn attn_graph() -> Graph {
        let mut g = Graph::new();
        g.push(
            "blk.attn",
            Op::Attention {
                shape: AttentionShape::self_attn(2, 8, 4096, 40),
                kind: AttnKind::SpatialSelf,
            },
        );
        g.push("blk.ffn", Op::Linear { tokens: 8192, in_features: 320, out_features: 1280 });
        g
    }

    #[test]
    fn profile_produces_event_per_node() {
        let t = Profiler::new(DeviceSpec::a100_80gb(), AttnImpl::Flash).profile(&attn_graph());
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.events()[0].category, OpCategory::Attention);
        assert!(t.events()[0].attention.is_some());
        assert!(t.events()[1].attention.is_none());
    }

    #[test]
    fn baseline_slower_than_flash_on_attention() {
        let g = attn_graph();
        let base = Profiler::new(DeviceSpec::a100_80gb(), AttnImpl::Baseline).profile(&g);
        let flash = Profiler::new(DeviceSpec::a100_80gb(), AttnImpl::Flash).profile(&g);
        assert!(base.total_time_s() > flash.total_time_s());
        // The linear layer is unchanged.
        assert!((base.events()[1].time_s - flash.events()[1].time_s).abs() < 1e-12);
    }

    #[test]
    fn kernel_records_sum_to_event_time() {
        let t = Profiler::new(DeviceSpec::a100_80gb(), AttnImpl::Baseline).profile(&attn_graph());
        for ev in t.events() {
            let s: f64 = ev.kernels.iter().map(|k| k.time_s).sum();
            assert!((s - ev.time_s).abs() < 1e-12);
        }
    }

    #[test]
    fn op_events_carry_counter_deltas() {
        let registry = mmg_telemetry::Registry::new();
        let t = Profiler::with_registry(DeviceSpec::a100_80gb(), AttnImpl::Flash, &registry)
            .profile(&attn_graph());
        for ev in t.events() {
            let launches = ev
                .counters
                .iter()
                .find(|(name, _)| name == "gpu_kernel_launches_total")
                .map(|(_, delta)| *delta)
                .unwrap_or(0);
            assert_eq!(launches as usize, ev.kernels.len(), "op {}", ev.path);
            let flops = ev
                .counters
                .iter()
                .find(|(name, _)| name == "gpu_flops_total")
                .map(|(_, delta)| *delta)
                .unwrap_or(0);
            assert_eq!(flops, ev.flops, "op {}", ev.path);
        }
        // Spans were recorded per op with the same attribution.
        let spans = registry.finished_spans();
        assert_eq!(spans.len(), t.events().len());
        assert_eq!(spans[0].path, "blk.attn");
    }

    #[test]
    fn cache_sim_populates_l1_counters_for_attention() {
        let registry = mmg_telemetry::Registry::new();
        let t = Profiler::with_registry(DeviceSpec::a100_80gb(), AttnImpl::Flash, &registry)
            .with_cache_sim(20_000)
            .profile(&attn_graph());
        assert!(registry.counter("gpu_l1_accesses_total").get() > 0);
        assert!(registry.counter("gpu_l1_hits_total").get() > 0);
        // Only the attention op carries cache deltas.
        let attn_ev = &t.events()[0];
        assert!(attn_ev
            .counters
            .iter()
            .any(|(name, delta)| name == "gpu_l1_accesses_total" && *delta > 0));
        let linear_ev = &t.events()[1];
        assert!(!linear_ev
            .counters
            .iter()
            .any(|(name, _)| name == "gpu_l1_accesses_total"));
    }

    #[test]
    fn opt_passes_speed_up_eager_attention_and_record_counters() {
        let g = attn_graph();
        let eager_reg = mmg_telemetry::Registry::new();
        let eager = Profiler::with_registry(DeviceSpec::a100_80gb(), AttnImpl::Baseline, &eager_reg)
            .profile(&g);
        let opt_reg = mmg_telemetry::Registry::new();
        let opt = Profiler::with_registry(DeviceSpec::a100_80gb(), AttnImpl::Baseline, &opt_reg)
            .with_opt_config(OptConfig::all())
            .profile(&g);
        assert!(opt.total_time_s() < eager.total_time_s());
        assert!(opt_reg.counter("kernel_fused_total").get() > 0);
        assert!(opt_reg.counter("kernel_launches_elided_total").get() > 0);
        assert!(opt_reg.counter("kernel_opt_hbm_bytes_saved_total").get() > 0);
        // The eager run never creates the pass counters.
        assert!(!eager_reg.render_prometheus().contains("kernel_fused_total"));
    }

    #[test]
    fn memo_separates_opt_configs() {
        let g = attn_graph();
        let memo = Arc::new(CostMemo::new());
        let registry = mmg_telemetry::Registry::new();
        let eager = Profiler::with_registry(DeviceSpec::a100_80gb(), AttnImpl::Baseline, &registry)
            .with_memo(Arc::clone(&memo))
            .profile(&g);
        let opt = Profiler::with_registry(DeviceSpec::a100_80gb(), AttnImpl::Baseline, &registry)
            .with_opt_config(OptConfig::all())
            .with_memo(Arc::clone(&memo))
            .profile(&g);
        // The optimized profiler must miss on every op (different keys),
        // not replay the eager entries.
        assert!(opt.total_time_s() < eager.total_time_s());
        assert_eq!(memo.hits(), 0);
    }

    #[test]
    fn fp32_is_slower_than_fp16_for_memory_bound() {
        let mut g = Graph::new();
        g.push("n", Op::LayerNorm { rows: 1 << 16, cols: 1024 });
        let p16 = Profiler::new(DeviceSpec::a100_80gb(), AttnImpl::Flash);
        let p32 = Profiler::new(DeviceSpec::a100_80gb(), AttnImpl::Flash).with_elem_bytes(4);
        assert!(p32.profile(&g).total_time_s() > p16.profile(&g).total_time_s());
    }
}
