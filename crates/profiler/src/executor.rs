//! The performance-plane executor.

use mmg_attn::AttnImpl;
use mmg_gpu::{DeviceSpec, TimingEngine};
use mmg_graph::{lower::lower_with, Graph};
use mmg_kernels::conv::ConvAlgorithm;

use crate::{AttnCallInfo, KernelRecord, ModuleHook, OpEvent, Timeline};

/// Walks graphs and produces timelines.
///
/// # Example
///
/// ```
/// use mmg_attn::AttnImpl;
/// use mmg_gpu::DeviceSpec;
/// use mmg_graph::{Graph, Op};
/// use mmg_profiler::Profiler;
///
/// let mut g = Graph::new();
/// g.push("ffn", Op::Linear { tokens: 256, in_features: 1024, out_features: 4096 });
/// let profiler = Profiler::new(DeviceSpec::a100_80gb(), AttnImpl::Flash);
/// let timeline = profiler.profile(&g);
/// assert!(timeline.total_time_s() > 0.0);
/// ```
#[derive(Debug)]
pub struct Profiler {
    engine: TimingEngine,
    attn: AttnImpl,
    elem_bytes: usize,
    conv_algo: ConvAlgorithm,
}

impl Profiler {
    /// Creates a profiler for a device using the given attention
    /// implementation and FP16 activations.
    #[must_use]
    pub fn new(spec: DeviceSpec, attn: AttnImpl) -> Self {
        Profiler {
            engine: TimingEngine::new(spec),
            attn,
            elem_bytes: 2,
            conv_algo: ConvAlgorithm::ImplicitGemm,
        }
    }

    /// Overrides the element width (e.g. 4 for FP32 studies).
    #[must_use]
    pub fn with_elem_bytes(mut self, bytes: usize) -> Self {
        self.elem_bytes = bytes;
        self
    }

    /// Selects the convolution kernel algorithm (default implicit GEMM).
    #[must_use]
    pub fn with_conv_algorithm(mut self, algo: ConvAlgorithm) -> Self {
        self.conv_algo = algo;
        self
    }

    /// The attention implementation in use.
    #[must_use]
    pub fn attn_impl(&self) -> AttnImpl {
        self.attn
    }

    /// Profiles a graph into a timeline.
    #[must_use]
    pub fn profile(&self, graph: &Graph) -> Timeline {
        self.profile_with_hooks(graph, &mut [])
    }

    /// Profiles a graph, delivering each event to the hooks as it is
    /// produced — the analogue of the paper's forward-function hooks.
    #[must_use]
    pub fn profile_with_hooks(
        &self,
        graph: &Graph,
        hooks: &mut [&mut dyn ModuleHook],
    ) -> Timeline {
        let mut events = Vec::with_capacity(graph.len());
        for (index, node) in graph.nodes().iter().enumerate() {
            let kernels = lower_with(&node.op, self.attn, self.elem_bytes, self.conv_algo);
            let mut records = Vec::with_capacity(kernels.len());
            let mut time_s = 0.0;
            let mut flops = 0u64;
            let mut hbm = 0u64;
            for k in &kernels {
                let kt = self.engine.kernel_time(&k.cost);
                time_s += kt.total_s;
                flops += k.cost.flops;
                hbm += k.cost.hbm_bytes;
                records.push(KernelRecord {
                    kind: k.kind.to_string(),
                    label: k.label.clone(),
                    time_s: kt.total_s,
                    compute_s: kt.compute_s,
                    memory_s: kt.memory_s,
                    flops: k.cost.flops,
                    hbm_bytes: k.cost.hbm_bytes,
                });
            }
            let attention = node.op.attention_shape().map(|(shape, kind)| AttnCallInfo {
                kind,
                seq_q: shape.seq_q,
                seq_kv: shape.seq_kv,
                batch: shape.batch,
                heads: shape.heads,
            });
            let event = OpEvent {
                index,
                path: node.path.clone(),
                category: node.op.category(),
                time_s,
                flops,
                hbm_bytes: hbm,
                kernels: records,
                attention,
            };
            for h in hooks.iter_mut() {
                h.on_op(&event);
            }
            events.push(event);
        }
        Timeline::new(events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmg_attn::AttentionShape;
    use mmg_graph::{AttnKind, Op, OpCategory};

    fn attn_graph() -> Graph {
        let mut g = Graph::new();
        g.push(
            "blk.attn",
            Op::Attention {
                shape: AttentionShape::self_attn(2, 8, 4096, 40),
                kind: AttnKind::SpatialSelf,
            },
        );
        g.push("blk.ffn", Op::Linear { tokens: 8192, in_features: 320, out_features: 1280 });
        g
    }

    #[test]
    fn profile_produces_event_per_node() {
        let t = Profiler::new(DeviceSpec::a100_80gb(), AttnImpl::Flash).profile(&attn_graph());
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.events()[0].category, OpCategory::Attention);
        assert!(t.events()[0].attention.is_some());
        assert!(t.events()[1].attention.is_none());
    }

    #[test]
    fn baseline_slower_than_flash_on_attention() {
        let g = attn_graph();
        let base = Profiler::new(DeviceSpec::a100_80gb(), AttnImpl::Baseline).profile(&g);
        let flash = Profiler::new(DeviceSpec::a100_80gb(), AttnImpl::Flash).profile(&g);
        assert!(base.total_time_s() > flash.total_time_s());
        // The linear layer is unchanged.
        assert!((base.events()[1].time_s - flash.events()[1].time_s).abs() < 1e-12);
    }

    #[test]
    fn kernel_records_sum_to_event_time() {
        let t = Profiler::new(DeviceSpec::a100_80gb(), AttnImpl::Baseline).profile(&attn_graph());
        for ev in t.events() {
            let s: f64 = ev.kernels.iter().map(|k| k.time_s).sum();
            assert!((s - ev.time_s).abs() < 1e-12);
        }
    }

    #[test]
    fn fp32_is_slower_than_fp16_for_memory_bound() {
        let mut g = Graph::new();
        g.push("n", Op::LayerNorm { rows: 1 << 16, cols: 1024 });
        let p16 = Profiler::new(DeviceSpec::a100_80gb(), AttnImpl::Flash);
        let p32 = Profiler::new(DeviceSpec::a100_80gb(), AttnImpl::Flash).with_elem_bytes(4);
        assert!(p32.profile(&g).total_time_s() > p16.profile(&g).total_time_s());
    }
}
