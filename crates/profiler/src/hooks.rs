//! Module hooks — the analogue of the paper's forward-function hooks.

use std::collections::BTreeMap;

use crate::OpEvent;

/// Observes events as the profiler produces them.
///
/// The paper "develop\[s] a profiling framework to automate this process,
/// via inserting hooks into the forward functions of each module"; this
/// trait is that extension point in our executor.
pub trait ModuleHook {
    /// Called once per operator execution, in order.
    fn on_op(&mut self, event: &OpEvent);
}

/// A hook that counts operator executions and time per module-path prefix.
///
/// # Example
///
/// ```
/// use mmg_attn::AttnImpl;
/// use mmg_gpu::DeviceSpec;
/// use mmg_graph::{Graph, Op};
/// use mmg_profiler::{CountingHook, ModuleHook, Profiler};
///
/// let mut g = Graph::new();
/// g.push("unet.down.ffn", Op::Linear { tokens: 8, in_features: 8, out_features: 8 });
/// g.push("unet.up.ffn", Op::Linear { tokens: 8, in_features: 8, out_features: 8 });
///
/// let mut hook = CountingHook::with_prefix_depth(2);
/// let profiler = Profiler::new(DeviceSpec::a100_80gb(), AttnImpl::Flash);
/// let _ = profiler.profile_with_hooks(&g, &mut [&mut hook]);
/// assert_eq!(hook.count("unet.down"), 1);
/// ```
#[derive(Debug, Default)]
pub struct CountingHook {
    prefix_depth: usize,
    counts: BTreeMap<String, u64>,
    times: BTreeMap<String, f64>,
}

impl CountingHook {
    /// Aggregates by the first `depth` dotted path components (0 = full
    /// path).
    #[must_use]
    pub fn with_prefix_depth(depth: usize) -> Self {
        CountingHook { prefix_depth: depth, ..Default::default() }
    }

    fn key(&self, path: &str) -> String {
        if self.prefix_depth == 0 {
            return path.to_owned();
        }
        path.split('.').take(self.prefix_depth).collect::<Vec<_>>().join(".")
    }

    /// Executions observed under a prefix.
    #[must_use]
    pub fn count(&self, prefix: &str) -> u64 {
        self.counts.get(prefix).copied().unwrap_or(0)
    }

    /// Seconds observed under a prefix.
    #[must_use]
    pub fn time_s(&self, prefix: &str) -> f64 {
        self.times.get(prefix).copied().unwrap_or(0.0)
    }

    /// All `(prefix, count)` pairs.
    #[must_use]
    pub fn counts(&self) -> &BTreeMap<String, u64> {
        &self.counts
    }
}

impl ModuleHook for CountingHook {
    fn on_op(&mut self, event: &OpEvent) {
        let key = self.key(&event.path);
        *self.counts.entry(key.clone()).or_insert(0) += 1;
        *self.times.entry(key).or_insert(0.0) += event.time_s;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmg_graph::OpCategory;

    fn ev(path: &str, t: f64) -> OpEvent {
        OpEvent {
            index: 0,
            path: path.into(),
            category: OpCategory::Linear,
            time_s: t,
            flops: 0,
            hbm_bytes: 0,
            energy_j: 0.0,
            kernels: std::sync::Arc::new(vec![]),
            counters: std::sync::Arc::new(vec![]),
            attention: None,
        }
    }

    #[test]
    fn full_path_counting() {
        let mut h = CountingHook::default();
        h.on_op(&ev("a.b.c", 1.0));
        h.on_op(&ev("a.b.c", 2.0));
        assert_eq!(h.count("a.b.c"), 2);
        assert_eq!(h.time_s("a.b.c"), 3.0);
    }

    #[test]
    fn prefix_aggregation() {
        let mut h = CountingHook::with_prefix_depth(1);
        h.on_op(&ev("unet.down.attn", 1.0));
        h.on_op(&ev("unet.up.conv", 1.0));
        h.on_op(&ev("vae.decoder", 1.0));
        assert_eq!(h.count("unet"), 2);
        assert_eq!(h.count("vae"), 1);
        assert_eq!(h.count("missing"), 0);
    }
}
