//! # mmg-profiler
//!
//! The measurement framework of the suite — the analogue of the paper's
//! PyTorch-Profiler-plus-hooks tooling (Section III, *Tools*):
//!
//! * [`Profiler`] walks a graph, lowers each operator to kernels, times
//!   them on the simulated device, and emits a [`Timeline`] of
//!   [`OpEvent`]s annotated with the module path that launched them —
//!   the same "link GPU kernels to their corresponding annotation"
//!   methodology the paper describes.
//! * [`ModuleHook`]s observe events as they are produced, mirroring the
//!   forward-function hooks the paper inserts.
//! * [`seqlen`] extracts the per-attention-call sequence-length trace
//!   (Fig. 7) and its distribution (Fig. 8).
//! * [`report`] renders operator breakdowns as ASCII tables and
//!   serializable JSON reports (Fig. 6, Table II).
//! * [`trace`] exports timelines in the Chrome Trace Event Format for
//!   `chrome://tracing` / Perfetto.

#![deny(missing_docs)]

mod event;
mod executor;
mod hooks;
pub mod memo;
pub mod report;
pub mod seqlen;
mod timeline;
pub mod trace;

pub use event::{AttnCallInfo, KernelRecord, OpEvent};
pub use executor::Profiler;
pub use hooks::{CountingHook, ModuleHook};
pub use memo::{CostMemo, MemoKey, OpCostEntry};
pub use timeline::{CategoryBreakdown, Timeline};
