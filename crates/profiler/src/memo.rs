//! Memoized operator costs.
//!
//! Generative pipelines are dominated by *repeated* structure — a 50-step
//! denoising loop evaluates the same UNet kernel set every step, and the
//! paper's sweeps re-profile near-identical graphs point after point. A
//! [`CostMemo`] lets every profiler sharing it pay the roofline /
//! wave-quantization / cache-simulation cost once per *distinct* operator
//! configuration:
//!
//! - The [`MemoKey`] canonicalizes everything a cost depends on: the
//!   fully-shaped [`Op`], the attention implementation (only for
//!   attention ops), the element width, the convolution algorithm (only
//!   for convolutions), the cache-simulation probe budget (only for
//!   attention ops), and the [device fingerprint]
//!   (mmg_gpu::DeviceSpec::fingerprint).
//! - The [`OpCostEntry`] stores the op's timeline contribution *and* the
//!   exact telemetry counter deltas a live execution produces, so a memo
//!   hit can replay them and leave the registry bit-identical to a cold
//!   run — the property test in `tests/proptest_memo.rs` holds the two
//!   paths to byte equality.
//!
//! The map itself is a [`ShardedLru`], safe to share across the worker
//! threads of a parallel experiment sweep.

use std::collections::BTreeMap;
use std::sync::Arc;

use mmg_attn::AttnImpl;
use mmg_gpu::{HierarchyStats, ShardedLru};
use mmg_graph::optimize::{OptConfig, OptStats};
use mmg_graph::Op;
use mmg_kernels::conv::ConvAlgorithm;

use crate::KernelRecord;

/// Canonical identity of one operator-cost evaluation.
///
/// Fields that cannot influence an op's lowering are normalized away
/// (e.g. the attention implementation of a `Linear` op is `None`), which
/// is what lets the baseline and flash profilers of a speedup comparison
/// share every non-attention entry.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MemoKey {
    /// The fully-shaped operator.
    pub op: Op,
    /// Attention implementation; `None` for non-attention ops.
    pub attn: Option<AttnImpl>,
    /// Activation element width in bytes.
    pub elem_bytes: usize,
    /// Convolution algorithm; `None` for non-convolution ops.
    pub conv_algo: Option<ConvAlgorithm>,
    /// Cache-simulation probe budget; 0 for non-attention ops or when
    /// cache simulation is disabled.
    pub cache_probes: usize,
    /// Optimization passes rewriting the lowered kernel stream. The
    /// identity config and any enabled pass produce different kernels,
    /// so they memoize separately.
    pub opt: OptConfig,
    /// [`mmg_gpu::DeviceSpec::fingerprint`] of the simulated device.
    pub device_fingerprint: u64,
}

impl MemoKey {
    /// Builds the key for one op under a profiler's configuration,
    /// normalizing away the knobs that cannot affect this op.
    #[must_use]
    pub fn for_op(
        op: &Op,
        attn: AttnImpl,
        elem_bytes: usize,
        conv_algo: ConvAlgorithm,
        cache_probes: usize,
        opt: OptConfig,
        device_fingerprint: u64,
    ) -> Self {
        let is_attn = matches!(op, Op::Attention { .. });
        MemoKey {
            op: op.clone(),
            attn: is_attn.then_some(attn),
            elem_bytes,
            conv_algo: matches!(op, Op::Conv2d { .. }).then_some(conv_algo),
            cache_probes: if is_attn { cache_probes } else { 0 },
            opt,
            device_fingerprint,
        }
    }
}

/// Everything a memo hit must reproduce about an operator's execution.
///
/// The per-kernel records and the visible delta list are behind `Arc`s
/// so the replay fast path can hand them to [`crate::OpEvent`]s and
/// span records by reference count — a 50-step denoising loop replays
/// the same UNet entries hundreds of thousands of times, and deep-
/// cloning the string-heavy vectors each hit dominated replay cost.
#[derive(Debug, Clone, PartialEq)]
pub struct OpCostEntry {
    /// Summed kernel time, seconds.
    pub time_s: f64,
    /// Summed kernel energy, joules.
    pub energy_j: f64,
    /// Summed FLOPs.
    pub flops: u64,
    /// Summed HBM bytes.
    pub hbm_bytes: u64,
    /// Per-kernel records, in launch order.
    pub records: Arc<Vec<KernelRecord>>,
    /// Every counter a live execution of this op touches, as
    /// `(full metric name, delta)` sorted the way
    /// [`mmg_telemetry::CounterSnapshot::delta_since`] sorts them.
    /// Zero deltas are *kept*: replay applies them so counters the live
    /// path would create at zero (e.g. `kernel_flops_total` of a copy
    /// kernel) exist in the registry; event/span attribution filters
    /// them out via [`OpCostEntry::visible`].
    pub counter_deltas: Vec<(String, u64)>,
    /// The non-zero subset of `counter_deltas`, in the exact form
    /// [`mmg_telemetry::CounterSnapshot::delta_since`] reports —
    /// precomputed once at store time so replay attaches it to events
    /// and spans without filtering or cloning.
    pub visible: Arc<Vec<(String, u64)>>,
}

impl OpCostEntry {
    /// Builds an entry, precomputing the visible (non-zero) delta list
    /// from `counter_deltas`.
    #[must_use]
    pub fn new(
        time_s: f64,
        energy_j: f64,
        flops: u64,
        hbm_bytes: u64,
        records: Arc<Vec<KernelRecord>>,
        counter_deltas: Vec<(String, u64)>,
    ) -> Self {
        let visible =
            Arc::new(counter_deltas.iter().filter(|(_, d)| *d > 0).cloned().collect::<Vec<_>>());
        OpCostEntry { time_s, energy_j, flops, hbm_bytes, records, counter_deltas, visible }
    }
}

/// A shared, bounded memo of operator costs (see module docs).
#[derive(Debug)]
pub struct CostMemo {
    lru: ShardedLru<MemoKey, OpCostEntry>,
}

impl Default for CostMemo {
    fn default() -> Self {
        CostMemo::new()
    }
}

impl CostMemo {
    /// Default capacity: generous for whole-suite runs (every distinct
    /// operator across all nine paper models fits with room to spare)
    /// while still bounding a pathological sweep.
    const DEFAULT_CAPACITY: usize = 1 << 16;

    /// A memo with the default capacity.
    #[must_use]
    pub fn new() -> Self {
        CostMemo::with_capacity(CostMemo::DEFAULT_CAPACITY)
    }

    /// A memo bounded to roughly `capacity` entries (LRU-evicted per
    /// shard beyond that).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        CostMemo { lru: ShardedLru::new(capacity) }
    }

    /// Looks up an entry, refreshing its recency.
    #[must_use]
    pub fn lookup(&self, key: &MemoKey) -> Option<Arc<OpCostEntry>> {
        self.lru.get(key)
    }

    /// Stores an entry computed by a miss path.
    pub fn store(&self, key: MemoKey, entry: OpCostEntry) {
        let _ = self.lru.insert(key, entry);
    }

    /// Lookups served from the memo.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.lru.hits()
    }

    /// Lookups that had to compute.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.lru.misses()
    }

    /// `hits / (hits + misses)`, 0 before the first lookup.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        self.lru.hit_rate()
    }

    /// Distinct entries resident.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lru.len()
    }

    /// Whether no entries are resident.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lru.is_empty()
    }

    /// Drops all entries and statistics (e.g. between benchmark phases).
    pub fn clear(&self) {
        self.lru.clear();
    }
}

/// Reconstructs, without touching a registry, the counter-delta list for
/// one op executed in isolation: the timing-engine counters, the
/// per-kind kernel counters, and (for attention ops with cache
/// simulation) the L1/L2 counters. Sorted by `(name, labels)` exactly
/// like the snapshot machinery; zero deltas are kept so replay can
/// recreate counters the live path registers at zero (the
/// `delta_since`-equivalent filtered form lives in
/// [`OpCostEntry::visible`]).
pub(crate) fn synthetic_op_deltas(
    records: &[KernelRecord],
    cache: Option<HierarchyStats>,
    opt_stats: OptStats,
) -> Vec<(String, u64)> {
    let mut map: BTreeMap<(String, String), u64> = BTreeMap::new();
    let mut bump = |name: &str, labels: String, delta: u64| {
        *map.entry((name.to_string(), labels)).or_default() += delta;
    };
    // Pass counters follow the live guard: created only on a non-zero
    // charge (see `record_opt_stats` in the executor).
    if opt_stats.kernels_fused > 0 {
        bump("kernel_fused_total", String::new(), opt_stats.kernels_fused);
    }
    if opt_stats.launches_elided > 0 {
        bump("kernel_launches_elided_total", String::new(), opt_stats.launches_elided);
    }
    if opt_stats.hbm_bytes_saved > 0 {
        bump("kernel_opt_hbm_bytes_saved_total", String::new(), opt_stats.hbm_bytes_saved);
    }
    for k in records {
        let memory_bound = k.memory_s > k.compute_s;
        // Live recording creates this counter only on a non-zero charge
        // (`record_kernel` guards the add), so mirror that here rather
        // than emitting a zero-valued creation directive.
        if k.wave_quant_idle_slots > 0 {
            bump("gpu_wave_quant_idle_slots_total", String::new(), k.wave_quant_idle_slots);
        }
        bump("gpu_kernel_launches_total", String::new(), 1);
        bump("gpu_flops_total", String::new(), k.flops);
        bump("gpu_hbm_bytes_total", String::new(), k.hbm_bytes);
        // Energy is bumped unconditionally live (the counter exists even
        // for a zero-quantum kernel), so keep the zero here too.
        bump("gpu_energy_uj_total", String::new(), mmg_gpu::quantize_uj(k.energy_j));
        let regime = if memory_bound {
            bump("gpu_kernels_memory_bound_total", String::new(), 1);
            "memory"
        } else {
            bump("gpu_kernels_compute_bound_total", String::new(), 1);
            "compute"
        };
        let kind_label = format!("kind=\"{}\"", k.kind);
        bump("kernel_launches_total", kind_label.clone(), 1);
        bump("kernel_flops_total", kind_label.clone(), k.flops);
        bump("kernel_hbm_bytes_total", kind_label.clone(), k.hbm_bytes);
        bump("kernel_energy_uj_total", kind_label.clone(), mmg_gpu::quantize_uj(k.energy_j));
        bump(
            "kernel_regime_total",
            format!("kind=\"{}\",regime=\"{regime}\"", k.kind),
            1,
        );
    }
    if let Some(stats) = cache {
        bump("gpu_l1_accesses_total", String::new(), stats.l1.accesses);
        bump("gpu_l1_hits_total", String::new(), stats.l1.hits);
        bump("gpu_l2_accesses_total", String::new(), stats.l2.accesses);
        bump("gpu_l2_hits_total", String::new(), stats.l2.hits);
    }
    map.into_iter()
        .map(|((name, labels), v)| {
            let full = if labels.is_empty() { name } else { format!("{name}{{{labels}}}") };
            (full, v)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmg_attn::AttentionShape;
    use mmg_graph::AttnKind;

    fn linear() -> Op {
        Op::Linear { tokens: 64, in_features: 128, out_features: 256 }
    }

    #[test]
    fn key_normalizes_irrelevant_knobs() {
        let fp = mmg_gpu::DeviceSpec::a100_80gb().fingerprint();
        let opt = OptConfig::default();
        let base = MemoKey::for_op(
            &linear(), AttnImpl::Baseline, 2, ConvAlgorithm::ImplicitGemm, 9, opt, fp,
        );
        let flash =
            MemoKey::for_op(&linear(), AttnImpl::Flash, 2, ConvAlgorithm::Winograd, 0, opt, fp);
        assert_eq!(base, flash, "linear ops ignore attention/conv/cache knobs");
        let attn_op = Op::Attention {
            shape: AttentionShape::self_attn(1, 8, 256, 64),
            kind: AttnKind::SpatialSelf,
        };
        let a = MemoKey::for_op(
            &attn_op, AttnImpl::Baseline, 2, ConvAlgorithm::ImplicitGemm, 0, opt, fp,
        );
        let b =
            MemoKey::for_op(&attn_op, AttnImpl::Flash, 2, ConvAlgorithm::ImplicitGemm, 0, opt, fp);
        assert_ne!(a, b, "attention ops key on the implementation");
    }

    #[test]
    fn key_separates_opt_configs() {
        let fp = mmg_gpu::DeviceSpec::a100_80gb().fingerprint();
        let id = MemoKey::for_op(
            &linear(), AttnImpl::Flash, 2, ConvAlgorithm::ImplicitGemm,
            0, OptConfig::default(), fp,
        );
        let opt = MemoKey::for_op(
            &linear(), AttnImpl::Flash, 2, ConvAlgorithm::ImplicitGemm,
            0, OptConfig::all(), fp,
        );
        assert_ne!(id, opt, "optimized streams must not replay eager entries");
    }

    #[test]
    fn key_separates_devices() {
        let a = MemoKey::for_op(
            &linear(),
            AttnImpl::Flash,
            2,
            ConvAlgorithm::ImplicitGemm,
            0,
            OptConfig::default(),
            mmg_gpu::DeviceSpec::a100_80gb().fingerprint(),
        );
        let v = MemoKey {
            device_fingerprint: mmg_gpu::DeviceSpec::v100_32gb().fingerprint(),
            ..a.clone()
        };
        assert_ne!(a, v);
    }

    #[test]
    fn memo_round_trips_entries() {
        let memo = CostMemo::new();
        let key = MemoKey::for_op(
            &linear(),
            AttnImpl::Flash,
            2,
            ConvAlgorithm::ImplicitGemm,
            0,
            OptConfig::default(),
            42,
        );
        assert!(memo.lookup(&key).is_none());
        let entry = OpCostEntry::new(
            1e-5,
            3e-3,
            100,
            200,
            Arc::new(vec![]),
            vec![("gpu_flops_total".to_string(), 100), ("zero_total".to_string(), 0)],
        );
        assert_eq!(*entry.visible, vec![("gpu_flops_total".to_string(), 100)]);
        memo.store(key.clone(), entry.clone());
        assert_eq!(memo.lookup(&key).as_deref(), Some(&entry));
        assert_eq!(memo.hits(), 1);
        assert_eq!(memo.misses(), 1);
        assert_eq!(memo.len(), 1);
        memo.clear();
        assert!(memo.is_empty());
    }

    #[test]
    fn synthetic_deltas_match_live_recording() {
        // Drive the real per-kernel counter paths (timing engine +
        // record_kernel) on a fresh registry, building records from the
        // engine's own outputs, and check the synthetic list reproduces
        // the snapshot deltas byte for byte.
        let costs = [
            // Compute-bound GEMM.
            ("gemm", mmg_gpu::KernelCost { flops: 1 << 34, hbm_bytes: 1 << 20, compute_eff: 0.9, memory_eff: 0.9 }),
            // Memory-bound softmax.
            ("softmax", mmg_gpu::KernelCost { flops: 100, hbm_bytes: 1 << 24, compute_eff: 1.0, memory_eff: 0.8 }),
            // Zero-FLOP copy: kernel_flops_total{kind="memcpy"} must be omitted.
            ("memcpy", mmg_gpu::KernelCost::memory_only(4096, 0.9)),
        ];
        let registry = mmg_telemetry::Registry::new();
        let engine =
            mmg_gpu::TimingEngine::with_registry(mmg_gpu::DeviceSpec::a100_80gb(), &registry);
        let snap = registry.counters_snapshot();
        let mut records = Vec::new();
        for (kind, cost) in &costs {
            let t = engine.kernel_time(cost);
            mmg_kernels::record_kernel_named(
                &registry,
                kind,
                cost.flops,
                cost.hbm_bytes,
                mmg_gpu::quantize_uj(t.energy_j),
                t.is_memory_bound(),
                7,
            );
            records.push(KernelRecord {
                kind: (*kind).to_string(),
                label: format!("{kind}_test"),
                time_s: t.total_s,
                compute_s: t.compute_s,
                memory_s: t.memory_s,
                flops: cost.flops,
                hbm_bytes: cost.hbm_bytes,
                wave_quant_idle_slots: 7,
                draw_w: t.draw_w,
                energy_j: t.energy_j,
            });
        }
        let live = snap.delta_since(&registry);
        let synthetic = synthetic_op_deltas(&records, None, OptStats::default());
        let visible: Vec<_> =
            synthetic.iter().filter(|(_, d)| *d > 0).cloned().collect();
        assert_eq!(visible, live);
        // The zero-FLOP copy keeps its counter in the unfiltered list so
        // replay can create it.
        assert!(synthetic
            .iter()
            .any(|(n, d)| n == "kernel_flops_total{kind=\"memcpy\"}" && *d == 0));
    }

    #[test]
    fn synthetic_deltas_include_cache_stats() {
        let stats = HierarchyStats {
            l1: mmg_gpu::CacheStats { accesses: 100, hits: 80 },
            l2: mmg_gpu::CacheStats { accesses: 20, hits: 5 },
        };
        let deltas = synthetic_op_deltas(&[], Some(stats), OptStats::default());
        assert_eq!(
            deltas,
            vec![
                ("gpu_l1_accesses_total".to_string(), 100),
                ("gpu_l1_hits_total".to_string(), 80),
                ("gpu_l2_accesses_total".to_string(), 20),
                ("gpu_l2_hits_total".to_string(), 5),
            ]
        );
    }

    #[test]
    fn synthetic_deltas_include_pass_counters_when_nonzero() {
        let none = synthetic_op_deltas(&[], None, OptStats::default());
        assert!(none.is_empty(), "identity passes add no counters");
        let stats =
            OptStats { kernels_fused: 3, launches_elided: 0, hbm_bytes_saved: 4096 };
        let deltas = synthetic_op_deltas(&[], None, stats);
        assert_eq!(
            deltas,
            vec![
                ("kernel_fused_total".to_string(), 3),
                ("kernel_opt_hbm_bytes_saved_total".to_string(), 4096),
            ]
        );
    }
}
