//! Serializable reports and ASCII table rendering.

use serde::{Deserialize, Serialize};

use crate::CategoryBreakdown;

/// A serializable operator breakdown (one Fig. 6 bar).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BreakdownReport {
    /// Workload label.
    pub model: String,
    /// Attention implementation the run used (`"baseline"` / `"flash"`).
    pub attention: String,
    /// Total simulated seconds.
    pub total_s: f64,
    /// `(category, seconds, fraction)` rows, descending.
    pub rows: Vec<BreakdownRow>,
}

/// One row of a breakdown report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BreakdownRow {
    /// Category name.
    pub category: String,
    /// Seconds in the category.
    pub seconds: f64,
    /// Fraction of total time.
    pub fraction: f64,
}

impl BreakdownReport {
    /// Builds a report from a breakdown.
    #[must_use]
    pub fn from_breakdown(
        model: impl Into<String>,
        attention: impl Into<String>,
        b: &CategoryBreakdown,
    ) -> Self {
        let total = b.total_s();
        BreakdownReport {
            model: model.into(),
            attention: attention.into(),
            total_s: total,
            rows: b
                .rows()
                .iter()
                .map(|&(c, s)| BreakdownRow {
                    category: c.to_string(),
                    seconds: s,
                    fraction: if total > 0.0 { s / total } else { 0.0 },
                })
                .collect(),
        }
    }

    /// Serializes to pretty JSON.
    ///
    /// # Panics
    ///
    /// Never panics: the report contains only serializable primitives.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report is always serializable")
    }
}

/// Renders a simple two-column-plus ASCII table.
///
/// `rows` are `(label, values…)`; every row must have `headers.len() - 1`
/// values.
///
/// # Panics
///
/// Panics if a row's value count disagrees with the header.
#[must_use]
pub fn render_table(headers: &[&str], rows: &[(String, Vec<String>)]) -> String {
    for (label, vals) in rows {
        assert_eq!(vals.len(), headers.len() - 1, "row '{label}' has wrong arity");
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for (label, vals) in rows {
        widths[0] = widths[0].max(label.len());
        for (i, v) in vals.iter().enumerate() {
            widths[i + 1] = widths[i + 1].max(v.len());
        }
    }
    let mut out = String::new();
    let sep = |out: &mut String| {
        for w in &widths {
            out.push('+');
            out.push_str(&"-".repeat(w + 2));
        }
        out.push_str("+\n");
    };
    sep(&mut out);
    out.push('|');
    for (h, w) in headers.iter().zip(widths.iter()) {
        out.push_str(&format!(" {h:<w$} |"));
    }
    out.push('\n');
    sep(&mut out);
    for (label, vals) in rows {
        out.push('|');
        out.push_str(&format!(" {label:<w$} |", w = widths[0]));
        for (v, w) in vals.iter().zip(widths[1..].iter()) {
            out.push_str(&format!(" {v:>w$} |"));
        }
        out.push('\n');
    }
    sep(&mut out);
    out
}

/// Formats seconds with an adaptive unit.
#[must_use]
pub fn fmt_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else {
        format!("{:.1} µs", s * 1e6)
    }
}

/// Formats a fraction as a percentage.
#[must_use]
pub fn fmt_pct(f: f64) -> String {
    format!("{:.1}%", f * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmg_graph::OpCategory;
    use crate::Timeline;
    use crate::{AttnCallInfo, OpEvent};

    fn breakdown() -> CategoryBreakdown {
        let _ = AttnCallInfo {
            kind: mmg_graph::AttnKind::Cross,
            seq_q: 1,
            seq_kv: 1,
            batch: 1,
            heads: 1,
        };
        Timeline::new(vec![OpEvent {
            index: 0,
            path: "x".into(),
            category: OpCategory::Conv,
            time_s: 2.0,
            flops: 0,
            hbm_bytes: 0,
            energy_j: 0.0,
            kernels: std::sync::Arc::new(vec![]),
            counters: std::sync::Arc::new(vec![]),
            attention: None,
        }])
        .breakdown()
    }

    #[test]
    fn report_roundtrips_via_json() {
        let r = BreakdownReport::from_breakdown("sd", "flash", &breakdown());
        let back: BreakdownReport = serde_json::from_str(&r.to_json()).unwrap();
        assert_eq!(r, back);
        assert_eq!(back.rows[0].category, "Conv");
        assert!((back.rows[0].fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            &["Model", "Speedup"],
            &[("LLaMA".into(), vec!["1.52x".into()]), ("StableDiffusion".into(), vec!["1.67x".into()])],
        );
        assert!(t.contains("| LLaMA"));
        assert!(t.contains("1.67x |"));
        assert!(t.starts_with('+'));
    }

    #[test]
    #[should_panic(expected = "wrong arity")]
    fn table_rejects_ragged_rows() {
        let _ = render_table(&["A", "B"], &[("x".into(), vec![])]);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_seconds(2.5), "2.500 s");
        assert_eq!(fmt_seconds(0.0025), "2.500 ms");
        assert_eq!(fmt_seconds(2.5e-6), "2.5 µs");
        assert_eq!(fmt_pct(0.443), "44.3%");
    }
}
