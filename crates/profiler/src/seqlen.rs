//! Sequence-length tracing (Fig. 7) and distributions (Fig. 8).

use mmg_graph::AttnKind;

use crate::Timeline;

/// One attention call's sequence lengths, in call order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeqLenSample {
    /// Index among attention calls (the Fig. 7 x-axis).
    pub call_index: usize,
    /// Attention role.
    pub kind: AttnKind,
    /// Query sequence length (the Fig. 7 y-axis).
    pub seq_q: usize,
    /// Key/value sequence length.
    pub seq_kv: usize,
}

/// Extracts the attention-call sequence-length trace from a timeline.
#[must_use]
pub fn trace(timeline: &Timeline) -> Vec<SeqLenSample> {
    timeline
        .events()
        .iter()
        .filter_map(|e| e.attention.map(|a| (a.kind, a.seq_q, a.seq_kv)))
        .enumerate()
        .map(|(call_index, (kind, seq_q, seq_kv))| SeqLenSample { call_index, kind, seq_q, seq_kv })
        .collect()
}

/// Summary of a sequence-length trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceSummary {
    /// Smallest query length observed.
    pub min: usize,
    /// Largest query length observed.
    pub max: usize,
    /// max / min — the paper reports up to 4x for Stable Diffusion.
    pub variation: f64,
    /// Number of attention calls.
    pub calls: usize,
}

/// Summarizes a trace (`None` for traces with no attention calls).
#[must_use]
pub fn summarize(samples: &[SeqLenSample]) -> Option<TraceSummary> {
    let (mut min, mut max) = (usize::MAX, 0usize);
    for s in samples {
        min = min.min(s.seq_q);
        max = max.max(s.seq_q);
    }
    if samples.is_empty() {
        return None;
    }
    Some(TraceSummary {
        min,
        max,
        variation: max as f64 / min.max(1) as f64,
        calls: samples.len(),
    })
}

/// Frequency distribution of query sequence lengths (Fig. 8): returns
/// `(seq_len, count)` sorted ascending by length.
#[must_use]
pub fn histogram(samples: &[SeqLenSample]) -> Vec<(usize, usize)> {
    let mut hist: Vec<(usize, usize)> = Vec::new();
    for s in samples {
        if let Some(slot) = hist.iter_mut().find(|(l, _)| *l == s.seq_q) {
            slot.1 += 1;
        } else {
            hist.push((s.seq_q, 1));
        }
    }
    hist.sort_by_key(|&(l, _)| l);
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AttnCallInfo, OpEvent};
    use mmg_graph::OpCategory;

    fn attn_ev(seq: usize) -> OpEvent {
        OpEvent {
            index: 0,
            path: "attn".into(),
            category: OpCategory::Attention,
            time_s: 1.0,
            flops: 0,
            hbm_bytes: 0,
            energy_j: 0.0,
            kernels: std::sync::Arc::new(vec![]),
            counters: std::sync::Arc::new(vec![]),
            attention: Some(AttnCallInfo {
                kind: AttnKind::SpatialSelf,
                seq_q: seq,
                seq_kv: seq,
                batch: 1,
                heads: 1,
            }),
        }
    }

    fn other_ev() -> OpEvent {
        OpEvent { attention: None, category: OpCategory::Conv, ..attn_ev(0) }
    }

    #[test]
    fn trace_skips_non_attention() {
        let t = Timeline::new(vec![attn_ev(4096), other_ev(), attn_ev(1024)]);
        let tr = trace(&t);
        assert_eq!(tr.len(), 2);
        assert_eq!(tr[0].call_index, 0);
        assert_eq!(tr[1].call_index, 1);
        assert_eq!(tr[1].seq_q, 1024);
    }

    #[test]
    fn summary_computes_variation() {
        let t = Timeline::new(vec![attn_ev(4096), attn_ev(1024), attn_ev(256)]);
        let s = summarize(&trace(&t)).unwrap();
        assert_eq!(s.min, 256);
        assert_eq!(s.max, 4096);
        assert!((s.variation - 16.0).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_summary_is_none() {
        assert!(summarize(&[]).is_none());
    }

    #[test]
    fn histogram_counts_buckets() {
        let t = Timeline::new(vec![attn_ev(64), attn_ev(256), attn_ev(64)]);
        let h = histogram(&trace(&t));
        assert_eq!(h, vec![(64, 2), (256, 1)]);
    }
}
