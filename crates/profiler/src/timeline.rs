//! Timelines and operator breakdowns.

use mmg_graph::{AttnKind, OpCategory};

use crate::OpEvent;

/// Time per operator category — one stacked bar of Fig. 6.
#[derive(Debug, Clone, PartialEq)]
pub struct CategoryBreakdown {
    rows: Vec<(OpCategory, f64)>,
    total_s: f64,
}

impl CategoryBreakdown {
    /// `(category, seconds)` rows, descending by time, zero rows omitted.
    #[must_use]
    pub fn rows(&self) -> &[(OpCategory, f64)] {
        &self.rows
    }

    /// Total seconds across categories.
    #[must_use]
    pub fn total_s(&self) -> f64 {
        self.total_s
    }

    /// Seconds spent in one category.
    #[must_use]
    pub fn seconds(&self, cat: OpCategory) -> f64 {
        self.rows.iter().find(|(c, _)| *c == cat).map_or(0.0, |(_, s)| *s)
    }

    /// Fraction of total time in one category (0 when the total is 0).
    #[must_use]
    pub fn fraction(&self, cat: OpCategory) -> f64 {
        if self.total_s == 0.0 {
            0.0
        } else {
            self.seconds(cat) / self.total_s
        }
    }

    /// Scales all rows by a constant (used to weight pipeline stages by
    /// their repeat count).
    #[must_use]
    pub fn scaled(&self, factor: f64) -> CategoryBreakdown {
        CategoryBreakdown {
            rows: self.rows.iter().map(|&(c, s)| (c, s * factor)).collect(),
            total_s: self.total_s * factor,
        }
    }

    /// Merges another breakdown into this one.
    pub fn merge(&mut self, other: &CategoryBreakdown) {
        for &(cat, s) in &other.rows {
            if let Some(slot) = self.rows.iter_mut().find(|(c, _)| *c == cat) {
                slot.1 += s;
            } else {
                self.rows.push((cat, s));
            }
        }
        self.total_s += other.total_s;
        self.rows.sort_by(|a, b| b.1.total_cmp(&a.1));
    }

    /// An empty breakdown.
    #[must_use]
    pub fn empty() -> CategoryBreakdown {
        CategoryBreakdown { rows: Vec::new(), total_s: 0.0 }
    }
}

/// The ordered events of one profiled execution.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Timeline {
    events: Vec<OpEvent>,
}

impl Timeline {
    /// Wraps an event list.
    #[must_use]
    pub fn new(events: Vec<OpEvent>) -> Self {
        Timeline { events }
    }

    /// The events in execution order.
    #[must_use]
    pub fn events(&self) -> &[OpEvent] {
        &self.events
    }

    /// Total simulated wall time in seconds.
    #[must_use]
    pub fn total_time_s(&self) -> f64 {
        self.events.iter().map(|e| e.time_s).sum()
    }

    /// Total modeled energy in joules. Summed in event order, exactly
    /// like [`Timeline::total_time_s`], so the per-kernel → per-op →
    /// timeline folds agree bitwise.
    #[must_use]
    pub fn total_energy_j(&self) -> f64 {
        self.events.iter().map(|e| e.energy_j).sum()
    }

    /// Mean board draw over the timeline, watts (0 for an empty one).
    #[must_use]
    pub fn mean_power_w(&self) -> f64 {
        let t = self.total_time_s();
        if t == 0.0 {
            0.0
        } else {
            self.total_energy_j() / t
        }
    }

    /// Joules grouped by operator category, descending — the energy
    /// analogue of [`Timeline::breakdown`].
    #[must_use]
    pub fn energy_by_category(&self) -> Vec<(OpCategory, f64)> {
        let mut rows: Vec<(OpCategory, f64)> = Vec::new();
        for e in &self.events {
            if let Some(slot) = rows.iter_mut().find(|(c, _)| *c == e.category) {
                slot.1 += e.energy_j;
            } else {
                rows.push((e.category, e.energy_j));
            }
        }
        rows.sort_by(|a, b| b.1.total_cmp(&a.1));
        rows
    }

    /// Total FLOPs.
    #[must_use]
    pub fn total_flops(&self) -> u64 {
        self.events.iter().map(|e| e.flops).sum()
    }

    /// Total HBM bytes.
    #[must_use]
    pub fn total_hbm_bytes(&self) -> u64 {
        self.events.iter().map(|e| e.hbm_bytes).sum()
    }

    /// Time grouped by category, descending.
    #[must_use]
    pub fn breakdown(&self) -> CategoryBreakdown {
        let mut rows: Vec<(OpCategory, f64)> = Vec::new();
        for e in &self.events {
            if let Some(slot) = rows.iter_mut().find(|(c, _)| *c == e.category) {
                slot.1 += e.time_s;
            } else {
                rows.push((e.category, e.time_s));
            }
        }
        rows.sort_by(|a, b| b.1.total_cmp(&a.1));
        CategoryBreakdown { rows, total_s: self.total_time_s() }
    }

    /// Seconds spent in attention calls of one kind — the Fig. 11
    /// spatial/temporal split.
    #[must_use]
    pub fn attention_time_by_kind(&self, kind: AttnKind) -> f64 {
        self.events
            .iter()
            .filter(|e| e.attention.is_some_and(|a| a.kind == kind))
            .map(|e| e.time_s)
            .sum()
    }

    /// FLOPs in attention calls of one kind.
    #[must_use]
    pub fn attention_flops_by_kind(&self, kind: AttnKind) -> u64 {
        self.events
            .iter()
            .filter(|e| e.attention.is_some_and(|a| a.kind == kind))
            .map(|e| e.flops)
            .sum()
    }

    /// Appends another timeline's events (re-indexing them).
    pub fn extend(&mut self, other: &Timeline) {
        let base = self.events.len();
        for (i, e) in other.events.iter().enumerate() {
            let mut e = e.clone();
            e.index = base + i;
            self.events.push(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AttnCallInfo;

    fn ev(cat: OpCategory, t: f64, attn: Option<AttnKind>) -> OpEvent {
        OpEvent {
            index: 0,
            path: "p".into(),
            category: cat,
            time_s: t,
            flops: 10,
            hbm_bytes: 20,
            energy_j: t * 300.0,
            kernels: std::sync::Arc::new(vec![]),
            counters: std::sync::Arc::new(vec![]),
            attention: attn.map(|kind| AttnCallInfo {
                kind,
                seq_q: 4,
                seq_kv: 4,
                batch: 1,
                heads: 1,
            }),
        }
    }

    #[test]
    fn breakdown_sums_and_sorts() {
        let t = Timeline::new(vec![
            ev(OpCategory::Conv, 3.0, None),
            ev(OpCategory::Attention, 1.0, Some(AttnKind::SpatialSelf)),
            ev(OpCategory::Conv, 2.0, None),
        ]);
        let b = t.breakdown();
        assert_eq!(b.rows()[0], (OpCategory::Conv, 5.0));
        assert!((b.fraction(OpCategory::Attention) - 1.0 / 6.0).abs() < 1e-12);
        assert_eq!(b.total_s(), 6.0);
    }

    #[test]
    fn attention_kind_split() {
        let t = Timeline::new(vec![
            ev(OpCategory::Attention, 1.0, Some(AttnKind::SpatialSelf)),
            ev(OpCategory::Attention, 2.0, Some(AttnKind::Temporal)),
            ev(OpCategory::Attention, 4.0, Some(AttnKind::Temporal)),
        ]);
        assert_eq!(t.attention_time_by_kind(AttnKind::SpatialSelf), 1.0);
        assert_eq!(t.attention_time_by_kind(AttnKind::Temporal), 6.0);
        assert_eq!(t.attention_flops_by_kind(AttnKind::Temporal), 20);
    }

    #[test]
    fn merge_and_scale() {
        let t = Timeline::new(vec![ev(OpCategory::Linear, 2.0, None)]);
        let mut b = t.breakdown();
        b.merge(&t.breakdown().scaled(3.0));
        assert_eq!(b.seconds(OpCategory::Linear), 8.0);
        assert_eq!(b.total_s(), 8.0);
    }

    #[test]
    fn extend_reindexes() {
        let mut a = Timeline::new(vec![ev(OpCategory::Linear, 1.0, None)]);
        let b = Timeline::new(vec![ev(OpCategory::Conv, 1.0, None)]);
        a.extend(&b);
        assert_eq!(a.events().len(), 2);
        assert_eq!(a.events()[1].index, 1);
    }

    #[test]
    fn empty_timeline_is_safe() {
        let t = Timeline::default();
        assert_eq!(t.total_time_s(), 0.0);
        assert_eq!(t.breakdown().fraction(OpCategory::Conv), 0.0);
        assert_eq!(t.total_energy_j(), 0.0);
        assert_eq!(t.mean_power_w(), 0.0);
    }

    #[test]
    fn energy_totals_and_category_rows() {
        let t = Timeline::new(vec![
            ev(OpCategory::Conv, 3.0, None),
            ev(OpCategory::Attention, 1.0, Some(AttnKind::SpatialSelf)),
        ]);
        // ev() models a flat 300 W draw.
        assert!((t.total_energy_j() - 4.0 * 300.0).abs() < 1e-9);
        assert!((t.mean_power_w() - 300.0).abs() < 1e-9);
        let rows = t.energy_by_category();
        assert_eq!(rows[0].0, OpCategory::Conv);
        assert!((rows[0].1 - 900.0).abs() < 1e-9);
    }
}
