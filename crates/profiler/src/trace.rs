//! Chrome-trace export.
//!
//! Serializes a [`Timeline`] into the Trace Event Format consumed by
//! `chrome://tracing` / Perfetto, with operators on one track and their
//! kernels on another — the same two-level view PyTorch Profiler exports.
//! Operator events carry their telemetry counter deltas (and FLOP/byte
//! totals) in `args`, and cumulative device counters are emitted as
//! `ph:"C"` counter tracks so Perfetto plots them as area charts.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use serde_json::Value;

use crate::Timeline;

/// One Trace Event Format entry (`ph = "X"` complete events and
/// `ph = "C"` counter samples).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Event name (op path, kernel label, or counter name).
    pub name: String,
    /// Category (`op:<category>`, `kernel:<kind>`, or `counter`).
    pub cat: String,
    /// Phase — `"X"` (complete event) or `"C"` (counter sample).
    pub ph: String,
    /// Start timestamp in microseconds.
    pub ts: f64,
    /// Duration in microseconds (0 for counter samples).
    pub dur: f64,
    /// Process id (always 1).
    pub pid: u32,
    /// Track: 0 = operators, 1 = kernels, 2 = counters.
    pub tid: u32,
    /// Per-event payload: counter deltas and totals for op events, the
    /// sampled value for counter events.
    pub args: BTreeMap<String, Value>,
}

/// Counters promoted to `ph:"C"` tracks when present in op deltas.
/// Labelled (per-kind) series stay in `args` only — one track per label
/// set would swamp the trace viewer.
const COUNTER_TRACKS: &[&str] = &[
    "gpu_flops_total",
    "gpu_hbm_bytes_total",
    "gpu_energy_uj_total",
    "gpu_kernel_launches_total",
    "gpu_l1_hits_total",
    "gpu_l1_accesses_total",
    "gpu_l2_hits_total",
    "gpu_l2_accesses_total",
];

/// Converts a timeline into trace events, serializing ops back-to-back
/// from t = 0 (the simulator has no gaps).
#[must_use]
pub fn to_trace_events(timeline: &Timeline) -> Vec<TraceEvent> {
    let mut events = Vec::new();
    let mut t_us = 0.0f64;
    let mut cumulative: BTreeMap<&str, u64> = BTreeMap::new();
    for ev in timeline.events() {
        let op_dur = ev.time_s * 1e6;
        let mut args = BTreeMap::new();
        args.insert("flops".to_string(), Value::from(ev.flops));
        args.insert("hbm_bytes".to_string(), Value::from(ev.hbm_bytes));
        for (name, delta) in ev.counters.iter() {
            args.insert(name.clone(), Value::from(*delta));
        }
        events.push(TraceEvent {
            name: ev.path.clone(),
            cat: format!("op:{}", ev.category),
            ph: "X".into(),
            ts: t_us,
            dur: op_dur,
            pid: 1,
            tid: 0,
            args,
        });
        let mut k_ts = t_us;
        for k in ev.kernels.iter() {
            let dur = k.time_s * 1e6;
            let mut args = BTreeMap::new();
            args.insert("flops".to_string(), Value::from(k.flops));
            args.insert("hbm_bytes".to_string(), Value::from(k.hbm_bytes));
            events.push(TraceEvent {
                name: k.label.clone(),
                cat: format!("kernel:{}", k.kind),
                ph: "X".into(),
                ts: k_ts,
                dur,
                pid: 1,
                tid: 1,
                args,
            });
            k_ts += dur;
        }
        t_us += op_dur;
        // Power track: the op's mean modeled draw, sampled at its
        // boundary so Perfetto draws a step chart next to the kernel
        // lanes.
        if ev.time_s > 0.0 {
            let mut args = BTreeMap::new();
            args.insert("value".to_string(), Value::from(ev.energy_j / ev.time_s));
            events.push(TraceEvent {
                name: "gpu_power_w".to_string(),
                cat: "counter".into(),
                ph: "C".into(),
                ts: t_us,
                dur: 0.0,
                pid: 1,
                tid: 2,
                args,
            });
        }
        // Sample cumulative device counters at the op boundary.
        for &track in COUNTER_TRACKS {
            if let Some((_, delta)) = ev.counters.iter().find(|(name, _)| name == track) {
                let total = cumulative.entry(track).or_insert(0);
                *total += delta;
                let mut args = BTreeMap::new();
                args.insert("value".to_string(), Value::from(*total));
                events.push(TraceEvent {
                    name: track.to_string(),
                    cat: "counter".into(),
                    ph: "C".into(),
                    ts: t_us,
                    dur: 0.0,
                    pid: 1,
                    tid: 2,
                    args,
                });
            }
        }
    }
    events
}

/// Serializes a timeline to a bare-array Chrome-trace JSON string (the
/// legacy format `chrome://tracing` accepts directly).
///
/// # Panics
///
/// Never panics: trace events contain only serializable primitives.
#[must_use]
pub fn to_chrome_trace(timeline: &Timeline) -> String {
    serde_json::to_string(&to_trace_events(timeline)).expect("trace events always serialize")
}

/// Serializes a timeline to the JSON-object trace form Perfetto prefers:
/// `{"traceEvents": [...], "displayTimeUnit": "us"}`.
///
/// # Panics
///
/// Never panics: trace events contain only serializable primitives.
#[must_use]
pub fn to_chrome_trace_object(timeline: &Timeline) -> String {
    let events = serde_json::to_value(&to_trace_events(timeline))
        .expect("trace events always serialize");
    let envelope = Value::Object(vec![
        ("traceEvents".to_string(), events),
        ("displayTimeUnit".to_string(), Value::from("us")),
    ]);
    serde_json::to_string(&envelope).expect("trace envelope always serializes")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Profiler;
    use mmg_attn::{AttentionShape, AttnImpl};
    use mmg_gpu::DeviceSpec;
    use mmg_graph::{AttnKind, Graph, Op};

    fn timeline() -> Timeline {
        let mut g = Graph::new();
        g.push("enc.fc", Op::Linear { tokens: 64, in_features: 64, out_features: 64 });
        g.push("enc.norm", Op::LayerNorm { rows: 64, cols: 64 });
        Profiler::with_registry(
            DeviceSpec::a100_80gb(),
            AttnImpl::Flash,
            &mmg_telemetry::Registry::new(),
        )
        .profile(&g)
    }

    #[test]
    fn ops_are_contiguous_from_zero() {
        let evs = to_trace_events(&timeline());
        let ops: Vec<&TraceEvent> = evs.iter().filter(|e| e.tid == 0).collect();
        assert_eq!(ops.len(), 2);
        assert_eq!(ops[0].ts, 0.0);
        assert!((ops[1].ts - ops[0].dur).abs() < 1e-9);
    }

    #[test]
    fn kernels_nest_within_their_op() {
        let evs = to_trace_events(&timeline());
        let ops: Vec<&TraceEvent> = evs.iter().filter(|e| e.tid == 0).collect();
        for k in evs.iter().filter(|e| e.tid == 1) {
            let host = ops
                .iter()
                .find(|o| k.ts >= o.ts - 1e-9 && k.ts + k.dur <= o.ts + o.dur + 1e-9);
            assert!(host.is_some(), "kernel {} escapes its op", k.name);
        }
    }

    #[test]
    fn json_round_trips() {
        let t = timeline();
        let json = to_chrome_trace(&t);
        let back: Vec<TraceEvent> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, to_trace_events(&t));
        assert!(json.contains("\"ph\":\"X\""));
    }

    #[test]
    fn categories_are_tagged() {
        let evs = to_trace_events(&timeline());
        assert!(evs.iter().any(|e| e.cat == "op:Linear"));
        assert!(evs.iter().any(|e| e.cat.starts_with("kernel:")));
    }

    #[test]
    fn op_events_carry_counter_args() {
        let evs = to_trace_events(&timeline());
        let op = evs.iter().find(|e| e.tid == 0).expect("an op event");
        assert!(op.args.contains_key("flops"));
        assert!(op.args.contains_key("gpu_kernel_launches_total"), "args: {:?}", op.args);
    }

    #[test]
    fn counter_tracks_are_cumulative_and_monotone() {
        let evs = to_trace_events(&timeline());
        let samples: Vec<u64> = evs
            .iter()
            .filter(|e| e.ph == "C" && e.name == "gpu_kernel_launches_total")
            .map(|e| e.args["value"].as_u64().expect("integer counter"))
            .collect();
        assert!(samples.len() >= 2, "one sample per op");
        assert!(samples.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn power_track_samples_mean_op_draw() {
        let evs = to_trace_events(&timeline());
        let idle = DeviceSpec::a100_80gb().idle_w;
        let tdp = DeviceSpec::a100_80gb().tdp_w;
        let samples: Vec<f64> = evs
            .iter()
            .filter(|e| e.ph == "C" && e.name == "gpu_power_w")
            .map(|e| e.args["value"].as_f64().expect("float watts"))
            .collect();
        assert_eq!(samples.len(), 2, "one power sample per op");
        for w in samples {
            assert!(w >= idle * 0.9 && w <= tdp, "draw {w} outside envelope");
        }
        // The cumulative energy track rides along.
        assert!(evs.iter().any(|e| e.ph == "C" && e.name == "gpu_energy_uj_total"));
    }

    #[test]
    fn envelope_wraps_trace_events() {
        let t = timeline();
        let json = to_chrome_trace_object(&t);
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v.field("displayTimeUnit").and_then(serde_json::Value::as_str), Some("us"));
        let evs = v.field("traceEvents").and_then(serde_json::Value::as_array).expect("array");
        assert_eq!(evs.len(), to_trace_events(&t).len());
    }

    #[test]
    fn temporal_attention_trace_has_cache_counter_tracks() {
        let mut g = Graph::new();
        g.push(
            "unet.temporal_attn",
            Op::Attention {
                shape: AttentionShape::self_attn(4096, 8, 16, 40),
                kind: AttnKind::Temporal,
            },
        );
        let registry = mmg_telemetry::Registry::new();
        let t = Profiler::with_registry(DeviceSpec::a100_80gb(), AttnImpl::Flash, &registry)
            .with_cache_sim(10_000)
            .profile(&g);
        let evs = to_trace_events(&t);
        assert!(
            evs.iter().any(|e| e.ph == "C" && e.name == "gpu_l1_accesses_total"),
            "cache counter track missing"
        );
    }
}
