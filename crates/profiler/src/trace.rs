//! Chrome-trace export.
//!
//! Serializes a [`Timeline`] into the Trace Event Format consumed by
//! `chrome://tracing` / Perfetto, with operators on one track and their
//! kernels on another — the same two-level view PyTorch Profiler exports.

use serde::{Deserialize, Serialize};

use crate::Timeline;

/// One Trace Event Format entry (`ph = "X"` complete events only).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Event name (op path or kernel label).
    pub name: String,
    /// Category (`op:<category>` or `kernel:<kind>`).
    pub cat: String,
    /// Phase — always `"X"` (complete event).
    pub ph: String,
    /// Start timestamp in microseconds.
    pub ts: f64,
    /// Duration in microseconds.
    pub dur: f64,
    /// Process id (always 1).
    pub pid: u32,
    /// Track: 0 = operators, 1 = kernels.
    pub tid: u32,
}

/// Converts a timeline into trace events, serializing ops back-to-back
/// from t = 0 (the simulator has no gaps).
#[must_use]
pub fn to_trace_events(timeline: &Timeline) -> Vec<TraceEvent> {
    let mut events = Vec::new();
    let mut t_us = 0.0f64;
    for ev in timeline.events() {
        let op_dur = ev.time_s * 1e6;
        events.push(TraceEvent {
            name: ev.path.clone(),
            cat: format!("op:{}", ev.category),
            ph: "X".into(),
            ts: t_us,
            dur: op_dur,
            pid: 1,
            tid: 0,
        });
        let mut k_ts = t_us;
        for k in &ev.kernels {
            let dur = k.time_s * 1e6;
            events.push(TraceEvent {
                name: k.label.clone(),
                cat: format!("kernel:{}", k.kind),
                ph: "X".into(),
                ts: k_ts,
                dur,
                pid: 1,
                tid: 1,
            });
            k_ts += dur;
        }
        t_us += op_dur;
    }
    events
}

/// Serializes a timeline to a Chrome-trace JSON string.
///
/// # Panics
///
/// Never panics: trace events contain only serializable primitives.
#[must_use]
pub fn to_chrome_trace(timeline: &Timeline) -> String {
    serde_json::to_string(&to_trace_events(timeline)).expect("trace events always serialize")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Profiler;
    use mmg_attn::AttnImpl;
    use mmg_gpu::DeviceSpec;
    use mmg_graph::{Graph, Op};

    fn timeline() -> Timeline {
        let mut g = Graph::new();
        g.push("enc.fc", Op::Linear { tokens: 64, in_features: 64, out_features: 64 });
        g.push("enc.norm", Op::LayerNorm { rows: 64, cols: 64 });
        Profiler::new(DeviceSpec::a100_80gb(), AttnImpl::Flash).profile(&g)
    }

    #[test]
    fn ops_are_contiguous_from_zero() {
        let evs = to_trace_events(&timeline());
        let ops: Vec<&TraceEvent> = evs.iter().filter(|e| e.tid == 0).collect();
        assert_eq!(ops.len(), 2);
        assert_eq!(ops[0].ts, 0.0);
        assert!((ops[1].ts - ops[0].dur).abs() < 1e-9);
    }

    #[test]
    fn kernels_nest_within_their_op() {
        let evs = to_trace_events(&timeline());
        let ops: Vec<&TraceEvent> = evs.iter().filter(|e| e.tid == 0).collect();
        for k in evs.iter().filter(|e| e.tid == 1) {
            let host = ops
                .iter()
                .find(|o| k.ts >= o.ts - 1e-9 && k.ts + k.dur <= o.ts + o.dur + 1e-9);
            assert!(host.is_some(), "kernel {} escapes its op", k.name);
        }
    }

    #[test]
    fn json_round_trips() {
        let t = timeline();
        let json = to_chrome_trace(&t);
        let back: Vec<TraceEvent> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, to_trace_events(&t));
        assert!(json.contains("\"ph\":\"X\""));
    }

    #[test]
    fn categories_are_tagged() {
        let evs = to_trace_events(&timeline());
        assert!(evs.iter().any(|e| e.cat == "op:Linear"));
        assert!(evs.iter().any(|e| e.cat.starts_with("kernel:")));
    }
}
