//! Property test: memoized profiling is observationally identical to
//! unmemoized profiling.
//!
//! For arbitrary graphs (with repeated ops, so the memo actually hits),
//! a profiler with a [`CostMemo`] must produce bit-identical
//! [`mmg_profiler::KernelRecord`]s and [`mmg_profiler::OpEvent`]s,
//! identical per-op span attribution, and a byte-identical Prometheus
//! rendering of the registry — whether entries are computed cold,
//! replayed within one run, or replayed from a previous run's memo.

use std::sync::Arc;

use mmg_attn::{AttentionShape, AttnImpl};
use mmg_gpu::DeviceSpec;
use mmg_graph::optimize::{ElemWidth, OptConfig};
use mmg_graph::{AttnKind, Graph, Op};
use mmg_profiler::{CostMemo, Profiler, Timeline};
use mmg_telemetry::Registry;
use proptest::prelude::*;

/// Expands one generated seed into an operator, cycling through every
/// family the lowering pass distinguishes (the vendored proptest stub
/// has no `prop_oneof`, so variant choice rides on the seed).
fn op_from_seed(seed: u64) -> Op {
    let mut s = seed;
    let mut next = move |span: u64| {
        s = (s ^ (s >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        s = (s ^ (s >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        1 + (s ^ (s >> 31)) % span
    };
    match seed % 7 {
        0 => Op::Linear {
            tokens: next(512) as usize,
            in_features: next(256) as usize,
            out_features: next(256) as usize,
        },
        1 => {
            let hw = 3 + next(20) as usize;
            Op::Conv2d {
                batch: next(2) as usize,
                c_in: next(24) as usize,
                c_out: next(24) as usize,
                h: hw,
                w: hw,
                kernel: next(3) as usize,
                stride: next(2) as usize,
            }
        }
        2 => {
            let kind = [AttnKind::SpatialSelf, AttnKind::Cross, AttnKind::Temporal, AttnKind::Causal]
                [(next(4) - 1) as usize];
            Op::Attention {
                shape: AttentionShape::self_attn(
                    next(2) as usize,
                    next(8) as usize,
                    7 + next(180) as usize,
                    7 + next(56) as usize,
                ),
                kind,
            }
        }
        3 => Op::LayerNorm { rows: next(1024) as usize, cols: next(512) as usize },
        4 => Op::Elementwise { elems: next(100_000) as usize, inputs: next(3) as usize },
        5 => Op::GroupNorm {
            batch: next(2) as usize,
            channels: 32 * next(8) as usize,
            h: next(32) as usize,
            w: next(32) as usize,
            groups: 32,
        },
        _ => Op::Memcpy { bytes: next(1_000_000), amplification: 1.0 + next(4) as f64 * 0.25 },
    }
}

/// Builds a graph that walks `seeds`' ops twice, so every op repeats at
/// least once and the memo's intra-run hit path is exercised.
fn graph_of(seeds: &[u64]) -> Graph {
    let mut g = Graph::new();
    for pass in 0..2 {
        for (i, &seed) in seeds.iter().enumerate() {
            g.push(format!("pass{pass}.op{i}"), op_from_seed(seed));
        }
    }
    g
}

/// Expands a seed into one of the eight pass combinations × three widths.
fn opt_from_seed(seed: u64) -> OptConfig {
    OptConfig {
        fuse: seed & 1 != 0,
        width: [ElemWidth::Fp16, ElemWidth::Fp8, ElemWidth::Int8][(seed / 2 % 3) as usize],
        graph_capture: seed & 8 != 0,
    }
}

fn profile(
    g: &Graph,
    attn: AttnImpl,
    opt: OptConfig,
    memo: Option<Arc<CostMemo>>,
) -> (Timeline, Registry) {
    let registry = Registry::new();
    let mut p = Profiler::with_registry(DeviceSpec::a100_80gb(), attn, &registry)
        .with_cache_sim(4096)
        .with_opt_config(opt);
    if let Some(memo) = memo {
        p = p.with_memo(memo);
    }
    (p.profile(g), registry)
}

fn assert_identical(
    label: &str,
    (cold_t, cold_r): &(Timeline, Registry),
    (memo_t, memo_r): &(Timeline, Registry),
) {
    assert_eq!(cold_t.events().len(), memo_t.events().len(), "{label}: event count");
    for (a, b) in cold_t.events().iter().zip(memo_t.events()) {
        assert_eq!(a.index, b.index, "{label}: index of {}", a.path);
        assert_eq!(a.path, b.path, "{label}: path");
        assert_eq!(a.category, b.category, "{label}: category of {}", a.path);
        assert_eq!(a.time_s.to_bits(), b.time_s.to_bits(), "{label}: time of {}", a.path);
        assert_eq!(a.energy_j.to_bits(), b.energy_j.to_bits(), "{label}: energy of {}", a.path);
        assert_eq!(a.flops, b.flops, "{label}: flops of {}", a.path);
        assert_eq!(a.hbm_bytes, b.hbm_bytes, "{label}: bytes of {}", a.path);
        assert_eq!(a.kernels, b.kernels, "{label}: kernel records of {}", a.path);
        assert_eq!(a.attention, b.attention, "{label}: attention info of {}", a.path);
        assert_eq!(a.counters, b.counters, "{label}: counter deltas of {}", a.path);
    }
    // Registry totals, bucket for bucket and byte for byte.
    assert_eq!(cold_r.render_prometheus(), memo_r.render_prometheus(), "{label}: registry");
    // Span attribution (durations are wall time and legitimately differ).
    let cold_s = cold_r.finished_spans();
    let memo_s = memo_r.finished_spans();
    assert_eq!(cold_s.len(), memo_s.len(), "{label}: span count");
    for (a, b) in cold_s.iter().zip(&memo_s) {
        assert_eq!(a.path, b.path, "{label}: span path");
        assert_eq!(a.counter_deltas, b.counter_deltas, "{label}: span deltas of {}", a.path);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Cold, intra-run-memoized, and warm-memoized profiling all agree,
    /// under any combination of optimization passes.
    #[test]
    fn memoized_profiling_is_bit_identical(
        seeds in proptest::collection::vec(0u64..u64::MAX, 1..5),
        flash in 0usize..2,
        opt_seed in 0u64..48,
    ) {
        let attn = if flash == 1 { AttnImpl::Flash } else { AttnImpl::Baseline };
        let opt = opt_from_seed(opt_seed);
        let g = graph_of(&seeds);
        let cold = profile(&g, attn, opt, None);

        // First memoized run: every distinct op misses once (pass 0) and
        // hits on repetition (pass 1).
        let memo = Arc::new(CostMemo::new());
        let first = profile(&g, attn, opt, Some(Arc::clone(&memo)));
        prop_assert!(memo.hits() >= seeds.len() as u64, "second pass must hit");
        assert_identical("intra-run", &cold, &first);

        // Second run against the warm memo: pure replay.
        let hits_before = memo.hits();
        let warm = profile(&g, attn, opt, Some(Arc::clone(&memo)));
        prop_assert_eq!(
            memo.hits(),
            hits_before + g.len() as u64,
            "warm run must be all hits"
        );
        assert_identical("warm", &cold, &warm);
    }

    /// Energy conservation, bit for bit: every op's joules are exactly
    /// the in-order sum of its kernels' joules, the timeline total is
    /// exactly the in-order sum of the ops', every kernel draw sits in
    /// the device's [idle, TDP] envelope, and a warm memo replays the
    /// `gpu_energy_uj_total` counter to the same integer.
    #[test]
    fn per_kernel_joules_conserve_through_timeline_and_memo(
        seeds in proptest::collection::vec(0u64..u64::MAX, 1..5),
        flash in 0usize..2,
        opt_seed in 0u64..48,
    ) {
        let attn = if flash == 1 { AttnImpl::Flash } else { AttnImpl::Baseline };
        let opt = opt_from_seed(opt_seed);
        let spec = DeviceSpec::a100_80gb();
        let g = graph_of(&seeds);
        let (cold_t, cold_r) = profile(&g, attn, opt, None);

        let mut op_sum = 0.0f64;
        for e in cold_t.events() {
            let kernel_sum = e.kernels.iter().map(|k| k.energy_j).fold(0.0f64, |a, b| a + b);
            prop_assert_eq!(
                kernel_sum.to_bits(),
                e.energy_j.to_bits(),
                "op {} energy is not the exact sum of its kernels", &e.path
            );
            for k in e.kernels.iter() {
                prop_assert!(
                    k.draw_w >= spec.idle_w && k.draw_w <= spec.tdp_w,
                    "kernel {} draws {} W outside [{}, {}]",
                    &k.label, k.draw_w, spec.idle_w, spec.tdp_w
                );
                prop_assert!(k.energy_j >= 0.0, "negative joules on {}", &k.label);
            }
            op_sum += e.energy_j;
        }
        prop_assert_eq!(
            op_sum.to_bits(),
            cold_t.total_energy_j().to_bits(),
            "timeline total energy is not the exact sum of its ops"
        );

        // Warm replay must land the integrated-energy counter on the
        // same integer microjoule total the cold run produced.
        let counter = |r: &Registry| {
            r.counters_snapshot()
                .values()
                .iter()
                .find(|(name, _)| name == "gpu_energy_uj_total")
                .map(|(_, v)| *v)
        };
        let memo = Arc::new(CostMemo::new());
        let _ = profile(&g, attn, opt, Some(Arc::clone(&memo)));
        let (warm_t, warm_r) = profile(&g, attn, opt, Some(memo));
        prop_assert_eq!(
            cold_t.total_energy_j().to_bits(),
            warm_t.total_energy_j().to_bits(),
            "memo replay changed the integrated timeline energy"
        );
        prop_assert_eq!(counter(&cold_r), counter(&warm_r), "memo replay changed gpu_energy_uj_total");
    }
}
