//! The multi-GPU cluster simulation: routers, schedulers, SLOs.
//!
//! Requests arrive from a workload generator, are *routed* to one
//! GPU's queue, and a per-GPU *scheduler* decides when to start work
//! and how many same-model requests to batch together. Service times
//! come from the profiler-grounded [`ServiceProfile`], so the paper's
//! batching regimes shape cluster behavior: a dynamic batcher gets huge
//! wins on memory-bound autoregressive decode and modest ones on
//! compute-bound diffusion.
//!
//! Everything runs on the deterministic [`EventQueue`]; the only
//! randomness is the seeded arrival process and model mix.

use std::collections::VecDeque;

use mmg_models::ModelId;
use mmg_telemetry::{latency_buckets_s, Registry};
use rand::distributions::{Distribution, Uniform};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::des::EventQueue;
use crate::profile::{ServiceCurve, ServiceProfile};
use crate::workload::{model_short_name, ArrivalGen, ArrivalProcess, RequestMix};

/// How arriving requests are assigned to a GPU queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouterKind {
    /// Cycle through GPUs in order.
    RoundRobin,
    /// Send to the GPU with the least outstanding work (running remainder
    /// plus queued batch-1 service seconds).
    LeastWork,
    /// Partition GPUs by model (so same-model requests pool and batch),
    /// least-outstanding-work within a model's partition.
    ModelAffinity,
}

impl RouterKind {
    /// Parses a CLI router name.
    pub fn parse(name: &str) -> Result<Self, String> {
        match name.to_lowercase().as_str() {
            "rr" | "round-robin" => Ok(RouterKind::RoundRobin),
            "least-work" | "lw" => Ok(RouterKind::LeastWork),
            "affinity" | "model-affinity" => Ok(RouterKind::ModelAffinity),
            other => Err(format!(
                "unknown router '{other}'; expected round-robin | least-work | affinity"
            )),
        }
    }
}

/// When a GPU starts work and how many requests it batches.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SchedulerKind {
    /// One request at a time, arrival order. No batching.
    Fifo,
    /// Classic static batching: wait until `batch` same-model requests
    /// are queued (or the head request has waited `wait_s`), then launch.
    Static {
        /// Target batch size.
        batch: usize,
        /// Maximum head-of-line wait before launching a partial batch.
        wait_s: f64,
    },
    /// Deadline-aware dynamic batching: launch as soon as the GPU is
    /// free, batching up to `max_batch` queued requests of the
    /// earliest-deadline request's model (earliest deadlines first).
    Dynamic {
        /// Batch-size cap.
        max_batch: usize,
    },
    /// Dynamic batching plus Section-V pod co-scheduling: when more work
    /// is waiting behind a launched batch, the pod interleaves the
    /// batch's stages with the next one's and the whole batch completes
    /// `pod_factor`× faster.
    Pods {
        /// Batch-size cap.
        max_batch: usize,
    },
}

impl SchedulerKind {
    /// Parses a CLI scheduler name, using `batch` as the batch target or
    /// cap where the scheduler has one.
    pub fn parse(name: &str, batch: usize) -> Result<Self, String> {
        match name.to_lowercase().as_str() {
            "fifo" => Ok(SchedulerKind::Fifo),
            "static" => Ok(SchedulerKind::Static { batch, wait_s: 1.0 }),
            "dynamic" => Ok(SchedulerKind::Dynamic { max_batch: batch }),
            "pods" => Ok(SchedulerKind::Pods { max_batch: batch }),
            other => Err(format!(
                "unknown scheduler '{other}'; expected fifo | static | dynamic | pods"
            )),
        }
    }

    /// Scheduler name as printed in reports.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            SchedulerKind::Fifo => "fifo",
            SchedulerKind::Static { .. } => "static",
            SchedulerKind::Dynamic { .. } => "dynamic",
            SchedulerKind::Pods { .. } => "pods",
        }
    }
}

/// The latency deadline attached to each request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SloSpec {
    /// No deadline; every completion attains the SLO.
    None,
    /// One absolute deadline for every model, seconds after arrival.
    FixedS(f64),
    /// Per-model deadline: `multiple ×` the model's batch-1 service time
    /// (heavier models get proportionally more headroom).
    ServiceMultiple(f64),
}

impl SloSpec {
    /// The deadline in seconds after arrival for a model served by
    /// `curve`.
    #[must_use]
    pub fn slo_s(&self, curve: &ServiceCurve) -> f64 {
        match *self {
            SloSpec::None => f64::INFINITY,
            SloSpec::FixedS(s) => s,
            SloSpec::ServiceMultiple(k) => k * curve.base_s(),
        }
    }
}

/// A complete serving scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioCfg {
    /// Cluster size.
    pub gpus: usize,
    /// Request model mix.
    pub mix: RequestMix,
    /// Arrival process.
    pub arrival: ArrivalProcess,
    /// Request router.
    pub router: RouterKind,
    /// Per-GPU scheduler.
    pub scheduler: SchedulerKind,
    /// Deadline specification.
    pub slo: SloSpec,
    /// Arrival horizon, seconds: no requests arrive after this instant
    /// (in-flight work drains to completion).
    pub duration_s: f64,
    /// Stop generating arrivals after this many, regardless of horizon.
    pub max_requests: Option<u64>,
    /// Queued requests give up after waiting this long.
    pub abandon_after_s: Option<f64>,
    /// Admission control: arrivals finding this many requests queued
    /// cluster-wide are dropped.
    pub max_queue: Option<usize>,
    /// RNG seed for arrivals and mix sampling.
    pub seed: u64,
}

impl ScenarioCfg {
    /// A scenario with the common defaults: least-work routing, no
    /// abandonment, no admission control.
    #[must_use]
    pub fn new(
        gpus: usize,
        mix: RequestMix,
        arrival: ArrivalProcess,
        scheduler: SchedulerKind,
        slo: SloSpec,
        duration_s: f64,
        seed: u64,
    ) -> Self {
        ScenarioCfg {
            gpus,
            mix,
            arrival,
            router: RouterKind::LeastWork,
            scheduler,
            slo,
            duration_s,
            max_requests: None,
            abandon_after_s: None,
            max_queue: None,
            seed,
        }
    }
}

/// One served request's lifecycle, in virtual seconds.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestRecord {
    /// Arrival-order id.
    pub id: u64,
    /// Model requested.
    pub model: ModelId,
    /// Arrival instant.
    pub arrival_s: f64,
    /// Service start instant.
    pub start_s: f64,
    /// Completion instant.
    pub finish_s: f64,
    /// Absolute deadline (`+inf` when no SLO).
    pub deadline_s: f64,
    /// GPU that served it.
    pub gpu: usize,
    /// Size of the batch it was served in.
    pub batch: usize,
    /// Requests in the system at its arrival, itself included — the
    /// exact queue-depth-seen-by-arrivals statistic.
    pub depth_at_arrival: u64,
}

impl RequestRecord {
    /// Queueing delay.
    #[must_use]
    pub fn wait_s(&self) -> f64 {
        self.start_s - self.arrival_s
    }

    /// End-to-end sojourn.
    #[must_use]
    pub fn latency_s(&self) -> f64 {
        self.finish_s - self.arrival_s
    }

    /// Whether the request met its deadline.
    #[must_use]
    pub fn on_time(&self) -> bool {
        self.finish_s <= self.deadline_s
    }
}

/// Everything a simulation run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Completed requests in completion order.
    pub records: Vec<RequestRecord>,
    /// Requests generated (admitted or not).
    pub arrivals: u64,
    /// Requests rejected by admission control.
    pub dropped: u64,
    /// Requests that abandoned the queue.
    pub abandoned: u64,
    /// Requests queued or in service when the clock first crossed the
    /// arrival horizon, counted from the live data structures.
    pub in_flight_at_horizon: u64,
    /// The arrival horizon.
    pub horizon_s: f64,
    /// Time the last event fired (drain end).
    pub end_s: f64,
    /// `∫ n(t) dt` over the whole run, where `n` is the number of
    /// requests in the system — time-average occupancy times duration,
    /// tracked independently of the per-request records for the
    /// Little's-law cross-check.
    pub area_requests_s: f64,
    /// Total queueing delay accrued by abandoned requests (their
    /// contribution to the occupancy integral).
    pub abandoned_wait_s: f64,
    /// Busy seconds per GPU.
    pub busy_s: Vec<f64>,
}

impl SimResult {
    /// Completed records sorted by arrival (id) order.
    #[must_use]
    pub fn records_by_arrival(&self) -> Vec<&RequestRecord> {
        let mut v: Vec<&RequestRecord> = self.records.iter().collect();
        v.sort_by_key(|r| r.id);
        v
    }

    /// Mean cluster utilization: busy GPU-seconds over `gpus × end`.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        if self.end_s <= 0.0 {
            return 0.0;
        }
        self.busy_s.iter().sum::<f64>() / (self.busy_s.len() as f64 * self.end_s)
    }

    /// Completions per second over the horizon.
    #[must_use]
    pub fn throughput_rps(&self) -> f64 {
        self.records.len() as f64 / self.horizon_s.min(self.end_s).max(f64::MIN_POSITIVE)
    }

    /// On-time completions per second over the horizon — the SLO-aware
    /// throughput ("goodput").
    #[must_use]
    pub fn goodput_rps(&self) -> f64 {
        self.records.iter().filter(|r| r.on_time()).count() as f64
            / self.horizon_s.min(self.end_s).max(f64::MIN_POSITIVE)
    }

    /// Fraction of completed requests that met their deadline.
    #[must_use]
    pub fn slo_attainment(&self) -> f64 {
        if self.records.is_empty() {
            return 1.0;
        }
        self.records.iter().filter(|r| r.on_time()).count() as f64 / self.records.len() as f64
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    Arrival,
    Depart { gpu: usize },
    Timeout { gpu: usize },
    Abandon { req: u64 },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Queued,
    Running,
    Done,
    Abandoned,
}

#[derive(Debug)]
struct ReqState {
    model: ModelId,
    arrival_s: f64,
    deadline_s: f64,
    depth_at_arrival: u64,
    base_s: f64,
    status: Status,
}

#[derive(Debug)]
struct RunningBatch {
    ids: Vec<u64>,
    start_s: f64,
    finish_s: f64,
}

struct Sim<'a> {
    cfg: &'a ScenarioCfg,
    profile: &'a ServiceProfile,
    registry: &'a Registry,
    queue: EventQueue<Event>,
    reqs: Vec<ReqState>,
    gpu_queues: Vec<VecDeque<u64>>,
    queued_work_s: Vec<f64>,
    running: Vec<Option<RunningBatch>>,
    busy_s: Vec<f64>,
    rr_next: usize,
    arrivals: u64,
    dropped: u64,
    abandoned: u64,
    abandoned_wait_s: f64,
    records: Vec<RequestRecord>,
    mix_rng: StdRng,
    unit: Uniform<f64>,
    arrival_gen: ArrivalGen,
    area_requests_s: f64,
    last_event_s: f64,
    in_system: u64,
    in_flight_at_horizon: u64,
    horizon_snapped: bool,
}

impl<'a> Sim<'a> {
    fn curve(&self, model: ModelId) -> &'a ServiceCurve {
        self.profile
            .curve(model)
            .unwrap_or_else(|| panic!("no service curve for {model}"))
    }

    fn total_queued(&self) -> usize {
        self.gpu_queues.iter().map(VecDeque::len).sum()
    }

    fn route(&mut self, model: ModelId) -> usize {
        match self.cfg.router {
            RouterKind::RoundRobin => {
                let gpu = self.rr_next;
                self.rr_next = (self.rr_next + 1) % self.cfg.gpus;
                gpu
            }
            RouterKind::LeastWork => self.least_work_of(0..self.cfg.gpus),
            RouterKind::ModelAffinity => {
                let n_models = self.cfg.mix.entries().len();
                let m_idx = self
                    .cfg
                    .mix
                    .entries()
                    .iter()
                    .position(|(m, _)| *m == model)
                    .expect("mix model");
                if self.cfg.gpus >= n_models {
                    self.least_work_of(
                        (0..self.cfg.gpus).filter(|g| g % n_models == m_idx),
                    )
                } else {
                    m_idx % self.cfg.gpus
                }
            }
        }
    }

    fn least_work_of(&self, gpus: impl Iterator<Item = usize>) -> usize {
        let now = self.queue.now_s();
        gpus.map(|g| {
            let remaining = self.running[g]
                .as_ref()
                .map_or(0.0, |b| (b.finish_s - now).max(0.0));
            (g, remaining + self.queued_work_s[g])
        })
        // Strictly-less comparison keeps the first (lowest-index) GPU on
        // ties, so routing is deterministic.
        .fold(None::<(usize, f64)>, |best, cand| match best {
            Some((_, w)) if w <= cand.1 => best,
            _ => Some(cand),
        })
        .expect("at least one gpu")
        .0
    }

    /// Picks the batch to launch on `gpu`, or the instant to re-try at
    /// (static batching waiting out its timer).
    fn plan_batch(&self, gpu: usize) -> Result<Vec<u64>, Option<f64>> {
        let q = &self.gpu_queues[gpu];
        if q.is_empty() {
            return Err(None);
        }
        let now = self.queue.now_s();
        match self.cfg.scheduler {
            SchedulerKind::Fifo => Ok(vec![q[0]]),
            SchedulerKind::Static { batch, wait_s } => {
                let head = q[0];
                let model = self.reqs[head as usize].model;
                let members: Vec<u64> = q
                    .iter()
                    .copied()
                    .filter(|&id| self.reqs[id as usize].model == model)
                    .take(batch.max(1))
                    .collect();
                let deadline = self.reqs[head as usize].arrival_s + wait_s;
                if members.len() >= batch.max(1) || now + 1e-12 >= deadline {
                    Ok(members)
                } else {
                    Err(Some(deadline))
                }
            }
            SchedulerKind::Dynamic { max_batch } | SchedulerKind::Pods { max_batch } => {
                // Earliest-deadline-first leader, then same-model members
                // also in deadline order.
                let leader = q
                    .iter()
                    .copied()
                    .min_by(|&a, &b| {
                        self.reqs[a as usize]
                            .deadline_s
                            .total_cmp(&self.reqs[b as usize].deadline_s)
                            .then(a.cmp(&b))
                    })
                    .expect("non-empty queue");
                let model = self.reqs[leader as usize].model;
                let mut members: Vec<u64> = q
                    .iter()
                    .copied()
                    .filter(|&id| self.reqs[id as usize].model == model)
                    .collect();
                members.sort_by(|&a, &b| {
                    self.reqs[a as usize]
                        .deadline_s
                        .total_cmp(&self.reqs[b as usize].deadline_s)
                        .then(a.cmp(&b))
                });
                members.truncate(max_batch.max(1));
                Ok(members)
            }
        }
    }

    /// Launches work on an idle `gpu` if its scheduler agrees.
    fn try_dispatch(&mut self, gpu: usize) {
        if self.running[gpu].is_some() {
            return;
        }
        let members = match self.plan_batch(gpu) {
            Ok(m) => m,
            Err(Some(retry_at)) => {
                if retry_at > self.queue.now_s() {
                    self.queue.schedule(retry_at, Event::Timeout { gpu });
                }
                return;
            }
            Err(None) => return,
        };
        let now = self.queue.now_s();
        let model = self.reqs[members[0] as usize].model;
        let curve = self.curve(model);
        let mut service_s = curve.batch_s(members.len());
        for &id in &members {
            let st = &mut self.reqs[id as usize];
            st.status = Status::Running;
            self.queued_work_s[gpu] -= st.base_s;
            let q = &mut self.gpu_queues[gpu];
            let pos = q.iter().position(|&x| x == id).expect("queued member");
            q.remove(pos);
        }
        self.queued_work_s[gpu] = self.queued_work_s[gpu].max(0.0);
        // Pod co-scheduling pays off when another batch is waiting to
        // interleave with this one (Section V: denoising pods overlap
        // compute- and memory-bound stages of concurrent requests).
        if matches!(self.cfg.scheduler, SchedulerKind::Pods { .. })
            && !self.gpu_queues[gpu].is_empty()
        {
            service_s /= curve.pod_factor.max(1.0);
        }
        let finish_s = now + service_s;
        self.busy_s[gpu] += service_s;
        self.registry
            .histogram("serve_batch_size", &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0])
            .observe(members.len() as f64);
        self.running[gpu] = Some(RunningBatch { ids: members, start_s: now, finish_s });
        self.queue.schedule(finish_s, Event::Depart { gpu });
    }

    fn on_arrival(&mut self) {
        let now = self.queue.now_s();
        self.arrivals += 1;
        let u: f64 = self.unit.sample(&mut self.mix_rng);
        let model = self.cfg.mix.sample(u);
        let id = self.reqs.len() as u64;
        let curve = self.curve(model);
        let deadline_s = now + self.cfg.slo.slo_s(curve);
        let base_s = curve.base_s();
        self.registry
            .counter_with("serve_requests_total", &[("model", model_short_name(model))])
            .inc();
        if let Some(cap) = self.cfg.max_queue {
            if self.total_queued() >= cap {
                self.dropped += 1;
                self.registry.counter("serve_drops_total").inc();
                self.reqs.push(ReqState {
                    model,
                    arrival_s: now,
                    deadline_s,
                    depth_at_arrival: 0,
                    base_s,
                    status: Status::Abandoned,
                });
                return;
            }
        }
        self.in_system += 1;
        let depth_at_arrival = self.in_system;
        self.reqs.push(ReqState {
            model,
            arrival_s: now,
            deadline_s,
            depth_at_arrival,
            base_s,
            status: Status::Queued,
        });
        let gpu = self.route(model);
        self.gpu_queues[gpu].push_back(id);
        self.queued_work_s[gpu] += base_s;
        if let Some(patience_s) = self.cfg.abandon_after_s {
            self.queue.schedule(now + patience_s, Event::Abandon { req: id });
        }
        self.try_dispatch(gpu);
    }

    fn on_depart(&mut self, gpu: usize) {
        let batch = self.running[gpu].take().expect("depart from idle gpu");
        let size = batch.ids.len();
        for &id in &batch.ids {
            let st = &mut self.reqs[id as usize];
            st.status = Status::Done;
            self.in_system -= 1;
            let rec = RequestRecord {
                id,
                model: st.model,
                arrival_s: st.arrival_s,
                start_s: batch.start_s,
                finish_s: batch.finish_s,
                deadline_s: st.deadline_s,
                gpu,
                batch: size,
                depth_at_arrival: st.depth_at_arrival,
            };
            let labels = [("model", model_short_name(st.model))];
            self.registry
                .histogram_with("serve_wait_s", &labels, &latency_buckets_s())
                .observe(rec.wait_s());
            self.registry
                .histogram_with("serve_latency_s", &labels, &latency_buckets_s())
                .observe(rec.latency_s());
            if !rec.on_time() {
                self.registry.counter_with("serve_slo_miss_total", &labels).inc();
            }
            self.records.push(rec);
        }
        self.try_dispatch(gpu);
    }

    fn on_abandon(&mut self, id: u64) {
        if self.reqs[id as usize].status != Status::Queued {
            return;
        }
        let now = self.queue.now_s();
        let (gpu, pos) = self
            .gpu_queues
            .iter()
            .enumerate()
            .find_map(|(g, q)| q.iter().position(|&x| x == id).map(|p| (g, p)))
            .expect("queued request is on some gpu queue");
        self.gpu_queues[gpu].remove(pos);
        let st = &mut self.reqs[id as usize];
        st.status = Status::Abandoned;
        self.queued_work_s[gpu] = (self.queued_work_s[gpu] - st.base_s).max(0.0);
        self.in_system -= 1;
        self.abandoned += 1;
        self.abandoned_wait_s += now - st.arrival_s;
        self.registry.counter("serve_abandons_total").inc();
    }
}

/// Runs a scenario to completion (arrivals stop at the horizon or
/// request cap; in-flight work drains) and returns the full result.
/// Metrics stream into `registry` under `serve_*` names.
///
/// # Panics
///
/// Panics if the scenario has no GPUs or references a model the profile
/// has no curve for.
#[must_use]
pub fn simulate(cfg: &ScenarioCfg, profile: &ServiceProfile, registry: &Registry) -> SimResult {
    assert!(cfg.gpus >= 1, "need at least one GPU");
    assert!(cfg.duration_s > 0.0, "duration must be positive");
    for model in cfg.mix.models() {
        assert!(profile.curve(model).is_some(), "no service curve for {model}");
    }

    let mut sim = Sim {
        cfg,
        profile,
        registry,
        queue: EventQueue::new(),
        reqs: Vec::new(),
        gpu_queues: vec![VecDeque::new(); cfg.gpus],
        queued_work_s: vec![0.0; cfg.gpus],
        running: (0..cfg.gpus).map(|_| None).collect(),
        busy_s: vec![0.0; cfg.gpus],
        rr_next: 0,
        arrivals: 0,
        dropped: 0,
        abandoned: 0,
        abandoned_wait_s: 0.0,
        records: Vec::new(),
        mix_rng: StdRng::seed_from_u64(cfg.seed.wrapping_add(1)),
        unit: Uniform::new(0.0, 1.0),
        arrival_gen: ArrivalGen::new(cfg.arrival, cfg.seed),
        area_requests_s: 0.0,
        last_event_s: 0.0,
        in_system: 0,
        in_flight_at_horizon: 0,
        horizon_snapped: false,
    };

    let first = sim.arrival_gen.next_after(0.0);
    if first <= cfg.duration_s {
        sim.queue.schedule(first, Event::Arrival);
    }

    while let Some((t, event)) = sim.queue.pop() {
        // n(t) is constant between events; accumulate the occupancy
        // integral before the state changes.
        sim.area_requests_s += sim.in_system as f64 * (t - sim.last_event_s);
        sim.last_event_s = t;
        if !sim.horizon_snapped && t >= cfg.duration_s {
            sim.horizon_snapped = true;
            sim.in_flight_at_horizon = sim.in_system;
        }
        match event {
            Event::Arrival => {
                sim.on_arrival();
                let generated = sim.arrivals;
                let more = cfg.max_requests.is_none_or(|cap| generated < cap);
                if more {
                    let next = sim.arrival_gen.next_after(t);
                    if next <= cfg.duration_s {
                        sim.queue.schedule(next, Event::Arrival);
                    }
                }
            }
            Event::Depart { gpu } => sim.on_depart(gpu),
            Event::Timeout { gpu } => sim.try_dispatch(gpu),
            Event::Abandon { req } => sim.on_abandon(req),
        }
        registry.gauge("serve_queue_depth").set(sim.total_queued() as f64);
        registry.gauge("serve_in_flight").set(sim.in_system as f64);
    }

    let end_s = sim.last_event_s;
    for (g, busy) in sim.busy_s.iter().enumerate() {
        let gpu_label = g.to_string();
        registry
            .gauge_with("serve_gpu_utilization", &[("gpu", gpu_label.as_str())])
            .set(if end_s > 0.0 { busy / end_s } else { 0.0 });
    }

    debug_assert_eq!(sim.in_system, 0, "drain left requests in the system");
    SimResult {
        records: sim.records,
        arrivals: sim.arrivals,
        dropped: sim.dropped,
        abandoned: sim.abandoned,
        in_flight_at_horizon: sim.in_flight_at_horizon,
        horizon_s: cfg.duration_s,
        end_s,
        area_requests_s: sim.area_requests_s,
        abandoned_wait_s: sim.abandoned_wait_s,
        busy_s: sim.busy_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn constant_profile(service_s: f64) -> ServiceProfile {
        ServiceProfile::new(vec![ServiceCurve::constant(ModelId::StableDiffusion, service_s)])
    }

    /// A curve with strong batching benefit: batch of 16 costs only 2×
    /// batch 1 (decode-like amortization).
    fn batching_profile(service_s: f64) -> ServiceProfile {
        ServiceProfile::new(vec![ServiceCurve::new(
            ModelId::StableDiffusion,
            vec![(1, service_s), (4, 1.3 * service_s), (16, 2.0 * service_s)],
        )])
    }

    fn scenario(scheduler: SchedulerKind, rate: f64, duration_s: f64) -> ScenarioCfg {
        ScenarioCfg::new(
            2,
            RequestMix::single(ModelId::StableDiffusion),
            ArrivalProcess::poisson(rate),
            scheduler,
            SloSpec::FixedS(2.0),
            duration_s,
            7,
        )
    }

    #[test]
    fn conserves_requests() {
        let cfg = scenario(SchedulerKind::Fifo, 3.0, 200.0);
        let r = simulate(&cfg, &constant_profile(0.5), &Registry::new());
        assert!(r.arrivals > 100);
        assert_eq!(
            r.arrivals,
            r.records.len() as u64 + r.dropped + r.abandoned,
            "every arrival must complete, drop, or abandon"
        );
        let done_by_horizon =
            r.records.iter().filter(|rec| rec.finish_s < r.horizon_s).count() as u64;
        assert_eq!(r.arrivals, done_by_horizon + r.in_flight_at_horizon);
    }

    #[test]
    fn littles_law_area_matches_sojourns() {
        let cfg = scenario(SchedulerKind::Fifo, 3.0, 300.0);
        let r = simulate(&cfg, &constant_profile(0.4), &Registry::new());
        let sojourn: f64 = r.records.iter().map(RequestRecord::latency_s).sum();
        let rel = (r.area_requests_s - sojourn).abs() / sojourn;
        assert!(rel < 1e-9, "area {} vs sojourn {sojourn}", r.area_requests_s);
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = scenario(SchedulerKind::Dynamic { max_batch: 8 }, 4.0, 100.0);
        let a = simulate(&cfg, &batching_profile(0.5), &Registry::new());
        let b = simulate(&cfg, &batching_profile(0.5), &Registry::new());
        assert_eq!(a, b);
        let other = ScenarioCfg { seed: 8, ..cfg };
        let c = simulate(&other, &batching_profile(0.5), &Registry::new());
        assert_ne!(a.records, c.records);
    }

    #[test]
    fn dynamic_batching_beats_fifo_under_load() {
        // Offered utilization ~1.2 on a batch-1 basis: FIFO saturates,
        // dynamic batching rides the amortization curve.
        let profile = batching_profile(0.5);
        let fifo = simulate(&scenario(SchedulerKind::Fifo, 5.0, 300.0), &profile, &Registry::new());
        let dynamic = simulate(
            &scenario(SchedulerKind::Dynamic { max_batch: 16 }, 5.0, 300.0),
            &profile,
            &Registry::new(),
        );
        assert!(
            dynamic.goodput_rps() > 1.5 * fifo.goodput_rps(),
            "dynamic {} vs fifo {}",
            dynamic.goodput_rps(),
            fifo.goodput_rps()
        );
    }

    #[test]
    fn pods_beat_dynamic_when_factor_high() {
        let mut profile = batching_profile(0.5);
        profile.curves[0].pod_factor = 1.5;
        let dynamic = simulate(
            &scenario(SchedulerKind::Dynamic { max_batch: 8 }, 6.0, 300.0),
            &profile,
            &Registry::new(),
        );
        let pods = simulate(
            &scenario(SchedulerKind::Pods { max_batch: 8 }, 6.0, 300.0),
            &profile,
            &Registry::new(),
        );
        assert!(
            pods.throughput_rps() >= dynamic.throughput_rps(),
            "pods {} vs dynamic {}",
            pods.throughput_rps(),
            dynamic.throughput_rps()
        );
        assert!(pods.records.iter().all(|r| r.latency_s() > 0.0));
    }

    #[test]
    fn static_batching_waits_then_launches() {
        // One slow trickle: static must launch partial batches after the
        // timeout instead of waiting forever.
        let cfg = scenario(SchedulerKind::Static { batch: 8, wait_s: 0.25 }, 0.5, 60.0);
        let r = simulate(&cfg, &batching_profile(0.5), &Registry::new());
        assert!(!r.records.is_empty());
        assert_eq!(r.arrivals, r.records.len() as u64);
        // Light traffic: batches stay small, waits bounded by the timer
        // plus in-service time ahead of the request.
        for rec in &r.records {
            assert!(rec.batch < 8, "unexpected full batch in light traffic");
        }
    }

    #[test]
    fn abandonment_and_admission_control_count_drops() {
        let mut cfg = scenario(SchedulerKind::Fifo, 8.0, 60.0);
        cfg.abandon_after_s = Some(1.0);
        cfg.max_queue = Some(10);
        // Overloaded single GPU.
        cfg.gpus = 1;
        let reg = Registry::new();
        let r = simulate(&cfg, &constant_profile(0.5), &reg);
        assert!(r.dropped > 0, "admission control never fired");
        assert!(r.abandoned > 0, "abandonment never fired");
        assert_eq!(r.arrivals, r.records.len() as u64 + r.dropped + r.abandoned);
        assert_eq!(reg.counter("serve_drops_total").get(), r.dropped);
        assert_eq!(reg.counter("serve_abandons_total").get(), r.abandoned);
    }

    #[test]
    fn depth_at_arrival_counts_outstanding_requests() {
        // Deterministic hand check: single GPU, service 1.0, arrivals
        // faster than service. The k-th arrival sees all earlier
        // unfinished requests plus itself.
        let cfg = ScenarioCfg {
            gpus: 1,
            ..scenario(SchedulerKind::Fifo, 4.0, 50.0)
        };
        let r = simulate(&cfg, &constant_profile(1.0), &Registry::new());
        for rec in r.records_by_arrival() {
            let outstanding = r
                .records
                .iter()
                .filter(|o| o.arrival_s < rec.arrival_s && o.finish_s > rec.arrival_s)
                .count() as u64;
            assert_eq!(
                rec.depth_at_arrival,
                outstanding + 1,
                "request {} depth mismatch",
                rec.id
            );
        }
    }

    #[test]
    fn routers_spread_load() {
        for router in [RouterKind::RoundRobin, RouterKind::LeastWork] {
            let mut cfg = scenario(SchedulerKind::Fifo, 3.0, 200.0);
            cfg.gpus = 4;
            cfg.router = router;
            let r = simulate(&cfg, &constant_profile(0.5), &Registry::new());
            let total: f64 = r.busy_s.iter().sum();
            for (g, b) in r.busy_s.iter().enumerate() {
                assert!(
                    *b > 0.1 * total / 4.0,
                    "{router:?}: gpu {g} starved ({b} of {total})"
                );
            }
        }
    }

    #[test]
    fn affinity_router_pools_same_model_requests() {
        let mix = RequestMix::new(vec![
            (ModelId::StableDiffusion, 1.0),
            (ModelId::Parti, 1.0),
        ]);
        let profile = ServiceProfile::new(vec![
            ServiceCurve::constant(ModelId::StableDiffusion, 0.4),
            ServiceCurve::constant(ModelId::Parti, 0.4),
        ]);
        let cfg = ScenarioCfg {
            router: RouterKind::ModelAffinity,
            ..ScenarioCfg::new(
                4,
                mix,
                ArrivalProcess::poisson(4.0),
                SchedulerKind::Fifo,
                SloSpec::None,
                100.0,
                3,
            )
        };
        let r = simulate(&cfg, &profile, &Registry::new());
        // Even GPUs serve SD, odd GPUs serve Parti — never mixed.
        for rec in &r.records {
            let expected_parity = usize::from(rec.model == ModelId::Parti);
            assert_eq!(rec.gpu % 2, expected_parity, "{:?} on gpu {}", rec.model, rec.gpu);
        }
    }

    #[test]
    fn slo_service_multiple_scales_per_model() {
        let curve = ServiceCurve::constant(ModelId::Parti, 2.0);
        assert_eq!(SloSpec::ServiceMultiple(4.0).slo_s(&curve), 8.0);
        assert_eq!(SloSpec::FixedS(1.5).slo_s(&curve), 1.5);
        assert_eq!(SloSpec::None.slo_s(&curve), f64::INFINITY);
    }

    #[test]
    fn max_requests_caps_arrivals() {
        let mut cfg = scenario(SchedulerKind::Fifo, 10.0, 1e9);
        cfg.max_requests = Some(50);
        let r = simulate(&cfg, &constant_profile(0.1), &Registry::new());
        assert_eq!(r.arrivals, 50);
        assert_eq!(r.records.len(), 50);
    }

    #[test]
    fn parse_helpers() {
        assert_eq!(RouterKind::parse("round-robin").unwrap(), RouterKind::RoundRobin);
        assert_eq!(RouterKind::parse("AFFINITY").unwrap(), RouterKind::ModelAffinity);
        assert!(RouterKind::parse("hash").is_err());
        assert_eq!(
            SchedulerKind::parse("dynamic", 8).unwrap(),
            SchedulerKind::Dynamic { max_batch: 8 }
        );
        assert_eq!(SchedulerKind::parse("fifo", 8).unwrap().name(), "fifo");
        assert!(SchedulerKind::parse("edf", 8).is_err());
    }
}
